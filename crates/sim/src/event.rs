//! Deterministic discrete-event engine for scheduling work onto hardware
//! resources.
//!
//! The dataflow executors express a layer as a DAG of tasks (DMA transfers,
//! PE compute phases, softmax stages) bound to resources (the DMA engine, PE
//! clusters, SM modules). Each resource executes its tasks **in submission
//! order** (FIFO, like a command queue), starting a task as soon as both the
//! resource is free and all dependencies have finished. This models the
//! double-buffered overlap MEADOW relies on — a weight prefetch for head
//! `h+1` issued before head `h`'s compute finishes runs concurrently because
//! it occupies a different resource.
//!
//! The engine is deliberately simple and fully deterministic: no priorities,
//! no preemption. Determinism is what lets the paper-shape tests assert
//! exact cycle counts.

use crate::clock::Cycles;
use crate::error::SimError;
use serde::{Deserialize, Serialize};

/// Identifies a resource registered with the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceId(usize);

/// Identifies a submitted task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TaskId(usize);

/// Semantic category of a task, used for latency attribution in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// DRAM → chip transfer.
    Fetch,
    /// On-chip compute (PE / SM / LN / NL work).
    Compute,
    /// Chip → DRAM transfer.
    Store,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct TaskRecord {
    resource: ResourceId,
    duration: Cycles,
    kind: TaskKind,
    start: Cycles,
    finish: Cycles,
}

/// Discrete-event engine with FIFO resources.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventSim {
    resource_names: Vec<String>,
    resource_free_at: Vec<Cycles>,
    resource_busy: Vec<Cycles>,
    tasks: Vec<TaskRecord>,
}

impl EventSim {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource (a DMA engine, a PE cluster, an SM module pool).
    pub fn add_resource(&mut self, name: impl Into<String>) -> ResourceId {
        self.resource_names.push(name.into());
        self.resource_free_at.push(Cycles::ZERO);
        self.resource_busy.push(Cycles::ZERO);
        ResourceId(self.resource_names.len() - 1)
    }

    /// Submits a task bound to `resource`, lasting `duration`, starting only
    /// after every task in `deps` has finished. Returns the task's id.
    ///
    /// Tasks must be submitted in topological order (dependencies first);
    /// each resource runs its tasks in submission order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownId`] for an unknown resource and
    /// [`SimError::ForwardDependency`] if a dependency has not been
    /// submitted yet.
    pub fn submit(
        &mut self,
        resource: ResourceId,
        kind: TaskKind,
        duration: Cycles,
        deps: &[TaskId],
    ) -> Result<TaskId, SimError> {
        let rid = resource.0;
        if rid >= self.resource_free_at.len() {
            return Err(SimError::UnknownId { kind: "resource", id: rid });
        }
        let id = self.tasks.len();
        let mut ready = Cycles::ZERO;
        for dep in deps {
            if dep.0 >= id {
                return Err(SimError::ForwardDependency { task: id, dep: dep.0 });
            }
            ready = ready.max(self.tasks[dep.0].finish);
        }
        let start = ready.max(self.resource_free_at[rid]);
        let finish = start + duration;
        self.resource_free_at[rid] = finish;
        self.resource_busy[rid] += duration;
        self.tasks.push(TaskRecord { resource, duration, kind, start, finish });
        Ok(TaskId(id))
    }

    /// Finish time of a task.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownId`] for an unknown task.
    pub fn finish_time(&self, task: TaskId) -> Result<Cycles, SimError> {
        self.tasks
            .get(task.0)
            .map(|t| t.finish)
            .ok_or(SimError::UnknownId { kind: "task", id: task.0 })
    }

    /// Start time of a task.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownId`] for an unknown task.
    pub fn start_time(&self, task: TaskId) -> Result<Cycles, SimError> {
        self.tasks
            .get(task.0)
            .map(|t| t.start)
            .ok_or(SimError::UnknownId { kind: "task", id: task.0 })
    }

    /// Completion time of the whole schedule (max finish over all tasks).
    pub fn makespan(&self) -> Cycles {
        self.tasks.iter().map(|t| t.finish).max().unwrap_or(Cycles::ZERO)
    }

    /// Total busy cycles of a resource.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownId`] for an unknown resource.
    pub fn busy_cycles(&self, resource: ResourceId) -> Result<Cycles, SimError> {
        self.resource_busy
            .get(resource.0)
            .copied()
            .ok_or(SimError::UnknownId { kind: "resource", id: resource.0 })
    }

    /// Utilization of a resource over the makespan, in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownId`] for an unknown resource.
    pub fn utilization(&self, resource: ResourceId) -> Result<f64, SimError> {
        let busy = self.busy_cycles(resource)?;
        let span = self.makespan();
        if span == Cycles::ZERO {
            return Ok(0.0);
        }
        Ok(busy.get() as f64 / span.get() as f64)
    }

    /// Sum of task durations by kind (raw component totals, the quantity the
    /// paper's stacked-distribution figures report).
    pub fn kind_cycles(&self, kind: TaskKind) -> Cycles {
        self.tasks.iter().filter(|t| t.kind == kind).map(|t| t.duration).sum()
    }

    /// Number of submitted tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_tasks_on_different_resources_overlap() {
        let mut sim = EventSim::new();
        let dma = sim.add_resource("dma");
        let pe = sim.add_resource("pe");
        let a = sim.submit(dma, TaskKind::Fetch, Cycles(100), &[]).unwrap();
        let b = sim.submit(pe, TaskKind::Compute, Cycles(80), &[]).unwrap();
        assert_eq!(sim.finish_time(a).unwrap(), Cycles(100));
        assert_eq!(sim.finish_time(b).unwrap(), Cycles(80));
        assert_eq!(sim.makespan(), Cycles(100));
    }

    #[test]
    fn dependencies_serialize() {
        let mut sim = EventSim::new();
        let dma = sim.add_resource("dma");
        let pe = sim.add_resource("pe");
        let fetch = sim.submit(dma, TaskKind::Fetch, Cycles(50), &[]).unwrap();
        let compute = sim.submit(pe, TaskKind::Compute, Cycles(30), &[fetch]).unwrap();
        let store = sim.submit(dma, TaskKind::Store, Cycles(20), &[compute]).unwrap();
        assert_eq!(sim.start_time(compute).unwrap(), Cycles(50));
        assert_eq!(sim.finish_time(store).unwrap(), Cycles(100));
    }

    #[test]
    fn fifo_resources_run_in_submission_order() {
        let mut sim = EventSim::new();
        let dma = sim.add_resource("dma");
        let pe = sim.add_resource("pe");
        // A long compute gates the first DMA task's dependency...
        let compute = sim.submit(pe, TaskKind::Compute, Cycles(100), &[]).unwrap();
        let gated = sim.submit(dma, TaskKind::Store, Cycles(10), &[compute]).unwrap();
        // ...and a later-submitted independent DMA task must queue behind it
        // (head-of-line blocking, as in a real in-order command queue).
        let queued = sim.submit(dma, TaskKind::Fetch, Cycles(10), &[]).unwrap();
        assert_eq!(sim.start_time(gated).unwrap(), Cycles(100));
        assert_eq!(sim.start_time(queued).unwrap(), Cycles(110));
    }

    #[test]
    fn double_buffering_overlap_pattern() {
        // fetch(h+1) overlaps compute(h): the classic MEADOW prefetch.
        let mut sim = EventSim::new();
        let dma = sim.add_resource("dma");
        let pe = sim.add_resource("pe");
        let mut prev_fetch = sim.submit(dma, TaskKind::Fetch, Cycles(40), &[]).unwrap();
        let mut last_compute = None;
        for _ in 0..4 {
            let deps: Vec<TaskId> =
                last_compute.into_iter().chain(std::iter::once(prev_fetch)).collect();
            let compute = sim.submit(pe, TaskKind::Compute, Cycles(60), &deps).unwrap();
            prev_fetch = sim.submit(dma, TaskKind::Fetch, Cycles(40), &[]).unwrap();
            last_compute = Some(compute);
        }
        // 4 computes of 60 after a 40-cycle first fetch: fetches hide fully.
        assert_eq!(sim.makespan(), Cycles(40 + 4 * 60));
        assert!(sim.utilization(pe).unwrap() > 0.8);
    }

    #[test]
    fn kind_attribution() {
        let mut sim = EventSim::new();
        let dma = sim.add_resource("dma");
        sim.submit(dma, TaskKind::Fetch, Cycles(10), &[]).unwrap();
        sim.submit(dma, TaskKind::Store, Cycles(5), &[]).unwrap();
        sim.submit(dma, TaskKind::Fetch, Cycles(7), &[]).unwrap();
        assert_eq!(sim.kind_cycles(TaskKind::Fetch), Cycles(17));
        assert_eq!(sim.kind_cycles(TaskKind::Store), Cycles(5));
        assert_eq!(sim.kind_cycles(TaskKind::Compute), Cycles::ZERO);
    }

    #[test]
    fn errors_for_dangling_ids() {
        let mut sim = EventSim::new();
        let r = sim.add_resource("dma");
        assert!(matches!(
            sim.submit(ResourceId(5), TaskKind::Fetch, Cycles(1), &[]),
            Err(SimError::UnknownId { .. })
        ));
        assert!(matches!(
            sim.submit(r, TaskKind::Fetch, Cycles(1), &[TaskId(9)]),
            Err(SimError::ForwardDependency { .. })
        ));
        assert!(sim.finish_time(TaskId(0)).is_err());
        assert!(sim.busy_cycles(ResourceId(3)).is_err());
    }

    #[test]
    fn empty_schedule() {
        let sim = EventSim::new();
        assert_eq!(sim.makespan(), Cycles::ZERO);
        assert_eq!(sim.task_count(), 0);
    }
}
