//! Cycle arithmetic and conversion to wall-clock time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A count of clock cycles at the accelerator's clock frequency.
///
/// All latency models in the workspace produce `Cycles`; conversion to
/// milliseconds happens once, at reporting time, through a [`ClockDomain`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// The raw cycle count.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two cycle counts.
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }

    /// The smaller of two cycle counts.
    pub fn min(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.min(rhs.0))
    }

    /// Cycles needed to process `items` at a throughput of `per_cycle` items
    /// per cycle, rounding up. Zero throughput yields zero cycles (the caller
    /// models "this unit is absent" that way; configuration validation guards
    /// real hardware descriptions).
    pub fn for_throughput(items: u64, per_cycle: u64) -> Cycles {
        if per_cycle == 0 {
            return Cycles(0);
        }
        Cycles(items.div_ceil(per_cycle))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

/// A clock domain: converts cycles to seconds/milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockDomain {
    freq_hz: f64,
}

impl ClockDomain {
    /// Creates a clock domain at `freq_mhz` MHz.
    ///
    /// # Panics
    ///
    /// Panics if `freq_mhz` is not finite and positive (a hardware
    /// description bug, not a data-dependent condition).
    pub fn from_mhz(freq_mhz: f64) -> Self {
        assert!(
            freq_mhz.is_finite() && freq_mhz > 0.0,
            "clock frequency must be positive, got {freq_mhz} MHz"
        );
        Self { freq_hz: freq_mhz * 1e6 }
    }

    /// The ZCU102 configuration's 100 MHz clock (Table 1).
    pub fn zcu102() -> Self {
        Self::from_mhz(100.0)
    }

    /// Clock frequency in Hz.
    pub fn freq_hz(self) -> f64 {
        self.freq_hz
    }

    /// Converts cycles to seconds.
    pub fn to_seconds(self, cycles: Cycles) -> f64 {
        cycles.0 as f64 / self.freq_hz
    }

    /// Converts cycles to milliseconds.
    pub fn to_ms(self, cycles: Cycles) -> f64 {
        self.to_seconds(cycles) * 1e3
    }

    /// Converts cycles to microseconds.
    pub fn to_us(self, cycles: Cycles) -> f64 {
        self.to_seconds(cycles) * 1e6
    }
}

impl Default for ClockDomain {
    fn default() -> Self {
        Self::zcu102()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Cycles(10);
        let b = Cycles(4);
        assert_eq!(a + b, Cycles(14));
        assert_eq!(a - b, Cycles(6));
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        let total: Cycles = [a, b, Cycles(1)].into_iter().sum();
        assert_eq!(total, Cycles(15));
    }

    #[test]
    fn throughput_rounds_up() {
        assert_eq!(Cycles::for_throughput(10, 4), Cycles(3));
        assert_eq!(Cycles::for_throughput(8, 4), Cycles(2));
        assert_eq!(Cycles::for_throughput(0, 4), Cycles(0));
        assert_eq!(Cycles::for_throughput(10, 0), Cycles(0));
    }

    #[test]
    fn clock_conversion() {
        let clk = ClockDomain::zcu102();
        assert_eq!(clk.freq_hz(), 1e8);
        assert!((clk.to_ms(Cycles(100_000)) - 1.0).abs() < 1e-9);
        assert!((clk.to_us(Cycles(100)) - 1.0).abs() < 1e-9);
        assert!((clk.to_seconds(Cycles(100_000_000)) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "clock frequency must be positive")]
    fn zero_frequency_panics() {
        let _ = ClockDomain::from_mhz(0.0);
    }

    #[test]
    fn display() {
        assert_eq!(Cycles(42).to_string(), "42 cyc");
    }
}
