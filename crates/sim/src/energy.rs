//! First-order energy and power model.
//!
//! The paper's headline constraint is a sub-10 W power envelope on the
//! ZCU102. We model energy as `static + Σ (per-event energies)` with
//! literature-typical coefficients for a 16 nm FPGA fabric and LPDDR4-class
//! DRAM, and expose average power over a measured interval. The absolute
//! numbers are first-order, but the *check* — that every evaluated operating
//! point stays under 10 W — is meaningful because energy scales with the
//! same MAC/byte counts that drive the latency model.

use crate::clock::{ClockDomain, Cycles};
use serde::{Deserialize, Serialize};

/// Energy coefficients (picojoules per event).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per INT8 MAC, in pJ.
    pub mac_pj: f64,
    /// Energy per byte moved over the DRAM channel, in pJ.
    pub dram_pj_per_byte: f64,
    /// Energy per byte of BRAM access, in pJ.
    pub bram_pj_per_byte: f64,
    /// Energy per byte moved on the NoC, in pJ.
    pub noc_pj_per_byte: f64,
    /// Static (leakage + board) power in watts.
    pub static_watts: f64,
}

impl EnergyModel {
    /// Coefficients representative of a 16 nm FPGA + LPDDR4 system.
    pub fn zcu102() -> Self {
        Self {
            mac_pj: 1.5,
            dram_pj_per_byte: 40.0,
            bram_pj_per_byte: 1.0,
            noc_pj_per_byte: 0.5,
            static_watts: 2.0,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::zcu102()
    }
}

/// Accumulated activity counts for an execution interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ActivityCounts {
    /// Multiply-accumulate operations executed.
    pub macs: u64,
    /// Bytes moved over the DRAM channel (both directions).
    pub dram_bytes: u64,
    /// Bytes of BRAM traffic.
    pub bram_bytes: u64,
    /// Bytes of NoC traffic.
    pub noc_bytes: u64,
}

impl ActivityCounts {
    /// Element-wise accumulation.
    pub fn merge(&mut self, other: ActivityCounts) {
        self.macs += other.macs;
        self.dram_bytes += other.dram_bytes;
        self.bram_bytes += other.bram_bytes;
        self.noc_bytes += other.noc_bytes;
    }
}

/// Energy/power report for one interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Dynamic energy in millijoules.
    pub dynamic_mj: f64,
    /// Static energy in millijoules.
    pub static_mj: f64,
    /// Interval duration in milliseconds.
    pub duration_ms: f64,
    /// Average power in watts.
    pub average_watts: f64,
}

impl EnergyModel {
    /// Computes the power report for `activity` spread over `duration` at
    /// `clock`.
    ///
    /// A zero-duration interval reports zero power (no work can have
    /// happened in zero cycles under this model).
    pub fn report(
        &self,
        activity: ActivityCounts,
        duration: Cycles,
        clock: ClockDomain,
    ) -> PowerReport {
        let secs = clock.to_seconds(duration);
        let dynamic_j = (activity.macs as f64 * self.mac_pj
            + activity.dram_bytes as f64 * self.dram_pj_per_byte
            + activity.bram_bytes as f64 * self.bram_pj_per_byte
            + activity.noc_bytes as f64 * self.noc_pj_per_byte)
            * 1e-12;
        let static_j = self.static_watts * secs;
        let average_watts = if secs > 0.0 { (dynamic_j + static_j) / secs } else { 0.0 };
        PowerReport {
            dynamic_mj: dynamic_j * 1e3,
            static_mj: static_j * 1e3,
            duration_ms: secs * 1e3,
            average_watts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_interval_is_static_only() {
        let m = EnergyModel::zcu102();
        let r = m.report(ActivityCounts::default(), Cycles(100_000_000), ClockDomain::zcu102());
        assert!((r.average_watts - m.static_watts).abs() < 1e-9);
        assert_eq!(r.dynamic_mj, 0.0);
        assert!((r.duration_ms - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_reports_zero_power() {
        let m = EnergyModel::zcu102();
        let r = m.report(ActivityCounts::default(), Cycles::ZERO, ClockDomain::zcu102());
        assert_eq!(r.average_watts, 0.0);
    }

    #[test]
    fn representative_prefill_stays_under_10w() {
        // One OPT-125M prefill layer scale: ~4 GMAC and ~30 MB of DRAM
        // traffic over ~27 ms (12 Gbps GEMM numbers).
        let m = EnergyModel::zcu102();
        let activity = ActivityCounts {
            macs: 4_000_000_000,
            dram_bytes: 30 << 20,
            bram_bytes: 60 << 20,
            noc_bytes: 60 << 20,
        };
        let r = m.report(activity, Cycles(2_700_000), ClockDomain::zcu102());
        assert!(r.average_watts < 10.0, "power {}", r.average_watts);
        assert!(r.average_watts > m.static_watts);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ActivityCounts { macs: 1, dram_bytes: 2, bram_bytes: 3, noc_bytes: 4 };
        a.merge(ActivityCounts { macs: 10, dram_bytes: 20, bram_bytes: 30, noc_bytes: 40 });
        assert_eq!(a.macs, 11);
        assert_eq!(a.dram_bytes, 22);
        assert_eq!(a.bram_bytes, 33);
        assert_eq!(a.noc_bytes, 44);
    }
}
