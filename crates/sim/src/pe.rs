//! The hybrid processing element: parallel-MAC and broadcasting-MAC models.
//!
//! MEADOW's tile mixes two PE flavors (Fig. 2c):
//!
//! * **Parallel MAC PE** — an array of multipliers feeding an adder tree.
//!   It reduces up to `multipliers` products per cycle, so one output element
//!   of a length-`d_mult` dot product costs `ceil(d_mult / multipliers)`
//!   cycles.
//! * **Broadcasting MAC PE** — the same multiplier array feeding
//!   per-output-channel accumulators. Each cycle broadcasts one input element
//!   across all output channels, so a `1×d_mult · d_mult×n` product costs
//!   `d_mult` cycles (for `n ≤ multipliers`), accumulating in place. This is
//!   what makes the `SM×V` stage stream softmax outputs one score per cycle.
//!
//! Both flavors are functional (they produce exact INT32 numbers) *and*
//! cycle-accounted, so the dataflow executors use a single code path for
//! correctness tests and latency measurement.

use crate::clock::Cycles;
use serde::{Deserialize, Serialize};

/// Static description of one PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PeGeometry {
    /// Number of INT8 multipliers in the PE (64 on the ZCU102 build).
    pub multipliers: usize,
}

impl PeGeometry {
    /// ZCU102 geometry: 64 multipliers per PE (Table 1).
    pub const ZCU102: PeGeometry = PeGeometry { multipliers: 64 };
}

impl Default for PeGeometry {
    fn default() -> Self {
        Self::ZCU102
    }
}

/// Parallel-MAC PE: multiplier array + adder tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelMacPe {
    geometry: PeGeometry,
}

impl ParallelMacPe {
    /// Creates a parallel-MAC PE.
    pub fn new(geometry: PeGeometry) -> Self {
        Self { geometry }
    }

    /// The PE's geometry.
    pub fn geometry(&self) -> PeGeometry {
        self.geometry
    }

    /// Cycles to produce one dot-product output of length `d_mult`.
    pub fn dot_cycles(&self, d_mult: usize) -> Cycles {
        Cycles::for_throughput(d_mult as u64, self.geometry.multipliers as u64)
    }

    /// Cycles for a full `m×k · k×n` GEMM tile mapped onto this single PE.
    pub fn gemm_cycles(&self, m: usize, k: usize, n: usize) -> Cycles {
        Cycles(self.dot_cycles(k).get() * (m as u64) * (n as u64))
    }

    /// Functionally computes a dot product (the adder-tree datapath),
    /// returning the INT32 accumulator and the cycles spent.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths (layouts are owned by the
    /// scheduler, so a mismatch is a scheduling bug).
    pub fn execute_dot(&self, a: &[i8], b: &[i8]) -> (i32, Cycles) {
        assert_eq!(a.len(), b.len(), "parallel PE operand length mismatch");
        let acc = a.iter().zip(b).map(|(&x, &y)| i32::from(x) * i32::from(y)).sum();
        (acc, self.dot_cycles(a.len()))
    }
}

impl Default for ParallelMacPe {
    fn default() -> Self {
        Self::new(PeGeometry::ZCU102)
    }
}

/// Broadcasting-MAC PE: multiplier array + accumulator registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BroadcastingMacPe {
    geometry: PeGeometry,
}

impl BroadcastingMacPe {
    /// Creates a broadcasting-MAC PE.
    pub fn new(geometry: PeGeometry) -> Self {
        Self { geometry }
    }

    /// The PE's geometry.
    pub fn geometry(&self) -> PeGeometry {
        self.geometry
    }

    /// Cycles for a `1×d_mult · d_mult×n` vector-matrix product: one
    /// broadcast per `d_mult` element, times the number of accumulator
    /// groups needed to cover `n` output channels.
    pub fn broadcast_cycles(&self, d_mult: usize, n: usize) -> Cycles {
        let groups = (n as u64).div_ceil(self.geometry.multipliers as u64).max(1);
        Cycles((d_mult as u64) * groups)
    }

    /// Functionally computes `out += xᵀ · rows` where `rows[i]` is the
    /// weight row broadcast against input element `x[i]` — the exact order
    /// the accumulators see. Returns cycles spent.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() != x.len()` or any row length differs from
    /// `out.len()`.
    pub fn execute_broadcast(&self, x: &[i8], rows: &[&[i8]], out: &mut [i32]) -> Cycles {
        assert_eq!(x.len(), rows.len(), "broadcast PE input/row count mismatch");
        for (&xi, row) in x.iter().zip(rows) {
            assert_eq!(row.len(), out.len(), "broadcast PE row width mismatch");
            let xi = i32::from(xi);
            for (o, &w) in out.iter_mut().zip(*row) {
                *o += xi * i32::from(w);
            }
        }
        self.broadcast_cycles(x.len(), out.len())
    }
}

impl Default for BroadcastingMacPe {
    fn default() -> Self {
        Self::new(PeGeometry::ZCU102)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_dot_cycles_scale_with_depth() {
        let pe = ParallelMacPe::default();
        assert_eq!(pe.dot_cycles(64), Cycles(1));
        assert_eq!(pe.dot_cycles(65), Cycles(2));
        assert_eq!(pe.dot_cycles(768), Cycles(12));
        assert_eq!(pe.dot_cycles(0), Cycles(0));
    }

    #[test]
    fn parallel_gemm_cycles() {
        let pe = ParallelMacPe::default();
        // 4x128 · 128x8 = 32 outputs, each ceil(128/64)=2 cycles.
        assert_eq!(pe.gemm_cycles(4, 128, 8), Cycles(64));
    }

    #[test]
    fn parallel_functional_matches_reference() {
        let pe = ParallelMacPe::default();
        let a = [1i8, -2, 3, 4];
        let b = [5i8, 6, -7, 8];
        let (acc, cycles) = pe.execute_dot(&a, &b);
        assert_eq!(acc, 5 - 12 - 21 + 32);
        assert_eq!(cycles, Cycles(1));
    }

    #[test]
    fn broadcast_cycles_are_dmult_bound() {
        let pe = BroadcastingMacPe::default();
        // One accumulator group for n ≤ 64: cost is exactly d_mult cycles.
        assert_eq!(pe.broadcast_cycles(512, 64), Cycles(512));
        // Wider outputs need multiple groups.
        assert_eq!(pe.broadcast_cycles(512, 65), Cycles(1024));
        assert_eq!(pe.broadcast_cycles(0, 64), Cycles(0));
    }

    #[test]
    fn broadcast_functional_matches_reference() {
        let pe = BroadcastingMacPe::default();
        let x = [2i8, -1];
        let r0 = [1i8, 0, 3];
        let r1 = [4i8, 5, -6];
        let mut out = [0i32; 3];
        let cycles = pe.execute_broadcast(&x, &[&r0, &r1], &mut out);
        // out = 2*[1,0,3] + (-1)*[4,5,-6] = [-2,-5,12]
        assert_eq!(out, [-2, -5, 12]);
        assert_eq!(cycles, Cycles(2));
    }

    #[test]
    fn broadcast_accumulates_into_existing_values() {
        let pe = BroadcastingMacPe::default();
        let mut out = [10i32, 20];
        pe.execute_broadcast(&[1], &[&[1i8, 1][..]], &mut out);
        assert_eq!(out, [11, 21]);
    }

    #[test]
    fn both_flavors_agree_on_total_macs() {
        // A (1×k)·(k×n) product computed either way yields identical numbers.
        let k = 16;
        let n = 8;
        let x: Vec<i8> = (0..k).map(|i| (i as i8) - 7).collect();
        let w: Vec<Vec<i8>> =
            (0..k).map(|i| (0..n).map(|j| ((i * j) % 11) as i8 - 5).collect()).collect();
        let par = ParallelMacPe::default();
        let mut expected = vec![0i32; n];
        for (j, e) in expected.iter_mut().enumerate() {
            let col: Vec<i8> = (0..k).map(|i| w[i][j]).collect();
            *e = par.execute_dot(&x, &col).0;
        }
        let bc = BroadcastingMacPe::default();
        let rows: Vec<&[i8]> = w.iter().map(|r| r.as_slice()).collect();
        let mut out = vec![0i32; n];
        bc.execute_broadcast(&x, &rows, &mut out);
        assert_eq!(out, expected);
    }
}
