//! Error type for hardware-model misuse and capacity violations.

use std::error::Error;
use std::fmt;

/// Error returned by the hardware models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// An allocation did not fit in a BRAM.
    BramOverflow {
        /// Human-readable BRAM name ("weight", "input", "output").
        bram: &'static str,
        /// Bytes requested by the allocation.
        requested: usize,
        /// Bytes still free.
        available: usize,
    },
    /// A register-file write exceeded its capacity.
    RegisterFileOverflow {
        /// Bytes requested.
        requested: usize,
        /// Register file capacity in bytes.
        capacity: usize,
    },
    /// A configuration parameter was invalid (zero PEs, zero bandwidth, ...).
    InvalidConfig {
        /// Parameter name.
        param: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// A task referenced an unknown dependency or resource in the event
    /// engine.
    UnknownId {
        /// What kind of id was dangling ("task", "resource").
        kind: &'static str,
        /// The offending index.
        id: usize,
    },
    /// The event engine detected a dependency on a task submitted later
    /// (tasks must be submitted in topological order).
    ForwardDependency {
        /// The task that declared the dependency.
        task: usize,
        /// The not-yet-submitted dependency.
        dep: usize,
    },
    /// A free operation did not match any live allocation.
    UnknownAllocation {
        /// The allocation handle.
        handle: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BramOverflow { bram, requested, available } => write!(
                f,
                "{bram} BRAM overflow: requested {requested} B with only {available} B free"
            ),
            SimError::RegisterFileOverflow { requested, capacity } => write!(
                f,
                "register file overflow: requested {requested} B with capacity {capacity} B"
            ),
            SimError::InvalidConfig { param, reason } => {
                write!(f, "invalid configuration `{param}`: {reason}")
            }
            SimError::UnknownId { kind, id } => write!(f, "unknown {kind} id {id}"),
            SimError::ForwardDependency { task, dep } => {
                write!(f, "task {task} depends on not-yet-submitted task {dep}")
            }
            SimError::UnknownAllocation { handle } => {
                write!(f, "no live allocation with handle {handle}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let variants = [
            SimError::BramOverflow { bram: "weight", requested: 10, available: 5 },
            SimError::RegisterFileOverflow { requested: 10, capacity: 4 },
            SimError::InvalidConfig { param: "pe", reason: "zero".into() },
            SimError::UnknownId { kind: "task", id: 3 },
            SimError::ForwardDependency { task: 1, dep: 2 },
            SimError::UnknownAllocation { handle: 9 },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SimError>();
    }
}
