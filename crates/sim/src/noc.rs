//! Network-on-chip interconnect model.
//!
//! All BRAM↔PE, PE↔SM and PE↔PE movement in MEADOW rides the NoC (Fig. 2a).
//! On the ZCU102 build the NoC is a wide crossbar whose links move a fixed
//! number of bytes per cycle; TPHS pipeline-register forwarding consumes one
//! link per producer/consumer pair. The model charges cycles per transfer and
//! tracks aggregate utilization so executors can verify that the NoC is not
//! the bottleneck (it never is at Table 1 widths, which is itself a result
//! worth asserting in tests).

use crate::clock::Cycles;
use crate::error::SimError;
use serde::{Deserialize, Serialize};

/// NoC configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Bytes one link moves per cycle.
    pub link_bytes_per_cycle: u64,
    /// Number of independent links (crossbar ports).
    pub links: usize,
}

impl NocConfig {
    /// ZCU102 default: 64-byte links, one per PE/module port (96 PEs + 100
    /// auxiliary module ports).
    pub fn zcu102() -> Self {
        Self { link_bytes_per_cycle: 64, links: 196 }
    }
}

impl Default for NocConfig {
    fn default() -> Self {
        Self::zcu102()
    }
}

/// NoC transfer-cost model with utilization accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Noc {
    config: NocConfig,
    total_bytes: u64,
    total_link_cycles: u64,
}

impl Noc {
    /// Creates a NoC.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for zero link width or zero links.
    pub fn new(config: NocConfig) -> Result<Self, SimError> {
        if config.link_bytes_per_cycle == 0 {
            return Err(SimError::InvalidConfig {
                param: "link_bytes_per_cycle",
                reason: "must be non-zero".into(),
            });
        }
        if config.links == 0 {
            return Err(SimError::InvalidConfig {
                param: "links",
                reason: "must be non-zero".into(),
            });
        }
        Ok(Self { config, total_bytes: 0, total_link_cycles: 0 })
    }

    /// The configuration.
    pub fn config(&self) -> NocConfig {
        self.config
    }

    /// Cycles for a point-to-point transfer of `bytes` over one link.
    pub fn transfer_cycles(&self, bytes: u64) -> Cycles {
        Cycles::for_throughput(bytes, self.config.link_bytes_per_cycle)
    }

    /// Performs an accounted transfer over one link.
    pub fn transfer(&mut self, bytes: u64) -> Cycles {
        let cycles = self.transfer_cycles(bytes);
        self.total_bytes += bytes;
        self.total_link_cycles += cycles.get();
        cycles
    }

    /// Cycles for a store-and-forward transfer of `bytes` across `hops`
    /// links: each hop's link carries the full payload, so the latency is
    /// `hops` times the single-link cost. Zero hops (same endpoint) is
    /// free.
    pub fn transfer_hops_cycles(&self, bytes: u64, hops: u32) -> Cycles {
        Cycles(self.transfer_cycles(bytes).get() * u64::from(hops))
    }

    /// Performs an accounted store-and-forward transfer of `bytes` across
    /// `hops` links (the cluster serving layer charges both cross-chip
    /// KV-cache migration and the prefill→decode KV handoff of
    /// disaggregated serving this way). Every hop's link is charged for
    /// the full payload, so `total_bytes` grows by `bytes * hops` — the
    /// aggregate link-level traffic the transfer actually put on the
    /// interconnect. Zero hops (same endpoint) moves nothing and charges
    /// nothing, which is why callers that route between *distinct* chips
    /// must never present `hops == 0` for a real transfer.
    pub fn transfer_hops(&mut self, bytes: u64, hops: u32) -> Cycles {
        let mut total = Cycles::ZERO;
        for _ in 0..hops {
            total += self.transfer(bytes);
        }
        total
    }

    /// Aggregate link-cycles consumed (for utilization checks: the NoC is
    /// saturated when `total_link_cycles / links` approaches the makespan).
    pub fn total_link_cycles(&self) -> u64 {
        self.total_link_cycles
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Fraction of the NoC's aggregate capacity consumed over a window of
    /// `makespan` cycles. Values ≪ 1 mean the NoC is not a bottleneck.
    pub fn utilization(&self, makespan: Cycles) -> f64 {
        if makespan == Cycles::ZERO {
            return 0.0;
        }
        self.total_link_cycles as f64 / (makespan.get() as f64 * self.config.links as f64)
    }
}

impl Default for Noc {
    fn default() -> Self {
        Self::new(NocConfig::default()).expect("default config is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cost_rounds_up() {
        let noc = Noc::default();
        assert_eq!(noc.transfer_cycles(0), Cycles::ZERO);
        assert_eq!(noc.transfer_cycles(1), Cycles(1));
        assert_eq!(noc.transfer_cycles(64), Cycles(1));
        assert_eq!(noc.transfer_cycles(65), Cycles(2));
    }

    #[test]
    fn accounting_accumulates() {
        let mut noc = Noc::default();
        noc.transfer(128);
        noc.transfer(64);
        assert_eq!(noc.total_bytes(), 192);
        assert_eq!(noc.total_link_cycles(), 3);
    }

    #[test]
    fn utilization_is_bounded() {
        let mut noc = Noc::default();
        noc.transfer(64 * 196);
        let u = noc.utilization(Cycles(1));
        assert!((u - 1.0).abs() < 1e-9);
        assert_eq!(noc.utilization(Cycles::ZERO), 0.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Noc::new(NocConfig { link_bytes_per_cycle: 0, links: 4 }).is_err());
        assert!(Noc::new(NocConfig { link_bytes_per_cycle: 8, links: 0 }).is_err());
    }

    #[test]
    fn hop_transfers_scale_linearly_and_account_per_link() {
        let mut noc = Noc::default();
        // 3 hops of a one-link transfer: 3× the cycles, 3× the link bytes.
        let one = noc.transfer_cycles(128);
        assert_eq!(noc.transfer_hops_cycles(128, 3), Cycles(one.get() * 3));
        assert_eq!(noc.transfer_hops_cycles(128, 0), Cycles::ZERO);
        let charged = noc.transfer_hops(128, 3);
        assert_eq!(charged, Cycles(one.get() * 3));
        assert_eq!(noc.total_bytes(), 3 * 128);
        assert_eq!(noc.total_link_cycles(), 3 * one.get());
        // Zero hops moves nothing.
        assert_eq!(noc.transfer_hops(512, 0), Cycles::ZERO);
        assert_eq!(noc.total_bytes(), 3 * 128);
    }
}
