//! The 3-stage pipelined softmax module (Fig. 2d of the paper).
//!
//! The module processes one token's scores feature-by-feature through three
//! stages, each taking `F` cycles for `F` features:
//!
//! 1. **MAX** — running maximum over the features.
//! 2. **EXP** — subtract the max, evaluate `exp` through the EXP LUT, and
//!    accumulate the exponent sum into the DIV-stage buffer.
//! 3. **DIV** — divide each buffered exponent by the sum.
//!
//! Because the stages are buffered, tokens stream through in pipeline:
//! `n` tokens of `F` features complete in `(n + 2) · F` cycles instead of
//! `3 n F`.

use crate::clock::Cycles;
use meadow_tensor::fixed::ExpLut;
use meadow_tensor::softmax::softmax_row_lut;
use serde::{Deserialize, Serialize};

/// Cycle-and-function model of one softmax module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoftmaxUnit {
    lut: ExpLut,
}

/// Number of pipeline stages in the module (MAX, EXP, DIV).
pub const SOFTMAX_STAGES: u64 = 3;

impl SoftmaxUnit {
    /// Creates a module with the given EXP LUT.
    pub fn new(lut: ExpLut) -> Self {
        Self { lut }
    }

    /// The module's EXP LUT.
    pub fn lut(&self) -> &ExpLut {
        &self.lut
    }

    /// Cycles for a single token of `features` scores to traverse all three
    /// stages (no pipelining benefit for one token).
    pub fn single_token_cycles(&self, features: usize) -> Cycles {
        Cycles(SOFTMAX_STAGES * features as u64)
    }

    /// Cycles for `tokens` tokens of `features` scores each, streamed
    /// through the pipeline: `(tokens + stages - 1) * features`.
    pub fn pipelined_cycles(&self, tokens: usize, features: usize) -> Cycles {
        if tokens == 0 || features == 0 {
            return Cycles::ZERO;
        }
        Cycles((tokens as u64 + SOFTMAX_STAGES - 1) * features as u64)
    }

    /// Per-stage service time: one stage occupies its token for `features`
    /// cycles. This is what the TPHS flow-shop scheduler uses for the
    /// MAX/EXP/DIV stage nodes.
    pub fn stage_cycles(&self, features: usize) -> Cycles {
        Cycles(features as u64)
    }

    /// Functionally evaluates the module on one row of scores, exactly as
    /// the LUT datapath computes it.
    pub fn execute_row(&self, scores: &[f32]) -> (Vec<f32>, Cycles) {
        let out = softmax_row_lut(scores, &self.lut);
        (out, self.single_token_cycles(scores.len()))
    }
}

impl Default for SoftmaxUnit {
    fn default() -> Self {
        Self::new(ExpLut::hardware_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meadow_tensor::softmax::softmax_row_exact;

    #[test]
    fn pipelining_beats_sequential() {
        let sm = SoftmaxUnit::default();
        let sequential = Cycles(sm.single_token_cycles(128).get() * 64);
        let pipelined = sm.pipelined_cycles(64, 128);
        assert!(pipelined < sequential);
        // (64 + 2) * 128
        assert_eq!(pipelined, Cycles(66 * 128));
    }

    #[test]
    fn single_token_has_no_pipeline_benefit() {
        let sm = SoftmaxUnit::default();
        assert_eq!(sm.pipelined_cycles(1, 100), sm.single_token_cycles(100));
    }

    #[test]
    fn degenerate_shapes() {
        let sm = SoftmaxUnit::default();
        assert_eq!(sm.pipelined_cycles(0, 100), Cycles::ZERO);
        assert_eq!(sm.pipelined_cycles(100, 0), Cycles::ZERO);
    }

    #[test]
    fn functional_output_tracks_exact_softmax() {
        let sm = SoftmaxUnit::default();
        let row = [1.0f32, -0.5, 2.0, 0.0];
        let (approx, cycles) = sm.execute_row(&row);
        let exact = softmax_row_exact(&row);
        for (a, e) in approx.iter().zip(&exact) {
            assert!((a - e).abs() < 0.02);
        }
        assert_eq!(cycles, Cycles(12));
    }

    #[test]
    fn stage_time_is_feature_count() {
        let sm = SoftmaxUnit::default();
        assert_eq!(sm.stage_cycles(512), Cycles(512));
    }
}
