//! Hardware substrate for the MEADOW reproduction.
//!
//! The paper evaluates MEADOW on a Xilinx ZCU102 FPGA as a tiled accelerator
//! (Fig. 2a): parallel-MAC and broadcasting-MAC processing elements, pipelined
//! softmax modules, LayerNorm and nonlinearity modules, on-chip BRAMs and
//! register files, a NoC interconnect and a bandwidth-constrained off-chip
//! DRAM. Real hardware is not available in this reproduction, so this crate
//! implements a cycle-level model of each component plus a small
//! discrete-event engine that the dataflow executors schedule work onto.
//!
//! Components:
//!
//! * [`clock`] — cycle arithmetic and cycle↔wall-time conversion.
//! * [`dram`] — the off-chip memory channel: bandwidth → cycles, burst
//!   rounding, and a traffic ledger that attributes every byte to
//!   fetch/store categories (the paper's latency-distribution figures are
//!   exactly this attribution).
//! * [`bram`] / [`regfile`] — capacity-checked on-chip memories, with the
//!   double-buffering the paper uses to overlap fetch and compute.
//! * [`pe`] — the hybrid PE (Fig. 2b,c): parallel-MAC (adder tree, one output
//!   per cycle across the multiply dimension) and broadcasting-MAC
//!   (accumulator registers, one input broadcast per cycle).
//! * [`softmax_unit`] — the 3-stage pipelined softmax module (Fig. 2d).
//! * [`modules`] — LayerNorm / nonlinearity unit timing.
//! * [`noc`] — on-chip interconnect transfer costs.
//! * [`event`] — a deterministic discrete-event engine with FIFO resources.
//! * [`chip`] — the full tile description with Table 1 defaults.
//! * [`energy`] — a first-order energy/power model used to sanity-check the
//!   paper's sub-10 W operating point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bram;
pub mod chip;
pub mod clock;
pub mod dram;
pub mod energy;
pub mod error;
pub mod event;
pub mod modules;
pub mod noc;
pub mod pe;
pub mod regfile;
pub mod softmax_unit;

pub use chip::ChipConfig;
pub use clock::{ClockDomain, Cycles};
pub use dram::{DramModel, TrafficClass, TrafficLedger};
pub use error::SimError;
