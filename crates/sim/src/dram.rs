//! Off-chip DRAM channel model and traffic accounting.
//!
//! MEADOW's entire evaluation is driven by the off-chip bandwidth: the paper
//! sweeps 1–51 Gbps and attributes latency to data **fetch**, **compute** and
//! **store** (Figs. 1, 8, 9, 11). This module provides:
//!
//! * [`DramModel`] — converts byte volumes to transfer cycles at a given
//!   bandwidth and clock, with burst-granularity rounding.
//! * [`TrafficLedger`] — attributes every transferred byte to a
//!   [`TrafficClass`], which is exactly the decomposition the paper's
//!   stacked-bar figures report.

use crate::clock::{ClockDomain, Cycles};
use crate::error::SimError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What a DRAM transfer was for. Mirrors the categories of the paper's
/// latency-distribution figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Weight matrices (packed or raw).
    WeightFetch,
    /// Input activations / tokens.
    InputFetch,
    /// KV-cache reads during attention.
    KvFetch,
    /// Intermediate tensors re-read in GEMM mode (Q, scores, softmax output).
    IntermediateFetch,
    /// Intermediate tensors written back in GEMM mode.
    IntermediateStore,
    /// Final layer outputs written back.
    OutputStore,
    /// KV-cache writes.
    KvStore,
    /// Serving-level KV-cache residency migration: spilling an evicted
    /// session's cache off chip and reloading it on re-admission. Counted as
    /// store-side traffic (spill-dominated); distinct from the per-step
    /// [`TrafficClass::KvFetch`]/[`TrafficClass::KvStore`] attention traffic.
    KvCache,
    /// Serving-level model weight residency: streaming a model's weights on
    /// chip for a cold start (and re-streaming after LRU eviction). Fetch
    /// side — weights are read-only, so eviction writes nothing back.
    /// Distinct from the per-step [`TrafficClass::WeightFetch`] re-reads the
    /// layer pipeline charges while computing.
    Weights,
}

impl TrafficClass {
    /// Whether the class is a fetch (DRAM → chip).
    pub fn is_fetch(self) -> bool {
        matches!(
            self,
            TrafficClass::WeightFetch
                | TrafficClass::InputFetch
                | TrafficClass::KvFetch
                | TrafficClass::IntermediateFetch
                | TrafficClass::Weights
        )
    }

    /// Whether the class is a store (chip → DRAM).
    pub fn is_store(self) -> bool {
        !self.is_fetch()
    }

    /// All classes, for iteration in reports.
    pub fn all() -> [TrafficClass; 9] {
        [
            TrafficClass::WeightFetch,
            TrafficClass::InputFetch,
            TrafficClass::KvFetch,
            TrafficClass::IntermediateFetch,
            TrafficClass::IntermediateStore,
            TrafficClass::OutputStore,
            TrafficClass::KvStore,
            TrafficClass::KvCache,
            TrafficClass::Weights,
        ]
    }
}

/// Byte-and-cycle ledger keyed by [`TrafficClass`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficLedger {
    bytes: BTreeMap<TrafficClass, u64>,
    cycles: BTreeMap<TrafficClass, u64>,
}

impl TrafficLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a transfer.
    pub fn record(&mut self, class: TrafficClass, bytes: u64, cycles: Cycles) {
        *self.bytes.entry(class).or_insert(0) += bytes;
        *self.cycles.entry(class).or_insert(0) += cycles.get();
    }

    /// Bytes recorded for one class.
    pub fn bytes(&self, class: TrafficClass) -> u64 {
        self.bytes.get(&class).copied().unwrap_or(0)
    }

    /// Cycles recorded for one class.
    pub fn cycles(&self, class: TrafficClass) -> Cycles {
        Cycles(self.cycles.get(&class).copied().unwrap_or(0))
    }

    /// Total bytes fetched (DRAM → chip).
    pub fn fetch_bytes(&self) -> u64 {
        TrafficClass::all().iter().filter(|c| c.is_fetch()).map(|&c| self.bytes(c)).sum()
    }

    /// Total bytes stored (chip → DRAM).
    pub fn store_bytes(&self) -> u64 {
        TrafficClass::all().iter().filter(|c| c.is_store()).map(|&c| self.bytes(c)).sum()
    }

    /// Total fetch cycles.
    pub fn fetch_cycles(&self) -> Cycles {
        Cycles(
            TrafficClass::all()
                .iter()
                .filter(|c| c.is_fetch())
                .map(|&c| self.cycles(c).get())
                .sum(),
        )
    }

    /// Total store cycles.
    pub fn store_cycles(&self) -> Cycles {
        Cycles(
            TrafficClass::all()
                .iter()
                .filter(|c| c.is_store())
                .map(|&c| self.cycles(c).get())
                .sum(),
        )
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &TrafficLedger) {
        for (&class, &b) in &other.bytes {
            *self.bytes.entry(class).or_insert(0) += b;
        }
        for (&class, &c) in &other.cycles {
            *self.cycles.entry(class).or_insert(0) += c;
        }
    }
}

/// Bandwidth-parameterized DRAM channel.
///
/// The paper quotes bandwidth in Gbps against a 100 MHz accelerator clock, so
/// at 12 Gbps the channel moves `12e9 / 8 / 100e6 = 15` bytes per cycle.
/// Transfers are rounded up to the burst granularity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramModel {
    bandwidth_gbps: f64,
    clock: ClockDomain,
    burst_bytes: u64,
    ledger: TrafficLedger,
}

impl DramModel {
    /// Default burst granularity in bytes (a DDR4 x16 burst).
    pub const DEFAULT_BURST_BYTES: u64 = 64;

    /// Creates a channel at `bandwidth_gbps` against `clock`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the bandwidth is not finite and
    /// positive, or if `burst_bytes` is zero.
    pub fn new(
        bandwidth_gbps: f64,
        clock: ClockDomain,
        burst_bytes: u64,
    ) -> Result<Self, SimError> {
        if !bandwidth_gbps.is_finite() || bandwidth_gbps <= 0.0 {
            return Err(SimError::InvalidConfig {
                param: "bandwidth_gbps",
                reason: format!("must be finite and positive, got {bandwidth_gbps}"),
            });
        }
        if burst_bytes == 0 {
            return Err(SimError::InvalidConfig {
                param: "burst_bytes",
                reason: "must be non-zero".to_string(),
            });
        }
        Ok(Self { bandwidth_gbps, clock, burst_bytes, ledger: TrafficLedger::new() })
    }

    /// Convenience constructor with the default burst size.
    pub fn with_bandwidth(bandwidth_gbps: f64, clock: ClockDomain) -> Result<Self, SimError> {
        Self::new(bandwidth_gbps, clock, Self::DEFAULT_BURST_BYTES)
    }

    /// Channel bandwidth in Gbps.
    pub fn bandwidth_gbps(&self) -> f64 {
        self.bandwidth_gbps
    }

    /// Bytes the channel moves per accelerator clock cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bandwidth_gbps * 1e9 / 8.0 / self.clock.freq_hz()
    }

    /// Cycles to transfer `bytes`, including burst rounding. Does not touch
    /// the ledger; use [`DramModel::transfer`] for accounted transfers.
    pub fn transfer_cycles(&self, bytes: u64) -> Cycles {
        if bytes == 0 {
            return Cycles::ZERO;
        }
        let rounded = bytes.div_ceil(self.burst_bytes) * self.burst_bytes;
        Cycles((rounded as f64 / self.bytes_per_cycle()).ceil() as u64)
    }

    /// Performs an accounted transfer: computes cycles, records bytes and
    /// cycles under `class`, and returns the cycle cost.
    pub fn transfer(&mut self, class: TrafficClass, bytes: u64) -> Cycles {
        let cycles = self.transfer_cycles(bytes);
        self.ledger.record(class, bytes, cycles);
        cycles
    }

    /// Performs an accounted transfer of `bytes` moved as page-granular
    /// chunks of `page_bytes` (the last chunk may be partial): each page is
    /// a separate burst-rounded transfer, which is how the serving layer's
    /// paged KV spill/reload traffic hits the channel. Equivalent to
    /// [`DramModel::transfer`] when `bytes <= page_bytes`.
    ///
    /// A zero `page_bytes` falls back to a single whole transfer rather
    /// than dividing by zero (callers validate page sizes upstream).
    pub fn transfer_paged(&mut self, class: TrafficClass, bytes: u64, page_bytes: u64) -> Cycles {
        if page_bytes == 0 || bytes <= page_bytes {
            return self.transfer(class, bytes);
        }
        let mut total = Cycles::ZERO;
        let mut remaining = bytes;
        while remaining > 0 {
            let chunk = remaining.min(page_bytes);
            total += self.transfer(class, chunk);
            remaining -= chunk;
        }
        total
    }

    /// The single funnel for serving-level KV-cache residency migration:
    /// charges `bytes` under [`TrafficClass::KvCache`], as one whole burst
    /// (`granularity == None`, the whole-cache spill/reload path) or as
    /// page-granular chunks (`granularity == Some(page_bytes)`, the paged
    /// path — see [`DramModel::transfer_paged`]). Routing both eviction
    /// disciplines through one helper keeps their `KvCache` accounting
    /// from drifting apart.
    pub fn transfer_kv_cache(&mut self, bytes: u64, granularity: Option<u64>) -> Cycles {
        match granularity {
            Some(page_bytes) => self.transfer_paged(TrafficClass::KvCache, bytes, page_bytes),
            None => self.transfer(TrafficClass::KvCache, bytes),
        }
    }

    /// The single funnel for serving-level model weight streaming: charges
    /// `bytes` (one layer's worth, typically) under [`TrafficClass::Weights`]
    /// as one burst-rounded transfer. Mirrors
    /// [`DramModel::transfer_kv_cache`] so cold-start weight traffic and KV
    /// residency traffic flow through the same accounted channel.
    pub fn transfer_weights(&mut self, bytes: u64) -> Cycles {
        self.transfer(TrafficClass::Weights, bytes)
    }

    /// The accumulated traffic ledger.
    pub fn ledger(&self) -> &TrafficLedger {
        &self.ledger
    }

    /// Resets the ledger (e.g. between prefill and decode measurements).
    pub fn reset_ledger(&mut self) {
        self.ledger = TrafficLedger::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram(gbps: f64) -> DramModel {
        DramModel::with_bandwidth(gbps, ClockDomain::zcu102()).unwrap()
    }

    #[test]
    fn bytes_per_cycle_matches_paper_arithmetic() {
        assert!((dram(12.0).bytes_per_cycle() - 15.0).abs() < 1e-9);
        assert!((dram(1.0).bytes_per_cycle() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn transfer_cycles_round_up_to_bursts() {
        let d = dram(12.0);
        // 1 byte still costs a full 64-byte burst: ceil(64/15) = 5 cycles.
        assert_eq!(d.transfer_cycles(1), Cycles(5));
        assert_eq!(d.transfer_cycles(0), Cycles::ZERO);
        // 1 MB at 15 B/cyc ≈ 69906 cycles.
        let mb = 1_048_576;
        let got = d.transfer_cycles(mb).get();
        assert!((got as f64 - mb as f64 / 15.0).abs() < 16.0, "got {got}");
    }

    #[test]
    fn lower_bandwidth_costs_proportionally_more() {
        let hi = dram(12.0).transfer_cycles(1 << 20).get() as f64;
        let lo = dram(1.0).transfer_cycles(1 << 20).get() as f64;
        assert!((lo / hi - 12.0).abs() < 0.05);
    }

    #[test]
    fn ledger_attribution() {
        let mut d = dram(6.0);
        d.transfer(TrafficClass::WeightFetch, 1000);
        d.transfer(TrafficClass::WeightFetch, 500);
        d.transfer(TrafficClass::OutputStore, 200);
        assert_eq!(d.ledger().bytes(TrafficClass::WeightFetch), 1500);
        assert_eq!(d.ledger().bytes(TrafficClass::OutputStore), 200);
        assert_eq!(d.ledger().fetch_bytes(), 1500);
        assert_eq!(d.ledger().store_bytes(), 200);
        assert!(d.ledger().fetch_cycles() > Cycles::ZERO);
        d.reset_ledger();
        assert_eq!(d.ledger().fetch_bytes(), 0);
    }

    #[test]
    fn ledger_merge() {
        let mut a = TrafficLedger::new();
        a.record(TrafficClass::KvFetch, 10, Cycles(1));
        let mut b = TrafficLedger::new();
        b.record(TrafficClass::KvFetch, 5, Cycles(2));
        b.record(TrafficClass::KvStore, 7, Cycles(3));
        a.merge(&b);
        assert_eq!(a.bytes(TrafficClass::KvFetch), 15);
        assert_eq!(a.cycles(TrafficClass::KvFetch), Cycles(3));
        assert_eq!(a.bytes(TrafficClass::KvStore), 7);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(DramModel::with_bandwidth(0.0, ClockDomain::zcu102()).is_err());
        assert!(DramModel::with_bandwidth(-3.0, ClockDomain::zcu102()).is_err());
        assert!(DramModel::with_bandwidth(f64::NAN, ClockDomain::zcu102()).is_err());
        assert!(DramModel::new(1.0, ClockDomain::zcu102(), 0).is_err());
    }

    #[test]
    fn class_fetch_store_partition() {
        for c in TrafficClass::all() {
            assert!(c.is_fetch() ^ c.is_store());
        }
        assert_eq!(TrafficClass::all().len(), 9);
    }

    #[test]
    fn paged_transfers_charge_per_page_bursts() {
        let mut whole = dram(12.0);
        let mut paged = dram(12.0);
        let one = whole.transfer(TrafficClass::KvCache, 1000);
        let chunked = paged.transfer_paged(TrafficClass::KvCache, 1000, 256);
        // Same bytes on the ledger; the page-granular path pays burst
        // rounding per chunk, so it can only be slower.
        assert_eq!(whole.ledger().bytes(TrafficClass::KvCache), 1000);
        assert_eq!(paged.ledger().bytes(TrafficClass::KvCache), 1000);
        assert!(chunked >= one, "chunked {chunked:?} < whole {one:?}");
        // A transfer at or below one page is exactly a plain transfer, and
        // zero page size degenerates to a whole transfer.
        let mut a = dram(12.0);
        let mut b = dram(12.0);
        assert_eq!(
            a.transfer_paged(TrafficClass::KvCache, 200, 256),
            b.transfer(TrafficClass::KvCache, 200)
        );
        assert_eq!(
            a.transfer_paged(TrafficClass::KvCache, 999, 0),
            b.transfer(TrafficClass::KvCache, 999)
        );
        assert_eq!(a.transfer_paged(TrafficClass::KvCache, 0, 256), Cycles::ZERO);
    }

    #[test]
    fn kv_cache_funnel_matches_the_underlying_transfers() {
        // Whole-burst mode is exactly `transfer(KvCache, ..)`; paged mode
        // is exactly `transfer_paged(KvCache, .., page)` — cycle for
        // cycle, byte for byte.
        let mut funnel = dram(12.0);
        let mut direct = dram(12.0);
        assert_eq!(
            funnel.transfer_kv_cache(1000, None),
            direct.transfer(TrafficClass::KvCache, 1000)
        );
        assert_eq!(
            funnel.transfer_kv_cache(1000, Some(256)),
            direct.transfer_paged(TrafficClass::KvCache, 1000, 256)
        );
        assert_eq!(funnel.ledger(), direct.ledger());
        assert_eq!(funnel.ledger().bytes(TrafficClass::KvCache), 2000);
    }

    #[test]
    fn weights_funnel_matches_the_underlying_transfer() {
        let mut funnel = dram(12.0);
        let mut direct = dram(12.0);
        assert_eq!(
            funnel.transfer_weights(1 << 16),
            direct.transfer(TrafficClass::Weights, 1 << 16)
        );
        assert_eq!(funnel.ledger(), direct.ledger());
        assert_eq!(funnel.ledger().bytes(TrafficClass::Weights), 1 << 16);
        // Weight streaming is fetch-side: read-only data writes nothing back.
        assert!(TrafficClass::Weights.is_fetch());
        assert_eq!(funnel.ledger().fetch_bytes(), 1 << 16);
        assert_eq!(funnel.ledger().store_bytes(), 0);
    }

    #[test]
    fn kv_cache_migration_is_store_side() {
        let mut d = dram(6.0);
        d.transfer(TrafficClass::KvCache, 4096);
        assert!(TrafficClass::KvCache.is_store());
        assert_eq!(d.ledger().bytes(TrafficClass::KvCache), 4096);
        assert_eq!(d.ledger().store_bytes(), 4096);
        assert_eq!(d.ledger().fetch_bytes(), 0);
    }
}
