//! Full tile description with the paper's Table 1 defaults.

use crate::clock::ClockDomain;
use crate::error::SimError;
use crate::noc::NocConfig;
use crate::pe::PeGeometry;
use serde::{Deserialize, Serialize};

/// Static description of a MEADOW accelerator tile.
///
/// Defaults ([`ChipConfig::zcu102`]) follow Table 1 of the paper:
/// 84 parallel + 12 broadcasting PEs, 64 multipliers per PE, 84 softmax
/// modules, 8 LayerNorm + 8 nonlinearity modules, three 1 MB BRAMs, 4 KB
/// register files, 100 MHz.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipConfig {
    /// Number of parallel-MAC PEs.
    pub parallel_pes: usize,
    /// Number of broadcasting-MAC PEs.
    pub broadcasting_pes: usize,
    /// Geometry shared by all PEs.
    pub pe_geometry: PeGeometry,
    /// Number of pipelined softmax modules.
    pub sm_modules: usize,
    /// Number of LayerNorm modules.
    pub ln_modules: usize,
    /// Number of nonlinearity (ReLU/GeLU) modules.
    pub nl_modules: usize,
    /// Weight BRAM capacity in bytes.
    pub weight_bram_bytes: usize,
    /// Input BRAM capacity in bytes.
    pub input_bram_bytes: usize,
    /// Output BRAM capacity in bytes.
    pub output_bram_bytes: usize,
    /// Per-buffer register-file capacity in bytes (input/weight/output RFs).
    pub rf_bytes: usize,
    /// Accelerator clock domain.
    pub clock: ClockDomain,
    /// NoC interconnect configuration.
    pub noc: NocConfig,
}

impl ChipConfig {
    /// The paper's ZCU102 configuration (Table 1).
    pub fn zcu102() -> Self {
        Self {
            parallel_pes: 84,
            broadcasting_pes: 12,
            pe_geometry: PeGeometry::ZCU102,
            sm_modules: 84,
            ln_modules: 8,
            nl_modules: 8,
            weight_bram_bytes: 1 << 20,
            input_bram_bytes: 1 << 20,
            output_bram_bytes: 1 << 20,
            rf_bytes: 4 << 10,
            clock: ClockDomain::zcu102(),
            noc: NocConfig::zcu102(),
        }
    }

    /// A configuration with `total_pes` PEs, keeping the ZCU102's 7:1
    /// parallel:broadcasting ratio (used by the Fig. 12 design-space sweep,
    /// which scales PE count from 14 to 96).
    pub fn zcu102_with_total_pes(total_pes: usize) -> Self {
        let broadcasting = (total_pes / 8).max(1);
        let parallel = total_pes.saturating_sub(broadcasting).max(1);
        Self {
            parallel_pes: parallel,
            broadcasting_pes: broadcasting,
            sm_modules: parallel,
            ..Self::zcu102()
        }
    }

    /// The LITTLE sibling of the big/LITTLE edge palette: half the
    /// ZCU102's PEs (48, keeping the 7:1 parallel:broadcasting ratio), so
    /// two LITTLE chips match one big chip's peak compute — the
    /// equal-total-compute fleets the heterogeneous-cluster artifacts
    /// compare.
    pub fn zcu102_little() -> Self {
        Self::zcu102_with_total_pes(48)
    }

    /// Total PE count.
    pub fn total_pes(&self) -> usize {
        self.parallel_pes + self.broadcasting_pes
    }

    /// Peak multiply-accumulates per cycle with every PE busy.
    pub fn peak_macs_per_cycle(&self) -> u64 {
        (self.total_pes() * self.pe_geometry.multipliers) as u64
    }

    /// Peak compute throughput in GMAC/s.
    pub fn peak_gmacs_per_sec(&self) -> f64 {
        self.peak_macs_per_cycle() as f64 * self.clock.freq_hz() / 1e9
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for zero PE counts, zero
    /// multipliers, zero BRAM/RF sizes or zero softmax modules.
    pub fn validate(&self) -> Result<(), SimError> {
        let checks: [(&'static str, bool); 7] = [
            ("parallel_pes", self.parallel_pes > 0),
            ("broadcasting_pes", self.broadcasting_pes > 0),
            ("multipliers", self.pe_geometry.multipliers > 0),
            ("sm_modules", self.sm_modules > 0),
            ("weight_bram_bytes", self.weight_bram_bytes > 0),
            ("input_bram_bytes", self.input_bram_bytes > 0),
            ("rf_bytes", self.rf_bytes > 0),
        ];
        for (param, ok) in checks {
            if !ok {
                return Err(SimError::InvalidConfig { param, reason: "must be non-zero".into() });
            }
        }
        Ok(())
    }
}

impl Default for ChipConfig {
    fn default() -> Self {
        Self::zcu102()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = ChipConfig::zcu102();
        assert_eq!(c.parallel_pes, 84);
        assert_eq!(c.broadcasting_pes, 12);
        assert_eq!(c.total_pes(), 96);
        assert_eq!(c.pe_geometry.multipliers, 64);
        assert_eq!(c.sm_modules, 84);
        assert_eq!(c.weight_bram_bytes, 1 << 20);
        assert_eq!(c.rf_bytes, 4096);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn peak_compute() {
        let c = ChipConfig::zcu102();
        assert_eq!(c.peak_macs_per_cycle(), 96 * 64);
        // 6144 MACs/cycle at 100 MHz = 614.4 GMAC/s.
        assert!((c.peak_gmacs_per_sec() - 614.4).abs() < 1e-6);
    }

    #[test]
    fn scaled_configs_keep_ratio() {
        let c = ChipConfig::zcu102_with_total_pes(96);
        assert_eq!(c.total_pes(), 96);
        assert_eq!(c.broadcasting_pes, 12);
        let small = ChipConfig::zcu102_with_total_pes(14);
        assert_eq!(small.total_pes(), 14);
        assert_eq!(small.broadcasting_pes, 1);
        assert_eq!(small.parallel_pes, 13);
        assert!(small.validate().is_ok());
    }

    #[test]
    fn validation_catches_zeroes() {
        let mut c = ChipConfig::zcu102();
        c.parallel_pes = 0;
        assert!(c.validate().is_err());
        let mut c = ChipConfig::zcu102();
        c.sm_modules = 0;
        assert!(c.validate().is_err());
        let mut c = ChipConfig::zcu102();
        c.pe_geometry = PeGeometry { multipliers: 0 };
        assert!(c.validate().is_err());
    }
}
