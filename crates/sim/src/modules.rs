//! LayerNorm and nonlinearity module timing.
//!
//! The tile carries 8 LN and 8 NL (ReLU/GeLU) modules (Table 1). Each module
//! streams one element per cycle; LN needs two passes over a token's features
//! (statistics, then normalization), NL needs one.

use crate::clock::Cycles;
use meadow_tensor::activations::Activation;
use meadow_tensor::layernorm::{layernorm_rows, LayerNormParams};
use meadow_tensor::{Matrix, TensorError};
use serde::{Deserialize, Serialize};

/// Cycle model of one LayerNorm module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LayerNormUnit;

impl LayerNormUnit {
    /// Cycles to normalize one token of `features` features: one pass to
    /// accumulate mean/variance, one pass to normalize.
    pub fn token_cycles(self, features: usize) -> Cycles {
        Cycles(2 * features as u64)
    }

    /// Cycles for `tokens` tokens sharing `units` modules (tokens are
    /// distributed round-robin; modules work independently).
    pub fn batch_cycles(self, tokens: usize, features: usize, units: usize) -> Cycles {
        if units == 0 {
            return Cycles::ZERO;
        }
        let per_unit_tokens = (tokens as u64).div_ceil(units as u64);
        Cycles(per_unit_tokens * self.token_cycles(features).get())
    }

    /// Functional evaluation (delegates to the tensor reference).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying reference.
    pub fn execute(
        self,
        x: &Matrix<f32>,
        params: &LayerNormParams,
    ) -> Result<Matrix<f32>, TensorError> {
        layernorm_rows(x, params)
    }
}

/// Cycle model of one nonlinearity module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NonlinearUnit;

impl NonlinearUnit {
    /// Cycles for one token of `features` activations (streaming, 1/cycle).
    pub fn token_cycles(self, features: usize) -> Cycles {
        Cycles(features as u64)
    }

    /// Cycles for a batch across `units` modules.
    pub fn batch_cycles(self, tokens: usize, features: usize, units: usize) -> Cycles {
        if units == 0 {
            return Cycles::ZERO;
        }
        let per_unit_tokens = (tokens as u64).div_ceil(units as u64);
        Cycles(per_unit_tokens * self.token_cycles(features).get())
    }

    /// Functional evaluation on INT8 data under a symmetric scale.
    pub fn execute_i8(self, activation: Activation, data: &mut [i8], scale: f32) {
        for v in data {
            *v = activation.apply_i8(*v, scale);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_needs_two_passes() {
        assert_eq!(LayerNormUnit.token_cycles(768), Cycles(1536));
    }

    #[test]
    fn batch_distributes_over_units() {
        // 512 tokens over 8 units = 64 tokens/unit.
        assert_eq!(LayerNormUnit.batch_cycles(512, 768, 8), Cycles(64 * 1536));
        assert_eq!(NonlinearUnit.batch_cycles(512, 3072, 8), Cycles(64 * 3072));
        // Remainders round up.
        assert_eq!(NonlinearUnit.batch_cycles(9, 10, 8), Cycles(20));
    }

    #[test]
    fn zero_units_is_absent_hardware() {
        assert_eq!(LayerNormUnit.batch_cycles(10, 10, 0), Cycles::ZERO);
    }

    #[test]
    fn nl_functional_applies_activation() {
        let mut data = [-10i8, 5, -3, 8];
        NonlinearUnit.execute_i8(Activation::Relu, &mut data, 0.1);
        assert_eq!(data, [0, 5, 0, 8]);
    }

    #[test]
    fn ln_functional_delegates() {
        let x = Matrix::from_rows(&[&[1.0f32, 3.0]]).unwrap();
        let y = LayerNormUnit.execute(&x, &LayerNormParams::identity(2)).unwrap();
        assert!(y.row(0)[0] < 0.0 && y.row(0)[1] > 0.0);
    }
}
