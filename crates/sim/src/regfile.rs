//! Double-buffered register files and pipeline registers.
//!
//! Every PE carries input/weight/output register files plus a pipeline
//! register (PREG), all double-buffered (Fig. 2b) so that the next operand
//! set loads while the current one computes. The model tracks capacity and
//! the ping-pong buffer state; the event engine charges the actual overlap.

use crate::error::SimError;
use serde::{Deserialize, Serialize};

/// A double-buffered register file of fixed byte capacity.
///
/// Writes target the *back* buffer; [`DoubleBufferedRf::swap`] makes the back
/// buffer current (compute reads from the front). Capacity is per buffer, as
/// in the paper's 4 KB per-RF figure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DoubleBufferedRf {
    capacity: usize,
    front_bytes: usize,
    back_bytes: usize,
    swaps: u64,
}

impl DoubleBufferedRf {
    /// Creates an empty register file with `capacity` bytes per buffer.
    pub fn new(capacity: usize) -> Self {
        Self { capacity, front_bytes: 0, back_bytes: 0, swaps: 0 }
    }

    /// Per-buffer capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes in the buffer compute currently reads from.
    pub fn front_bytes(&self) -> usize {
        self.front_bytes
    }

    /// Bytes staged in the back buffer.
    pub fn back_bytes(&self) -> usize {
        self.back_bytes
    }

    /// Number of ping-pong swaps performed.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Stages `bytes` into the back buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RegisterFileOverflow`] if the back buffer would
    /// exceed capacity.
    pub fn stage(&mut self, bytes: usize) -> Result<(), SimError> {
        let new = self.back_bytes + bytes;
        if new > self.capacity {
            return Err(SimError::RegisterFileOverflow { requested: new, capacity: self.capacity });
        }
        self.back_bytes = new;
        Ok(())
    }

    /// Swaps buffers: the staged data becomes current, the old front is
    /// discarded (consumed by compute).
    pub fn swap(&mut self) {
        self.front_bytes = self.back_bytes;
        self.back_bytes = 0;
        self.swaps += 1;
    }

    /// Clears both buffers.
    pub fn reset(&mut self) {
        self.front_bytes = 0;
        self.back_bytes = 0;
    }
}

/// A pipeline register (PREG) between TPHS stages: a capacity-1 slot that is
/// either empty or holds one wave's intermediate.
///
/// The flow-shop scheduler uses occupancy to model stage blocking: a producer
/// stalls while the downstream PREG is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PipelineReg {
    occupied: bool,
}

impl PipelineReg {
    /// An empty pipeline register.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the register currently holds a value.
    pub fn is_occupied(self) -> bool {
        self.occupied
    }

    /// Producer side: attempts to deposit; returns `false` (stall) if full.
    pub fn try_push(&mut self) -> bool {
        if self.occupied {
            false
        } else {
            self.occupied = true;
            true
        }
    }

    /// Consumer side: attempts to take; returns `false` if empty.
    pub fn try_pop(&mut self) -> bool {
        if self.occupied {
            self.occupied = false;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_swap_cycle() {
        let mut rf = DoubleBufferedRf::new(100);
        rf.stage(60).unwrap();
        assert_eq!(rf.front_bytes(), 0);
        assert_eq!(rf.back_bytes(), 60);
        rf.swap();
        assert_eq!(rf.front_bytes(), 60);
        assert_eq!(rf.back_bytes(), 0);
        assert_eq!(rf.swaps(), 1);
    }

    #[test]
    fn overflow_detected() {
        let mut rf = DoubleBufferedRf::new(10);
        rf.stage(6).unwrap();
        let err = rf.stage(5).unwrap_err();
        assert_eq!(err, SimError::RegisterFileOverflow { requested: 11, capacity: 10 });
    }

    #[test]
    fn reset_clears() {
        let mut rf = DoubleBufferedRf::new(10);
        rf.stage(4).unwrap();
        rf.swap();
        rf.stage(4).unwrap();
        rf.reset();
        assert_eq!(rf.front_bytes(), 0);
        assert_eq!(rf.back_bytes(), 0);
    }

    #[test]
    fn preg_blocking_semantics() {
        let mut p = PipelineReg::new();
        assert!(!p.is_occupied());
        assert!(p.try_push());
        assert!(p.is_occupied());
        assert!(!p.try_push(), "second push must stall");
        assert!(p.try_pop());
        assert!(!p.try_pop(), "pop on empty must fail");
    }
}
