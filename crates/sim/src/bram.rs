//! Capacity-checked on-chip block RAM.
//!
//! MEADOW's tile has three 1 MB BRAMs (weight / input / output, Table 1).
//! The dataflow executors allocate tensor tiles out of them; exceeding a
//! BRAM forces extra DRAM round trips, so allocation failures here are the
//! signal the tiling logic keys on. Double-buffered operation (half the
//! capacity per buffer, ping-pong between fetch and compute) is modeled by
//! [`Bram::split_double_buffered`].

use crate::error::SimError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Handle to a live BRAM allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BramAlloc(usize);

/// A single on-chip BRAM with byte-granular bump allocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bram {
    name: &'static str,
    capacity: usize,
    used: usize,
    next_handle: usize,
    allocations: BTreeMap<usize, usize>,
    peak_used: usize,
}

impl Bram {
    /// Creates a BRAM with the given capacity in bytes.
    pub fn new(name: &'static str, capacity: usize) -> Self {
        Self { name, capacity, used: 0, next_handle: 0, allocations: BTreeMap::new(), peak_used: 0 }
    }

    /// The BRAM's role name ("weight", "input", "output").
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Bytes still free.
    pub fn free(&self) -> usize {
        self.capacity - self.used
    }

    /// High-water mark of usage since construction (for utilization reports).
    pub fn peak_used(&self) -> usize {
        self.peak_used
    }

    /// Whether `bytes` would fit right now.
    pub fn fits(&self, bytes: usize) -> bool {
        bytes <= self.free()
    }

    /// Allocates `bytes`, returning a handle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BramOverflow`] if the allocation does not fit.
    pub fn alloc(&mut self, bytes: usize) -> Result<BramAlloc, SimError> {
        if !self.fits(bytes) {
            return Err(SimError::BramOverflow {
                bram: self.name,
                requested: bytes,
                available: self.free(),
            });
        }
        let handle = self.next_handle;
        self.next_handle += 1;
        self.allocations.insert(handle, bytes);
        self.used += bytes;
        self.peak_used = self.peak_used.max(self.used);
        Ok(BramAlloc(handle))
    }

    /// Frees a previous allocation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownAllocation`] if the handle is not live.
    pub fn dealloc(&mut self, alloc: BramAlloc) -> Result<(), SimError> {
        match self.allocations.remove(&alloc.0) {
            Some(bytes) => {
                self.used -= bytes;
                Ok(())
            }
            None => Err(SimError::UnknownAllocation { handle: alloc.0 }),
        }
    }

    /// Frees everything (e.g. between layers).
    pub fn reset(&mut self) {
        self.allocations.clear();
        self.used = 0;
    }

    /// Splits the BRAM into two half-capacity buffers for ping-pong
    /// double-buffered operation (fetch into one half while computing from
    /// the other).
    pub fn split_double_buffered(&self) -> (Bram, Bram) {
        let half = self.capacity / 2;
        (Bram::new(self.name, half), Bram::new(self.name, half))
    }

    /// Largest tensor tile (in bytes) that can be resident while leaving
    /// `reserve` bytes for other operands.
    pub fn max_tile_bytes(&self, reserve: usize) -> usize {
        self.capacity.saturating_sub(reserve)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut b = Bram::new("weight", 100);
        let a1 = b.alloc(60).unwrap();
        assert_eq!(b.used(), 60);
        assert_eq!(b.free(), 40);
        let a2 = b.alloc(40).unwrap();
        assert_eq!(b.free(), 0);
        assert!(b.alloc(1).is_err());
        b.dealloc(a1).unwrap();
        assert_eq!(b.free(), 60);
        b.dealloc(a2).unwrap();
        assert_eq!(b.used(), 0);
        assert_eq!(b.peak_used(), 100);
    }

    #[test]
    fn overflow_error_reports_availability() {
        let mut b = Bram::new("input", 10);
        let err = b.alloc(11).unwrap_err();
        assert_eq!(err, SimError::BramOverflow { bram: "input", requested: 11, available: 10 });
    }

    #[test]
    fn double_free_is_detected() {
        let mut b = Bram::new("output", 10);
        let a = b.alloc(5).unwrap();
        b.dealloc(a).unwrap();
        assert!(matches!(b.dealloc(a), Err(SimError::UnknownAllocation { .. })));
    }

    #[test]
    fn reset_clears_everything() {
        let mut b = Bram::new("weight", 10);
        b.alloc(7).unwrap();
        b.reset();
        assert_eq!(b.used(), 0);
        assert!(b.alloc(10).is_ok());
    }

    #[test]
    fn double_buffer_split_halves_capacity() {
        let b = Bram::new("weight", 1 << 20);
        let (x, y) = b.split_double_buffered();
        assert_eq!(x.capacity(), 1 << 19);
        assert_eq!(y.capacity(), 1 << 19);
    }

    #[test]
    fn max_tile_respects_reserve() {
        let b = Bram::new("input", 1000);
        assert_eq!(b.max_tile_bytes(300), 700);
        assert_eq!(b.max_tile_bytes(2000), 0);
    }
}
