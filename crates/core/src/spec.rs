//! The unified serving front door: one validated [`ServeSpec`] that
//! dispatches to single-chip, cluster, or disaggregated serving.
//!
//! The serving simulator grew three entry points —
//! [`serve`](crate::serve::serve) for one chip,
//! [`Cluster::serve`](crate::cluster::Cluster::serve) for a sharded
//! cluster, and
//! [`Cluster::serve_disaggregated`](crate::cluster::Cluster::serve_disaggregated)
//! for prefill/decode phase splitting — each with its own construction
//! ritual. A [`ServeSpec`] replaces the ritual: one builder collects the
//! chip count, per-chip [`ServeConfig`], placement/migration/phase
//! policies, NoC and scheduler core, validates the whole combination at
//! [`ServeSpecBuilder::build`] (no latent invalid states), and
//! [`ServeSpec::run`] picks the serving mode from what was configured —
//! configuring a policy selects the mode that honors it:
//!
//! * a phase placement was set → **disaggregated** ([`DisaggReport`]),
//! * more than one chip, or an explicit placement or migration policy →
//!   **cluster** ([`ClusterReport`]),
//! * otherwise → **single-chip** ([`ServeReport`]).
//!
//! The legacy entry points remain as thin shims over the same engine
//! room, so existing callers and golden artifacts are untouched.
//!
//! # Examples
//!
//! ```
//! use meadow_core::spec::ServeSpec;
//! use meadow_core::{EngineConfig, MeadowEngine, ServeConfig};
//! use meadow_models::presets;
//! use meadow_models::workload::ArrivalTrace;
//!
//! # fn main() -> Result<(), meadow_core::CoreError> {
//! let engine = MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0))?;
//! let trace = ArrivalTrace::uniform(4, 0.0, 16, 4);
//!
//! // Single chip: the spec runs the continuous-batching scheduler.
//! let spec = ServeSpec::builder().config(ServeConfig::default()).build()?;
//! let report = spec.run(&engine, &trace)?.into_single().expect("one chip");
//! assert_eq!(report.requests, 4);
//!
//! // Three chips: the same builder dispatches to cluster serving.
//! let spec = ServeSpec::builder().chips(3).build()?;
//! let report = spec.run(&engine, &trace)?;
//! assert_eq!(report.as_cluster().expect("sharded").chips, 3);
//! # Ok(())
//! # }
//! ```

use crate::cluster::{Cluster, ClusterConfig, ClusterConfigBuilder, ClusterReport, DisaggReport};
use crate::cluster::{MigrationPolicy, PhasePlacement, PlacementPolicy};
use crate::engine::EngineConfig;
use crate::error::CoreError;
use crate::serve::{SchedulerCore, ServeConfig, ServeError, ServeReport, SpecDecode};
use crate::MeadowEngine;
use meadow_models::workload::ArrivalTrace;
use meadow_models::{KvCompression, KvLayout};
use meadow_sim::noc::NocConfig;
use std::sync::Arc;

/// Which serving mode a [`ServeSpec`] resolved to at build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServeMode {
    Single,
    Cluster,
    Disaggregated,
}

/// A validated serving specification — see the [module docs](self).
///
/// Built once via [`ServeSpec::builder`], a spec is reusable: every
/// [`ServeSpec::run`] materializes a fresh [`Cluster`] over the shared
/// configuration (the simulator is stateless between runs), so repeated
/// trials of the same spec are bit-identical.
#[derive(Debug)]
pub struct ServeSpec {
    config: Arc<ClusterConfig>,
    mode: ServeMode,
}

impl ServeSpec {
    /// Starts a builder with the defaults: one chip, the default
    /// [`ServeConfig`], round-robin placement, no migration, colocated
    /// phases, the ZCU102 NoC, and the event scheduler core.
    pub fn builder() -> ServeSpecBuilder {
        ServeSpecBuilder::default()
    }

    /// The validated cluster configuration underneath this spec.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Runs the spec's serving mode on `engine` over `trace`.
    ///
    /// # Errors
    ///
    /// Propagates trace-validation, placement and measurement errors from
    /// the dispatched mode ([`CoreError::Serve`] and below); the
    /// configuration itself was already validated at build time.
    pub fn run(
        &self,
        engine: &MeadowEngine,
        trace: &ArrivalTrace,
    ) -> Result<ServeOutcome, CoreError> {
        let cluster = Cluster::from_shared(engine.clone(), Arc::clone(&self.config));
        match self.mode {
            ServeMode::Single => {
                let mut report = cluster.serve(trace)?;
                Ok(ServeOutcome::Single(report.per_chip.remove(0).report))
            }
            ServeMode::Cluster => Ok(ServeOutcome::Cluster(cluster.serve(trace)?)),
            ServeMode::Disaggregated => {
                Ok(ServeOutcome::Disaggregated(Box::new(cluster.serve_disaggregated(trace)?)))
            }
        }
    }
}

/// Result of one [`ServeSpec::run`], carrying the report shape of the
/// mode the spec resolved to.
#[derive(Debug, Clone)]
pub enum ServeOutcome {
    /// One chip: the single-chip scheduler's report.
    Single(ServeReport),
    /// Several chips under one arrival stream.
    Cluster(ClusterReport),
    /// Prefill/decode disaggregation across the cluster (boxed: the
    /// report is much larger than the other variants).
    Disaggregated(Box<DisaggReport>),
}

impl ServeOutcome {
    /// The single-chip report, if this was a single-chip run.
    pub fn as_single(&self) -> Option<&ServeReport> {
        match self {
            ServeOutcome::Single(r) => Some(r),
            _ => None,
        }
    }

    /// The cluster report, if this was a cluster run.
    pub fn as_cluster(&self) -> Option<&ClusterReport> {
        match self {
            ServeOutcome::Cluster(r) => Some(r),
            _ => None,
        }
    }

    /// The disaggregation report, if this was a disaggregated run.
    pub fn as_disaggregated(&self) -> Option<&DisaggReport> {
        match self {
            ServeOutcome::Disaggregated(r) => Some(r),
            _ => None,
        }
    }

    /// Consumes the outcome into the single-chip report, if applicable.
    pub fn into_single(self) -> Option<ServeReport> {
        match self {
            ServeOutcome::Single(r) => Some(r),
            _ => None,
        }
    }

    /// Consumes the outcome into the cluster report, if applicable.
    pub fn into_cluster(self) -> Option<ClusterReport> {
        match self {
            ServeOutcome::Cluster(r) => Some(r),
            _ => None,
        }
    }

    /// Consumes the outcome into the disaggregation report, if applicable.
    pub fn into_disaggregated(self) -> Option<DisaggReport> {
        match self {
            ServeOutcome::Disaggregated(r) => Some(*r),
            _ => None,
        }
    }
}

/// Builder for [`ServeSpec`] — see [`ServeSpec::builder`].
#[derive(Debug)]
pub struct ServeSpecBuilder {
    inner: ClusterConfigBuilder,
    config: ServeConfig,
    chips: usize,
    chips_set: bool,
    has_phases: bool,
    has_cluster_policy: bool,
}

impl Default for ServeSpecBuilder {
    fn default() -> Self {
        Self {
            inner: ClusterConfigBuilder::default(),
            config: ServeConfig::default(),
            chips: 1,
            chips_set: false,
            has_phases: false,
            has_cluster_policy: false,
        }
    }
}

impl ServeSpecBuilder {
    /// Sets the number of chips. More than one selects cluster serving
    /// (unless a phase placement upgrades the run to disaggregated).
    pub fn chips(mut self, chips: usize) -> Self {
        self.chips = chips;
        self.chips_set = true;
        self
    }

    /// Builds a heterogeneous cluster with one chip per engine spec
    /// (see [`ClusterConfigBuilder::chip_specs`]); the engine handed to
    /// [`ServeSpec::run`] then only supplies the thread budget and trace
    /// validation model. More than one spec selects cluster serving, and
    /// a disagreeing [`chips`](Self::chips) call is rejected at build.
    pub fn chip_specs(mut self, specs: Vec<EngineConfig>) -> Self {
        self.has_cluster_policy = self.has_cluster_policy || specs.len() > 1;
        self.inner = self.inner.chip_specs(specs);
        self
    }

    /// Sets per-link hop costs on the cluster's linear interconnect (see
    /// [`ClusterConfigBuilder::link_hops`]).
    pub fn link_hops(mut self, hops: Vec<u32>) -> Self {
        self.inner = self.inner.link_hops(hops);
        self
    }

    /// Sets the per-chip serving configuration wholesale.
    pub fn config(mut self, config: ServeConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the request-to-chip placement policy. Setting one selects
    /// cluster serving ([`ClusterReport`]) even on one chip.
    pub fn placement(mut self, placement: impl PlacementPolicy + 'static) -> Self {
        self.inner = self.inner.placement(placement);
        self.has_cluster_policy = true;
        self
    }

    /// Sets the KV migration policy. Setting one selects cluster serving
    /// ([`ClusterReport`]) even on one chip.
    pub fn migration(mut self, migration: impl MigrationPolicy + 'static) -> Self {
        self.inner = self.inner.migration(migration);
        self.has_cluster_policy = true;
        self
    }

    /// Sets the prefill/decode phase placement. Setting one selects
    /// disaggregated serving ([`DisaggReport`]).
    pub fn phases(mut self, phases: impl PhasePlacement + 'static) -> Self {
        self.inner = self.inner.phase_placement(phases);
        self.has_phases = true;
        self
    }

    /// Sets the chip-to-chip NoC configuration.
    pub fn noc(mut self, noc: NocConfig) -> Self {
        self.inner = self.inner.noc(noc);
        self
    }

    /// Selects the scheduler core ([`SchedulerCore::Event`] by default;
    /// the cores are bit-identical, so this is a performance knob).
    pub fn scheduler(mut self, scheduler: SchedulerCore) -> Self {
        self.inner = self.inner.scheduler(scheduler);
        self
    }

    /// Enables the deterministic speculative-decoding model on the
    /// per-chip serving configuration.
    pub fn speculation(mut self, speculation: SpecDecode) -> Self {
        self.config = self.config.with_speculation(speculation);
        self
    }

    /// Sets the KV-cache layout on the per-chip serving configuration
    /// ([`KvLayout::Dense`] by default — bit-identical to pre-layout
    /// serving).
    pub fn kv_layout(mut self, kv_layout: KvLayout) -> Self {
        self.config = self.config.with_kv_layout(kv_layout);
        self
    }

    /// Sets the token-level KV compression model on the per-chip serving
    /// configuration ([`KvCompression::None`] by default).
    pub fn kv_compression(mut self, kv_compression: KvCompression) -> Self {
        self.config = self.config.with_kv_compression(kv_compression);
        self
    }

    /// Sets the per-chip weight budget in bytes, turning on the
    /// weight-residency state machine: chips start cold, model weights
    /// stream in over DRAM before a step may run, and least-recently-used
    /// models are evicted when a new model's weights need the space.
    /// Unset (the default), every chip's one model is permanently
    /// resident for free.
    pub fn weight_budget(mut self, bytes: u64) -> Self {
        self.config = self.config.with_weight_budget(bytes);
        self
    }

    /// Overlaps each layer's weight load with the previous layer's
    /// compute on cold starts (EdgeFlow-style pipelining) instead of
    /// serializing the full load before the step. Only meaningful with a
    /// weight budget set.
    pub fn weight_streaming(mut self, streaming: bool) -> Self {
        self.config = self.config.with_weight_streaming(streaming);
        self
    }

    /// Validates the whole combination and finishes the spec.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ZeroChips`] for an empty cluster,
    /// [`ServeError::EmptyChipSpecs`] /
    /// [`ServeError::ChipSpecCountMismatch`] /
    /// [`ServeError::InvalidChipSpec`] / [`ServeError::InvalidLinkHops`]
    /// for malformed heterogeneous configurations, and propagates
    /// [`ServeConfig::validate`] rejections (zero `max_batch`, zero
    /// `page_bytes` under `PagedLru`, invalid SLOs or speculation
    /// parameters).
    pub fn build(self) -> Result<ServeSpec, ServeError> {
        let mut inner = self.inner;
        if self.chips_set {
            inner = inner.chips(self.chips);
        }
        let config = inner.serve(self.config).build()?;
        let mode = if self.has_phases {
            ServeMode::Disaggregated
        } else if config.chips() > 1 || self.has_cluster_policy {
            ServeMode::Cluster
        } else {
            ServeMode::Single
        };
        Ok(ServeSpec { config: Arc::new(config), mode })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Colocated, PrefillDecodeSplit, RoundRobin};
    use crate::engine::EngineConfig;
    use crate::serve::{serve, KvPolicy};
    use meadow_models::presets;

    fn engine() -> MeadowEngine {
        MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0)).unwrap()
    }

    #[test]
    fn single_chip_spec_matches_serve_bit_exactly() {
        let e = engine();
        let trace = ArrivalTrace::uniform(5, 1.0, 16, 6);
        let config = ServeConfig::default().with_max_batch(2);
        let spec = ServeSpec::builder().config(config).build().unwrap();
        let via_spec = spec.run(&e, &trace).unwrap().into_single().unwrap();
        let via_shim = serve(&e, &trace, &config).unwrap();
        assert_eq!(via_spec, via_shim);
    }

    #[test]
    fn chips_dispatch_to_cluster_mode() {
        let e = engine();
        let trace = ArrivalTrace::uniform(6, 0.0, 16, 4);
        let spec = ServeSpec::builder().chips(2).placement(RoundRobin).build().unwrap();
        let outcome = spec.run(&e, &trace).unwrap();
        assert!(outcome.as_single().is_none());
        let report = outcome.as_cluster().unwrap();
        assert_eq!(report.chips, 2);
        assert_eq!(report.requests, 6);
    }

    #[test]
    fn phase_placement_dispatches_to_disaggregated_mode() {
        let e = engine();
        let trace = ArrivalTrace::uniform(4, 0.0, 16, 4);
        let spec = ServeSpec::builder()
            .chips(2)
            .phases(PrefillDecodeSplit { prefill_chips: 1 })
            .build()
            .unwrap();
        let outcome = spec.run(&e, &trace).unwrap();
        let report = outcome.as_disaggregated().unwrap();
        assert_eq!(report.requests, 4);
        assert_eq!(report.split_requests, 4);
    }

    #[test]
    fn colocated_phases_still_count_as_disaggregated_mode() {
        // Setting ANY phase placement — even the colocated default policy,
        // explicitly — selects the disaggregated report shape.
        let e = engine();
        let trace = ArrivalTrace::uniform(3, 0.0, 16, 4);
        let spec = ServeSpec::builder().phases(Colocated).build().unwrap();
        let outcome = spec.run(&e, &trace).unwrap();
        assert!(outcome.as_disaggregated().is_some());
    }

    #[test]
    fn one_chip_with_explicit_placement_is_a_cluster_run() {
        // The 1-chip cluster reproduces the single-chip scheduler
        // bit-exactly, so asking for cluster machinery on one chip is a
        // report-shape choice, not a semantic one.
        let e = engine();
        let trace = ArrivalTrace::uniform(3, 0.0, 16, 4);
        let spec = ServeSpec::builder().placement(RoundRobin).build().unwrap();
        let report = spec.run(&e, &trace).unwrap().into_cluster().unwrap();
        assert_eq!(report.chips, 1);
        let single = ServeSpec::builder().build().unwrap();
        let single = single.run(&e, &trace).unwrap().into_single().unwrap();
        assert_eq!(report.per_chip[0].report, single);
    }

    #[test]
    fn build_rejects_invalid_combinations() {
        assert!(matches!(ServeSpec::builder().chips(0).build(), Err(ServeError::ZeroChips)));
        let bad = ServeConfig::default().with_policy(KvPolicy::PagedLru).with_page_bytes(0);
        assert!(ServeSpec::builder().config(bad).build().is_err());
    }

    #[test]
    fn spec_is_reusable_across_runs() {
        let e = engine();
        let trace = ArrivalTrace::uniform(4, 0.5, 16, 4);
        let spec = ServeSpec::builder().build().unwrap();
        let a = spec.run(&e, &trace).unwrap().into_single().unwrap();
        let b = spec.run(&e, &trace).unwrap().into_single().unwrap();
        assert_eq!(a, b);
    }
}
