//! Cluster serving: shard the session pool across simulated chips.
//!
//! One edge chip saturates quickly — the ROADMAP's serving north star is a
//! *cluster* of MEADOW chips behind a single arrival stream. This module
//! owns that layer:
//!
//! * [`Cluster`] owns N [`ChipNode`]s (each a replica [`MeadowEngine`];
//!   the per-chip KV page pool and DRAM traffic ledger are materialized
//!   per run inside the chip's serving loop and land in its
//!   [`ServeReport`]).
//! * [`ClusterConfig`] is built through a validated builder
//!   ([`ClusterConfig::builder`]): zero-chip clusters, zero `max_batch`
//!   and zero `page_bytes` under `PagedLru` are rejected at construction
//!   with a typed [`ServeError`] instead of misbehaving mid-run.
//! * [`PlacementPolicy`] routes each arriving request to a chip —
//!   [`RoundRobin`], [`LeastLoadedKv`] (fewest assigned peak-KV bytes) and
//!   [`SessionAffinity`] (sticky routing by the request's
//!   `affinity` hint) ship in the box, and the trait is the seam for
//!   custom routers.
//! * [`MigrationPolicy`] decides whether an evicted session's KV bytes
//!   *migrate* to an underloaded chip's spare budget instead of spilling
//!   to DRAM. Migration is charged per hop on the cluster's
//!   [`Noc`] model (store-and-forward over a linear
//!   chip-to-chip interconnect: `|i - j|` hops between chips `i` and `j`),
//!   and the bytes come back over the same path when the session reloads.
//!
//! Each donor chip's headroom (budget minus the peak demand placement
//! assigned it) is **statically partitioned** among the other chips before
//! the per-chip loops fan out, so chips simulate independently — in
//! parallel via [`ExecConfig`] — and
//! the [`ClusterReport`] stays bit-identical across `MEADOW_THREADS`.
//! That is an analytical bound in the EdgeProfiler style, not a dynamic
//! coherence protocol: a donor can never be oversubscribed, at the cost of
//! some headroom going unused.
//!
//! A one-chip cluster with [`RoundRobin`] placement and [`NoMigration`]
//! reproduces the single-chip [`serve`](crate::serve::serve) output
//! bit-exactly — `serve` is now literally that wrapper — so all
//! pre-cluster goldens and invariants carry over unchanged
//! (`tests/cluster_invariants.rs`).
//!
//! # Examples
//!
//! Serve an arrival trace on a 2-chip cluster with least-loaded placement
//! and NoC-charged migration:
//!
//! ```
//! use meadow_core::cluster::{Cluster, ClusterConfig, LeastLoadedKv, ToLeastLoaded};
//! use meadow_core::serve::{KvPolicy, ServeConfig};
//! use meadow_core::{EngineConfig, MeadowEngine};
//! use meadow_models::presets;
//! use meadow_models::workload::ArrivalTrace;
//!
//! # fn main() -> Result<(), meadow_core::CoreError> {
//! let engine = MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0))?;
//! let trace = ArrivalTrace::uniform(6, 0.0, 16, 8);
//! let config = ClusterConfig::builder()
//!     .chips(2)
//!     .serve(
//!         ServeConfig::default()
//!             .with_budget(3 * trace.requests[0].peak_kv_bytes(&presets::tiny_decoder()))
//!             .with_policy(KvPolicy::PagedLru)
//!             .with_page_bytes(512),
//!     )
//!     .placement(LeastLoadedKv)
//!     .migration(ToLeastLoaded)
//!     .build()?;
//! let report = Cluster::new(engine, config).serve(&trace)?;
//! assert_eq!(report.chips, 2);
//! assert_eq!(report.total_generated_tokens, 6 * 8);
//! // Every request landed on exactly one chip.
//! let placed: u64 = report.per_chip.iter().map(|c| c.assigned_requests).sum();
//! assert_eq!(placed, 6);
//! # Ok(())
//! # }
//! ```

use crate::engine::EngineConfig;
use crate::error::CoreError;
use crate::serve::{
    kv_sizer, serve_on_chip, KvSummary, LatencySummary, SchedulerCore, ServeConfig, ServeError,
    ServeReport, ServeTrace, WeightSummary,
};
use crate::session::SessionPhase;
use crate::MeadowEngine;
use meadow_models::workload::{ArrivalTrace, ServeRequest};
use meadow_sim::noc::{Noc, NocConfig};
use meadow_sim::{Cycles, TrafficClass};
use meadow_tensor::parallel::{par_map, ExecConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Placement-relevant load snapshot of one chip, updated as requests are
/// assigned (in arrival order) and handed to
/// [`PlacementPolicy::place`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipLoad {
    /// Chip index within the cluster.
    pub chip: usize,
    /// Requests already routed to this chip.
    pub assigned_requests: u64,
    /// Sum of the peak KV-cache bytes of the requests routed here — the
    /// chip's worst-case memory demand.
    pub assigned_peak_kv_bytes: u64,
    /// The chip's KV budget (`None` = unbounded), for policies that place
    /// by headroom.
    pub kv_budget_bytes: Option<u64>,
    /// The chip's analytical throughput score in milli-units
    /// ([`throughput_score_milli`]), for speed-aware policies on
    /// heterogeneous fleets. Every chip of a homogeneous (replica) cluster
    /// carries the same score.
    pub throughput_score_milli: u64,
}

/// Analytical throughput score of one chip spec, in milli-units: the
/// harmonic mean of the chip's peak compute rate
/// ([`ChipConfig::peak_gmacs_per_sec`](meadow_sim::ChipConfig)) and its
/// DRAM bandwidth in GB/s (`bandwidth_gbps / 8`), scaled by 1000 and
/// rounded to an integer so speed-aware placement can compare weighted
/// loads in exact integer arithmetic (`kv_a * score_b` vs `kv_b *
/// score_a`) — no float rounding can break the degeneracy contract that
/// equal scores reduce to [`LeastLoadedKv`]'s ordering.
///
/// The harmonic mean is the roofline-flavored choice: a chip is only as
/// fast as the slower of its compute and memory sides lets it be, and the
/// harmonic mean penalizes an unbalanced spec accordingly. The score is a
/// unitless *relative* rating (never zero — clamped to at least 1), not a
/// tokens/sec prediction; the capacity planner uses real simulation probes
/// for that.
pub fn throughput_score_milli(config: &EngineConfig) -> u64 {
    let compute = config.chip.peak_gmacs_per_sec();
    let memory_gbs = config.bandwidth_gbps / 8.0;
    let harmonic = 2.0 * compute * memory_gbs / (compute + memory_gbs);
    ((harmonic * 1000.0).round() as u64).max(1)
}

/// Routes each arriving request to a chip.
///
/// The cluster calls [`PlacementPolicy::place`] once per request, in
/// arrival order (ties broken by request id), with the running
/// [`ChipLoad`]s of every chip. Implementations must be deterministic —
/// the returned chip index may depend only on the arguments — and must
/// return an index below `loads.len()` (the cluster rejects out-of-range
/// routes with [`ServeError::PlacementOutOfRange`]).
///
/// # Examples
///
/// A custom policy that pins everything to the last chip:
///
/// ```
/// use meadow_core::cluster::{ChipLoad, PlacementPolicy};
/// use meadow_models::workload::ServeRequest;
///
/// #[derive(Debug)]
/// struct PinToLast;
///
/// impl PlacementPolicy for PinToLast {
///     fn name(&self) -> &'static str {
///         "pin-to-last"
///     }
///     fn place(&self, _seq: usize, _request: &ServeRequest, loads: &[ChipLoad]) -> usize {
///         loads.len() - 1
///     }
/// }
///
/// let loads: Vec<ChipLoad> = (0..4)
///     .map(|chip| ChipLoad {
///         chip,
///         assigned_requests: 0,
///         assigned_peak_kv_bytes: 0,
///         kv_budget_bytes: None,
///         throughput_score_milli: 1000,
///     })
///     .collect();
/// assert_eq!(PinToLast.place(0, &ServeRequest::new(0, 0.0, 16, 8), &loads), 3);
/// ```
pub trait PlacementPolicy: fmt::Debug + Send + Sync {
    /// Short stable identifier recorded in the [`ClusterReport`].
    fn name(&self) -> &'static str;

    /// The chip the `seq`-th arriving request is routed to.
    fn place(&self, seq: usize, request: &ServeRequest, loads: &[ChipLoad]) -> usize;
}

/// Cycle through the chips in arrival order — the oblivious baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRobin;

impl PlacementPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn place(&self, seq: usize, _request: &ServeRequest, loads: &[ChipLoad]) -> usize {
        seq % loads.len()
    }
}

/// Route to the chip with the fewest assigned peak-KV bytes (ties to the
/// lowest chip index) — balances *memory demand*, not request count, so a
/// few long-context requests do not pile onto one chip's budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeastLoadedKv;

impl PlacementPolicy for LeastLoadedKv {
    fn name(&self) -> &'static str {
        "least-loaded-kv"
    }

    fn place(&self, _seq: usize, _request: &ServeRequest, loads: &[ChipLoad]) -> usize {
        loads.iter().min_by_key(|l| (l.assigned_peak_kv_bytes, l.chip)).map(|l| l.chip).unwrap_or(0)
    }
}

/// Speed-aware least-loaded placement for heterogeneous fleets: route to
/// the chip with the smallest assigned peak-KV demand *normalized by its
/// analytical throughput score* ([`throughput_score_milli`]), so a chip
/// that is twice as fast absorbs twice the demand before it looks as
/// loaded as its slower neighbor. Ties break to the lowest chip index.
///
/// The comparison is exact integer arithmetic — `kv_a * score_b` vs
/// `kv_b * score_a` in `u128` — so on a homogeneous fleet (all scores
/// equal) it reduces *bit-exactly* to [`LeastLoadedKv`]'s
/// `(assigned_peak_kv_bytes, chip)` ordering: the degeneracy contract the
/// equivalence suites pin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeastLoadedWeighted;

impl PlacementPolicy for LeastLoadedWeighted {
    fn name(&self) -> &'static str {
        "least-loaded-weighted"
    }

    fn place(&self, _seq: usize, _request: &ServeRequest, loads: &[ChipLoad]) -> usize {
        loads
            .iter()
            .min_by(|a, b| {
                let wa =
                    u128::from(a.assigned_peak_kv_bytes) * u128::from(b.throughput_score_milli);
                let wb =
                    u128::from(b.assigned_peak_kv_bytes) * u128::from(a.throughput_score_milli);
                wa.cmp(&wb).then(a.chip.cmp(&b.chip))
            })
            .map(|l| l.chip)
            .unwrap_or(0)
    }
}

/// Sticky routing: requests sharing an
/// [`affinity`](ServeRequest::affinity) hint (the same user or
/// conversation) land on the same chip, `hint % chips`, keeping any warm
/// per-user state local. Requests without a hint hash their id.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionAffinity;

/// SplitMix64 finalizer — a cheap, well-mixed stateless hash.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl PlacementPolicy for SessionAffinity {
    fn name(&self) -> &'static str {
        "session-affinity"
    }

    fn place(&self, _seq: usize, request: &ServeRequest, loads: &[ChipLoad]) -> usize {
        match request.affinity {
            Some(hint) => hint as usize % loads.len(),
            None => (mix64(u64::from(request.id)) % loads.len() as u64) as usize,
        }
    }
}

/// What one chip's eviction pass sees when it asks whether to migrate a
/// victim's bytes instead of spilling them to DRAM.
#[derive(Debug)]
pub struct MigrationSnapshot<'a> {
    /// The evicting chip.
    pub source: usize,
    /// Remaining donatable headroom per chip, in bytes. The source's own
    /// entry is zero; each donor's slack is statically partitioned among
    /// the other chips, so what this snapshot offers can always be taken.
    pub headroom: &'a [u64],
    /// NoC hops from the source to each chip (`|i - j|` on the linear
    /// chip interconnect).
    pub hops: &'a [u32],
}

/// Decides whether (and where) an evicted session's KV bytes migrate to a
/// remote chip's spare budget instead of spilling to DRAM.
///
/// Returning `Some(chip)` parks the bytes on that chip, charged per hop on
/// the cluster NoC ([`Noc::transfer_hops`]); they return over the same
/// path when the session reloads. Returning `None` (or a chip without
/// `bytes` of headroom) falls back to the ordinary DRAM spill. Must be
/// deterministic.
pub trait MigrationPolicy: fmt::Debug + Send + Sync {
    /// Short stable identifier recorded in the [`ClusterReport`].
    fn name(&self) -> &'static str;

    /// The chip to park `bytes` on, or `None` to spill to DRAM.
    fn choose_target(&self, bytes: u64, snapshot: &MigrationSnapshot<'_>) -> Option<usize>;
}

/// Never migrate: every spill goes to DRAM (the single-chip behavior).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoMigration;

impl MigrationPolicy for NoMigration {
    fn name(&self) -> &'static str {
        "none"
    }

    fn choose_target(&self, _bytes: u64, _snapshot: &MigrationSnapshot<'_>) -> Option<usize> {
        None
    }
}

/// Migrate to the chip with the most remaining headroom that can hold the
/// whole transfer (ties to the fewest hops, then the lowest chip index);
/// spill to DRAM when no chip has room.
///
/// The donor search **excludes the source chip**: `Noc::transfer_hops`
/// charges zero cycles and zero link bytes for a zero-hop transfer, so a
/// policy that returned the source would park bytes "remotely" for free
/// without ever putting them on the interconnect. The migration context
/// enforces the same exclusion defensively for custom policies (a
/// source-chip target falls back to the DRAM spill), which the
/// `self_migration_is_rejected_as_free_parking` regression test pins.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ToLeastLoaded;

impl MigrationPolicy for ToLeastLoaded {
    fn name(&self) -> &'static str {
        "to-least-loaded"
    }

    fn choose_target(&self, bytes: u64, snapshot: &MigrationSnapshot<'_>) -> Option<usize> {
        snapshot
            .headroom
            .iter()
            .enumerate()
            .filter(|&(chip, &room)| chip != snapshot.source && room >= bytes && bytes > 0)
            .max_by_key(|&(chip, &room)| {
                (room, std::cmp::Reverse(snapshot.hops[chip]), std::cmp::Reverse(chip))
            })
            .map(|(chip, _)| chip)
    }
}

/// Where one request's two phases run, as decided by a
/// [`PhasePlacement`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseAssignment {
    /// The chip the prompt's prefill runs on.
    pub prefill_chip: usize,
    /// The chip the decode loop runs on. Equal to
    /// [`prefill_chip`](PhaseAssignment::prefill_chip) means the request
    /// is colocated (no handoff).
    pub decode_chip: usize,
}

impl PhaseAssignment {
    /// Both phases on one chip — no KV handoff.
    pub fn colocated(chip: usize) -> Self {
        Self { prefill_chip: chip, decode_chip: chip }
    }

    /// Whether the request's phases run on different chips.
    pub fn is_split(&self) -> bool {
        self.prefill_chip != self.decode_chip
    }
}

/// Routes each request's *phases* to chips, on top of the base
/// [`PlacementPolicy`]: MEADOW's compute-bound prefill and memory-bound
/// decode need not share a chip
/// ([`Cluster::serve_disaggregated`](Cluster::serve_disaggregated)).
///
/// Called once per request in arrival order (ties by id) with the running
/// [`ChipLoad`]s and the chip the cluster's base placement policy would
/// have routed the whole request to. Implementations must be deterministic
/// and must return chip indices below `loads.len()`. A split assignment's
/// prefill leg runs in the prefill stage, its prompt KV hands off over the
/// cluster NoC ([`Noc::transfer_hops`], `|prefill - decode|` hops), and
/// its decode leg runs in the decode stage — so the two stage pools must
/// stay disjoint ([`ServeError::PhaseOverlap`]).
pub trait PhasePlacement: fmt::Debug + Send + Sync {
    /// Short stable identifier recorded in the [`DisaggReport`].
    fn name(&self) -> &'static str;

    /// The chips the `seq`-th arriving request's phases run on; `base` is
    /// the chip the cluster's [`PlacementPolicy`] routed the request to.
    fn place_phases(
        &self,
        seq: usize,
        request: &ServeRequest,
        loads: &[ChipLoad],
        base: usize,
    ) -> PhaseAssignment;
}

/// Both phases on the base placement's chip — the degenerate phase
/// placement under which
/// [`Cluster::serve_disaggregated`](Cluster::serve_disaggregated)
/// reproduces [`Cluster::serve`] bit-exactly (the
/// `tests/disagg_invariants.rs` contract).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Colocated;

impl PhasePlacement for Colocated {
    fn name(&self) -> &'static str {
        "colocated"
    }

    fn place_phases(
        &self,
        _seq: usize,
        _request: &ServeRequest,
        _loads: &[ChipLoad],
        base: usize,
    ) -> PhaseAssignment {
        PhaseAssignment::colocated(base)
    }
}

/// Disaggregated serving: chips `[0, prefill_chips)` form the prefill
/// pool, chips `[prefill_chips, chips)` the decode pool, and every request
/// round-robins over each pool independently (by arrival sequence). With
/// no decode pool to split into (`prefill_chips == 0` or ≥ the cluster
/// size) it degenerates to [`Colocated`] on the base placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefillDecodeSplit {
    /// Number of chips dedicated to prefill (the rest decode).
    pub prefill_chips: usize,
}

impl PhasePlacement for PrefillDecodeSplit {
    fn name(&self) -> &'static str {
        "prefill-decode-split"
    }

    fn place_phases(
        &self,
        seq: usize,
        _request: &ServeRequest,
        loads: &[ChipLoad],
        base: usize,
    ) -> PhaseAssignment {
        let chips = loads.len();
        if self.prefill_chips == 0 || self.prefill_chips >= chips {
            return PhaseAssignment::colocated(base);
        }
        PhaseAssignment {
            prefill_chip: seq % self.prefill_chips,
            decode_chip: self.prefill_chips + seq % (chips - self.prefill_chips),
        }
    }
}

/// Cross-chip migration traffic of one chip's serving run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationStats {
    /// KV bytes parked on remote chips instead of spilling to DRAM.
    pub migrated_out_bytes: u64,
    /// Individual park transfers.
    pub migration_events: u64,
    /// KV bytes pulled back from remote chips on reload.
    pub reloaded_remote_bytes: u64,
    /// Link-level NoC bytes the migrations moved (payload × hops).
    pub noc_link_bytes: u64,
    /// Link cycles those transfers occupied on the cluster NoC.
    pub noc_link_cycles: u64,
}

/// Per-chip migration state handed into the serving loop: tracks where
/// each demoted session's bytes are parked, the remaining donatable
/// headroom, and the NoC channel the transfers are charged on.
pub(crate) struct MigrationCtx<'a> {
    policy: &'a dyn MigrationPolicy,
    source: usize,
    headroom: Vec<u64>,
    hops: Vec<u32>,
    noc: Noc,
    /// Session id → (target chip, bytes currently parked there).
    parked: BTreeMap<u32, (usize, u64)>,
    migrated_out_bytes: u64,
    migration_events: u64,
    reloaded_remote_bytes: u64,
}

impl<'a> MigrationCtx<'a> {
    fn new(
        policy: &'a dyn MigrationPolicy,
        source: usize,
        headroom: Vec<u64>,
        hops: Vec<u32>,
        noc_config: NocConfig,
    ) -> Result<Self, CoreError> {
        Ok(Self {
            policy,
            source,
            headroom,
            hops,
            noc: Noc::new(noc_config)?,
            parked: BTreeMap::new(),
            migrated_out_bytes: 0,
            migration_events: 0,
            reloaded_remote_bytes: 0,
        })
    }

    /// Tries to park `bytes` of `session`'s spilled KV on a remote chip.
    /// Returns the NoC cycle cost when the migration happens, `None` when
    /// the bytes should spill to DRAM instead. A session with bytes
    /// already parked keeps using its target (split-brain caches across
    /// three locations are not modeled); once that chip's share is
    /// exhausted the overflow spills to DRAM.
    pub(crate) fn park(&mut self, session: u32, bytes: u64) -> Option<Cycles> {
        if bytes == 0 {
            return None;
        }
        let target = match self.parked.get(&session) {
            Some(&(target, _)) if self.headroom[target] >= bytes => target,
            Some(_) => return None,
            None => {
                let snapshot = MigrationSnapshot {
                    source: self.source,
                    headroom: &self.headroom,
                    hops: &self.hops,
                };
                let target = self.policy.choose_target(bytes, &snapshot)?;
                if target == self.source
                    || target >= self.headroom.len()
                    || self.headroom[target] < bytes
                {
                    return None;
                }
                target
            }
        };
        self.headroom[target] -= bytes;
        self.parked.entry(session).or_insert((target, 0)).1 += bytes;
        self.migrated_out_bytes += bytes;
        self.migration_events += 1;
        Some(self.noc.transfer_hops(bytes, self.hops[target]))
    }

    /// Pulls up to `want` of `session`'s remotely parked bytes back over
    /// the NoC, returning the cycle cost and how many bytes came from the
    /// remote chip (the caller reloads the remainder from DRAM).
    pub(crate) fn pull_back(&mut self, session: u32, want: u64) -> (Cycles, u64) {
        let Some(entry) = self.parked.get_mut(&session) else {
            return (Cycles::ZERO, 0);
        };
        let (target, parked) = *entry;
        let take = want.min(parked);
        if take == 0 {
            return (Cycles::ZERO, 0);
        }
        entry.1 -= take;
        if entry.1 == 0 {
            self.parked.remove(&session);
        }
        self.headroom[target] += take;
        self.reloaded_remote_bytes += take;
        (self.noc.transfer_hops(take, self.hops[target]), take)
    }

    fn into_stats(self) -> MigrationStats {
        MigrationStats {
            migrated_out_bytes: self.migrated_out_bytes,
            migration_events: self.migration_events,
            reloaded_remote_bytes: self.reloaded_remote_bytes,
            noc_link_bytes: self.noc.total_bytes(),
            noc_link_cycles: self.noc.total_link_cycles(),
        }
    }
}

/// Validated configuration of a [`Cluster`]: chip count, the per-chip
/// [`ServeConfig`], the placement and migration policy seams, and the
/// chip-to-chip NoC. Only constructible through
/// [`ClusterConfig::builder`], which rejects invalid combinations with a
/// typed [`ServeError`].
#[derive(Debug)]
pub struct ClusterConfig {
    chips: usize,
    serve: ServeConfig,
    placement: Box<dyn PlacementPolicy>,
    migration: Box<dyn MigrationPolicy>,
    phase_placement: Box<dyn PhasePlacement>,
    noc: NocConfig,
    scheduler: SchedulerCore,
    /// Per-chip engine specs of a heterogeneous cluster (`None` = replica
    /// cluster of whatever engine the run is given). Validated at build:
    /// non-empty, every spec constructs a valid engine, and all specs
    /// share one model architecture.
    chip_specs: Option<Vec<EngineConfig>>,
    /// Per-link hop costs of the linear chip interconnect (`link_hops[i]`
    /// = cost of the link between chips `i` and `i + 1`; `None` = every
    /// link costs one hop, the historical `|i - j|` distance).
    link_hops: Option<Vec<u32>>,
}

impl ClusterConfig {
    /// Starts a builder with the defaults: one chip, the default
    /// [`ServeConfig`], [`RoundRobin`] placement, [`NoMigration`], and the
    /// ZCU102 NoC.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder::default()
    }

    /// Number of chips.
    pub fn chips(&self) -> usize {
        self.chips
    }

    /// The per-chip serving configuration.
    pub fn serve_config(&self) -> &ServeConfig {
        &self.serve
    }

    /// The placement policy's identifier.
    pub fn placement_name(&self) -> &'static str {
        self.placement.name()
    }

    /// The migration policy's identifier.
    pub fn migration_name(&self) -> &'static str {
        self.migration.name()
    }

    /// The phase placement's identifier ([`Colocated`] unless overridden).
    pub fn phase_placement_name(&self) -> &'static str {
        self.phase_placement.name()
    }

    /// The chip-to-chip NoC configuration.
    pub fn noc(&self) -> NocConfig {
        self.noc
    }

    /// Which scheduler core each chip's serving loop runs on.
    pub fn scheduler(&self) -> SchedulerCore {
        self.scheduler
    }

    /// Per-chip engine specs of a heterogeneous cluster, or `None` for a
    /// replica cluster of the engine handed to [`Cluster::new`].
    pub fn chip_specs(&self) -> Option<&[EngineConfig]> {
        self.chip_specs.as_deref()
    }

    /// Per-link hop costs of the linear interconnect, or `None` when
    /// every link costs one hop.
    pub fn link_hops(&self) -> Option<&[u32]> {
        self.link_hops.as_deref()
    }

    /// Hop cost between two chips on the linear interconnect: the sum of
    /// the per-link costs between them, or plain `|a - b|` when no
    /// per-link costs are configured (the historical uniform distance).
    pub fn hops_between(&self, a: usize, b: usize) -> u32 {
        match &self.link_hops {
            Some(costs) => {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                costs[lo..hi].iter().sum()
            }
            None => a.abs_diff(b) as u32,
        }
    }
}

/// Builder for [`ClusterConfig`] — see [`ClusterConfig::builder`].
#[derive(Debug)]
pub struct ClusterConfigBuilder {
    chips: usize,
    chips_set: bool,
    serve: ServeConfig,
    placement: Box<dyn PlacementPolicy>,
    migration: Box<dyn MigrationPolicy>,
    phase_placement: Box<dyn PhasePlacement>,
    noc: NocConfig,
    scheduler: SchedulerCore,
    chip_specs: Option<Vec<EngineConfig>>,
    link_hops: Option<Vec<u32>>,
}

impl Default for ClusterConfigBuilder {
    fn default() -> Self {
        Self {
            chips: 1,
            chips_set: false,
            serve: ServeConfig::default(),
            placement: Box::new(RoundRobin),
            migration: Box::new(NoMigration),
            phase_placement: Box::new(Colocated),
            noc: NocConfig::default(),
            scheduler: SchedulerCore::default(),
            chip_specs: None,
            link_hops: None,
        }
    }
}

impl ClusterConfigBuilder {
    /// Sets the number of chips (a replica cluster of one engine).
    /// Mutually exclusive with [`chip_specs`](Self::chip_specs) unless the
    /// counts agree.
    pub fn chips(mut self, chips: usize) -> Self {
        self.chips = chips;
        self.chips_set = true;
        self
    }

    /// Builds a heterogeneous cluster with one chip per engine spec. The
    /// cluster's size becomes `specs.len()`; combining this with a
    /// disagreeing [`chips`](Self::chips) call is rejected at
    /// [`build`](Self::build).
    pub fn chip_specs(mut self, specs: Vec<EngineConfig>) -> Self {
        self.chip_specs = Some(specs);
        self
    }

    /// Sets per-link hop costs on the linear interconnect: `hops[i]` is
    /// the cost of the link between chips `i` and `i + 1`. The vector
    /// must cover exactly `chips - 1` links.
    pub fn link_hops(mut self, hops: Vec<u32>) -> Self {
        self.link_hops = Some(hops);
        self
    }

    /// Sets the per-chip serving configuration.
    pub fn serve(mut self, serve: ServeConfig) -> Self {
        self.serve = serve;
        self
    }

    /// Sets the placement policy.
    pub fn placement(mut self, placement: impl PlacementPolicy + 'static) -> Self {
        self.placement = Box::new(placement);
        self
    }

    /// Sets the migration policy.
    pub fn migration(mut self, migration: impl MigrationPolicy + 'static) -> Self {
        self.migration = Box::new(migration);
        self
    }

    /// Sets the phase placement used by
    /// [`Cluster::serve_disaggregated`] (defaults to [`Colocated`];
    /// [`Cluster::serve`] ignores it).
    pub fn phase_placement(mut self, phase_placement: impl PhasePlacement + 'static) -> Self {
        self.phase_placement = Box::new(phase_placement);
        self
    }

    /// Sets the chip-to-chip NoC configuration.
    pub fn noc(mut self, noc: NocConfig) -> Self {
        self.noc = noc;
        self
    }

    /// Selects the scheduler core each chip's serving loop runs on
    /// (defaults to [`SchedulerCore::Event`]; the two cores produce
    /// bit-identical reports, so this is a performance knob).
    pub fn scheduler(mut self, scheduler: SchedulerCore) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Validates and finishes the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ZeroChips`] for an empty cluster,
    /// [`ServeError::EmptyChipSpecs`] /
    /// [`ServeError::ChipSpecCountMismatch`] /
    /// [`ServeError::InvalidChipSpec`] for a malformed heterogeneous
    /// spec list, [`ServeError::InvalidLinkHops`] when per-link hop
    /// costs don't cover the interconnect, and propagates
    /// [`ServeConfig::validate`] rejections (zero `max_batch`, zero
    /// `page_bytes` under `PagedLru`, invalid SLOs).
    pub fn build(self) -> Result<ClusterConfig, ServeError> {
        let chips = match &self.chip_specs {
            Some(specs) => {
                if specs.is_empty() {
                    return Err(ServeError::EmptyChipSpecs);
                }
                if self.chips_set && self.chips != specs.len() {
                    return Err(ServeError::ChipSpecCountMismatch {
                        specs: specs.len(),
                        chips: self.chips,
                    });
                }
                for (chip, spec) in specs.iter().enumerate() {
                    MeadowEngine::new(spec.clone())
                        .map_err(|e| ServeError::InvalidChipSpec { chip, reason: e.to_string() })?;
                    if spec.model != specs[0].model {
                        return Err(ServeError::InvalidChipSpec {
                            chip,
                            reason: "all chips of a cluster must serve the same model \
                                     architecture"
                                .to_string(),
                        });
                    }
                }
                specs.len()
            }
            None => self.chips,
        };
        if chips == 0 {
            return Err(ServeError::ZeroChips);
        }
        if let Some(hops) = &self.link_hops {
            if hops.len() != chips - 1 {
                return Err(ServeError::InvalidLinkHops { got: hops.len(), expected: chips - 1 });
            }
        }
        self.serve.validate()?;
        Ok(ClusterConfig {
            chips,
            serve: self.serve,
            placement: self.placement,
            migration: self.migration,
            phase_placement: self.phase_placement,
            noc: self.noc,
            scheduler: self.scheduler,
            chip_specs: self.chip_specs,
            link_hops: self.link_hops,
        })
    }
}

/// One simulated chip of the cluster: a replica engine. The chip's KV page
/// pool, DRAM ledger and weight-residency state machine
/// ([`WeightResidency`](crate::serve::WeightResidency): every served
/// model's weights walk `Evicted → Streaming → Resident` under the chip's
/// weight budget) are materialized per serving run (the simulator is
/// stateless between runs) and reported in its [`ServeReport`].
#[derive(Debug, Clone)]
pub struct ChipNode {
    chip: usize,
    engine: MeadowEngine,
}

impl ChipNode {
    /// Chip index within the cluster.
    pub fn chip(&self) -> usize {
        self.chip
    }

    /// The chip's engine.
    pub fn engine(&self) -> &MeadowEngine {
        &self.engine
    }
}

/// Serving-side record of one chip's run within a [`ClusterReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipReport {
    /// Chip index.
    pub chip: usize,
    /// Requests placement routed here.
    pub assigned_requests: u64,
    /// Peak-KV demand placement routed here, in bytes.
    pub assigned_peak_kv_bytes: u64,
    /// Cross-chip migration traffic this chip originated.
    pub migration: MigrationStats,
    /// Busy fraction of the cluster's makespan this chip spent serving —
    /// its own makespan over the slowest chip's, so the cluster's
    /// straggler reads 1.0 and idle chips read toward 0.0. `Some` only on
    /// heterogeneous ([`ClusterConfigBuilder::chip_specs`]) runs and
    /// omitted from the serialized JSON otherwise, so pre-existing
    /// replica-cluster goldens stay byte-stable.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub utilization: Option<f64>,
    /// The chip's full single-chip serving report.
    pub report: ServeReport,
}

/// Aggregate result of one cluster serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Number of chips served on.
    pub chips: usize,
    /// Placement policy identifier.
    pub placement: String,
    /// Migration policy identifier.
    pub migration: String,
    /// Requests in the input trace.
    pub requests: usize,
    /// Requests shed by SLO admission, across all chips.
    pub rejected_requests: u64,
    /// Tokens generated across all chips.
    pub total_generated_tokens: u64,
    /// Wall-clock end of the slowest chip, in ms.
    pub makespan_ms: f64,
    /// Cluster-wide generated-token throughput over the makespan.
    pub tokens_per_sec: f64,
    /// Median completed-request latency across all chips, in ms.
    pub p50_latency_ms: f64,
    /// 95th-percentile completed-request latency across all chips, in ms.
    pub p95_latency_ms: f64,
    /// Sum of per-chip peak KV residencies, in bytes. The per-chip peaks
    /// are **not time-aligned** — each chip peaks at its own moment — so
    /// this is an upper bound that can overstate the true simultaneous
    /// cluster-wide peak; it answers "how much KV budget must I provision
    /// per chip, summed", not "how many bytes were live at once". For the
    /// largest single chip's peak, see
    /// [`max_chip_peak_kv_bytes`](ClusterReport::max_chip_peak_kv_bytes).
    pub peak_kv_bytes: u64,
    /// Largest single chip's peak KV residency, in bytes — an honest
    /// lower bound on the cluster-wide simultaneous peak (at least one
    /// chip really held this much at one moment). Defaults to zero when
    /// absent from pre-existing serialized reports.
    #[serde(default)]
    pub max_chip_peak_kv_bytes: u64,
    /// Placement imbalance: the largest chip's assigned peak-KV demand
    /// over the mean chip's (1.0 = perfectly balanced).
    pub kv_imbalance: f64,
    /// KV bytes that migrated chip-to-chip instead of spilling to DRAM.
    pub migrated_out_bytes: u64,
    /// Individual migration transfers.
    pub migration_events: u64,
    /// Migrated bytes pulled back on reload.
    pub reloaded_remote_bytes: u64,
    /// Link-level NoC bytes the migrations moved (payload × hops).
    pub noc_link_bytes: u64,
    /// NoC link cycles the migrations occupied.
    pub noc_link_cycles: u64,
    /// DRAM KV-cache migration traffic across all chips: every
    /// [`TrafficClass::KvCache`] byte the chips' DRAM channels moved —
    /// spill *and* reload directions — mirroring how
    /// [`noc_link_bytes`](ClusterReport::noc_link_bytes) counts both the
    /// park and pull-back legs of NoC migration.
    pub dram_kv_bytes: u64,
    /// KV layout/compression accounting aggregated across the chips —
    /// `Some` only when the run used a non-dense layout or token-level
    /// compression, and omitted from the serialized JSON otherwise
    /// (pre-seam cluster reports stay byte-stable).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub kv: Option<KvSummary>,
    /// Weight-residency accounting aggregated across the chips — `Some`
    /// only when the run set a weight budget, and omitted from the
    /// serialized JSON otherwise (pre-residency cluster reports stay
    /// byte-stable). Churn counters and weight bytes are summed; the cold
    /// and warm TTFT percentiles are recomputed over the union of every
    /// chip's sessions, so they match what the per-chip summaries would
    /// yield on the concatenated traces.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub weights: Option<WeightSummary>,
    /// Per-chip reports, in chip order.
    pub per_chip: Vec<ChipReport>,
}

impl ClusterReport {
    /// Looks up a request's trace across all chips.
    pub fn trace(&self, id: u32) -> Option<&ServeTrace> {
        self.per_chip.iter().find_map(|c| c.report.trace(id))
    }

    /// Pretty JSON for artifacts and golden snapshots.
    ///
    /// # Errors
    ///
    /// Propagates serialization errors from the vendored serde_json.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

/// NoC traffic of the prefill→decode KV handoffs of one disaggregated run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HandoffStats {
    /// Handoffs actually performed: split requests whose prefill leg was
    /// not shed by admission.
    pub split_requests: u64,
    /// Payload bytes handed off — each split request contributes its
    /// prompt KV ([`ServeRequest::prompt_kv_bytes`]) exactly once, so this
    /// conserves bytes against the summaries.
    pub handoff_bytes: u64,
    /// Link-level bytes the handoffs put on the cluster NoC (payload ×
    /// hops, store-and-forward).
    pub noc_link_bytes: u64,
    /// NoC link cycles the handoffs occupied.
    pub noc_link_cycles: u64,
}

/// Per-request record of one disaggregated run, in input-trace order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestSummary {
    /// Request identifier.
    pub id: u32,
    /// Chip the prefill leg ran on.
    pub prefill_chip: usize,
    /// Chip the decode leg ran on (equal to
    /// [`prefill_chip`](RequestSummary::prefill_chip) when colocated).
    pub decode_chip: usize,
    /// Whether either leg was shed by SLO admission.
    pub rejected: bool,
    /// Arrival → first token, in ms (from the prefill leg; zero when its
    /// prefill was rejected).
    pub ttft_ms: f64,
    /// KV handoff latency between the phases, in ms (zero when colocated
    /// or rejected).
    pub handoff_ms: f64,
    /// Wall-clock time the last token completed, in ms (absolute serving
    /// clock, handoff included).
    pub finish_ms: f64,
    /// Wall-clock decode pace in ms/token: first token → last token over
    /// the generated count, *including* handoff and decode-side queueing —
    /// the latency the stream's consumer observes between tokens, not the
    /// contention-free own-service TBT the per-leg traces record.
    pub mean_tbt_ms: f64,
    /// Tokens generated for this request.
    pub generated_tokens: u64,
}

/// Aggregate result of one [`Cluster::serve_disaggregated`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisaggReport {
    /// Phase-placement identifier.
    pub phase_placement: String,
    /// Requests in the input trace.
    pub requests: usize,
    /// Requests the phase placement split across chips (whether or not
    /// their prefill leg survived admission).
    pub split_requests: u64,
    /// Requests either of whose legs admission shed.
    pub rejected_requests: u64,
    /// Tokens generated across both stages.
    pub total_generated_tokens: u64,
    /// Wall-clock end of the slowest stage, in ms (the decode stage runs
    /// on the same absolute clock: its arrivals are prefill finish plus
    /// handoff).
    pub makespan_ms: f64,
    /// Generated-token throughput over the makespan.
    pub tokens_per_sec: f64,
    /// Median TTFT across non-rejected requests, in ms.
    pub p50_ttft_ms: f64,
    /// 95th-percentile TTFT across non-rejected requests, in ms.
    pub p95_ttft_ms: f64,
    /// Median wall-clock decode pace ([`RequestSummary::mean_tbt_ms`]).
    pub p50_tbt_ms: f64,
    /// 95th-percentile wall-clock decode pace.
    pub p95_tbt_ms: f64,
    /// KV-handoff traffic between the stages.
    pub handoff: HandoffStats,
    /// The prefill stage: every request's first leg (whole requests when
    /// colocated, prefill-only legs when split). Under the [`Colocated`]
    /// phase placement this is bit-identical to [`Cluster::serve`]'s
    /// report.
    pub prefill_stage: ClusterReport,
    /// The decode stage serving the split requests' decode legs; `None`
    /// when nothing was split (or every split prefill was shed).
    pub decode_stage: Option<ClusterReport>,
    /// Per-request records, in input-trace order.
    pub summaries: Vec<RequestSummary>,
}

impl DisaggReport {
    /// Looks up a request's summary.
    pub fn summary(&self, id: u32) -> Option<&RequestSummary> {
        self.summaries.iter().find(|s| s.id == id)
    }

    /// Pretty JSON for artifacts and golden snapshots.
    ///
    /// # Errors
    ///
    /// Propagates serialization errors from the vendored serde_json.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

/// A cluster of simulated chips serving one arrival stream — see the
/// [module docs](self).
#[derive(Debug)]
pub struct Cluster {
    nodes: Vec<ChipNode>,
    config: Arc<ClusterConfig>,
    /// The engine's original execution policy: drives the per-chip
    /// fan-out, while each node's engine gets an even share of its thread
    /// budget (see [`Cluster::new`]).
    exec: ExecConfig,
}

impl Cluster {
    /// Builds a cluster of `config.chips()` replicas of `engine` — or,
    /// when the configuration carries
    /// [`chip_specs`](ClusterConfigBuilder::chip_specs), one
    /// [`ChipNode`] per spec (heterogeneous fleet); `engine` then only
    /// supplies the thread budget below.
    ///
    /// The engine's thread budget is split between the two nested
    /// fan-outs: the chip fan-out keeps the full [`ExecConfig`] (it is
    /// clamped to the chip count), and each replica engine's internal
    /// per-tick fan-out gets `threads / min(threads, chips)` workers — so
    /// total concurrency stays at the configured thread count instead of
    /// multiplying to `chips × threads`. A one-chip cluster leaves the
    /// engine untouched.
    pub fn new(engine: MeadowEngine, config: ClusterConfig) -> Self {
        Self::from_shared(engine, Arc::new(config))
    }

    /// Shared-config constructor behind [`ServeSpec`](crate::spec::ServeSpec):
    /// a spec can be run many times (the perf bench repeats trials) without
    /// rebuilding the boxed policy objects each run.
    pub(crate) fn from_shared(engine: MeadowEngine, config: Arc<ClusterConfig>) -> Self {
        let exec = engine.config().exec;
        let threads = exec.threads().max(1);
        let concurrent_chips = config.chips.clamp(1, threads);
        let inner = ExecConfig::with_threads((threads / concurrent_chips).max(1));
        let nodes = match config.chip_specs() {
            Some(specs) => specs
                .iter()
                .enumerate()
                .map(|(chip, spec)| ChipNode {
                    chip,
                    engine: MeadowEngine::new(spec.clone())
                        .expect("chip specs are validated at ClusterConfigBuilder::build")
                        .with_exec(inner),
                })
                .collect(),
            None => (0..config.chips)
                .map(|chip| ChipNode { chip, engine: engine.clone().with_exec(inner) })
                .collect(),
        };
        Self { nodes, config, exec }
    }

    /// A one-chip cluster with [`RoundRobin`] placement and
    /// [`NoMigration`] — the configuration under which
    /// [`Cluster::serve`] reproduces the single-chip
    /// [`serve`](crate::serve::serve) bit-exactly.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Serve`] when `serve` fails
    /// [`ServeConfig::validate`].
    pub fn single_chip(engine: MeadowEngine, serve: ServeConfig) -> Result<Self, CoreError> {
        let config = ClusterConfig::builder().serve(serve).build()?;
        Ok(Self::new(engine, config))
    }

    /// Number of chips.
    pub fn chips(&self) -> usize {
        self.nodes.len()
    }

    /// The cluster's chips.
    pub fn nodes(&self) -> &[ChipNode] {
        &self.nodes
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Serves one arrival stream across the cluster: placement routes each
    /// request to a chip (in arrival order), every chip runs the
    /// continuous-batching scheduler on its shard — fanned out on the
    /// engine's [`ExecConfig`] worker
    /// pool — and eviction may migrate KV bytes to underloaded chips over
    /// the cluster NoC instead of spilling to DRAM. Deterministic:
    /// bit-identical across `MEADOW_THREADS`.
    ///
    /// ```
    /// use meadow_core::cluster::{Cluster, ClusterConfig, RoundRobin};
    /// use meadow_core::{EngineConfig, MeadowEngine};
    /// use meadow_models::presets;
    /// use meadow_models::workload::ArrivalTrace;
    ///
    /// # fn main() -> Result<(), meadow_core::CoreError> {
    /// let engine = MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0))?;
    /// let config = ClusterConfig::builder().chips(3).placement(RoundRobin).build()?;
    /// let report = Cluster::new(engine, config).serve(&ArrivalTrace::uniform(5, 0.0, 16, 4))?;
    /// assert_eq!(report.requests, 5);
    /// assert_eq!(report.total_generated_tokens, 20);
    /// // Round robin deals 5 requests onto 3 chips as 2/2/1.
    /// let counts: Vec<u64> = report.per_chip.iter().map(|c| c.assigned_requests).collect();
    /// assert_eq!(counts, vec![2, 2, 1]);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// **Migration note:** prefer the unified front door —
    /// `ServeSpec::builder().chips(n).build()?.run(&engine, &trace)`
    /// ([`ServeSpec`](crate::spec::ServeSpec)) — which validates once and
    /// dispatches here. This method stays as the thin mode-specific
    /// entry point underneath it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Serve`] for out-of-range placements or a
    /// request no chip's budget can hold; propagates trace-validation and
    /// measurement errors.
    pub fn serve(&self, trace: &ArrivalTrace) -> Result<ClusterReport, CoreError> {
        let chips = self.nodes.len();
        let model = &self.nodes[0].engine.config().model;
        trace.validate(model)?;
        let sizer = kv_sizer(model, &self.config.serve)?;

        // Placement: route requests in arrival order (ties by id), keeping
        // a running load picture for load-aware policies.
        let mut order: Vec<usize> = (0..trace.requests.len()).collect();
        order.sort_by(|&a, &b| {
            trace.requests[a]
                .arrival_ms
                .total_cmp(&trace.requests[b].arrival_ms)
                .then(trace.requests[a].id.cmp(&trace.requests[b].id))
        });
        let mut loads: Vec<ChipLoad> = (0..chips)
            .map(|chip| ChipLoad {
                chip,
                assigned_requests: 0,
                assigned_peak_kv_bytes: 0,
                kv_budget_bytes: self.config.serve.kv_budget_bytes,
                throughput_score_milli: throughput_score_milli(self.nodes[chip].engine.config()),
            })
            .collect();
        let mut assignment = vec![0usize; trace.requests.len()];
        for (seq, &idx) in order.iter().enumerate() {
            let request = &trace.requests[idx];
            let chip = self.config.placement.place(seq, request, &loads);
            if chip >= chips {
                return Err(ServeError::PlacementOutOfRange { chip, chips }.into());
            }
            loads[chip].assigned_requests += 1;
            loads[chip].assigned_peak_kv_bytes += sizer.bytes(request.final_context_len());
            assignment[idx] = chip;
        }
        // Per-chip shards keep the input trace's request order, so a
        // one-chip cluster hands the original trace through unchanged.
        let mut shards: Vec<ArrivalTrace> = vec![ArrivalTrace::default(); chips];
        for (idx, request) in trace.requests.iter().enumerate() {
            shards[assignment[idx]].requests.push(*request);
        }
        self.run_shards(&shards, &loads, None, trace.requests.len())
    }

    /// Runs per-chip shards through the serving loop: the shared backend
    /// of [`Cluster::serve`] and both stages of
    /// [`Cluster::serve_disaggregated`]. `loads` is the placement picture
    /// the donor-headroom partition and per-chip report rows are built
    /// from, `phases` (per chip, aligned with its shard's requests; `None`
    /// = all [`SessionPhase::Full`]) marks partial legs, and `requests` is
    /// the number of legs the report accounts.
    fn run_shards(
        &self,
        shards: &[ArrivalTrace],
        loads: &[ChipLoad],
        phases: Option<&[Vec<SessionPhase>]>,
        requests: usize,
    ) -> Result<ClusterReport, CoreError> {
        let chips = self.nodes.len();
        // Donor headroom: each chip's budget slack after placement,
        // statically split among the other chips so the parallel per-chip
        // loops can never oversubscribe a donor.
        let donor_headroom: Vec<u64> = loads
            .iter()
            .map(|l| l.kv_budget_bytes.map_or(0, |b| b.saturating_sub(l.assigned_peak_kv_bytes)))
            .collect();

        let exec = self.exec;
        let chip_ids: Vec<usize> = (0..chips).collect();
        let results: Vec<Result<(ServeReport, MigrationStats), CoreError>> =
            par_map(&chip_ids, &exec, |&chip| {
                let share: Vec<u64> = (0..chips)
                    .map(|donor| {
                        if donor == chip || chips < 2 {
                            0
                        } else {
                            donor_headroom[donor] / (chips as u64 - 1)
                        }
                    })
                    .collect();
                let hops: Vec<u32> =
                    (0..chips).map(|j| self.config.hops_between(chip, j)).collect();
                let mut ctx = MigrationCtx::new(
                    self.config.migration.as_ref(),
                    chip,
                    share,
                    hops,
                    self.config.noc,
                )?;
                let report = serve_on_chip(
                    &self.nodes[chip].engine,
                    &shards[chip],
                    &self.config.serve,
                    phases.map(|p| p[chip].as_slice()),
                    Some(&mut ctx),
                    self.config.scheduler,
                )?;
                Ok((report, ctx.into_stats()))
            });

        // Aggregate.
        let mut per_chip = Vec::with_capacity(chips);
        let mut latencies: Vec<f64> = Vec::new();
        let mut rejected = 0u64;
        let mut total_tokens = 0u64;
        let mut makespan = 0.0f64;
        let mut peak_kv = 0u64;
        let mut max_chip_peak = 0u64;
        let mut spilled = 0u64;
        let mut stats_total = MigrationStats::default();
        // Non-dense runs: accumulate the per-chip KV summaries, with the
        // retained mass weighted by dense final bytes (proportional to
        // final context tokens, so the cluster mean matches what one chip
        // serving the whole trace would report).
        let mut kv_acc: Option<KvSummary> = None;
        // Weight-residency runs: sum the additive churn counters and
        // regather the cold/warm TTFT samples from the per-chip traces so
        // the cluster percentiles are over the union of sessions, not a
        // mean of per-chip percentiles.
        let mut weights_acc: Option<WeightSummary> = None;
        let mut cold_ttft: Vec<f64> = Vec::new();
        let mut warm_ttft: Vec<f64> = Vec::new();
        for (chip, result) in results.into_iter().enumerate() {
            let (report, migration) = result?;
            if let Some(chip_kv) = report.kv {
                let acc = kv_acc.get_or_insert(KvSummary {
                    retained_attention_mass: 0.0,
                    dense_final_kv_bytes: 0,
                    final_kv_bytes: 0,
                    ..chip_kv
                });
                acc.retained_attention_mass +=
                    chip_kv.retained_attention_mass * chip_kv.dense_final_kv_bytes as f64;
                acc.dense_final_kv_bytes += chip_kv.dense_final_kv_bytes;
                acc.final_kv_bytes += chip_kv.final_kv_bytes;
            }
            if let Some(chip_weights) = report.weights {
                let acc = weights_acc.get_or_insert(WeightSummary {
                    models: 0,
                    weight_bytes: 0,
                    weight_loads: 0,
                    weight_evictions: 0,
                    cold_requests: 0,
                    ..chip_weights
                });
                acc.weight_bytes += chip_weights.weight_bytes;
                acc.weight_loads += chip_weights.weight_loads;
                acc.weight_evictions += chip_weights.weight_evictions;
                acc.cold_requests += chip_weights.cold_requests;
                for t in report.traces.iter().filter(|t| !t.rejected) {
                    if t.cold_start == Some(true) {
                        cold_ttft.push(t.ttft_ms());
                    } else {
                        warm_ttft.push(t.ttft_ms());
                    }
                }
            }
            latencies.extend(
                report.traces.iter().filter(|t| !t.rejected).map(ServeTrace::total_latency_ms),
            );
            rejected += report.rejected_requests;
            total_tokens += report.total_generated_tokens;
            makespan = makespan.max(report.makespan_ms);
            peak_kv += report.peak_kv_bytes;
            max_chip_peak = max_chip_peak.max(report.peak_kv_bytes);
            spilled += report.ledger.bytes(TrafficClass::KvCache);
            stats_total.migrated_out_bytes += migration.migrated_out_bytes;
            stats_total.migration_events += migration.migration_events;
            stats_total.reloaded_remote_bytes += migration.reloaded_remote_bytes;
            stats_total.noc_link_bytes += migration.noc_link_bytes;
            stats_total.noc_link_cycles += migration.noc_link_cycles;
            per_chip.push(ChipReport {
                chip,
                assigned_requests: loads[chip].assigned_requests,
                assigned_peak_kv_bytes: loads[chip].assigned_peak_kv_bytes,
                migration,
                utilization: None,
                report,
            });
        }
        // Per-chip utilization only materializes on heterogeneous runs —
        // replica-cluster reports (and their goldens) stay byte-stable.
        if self.config.chip_specs().is_some() && makespan > 0.0 {
            for chip_report in &mut per_chip {
                chip_report.utilization = Some(chip_report.report.makespan_ms / makespan);
            }
        }
        let kv = kv_acc.map(|mut acc| {
            acc.retained_attention_mass = if acc.dense_final_kv_bytes == 0 {
                1.0
            } else {
                acc.retained_attention_mass / acc.dense_final_kv_bytes as f64
            };
            acc
        });
        let weights = weights_acc.map(|mut acc| {
            let mut models: Vec<u32> =
                shards.iter().flat_map(|s| s.requests.iter().map(ServeRequest::model)).collect();
            models.sort_unstable();
            models.dedup();
            acc.models = models.len();
            acc.cold_ttft = LatencySummary::from_samples(cold_ttft);
            acc.warm_ttft = LatencySummary::from_samples(warm_ttft);
            acc
        });
        let latency = LatencySummary::from_samples(latencies);
        let max_demand = loads.iter().map(|l| l.assigned_peak_kv_bytes).max().unwrap_or(0) as f64;
        let mean_demand =
            loads.iter().map(|l| l.assigned_peak_kv_bytes).sum::<u64>() as f64 / chips as f64;
        Ok(ClusterReport {
            chips,
            placement: self.config.placement.name().to_string(),
            migration: self.config.migration.name().to_string(),
            requests,
            rejected_requests: rejected,
            total_generated_tokens: total_tokens,
            makespan_ms: makespan,
            tokens_per_sec: if makespan > 0.0 {
                total_tokens as f64 / (makespan / 1e3)
            } else {
                0.0
            },
            p50_latency_ms: latency.p50_ms,
            p95_latency_ms: latency.p95_ms,
            peak_kv_bytes: peak_kv,
            max_chip_peak_kv_bytes: max_chip_peak,
            kv_imbalance: if mean_demand > 0.0 { max_demand / mean_demand } else { 1.0 },
            migrated_out_bytes: stats_total.migrated_out_bytes,
            migration_events: stats_total.migration_events,
            reloaded_remote_bytes: stats_total.reloaded_remote_bytes,
            noc_link_bytes: stats_total.noc_link_bytes,
            noc_link_cycles: stats_total.noc_link_cycles,
            dram_kv_bytes: spilled,
            kv,
            weights,
            per_chip,
        })
    }

    /// Serves one arrival stream with prefill/decode disaggregation: the
    /// base [`PlacementPolicy`] routes each request as usual, then the
    /// configured [`PhasePlacement`] may split it — prefill on one chip,
    /// decode on another — with the prompt's KV cache handed off over the
    /// cluster NoC ([`Noc::transfer_hops`], store-and-forward, charged per
    /// hop).
    ///
    /// The run is two deterministic stages on one absolute clock. The
    /// *prefill stage* serves every request's first leg: colocated
    /// requests run whole ([`SessionPhase::Full`]) and split requests run
    /// [`SessionPhase::PrefillOnly`] on their prefill chip, finishing once
    /// the prompt KV (and first token) exist. Each surviving split
    /// request's decode leg then arrives on its decode chip at `prefill
    /// finish + handoff latency` and the *decode stage* serves those legs
    /// ([`SessionPhase::DecodeOnly`], starting pre-filled, no DRAM fault
    /// on first admission). The two stages' chip pools must be disjoint —
    /// a chip hosting prefill-stage legs cannot also host decode-stage
    /// legs, because the stages would overlap in time on that chip
    /// ([`ServeError::PhaseOverlap`]).
    ///
    /// Under the default [`Colocated`] phase placement every request runs
    /// whole, the decode stage is empty, and
    /// [`DisaggReport::prefill_stage`] reproduces [`Cluster::serve`]'s
    /// report bit-exactly (the `tests/disagg_invariants.rs` contract).
    /// Deterministic: bit-identical across `MEADOW_THREADS`.
    ///
    /// **Migration note:** prefer the unified front door —
    /// `ServeSpec::builder().chips(n).phases(policy).build()?.run(..)`
    /// ([`ServeSpec`](crate::spec::ServeSpec)) — which selects this mode
    /// whenever a phase placement is set. This method stays as the thin
    /// mode-specific entry point underneath it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Serve`] for out-of-range base or phase
    /// placements and for overlapping stage pools; propagates
    /// trace-validation and measurement errors.
    pub fn serve_disaggregated(&self, trace: &ArrivalTrace) -> Result<DisaggReport, CoreError> {
        let chips = self.nodes.len();
        let model = &self.nodes[0].engine.config().model;
        trace.validate(model)?;
        let sizer = kv_sizer(model, &self.config.serve)?;

        // Placement: identical arrival ordering and load bookkeeping to
        // `serve`, so `Colocated` degenerates to it exactly. The combined
        // `loads` picture (both legs of every request) feeds the policies;
        // each stage's run sees only its own legs.
        let mut order: Vec<usize> = (0..trace.requests.len()).collect();
        order.sort_by(|&a, &b| {
            trace.requests[a]
                .arrival_ms
                .total_cmp(&trace.requests[b].arrival_ms)
                .then(trace.requests[a].id.cmp(&trace.requests[b].id))
        });
        let new_loads = || -> Vec<ChipLoad> {
            (0..chips)
                .map(|chip| ChipLoad {
                    chip,
                    assigned_requests: 0,
                    assigned_peak_kv_bytes: 0,
                    kv_budget_bytes: self.config.serve.kv_budget_bytes,
                    throughput_score_milli: throughput_score_milli(
                        self.nodes[chip].engine.config(),
                    ),
                })
                .collect()
        };
        let mut loads = new_loads();
        let mut pass_a_loads = new_loads();
        let mut pass_b_loads = new_loads();
        let mut assignment = vec![PhaseAssignment::colocated(0); trace.requests.len()];
        for (seq, &idx) in order.iter().enumerate() {
            let request = &trace.requests[idx];
            let base = self.config.placement.place(seq, request, &loads);
            if base >= chips {
                return Err(ServeError::PlacementOutOfRange { chip: base, chips }.into());
            }
            let pa = self.config.phase_placement.place_phases(seq, request, &loads, base);
            for chip in [pa.prefill_chip, pa.decode_chip] {
                if chip >= chips {
                    return Err(ServeError::PlacementOutOfRange { chip, chips }.into());
                }
            }
            let peak = sizer.bytes(request.final_context_len());
            if pa.is_split() {
                // The prefill chip only ever holds the prompt KV (it
                // leaves at the phase boundary); the decode chip holds the
                // request's full peak.
                let prompt_kv = sizer.bytes(request.prompt_tokens);
                loads[pa.prefill_chip].assigned_requests += 1;
                loads[pa.prefill_chip].assigned_peak_kv_bytes += prompt_kv;
                loads[pa.decode_chip].assigned_requests += 1;
                loads[pa.decode_chip].assigned_peak_kv_bytes += peak;
                pass_a_loads[pa.prefill_chip].assigned_requests += 1;
                pass_a_loads[pa.prefill_chip].assigned_peak_kv_bytes += prompt_kv;
                pass_b_loads[pa.decode_chip].assigned_requests += 1;
                pass_b_loads[pa.decode_chip].assigned_peak_kv_bytes += peak;
            } else {
                loads[pa.decode_chip].assigned_requests += 1;
                loads[pa.decode_chip].assigned_peak_kv_bytes += peak;
                pass_a_loads[pa.decode_chip].assigned_requests += 1;
                pass_a_loads[pa.decode_chip].assigned_peak_kv_bytes += peak;
            }
            assignment[idx] = pa;
        }

        // Prefill-stage shards (input order, like `serve`), plus the
        // disjointness check between the stage pools.
        let mut hosts_prefill = vec![false; chips];
        let mut hosts_decode = vec![false; chips];
        let mut shards_a: Vec<ArrivalTrace> = vec![ArrivalTrace::default(); chips];
        let mut phases_a: Vec<Vec<SessionPhase>> = vec![Vec::new(); chips];
        for (idx, request) in trace.requests.iter().enumerate() {
            let pa = assignment[idx];
            let phase = if pa.is_split() { SessionPhase::PrefillOnly } else { SessionPhase::Full };
            shards_a[pa.prefill_chip].requests.push(*request);
            phases_a[pa.prefill_chip].push(phase);
            hosts_prefill[pa.prefill_chip] = true;
            if pa.is_split() {
                hosts_decode[pa.decode_chip] = true;
            }
        }
        if let Some(chip) = (0..chips).find(|&c| hosts_prefill[c] && hosts_decode[c]) {
            return Err(ServeError::PhaseOverlap { chip }.into());
        }
        let prefill_stage =
            self.run_shards(&shards_a, &pass_a_loads, Some(&phases_a), trace.requests.len())?;

        // KV handoffs: one shared accounting NoC, charged in arrival order
        // (the cost model is contention-free, so ordering only needs to be
        // deterministic). A shed prefill leg hands nothing off.
        let clock = self.nodes[0].engine.config().chip.clock;
        let mut noc = Noc::new(self.config.noc)?;
        let mut handoffs = 0u64;
        let mut handoff_bytes = 0u64;
        let mut handoff_ms: BTreeMap<u32, f64> = BTreeMap::new();
        let mut shards_b: Vec<ArrivalTrace> = vec![ArrivalTrace::default(); chips];
        let mut phases_b: Vec<Vec<SessionPhase>> = vec![Vec::new(); chips];
        let mut decode_legs = 0usize;
        for &idx in &order {
            let pa = assignment[idx];
            if !pa.is_split() {
                continue;
            }
            let request = trace.requests[idx];
            let pre =
                prefill_stage.trace(request.id).expect("every request has a prefill-stage leg");
            if pre.rejected {
                continue;
            }
            let bytes = sizer.bytes(request.prompt_tokens);
            let hops = self.config.hops_between(pa.prefill_chip, pa.decode_chip);
            let ms = clock.to_ms(noc.transfer_hops(bytes, hops));
            handoffs += 1;
            handoff_bytes += bytes;
            handoff_ms.insert(request.id, ms);
            let mut leg = request;
            leg.arrival_ms = pre.finish_ms + ms;
            shards_b[pa.decode_chip].requests.push(leg);
            phases_b[pa.decode_chip].push(SessionPhase::DecodeOnly);
            decode_legs += 1;
        }
        let decode_stage = if decode_legs > 0 {
            Some(self.run_shards(&shards_b, &pass_b_loads, Some(&phases_b), decode_legs)?)
        } else {
            None
        };

        // Per-request summaries stitch the legs back together, in input
        // order. The wall-clock decode pace spans first token → last token
        // (handoff and decode-side queueing included).
        let pace = |first_token_ms: f64, finish_ms: f64, generated: usize| -> f64 {
            if generated == 0 {
                0.0
            } else {
                (finish_ms - first_token_ms) / generated as f64
            }
        };
        let mut summaries = Vec::with_capacity(trace.requests.len());
        for (idx, request) in trace.requests.iter().enumerate() {
            let pa = assignment[idx];
            let pre =
                prefill_stage.trace(request.id).expect("every request has a prefill-stage leg");
            let summary = if !pa.is_split() {
                RequestSummary {
                    id: request.id,
                    prefill_chip: pa.prefill_chip,
                    decode_chip: pa.decode_chip,
                    rejected: pre.rejected,
                    ttft_ms: if pre.rejected { 0.0 } else { pre.ttft_ms() },
                    handoff_ms: 0.0,
                    finish_ms: pre.finish_ms,
                    mean_tbt_ms: pace(pre.first_token_ms, pre.finish_ms, pre.generated_tokens),
                    generated_tokens: pre.generated_tokens as u64,
                }
            } else if pre.rejected {
                RequestSummary {
                    id: request.id,
                    prefill_chip: pa.prefill_chip,
                    decode_chip: pa.decode_chip,
                    rejected: true,
                    ttft_ms: 0.0,
                    handoff_ms: 0.0,
                    finish_ms: 0.0,
                    mean_tbt_ms: 0.0,
                    generated_tokens: 0,
                }
            } else {
                let dec = decode_stage
                    .as_ref()
                    .and_then(|s| s.trace(request.id))
                    .expect("surviving split request has a decode-stage leg");
                RequestSummary {
                    id: request.id,
                    prefill_chip: pa.prefill_chip,
                    decode_chip: pa.decode_chip,
                    rejected: dec.rejected,
                    ttft_ms: pre.ttft_ms(),
                    handoff_ms: handoff_ms.get(&request.id).copied().unwrap_or(0.0),
                    finish_ms: dec.finish_ms,
                    mean_tbt_ms: pace(pre.first_token_ms, dec.finish_ms, dec.generated_tokens),
                    generated_tokens: dec.generated_tokens as u64,
                }
            };
            summaries.push(summary);
        }

        let ttfts: Vec<f64> = summaries.iter().filter(|s| !s.rejected).map(|s| s.ttft_ms).collect();
        let ttft = LatencySummary::from_samples(ttfts);
        let paces: Vec<f64> = summaries
            .iter()
            .filter(|s| !s.rejected && s.generated_tokens > 0)
            .map(|s| s.mean_tbt_ms)
            .collect();
        let tbt = LatencySummary::from_samples(paces);
        let total_tokens = prefill_stage.total_generated_tokens
            + decode_stage.as_ref().map_or(0, |s| s.total_generated_tokens);
        let makespan =
            prefill_stage.makespan_ms.max(decode_stage.as_ref().map_or(0.0, |s| s.makespan_ms));
        Ok(DisaggReport {
            phase_placement: self.config.phase_placement.name().to_string(),
            requests: trace.requests.len(),
            split_requests: assignment.iter().filter(|pa| pa.is_split()).count() as u64,
            rejected_requests: summaries.iter().filter(|s| s.rejected).count() as u64,
            total_generated_tokens: total_tokens,
            makespan_ms: makespan,
            tokens_per_sec: if makespan > 0.0 {
                total_tokens as f64 / (makespan / 1e3)
            } else {
                0.0
            },
            p50_ttft_ms: ttft.p50_ms,
            p95_ttft_ms: ttft.p95_ms,
            p50_tbt_ms: tbt.p50_ms,
            p95_tbt_ms: tbt.p95_ms,
            handoff: HandoffStats {
                split_requests: handoffs,
                handoff_bytes,
                noc_link_bytes: noc.total_bytes(),
                noc_link_cycles: noc.total_link_cycles(),
            },
            prefill_stage,
            decode_stage,
            summaries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::serve::{serve, KvPolicy};
    use meadow_models::presets;

    fn engine() -> MeadowEngine {
        MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0)).unwrap()
    }

    #[test]
    fn builder_validates_at_construction() {
        assert_eq!(ClusterConfig::builder().chips(0).build().unwrap_err(), ServeError::ZeroChips);
        assert_eq!(
            ClusterConfig::builder()
                .serve(ServeConfig::default().with_max_batch(0))
                .build()
                .unwrap_err(),
            ServeError::ZeroMaxBatch
        );
        assert_eq!(
            ClusterConfig::builder()
                .serve(ServeConfig::default().with_policy(KvPolicy::PagedLru).with_page_bytes(0))
                .build()
                .unwrap_err(),
            ServeError::ZeroPageBytes
        );
        let ok = ClusterConfig::builder()
            .chips(4)
            .placement(LeastLoadedKv)
            .migration(ToLeastLoaded)
            .build()
            .unwrap();
        assert_eq!(ok.chips(), 4);
        assert_eq!(ok.placement_name(), "least-loaded-kv");
        assert_eq!(ok.migration_name(), "to-least-loaded");
    }

    #[test]
    fn placement_policies_route_deterministically() {
        let loads: Vec<ChipLoad> = [(0, 100u64), (1, 40), (2, 70)]
            .into_iter()
            .map(|(chip, kv)| ChipLoad {
                chip,
                assigned_requests: 1,
                assigned_peak_kv_bytes: kv,
                kv_budget_bytes: Some(200),
                throughput_score_milli: 1000,
            })
            .collect();
        let req = ServeRequest::new(9, 0.0, 16, 8);
        assert_eq!(RoundRobin.place(0, &req, &loads), 0);
        assert_eq!(RoundRobin.place(5, &req, &loads), 2);
        assert_eq!(LeastLoadedKv.place(0, &req, &loads), 1);
        // Affinity hints route modulo the chip count; no hint hashes the id
        // (stable across calls).
        assert_eq!(SessionAffinity.place(0, &req.with_affinity(7), &loads), 1);
        let hashed = SessionAffinity.place(0, &req, &loads);
        assert_eq!(hashed, SessionAffinity.place(3, &req, &loads));
        assert!(hashed < 3);
    }

    #[test]
    fn migration_policy_picks_roomiest_reachable_chip() {
        let headroom = [0u64, 500, 900, 900];
        let hops = [0u32, 1, 2, 3];
        let snap = MigrationSnapshot { source: 0, headroom: &headroom, hops: &hops };
        // Ties on headroom break to the fewer-hop chip.
        assert_eq!(ToLeastLoaded.choose_target(100, &snap), Some(2));
        // Chips without room are skipped; nothing fits → DRAM.
        assert_eq!(ToLeastLoaded.choose_target(600, &snap), Some(2));
        assert_eq!(ToLeastLoaded.choose_target(1000, &snap), None);
        assert_eq!(ToLeastLoaded.choose_target(0, &snap), None);
        assert_eq!(NoMigration.choose_target(100, &snap), None);
    }

    #[test]
    fn migration_ctx_parks_and_pulls_back_conservatively() {
        let policy = ToLeastLoaded;
        let mut ctx =
            MigrationCtx::new(&policy, 0, vec![0, 1000, 300], vec![0, 1, 2], NocConfig::default())
                .unwrap();
        // First park picks chip 1 (roomiest); the session sticks to it.
        assert!(ctx.park(7, 400).is_some());
        assert!(ctx.park(7, 400).is_some());
        // Its share is exhausted now: overflow spills to DRAM.
        assert!(ctx.park(7, 400).is_none());
        // Reload pulls back only what is parked; headroom is returned.
        let (_, pulled) = ctx.pull_back(7, 1000);
        assert_eq!(pulled, 800);
        assert_eq!(ctx.pull_back(7, 10), (Cycles::ZERO, 0));
        assert!(ctx.park(7, 900).is_some(), "returned headroom is reusable");
        let stats = ctx.into_stats();
        assert_eq!(stats.migrated_out_bytes, 400 + 400 + 900);
        assert_eq!(stats.reloaded_remote_bytes, 800);
        assert_eq!(stats.migration_events, 3);
        // One hop to chip 1: link bytes equal payload bytes.
        assert_eq!(stats.noc_link_bytes, 400 + 400 + 900 + 800);
        assert!(stats.noc_link_cycles > 0);
    }

    #[test]
    fn single_chip_cluster_matches_serve_bit_exactly() {
        let e = engine();
        let model = presets::tiny_decoder();
        let trace = ArrivalTrace::uniform(4, 0.0, 16, 8);
        let budget = 2 * trace.requests[0].peak_kv_bytes(&model);
        let config = ServeConfig::default().with_budget(budget).with_max_batch(2);
        let single = serve(&e, &trace, &config).unwrap();
        let report = Cluster::single_chip(e, config).unwrap().serve(&trace).unwrap();
        assert_eq!(report.chips, 1);
        assert_eq!(report.per_chip[0].report, single);
        assert_eq!(report.migrated_out_bytes, 0);
        assert_eq!(report.p50_latency_ms, single.p50_latency_ms);
        assert_eq!(report.makespan_ms, single.makespan_ms);
    }

    #[test]
    fn out_of_range_placement_is_rejected() {
        #[derive(Debug)]
        struct Wild;
        impl PlacementPolicy for Wild {
            fn name(&self) -> &'static str {
                "wild"
            }
            fn place(&self, _: usize, _: &ServeRequest, loads: &[ChipLoad]) -> usize {
                loads.len()
            }
        }
        let config = ClusterConfig::builder().chips(2).placement(Wild).build().unwrap();
        let err = Cluster::new(engine(), config)
            .serve(&ArrivalTrace::uniform(2, 0.0, 16, 4))
            .unwrap_err();
        assert_eq!(err, CoreError::Serve(ServeError::PlacementOutOfRange { chip: 2, chips: 2 }));
    }

    #[test]
    fn empty_trace_yields_empty_cluster_report() {
        let config = ClusterConfig::builder().chips(3).build().unwrap();
        let report = Cluster::new(engine(), config).serve(&ArrivalTrace::default()).unwrap();
        assert_eq!(report.requests, 0);
        assert_eq!(report.total_generated_tokens, 0);
        assert_eq!(report.makespan_ms, 0.0);
        assert_eq!(report.tokens_per_sec, 0.0);
        assert_eq!(report.kv_imbalance, 1.0);
        assert_eq!(report.per_chip.len(), 3);
    }

    #[test]
    fn migration_replaces_dram_spill_under_pressure() {
        let model = presets::tiny_decoder();
        // All requests at t=0 so scheduling is independent of cycle costs:
        // the with/without-migration runs make identical eviction
        // decisions and differ only in where the bytes move. Affinity
        // hints skew 5 of 6 requests onto chip 0, leaving chip 1 with a
        // full session of donatable headroom.
        let trace = ArrivalTrace::new(
            (0..6u32)
                .map(|i| ServeRequest::new(i, 0.0, 16, 8).with_affinity(u32::from(i == 5)))
                .collect(),
        );
        let single = trace.requests[0].peak_kv_bytes(&model);
        let serve_config = ServeConfig::default()
            .with_budget(2 * single)
            .with_policy(KvPolicy::PagedLru)
            .with_page_bytes(256)
            .with_max_batch(1);
        let run = |migrate: bool| {
            let builder =
                ClusterConfig::builder().chips(2).serve(serve_config).placement(SessionAffinity);
            let config =
                if migrate { builder.migration(ToLeastLoaded) } else { builder }.build().unwrap();
            Cluster::new(engine(), config).serve(&trace).unwrap()
        };
        let without = run(false);
        let with = run(true);
        assert_eq!(without.migrated_out_bytes, 0);
        assert!(without.dram_kv_bytes > 0, "the workload must spill");
        assert!(with.migrated_out_bytes > 0, "migration must fire");
        // Migration replaces DRAM spill byte for byte.
        assert_eq!(
            with.dram_kv_bytes + with.migrated_out_bytes + with.reloaded_remote_bytes,
            without.dram_kv_bytes
        );
        assert!(with.migrated_out_bytes <= without.dram_kv_bytes);
        assert_eq!(with.total_generated_tokens, without.total_generated_tokens);
    }

    #[test]
    fn cluster_report_round_trips_through_json() {
        let config = ClusterConfig::builder()
            .chips(2)
            .placement(LeastLoadedKv)
            .migration(ToLeastLoaded)
            .build()
            .unwrap();
        let report =
            Cluster::new(engine(), config).serve(&ArrivalTrace::uniform(3, 0.5, 8, 2)).unwrap();
        let json = report.to_json().unwrap();
        let parsed: ClusterReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, report);
        assert!(report.trace(2).is_some());
        assert!(report.trace(99).is_none());
    }

    #[test]
    fn self_migration_is_rejected_as_free_parking() {
        // An adversarial policy that always targets the evicting chip
        // itself. `Noc::transfer_hops` charges nothing for zero hops, so
        // if this were honored the bytes would "migrate" for free without
        // touching the interconnect; the MigrationCtx must fall back to
        // the ordinary DRAM spill instead.
        #[derive(Debug)]
        struct ParkOnSelf;
        impl MigrationPolicy for ParkOnSelf {
            fn name(&self) -> &'static str {
                "park-on-self"
            }
            fn choose_target(&self, _: u64, snapshot: &MigrationSnapshot<'_>) -> Option<usize> {
                Some(snapshot.source)
            }
        }
        // Same pressure scenario as migration_replaces_dram_spill_under_
        // pressure: chip 0 oversubscribed, chip 1 with donatable headroom.
        let trace = ArrivalTrace::new(
            (0..6u32)
                .map(|i| ServeRequest::new(i, 0.0, 16, 8).with_affinity(u32::from(i == 5)))
                .collect(),
        );
        let model = presets::tiny_decoder();
        let single = trace.requests[0].peak_kv_bytes(&model);
        let serve_config = ServeConfig::default()
            .with_budget(2 * single)
            .with_policy(KvPolicy::PagedLru)
            .with_page_bytes(256)
            .with_max_batch(1);
        let run = |migration: Box<dyn MigrationPolicy>| {
            let mut builder =
                ClusterConfig::builder().chips(2).serve(serve_config).placement(SessionAffinity);
            builder.migration = migration;
            Cluster::new(engine(), builder.build().unwrap()).serve(&trace).unwrap()
        };
        let honest = run(Box::new(NoMigration));
        let selfish = run(Box::new(ParkOnSelf));
        assert!(honest.dram_kv_bytes > 0, "the workload must spill");
        // The self-target never migrates: no parked bytes, no NoC traffic,
        // and exactly the DRAM spill the no-migration run pays.
        assert_eq!(selfish.migrated_out_bytes, 0);
        assert_eq!(selfish.migration_events, 0);
        assert_eq!(selfish.noc_link_bytes, 0);
        assert_eq!(selfish.noc_link_cycles, 0);
        assert_eq!(selfish.dram_kv_bytes, honest.dram_kv_bytes);
        assert_eq!(selfish.total_generated_tokens, honest.total_generated_tokens);
    }

    #[test]
    fn phase_placements_route_deterministically() {
        let loads: Vec<ChipLoad> = (0..4)
            .map(|chip| ChipLoad {
                chip,
                assigned_requests: 0,
                assigned_peak_kv_bytes: 0,
                kv_budget_bytes: None,
                throughput_score_milli: 1000,
            })
            .collect();
        let req = ServeRequest::new(0, 0.0, 16, 8);
        // Colocated always follows the base placement.
        for base in 0..4 {
            let pa = Colocated.place_phases(7, &req, &loads, base);
            assert_eq!(pa, PhaseAssignment::colocated(base));
            assert!(!pa.is_split());
        }
        // A 1+3 split round-robins decode over chips 1..4.
        let split = PrefillDecodeSplit { prefill_chips: 1 };
        for seq in 0..6 {
            let pa = split.place_phases(seq, &req, &loads, 3);
            assert_eq!(pa.prefill_chip, 0);
            assert_eq!(pa.decode_chip, 1 + seq % 3);
            assert!(pa.is_split());
        }
        // Degenerate pool sizes collapse to the base placement.
        for degenerate in [0, 4, 5] {
            let pa =
                PrefillDecodeSplit { prefill_chips: degenerate }.place_phases(2, &req, &loads, 3);
            assert_eq!(pa, PhaseAssignment::colocated(3));
        }
    }

    #[test]
    fn overlapping_phase_pools_are_rejected() {
        // Splits even requests 0→1 but colocates odd requests on chip 1:
        // chip 1 would need to serve prefill-stage legs and decode-stage
        // legs at once.
        #[derive(Debug)]
        struct Tangled;
        impl PhasePlacement for Tangled {
            fn name(&self) -> &'static str {
                "tangled"
            }
            fn place_phases(
                &self,
                seq: usize,
                _: &ServeRequest,
                _: &[ChipLoad],
                _: usize,
            ) -> PhaseAssignment {
                if seq.is_multiple_of(2) {
                    PhaseAssignment { prefill_chip: 0, decode_chip: 1 }
                } else {
                    PhaseAssignment::colocated(1)
                }
            }
        }
        let config = ClusterConfig::builder().chips(2).phase_placement(Tangled).build().unwrap();
        let err = Cluster::new(engine(), config)
            .serve_disaggregated(&ArrivalTrace::uniform(4, 0.0, 8, 2))
            .unwrap_err();
        assert_eq!(err, CoreError::Serve(ServeError::PhaseOverlap { chip: 1 }));
    }

    #[test]
    fn out_of_range_phase_placement_is_rejected() {
        #[derive(Debug)]
        struct WildPhases;
        impl PhasePlacement for WildPhases {
            fn name(&self) -> &'static str {
                "wild-phases"
            }
            fn place_phases(
                &self,
                _: usize,
                _: &ServeRequest,
                loads: &[ChipLoad],
                _: usize,
            ) -> PhaseAssignment {
                PhaseAssignment { prefill_chip: 0, decode_chip: loads.len() }
            }
        }
        let config = ClusterConfig::builder().chips(2).phase_placement(WildPhases).build().unwrap();
        let err = Cluster::new(engine(), config)
            .serve_disaggregated(&ArrivalTrace::uniform(2, 0.0, 8, 2))
            .unwrap_err();
        assert_eq!(err, CoreError::Serve(ServeError::PlacementOutOfRange { chip: 2, chips: 2 }));
    }

    #[test]
    fn disaggregated_split_hands_off_and_decodes_remotely() {
        let model = presets::tiny_decoder();
        let trace = ArrivalTrace::uniform(4, 0.01, 16, 8);
        let config = ClusterConfig::builder()
            .chips(2)
            .phase_placement(PrefillDecodeSplit { prefill_chips: 1 })
            .build()
            .unwrap();
        let report = Cluster::new(engine(), config).serve_disaggregated(&trace).unwrap();
        assert_eq!(report.phase_placement, "prefill-decode-split");
        assert_eq!(report.requests, 4);
        assert_eq!(report.split_requests, 4);
        assert_eq!(report.rejected_requests, 0);
        assert_eq!(report.total_generated_tokens, 4 * 8);
        // The prefill stage generates nothing (all legs are prefill-only);
        // every token comes out of the decode stage.
        assert_eq!(report.prefill_stage.total_generated_tokens, 0);
        let decode = report.decode_stage.as_ref().expect("split requests need a decode stage");
        assert_eq!(decode.total_generated_tokens, 4 * 8);
        // Handoff bytes conserve exactly: one prompt KV per split request.
        let expected: u64 = trace.requests.iter().map(|r| r.prompt_kv_bytes(&model)).sum();
        assert_eq!(report.handoff.split_requests, 4);
        assert_eq!(report.handoff.handoff_bytes, expected);
        // One hop between chips 0 and 1: link bytes == payload bytes.
        assert_eq!(report.handoff.noc_link_bytes, expected);
        assert!(report.handoff.noc_link_cycles > 0);
        for s in &report.summaries {
            assert_eq!(s.prefill_chip, 0);
            assert_eq!(s.decode_chip, 1);
            assert!(s.handoff_ms > 0.0);
            assert!(s.ttft_ms > 0.0);
            assert!(s.finish_ms > s.ttft_ms, "decode finishes after the first token");
            assert!(s.mean_tbt_ms > 0.0);
        }
        let json = report.to_json().unwrap();
        let parsed: DisaggReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, report);
        assert!(report.summary(0).is_some());
        assert!(report.summary(99).is_none());
    }
}
