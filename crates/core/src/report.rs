//! Table formatting and CSV emission for the reproduction harness.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A simple text table with aligned columns.
///
/// # Example
///
/// ```
/// use meadow_core::report::Table;
///
/// let mut t = Table::new(["bw", "ttft"]);
/// t.row(["12", "26.5"]);
/// assert!(t.to_string().contains("ttft"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serializes as CSV.
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV form to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut f = fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(f, "{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "))?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Formats milliseconds with three significant decimals.
pub fn fmt_ms(ms: f64) -> String {
    format!("{ms:.3}")
}

/// Formats a speedup factor as `1.53x`.
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_padding() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]).row(["long-name"]);
        let s = t.to_string();
        assert!(s.contains("name"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x,y", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn csv_round_trip_to_disk() {
        let dir = std::env::temp_dir().join("meadow-report-test");
        let path = dir.join("t.csv");
        let mut t = Table::new(["h"]);
        t.row(["v"]);
        t.write_csv(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, "h\nv\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ms(1.23456), "1.235");
        assert_eq!(fmt_speedup(1.528), "1.53x");
    }
}
