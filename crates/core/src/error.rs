//! Error type for the framework layer.

use crate::serve::ServeError;
use meadow_dataflow::DataflowError;
use meadow_models::ModelError;
use meadow_packing::PackingError;
use meadow_sim::SimError;
use std::error::Error;
use std::fmt;

/// Error returned by the MEADOW framework.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Propagated dataflow error.
    Dataflow(DataflowError),
    /// Propagated model error.
    Model(ModelError),
    /// Propagated hardware-model error.
    Sim(SimError),
    /// Propagated packing error.
    Packing(PackingError),
    /// A serving or cluster configuration is invalid (typed, so callers
    /// can match the exact rejection instead of parsing a message).
    Serve(ServeError),
    /// An engine configuration is invalid.
    InvalidConfig {
        /// Parameter name.
        param: &'static str,
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Dataflow(e) => write!(f, "dataflow error: {e}"),
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::Sim(e) => write!(f, "hardware error: {e}"),
            CoreError::Packing(e) => write!(f, "packing error: {e}"),
            CoreError::Serve(e) => write!(f, "serving error: {e}"),
            CoreError::InvalidConfig { param, reason } => {
                write!(f, "invalid engine config `{param}`: {reason}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Dataflow(e) => Some(e),
            CoreError::Model(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            CoreError::Packing(e) => Some(e),
            CoreError::Serve(e) => Some(e),
            CoreError::InvalidConfig { .. } => None,
        }
    }
}

impl From<DataflowError> for CoreError {
    fn from(e: DataflowError) -> Self {
        CoreError::Dataflow(e)
    }
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<PackingError> for CoreError {
    fn from(e: PackingError) -> Self {
        CoreError::Packing(e)
    }
}

impl From<ServeError> for CoreError {
    fn from(e: ServeError) -> Self {
        CoreError::Serve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: CoreError = SimError::UnknownId { kind: "task", id: 0 }.into();
        assert!(e.source().is_some());
        let e: CoreError = PackingError::ZeroChunkSize.into();
        assert!(!e.to_string().is_empty());
        let e = CoreError::InvalidConfig { param: "bw", reason: "zero".into() };
        assert!(e.source().is_none());
        let e: CoreError = ServeError::ZeroMaxBatch.into();
        assert_eq!(e, CoreError::Serve(ServeError::ZeroMaxBatch));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("serving error"));
    }
}
