//! Prior-work execution models of §6.4 / Table 2, re-implemented on the
//! MEADOW architecture exactly as the paper does for its comparison.
//!
//! | Work | KV/Proj/MLP | Q, SM(QKᵀ)·V | Quant | Weight packing |
//! |---|---|---|---|---|
//! | CTA | GEMM | GEMM (compressed tokens) | W8A8 | ✗ |
//! | FlightLLM | GEMM (N:M sparse compute) | GEMM (on-chip decode intermediates) | W8A8 | ✗ |
//! | MEADOW | GEMM (packed) | TPHS (packed) | W8A8 | ✓ |
//!
//! CTA's token compression processes only the essential fraction of tokens
//! in the attention chain but still round-trips the surviving intermediates
//! through DRAM. FlightLLM's N:M sparsity halves matmul compute and keeps
//! decode-time attention intermediates on chip, but fetches dense weights
//! and leaves prefill intermediate traffic unoptimized.

use crate::engine::{EngineConfig, MeadowEngine};
use crate::error::CoreError;
use meadow_dataflow::schedule::ScheduleKnobs;
use meadow_dataflow::ExecutionPlan;
use meadow_models::TransformerConfig;
use serde::{Deserialize, Serialize};

/// The systems compared in Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Baseline {
    /// Plain GEMM execution of every layer (the paper's primary baseline).
    Gemm,
    /// CTA (Wang et al., HPCA 2023): compressed token attention.
    Cta {
        /// Fraction of tokens kept as "essential" (the paper's CTA setting
        /// retains roughly half the tokens).
        keep_ratio: f64,
    },
    /// FlightLLM (Zeng et al., FPGA 2024): N:M sparse acceleration.
    FlightLlm {
        /// Non-zeros per group (N of N:M).
        n: u32,
        /// Group size (M of N:M).
        m: u32,
    },
    /// MEADOW (this paper).
    Meadow,
}

impl Baseline {
    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            Baseline::Gemm => "GEMM",
            Baseline::Cta { .. } => "CTA",
            Baseline::FlightLlm { .. } => "FlightLLM",
            Baseline::Meadow => "MEADOW",
        }
    }

    /// The paper's comparison set with its published settings: CTA keeping
    /// half the tokens, FlightLLM at 2:4 sparsity, and MEADOW.
    pub fn comparison_set() -> [Baseline; 4] {
        [
            Baseline::Gemm,
            Baseline::Cta { keep_ratio: 0.5 },
            Baseline::FlightLlm { n: 2, m: 4 },
            Baseline::Meadow,
        ]
    }

    /// Builds the engine configuration implementing this baseline on the
    /// given model and bandwidth (Table 2 settings).
    pub fn engine_config(&self, model: TransformerConfig, bandwidth_gbps: f64) -> EngineConfig {
        let base = EngineConfig::zcu102(model, bandwidth_gbps);
        match *self {
            Baseline::Gemm => EngineConfig { plan: ExecutionPlan::gemm_baseline(), ..base },
            Baseline::Cta { keep_ratio } => EngineConfig {
                plan: ExecutionPlan::gemm_baseline(),
                knobs: ScheduleKnobs {
                    attention_token_scale: keep_ratio.clamp(0.0, 1.0),
                    ..ScheduleKnobs::default()
                },
                ..base
            },
            Baseline::FlightLlm { n, m } => EngineConfig {
                plan: ExecutionPlan::gemm_baseline(),
                knobs: ScheduleKnobs {
                    weight_compute_scale: f64::from(n) / f64::from(m.max(1)),
                    onchip_decode_intermediates: true,
                    ..ScheduleKnobs::default()
                },
                ..base
            },
            Baseline::Meadow => base,
        }
    }

    /// Builds a ready engine for this baseline.
    ///
    /// # Errors
    ///
    /// Propagates engine-construction errors.
    pub fn engine(
        &self,
        model: TransformerConfig,
        bandwidth_gbps: f64,
    ) -> Result<MeadowEngine, CoreError> {
        MeadowEngine::new(self.engine_config(model, bandwidth_gbps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meadow_models::presets;

    #[test]
    fn names_and_set() {
        let set = Baseline::comparison_set();
        assert_eq!(set.len(), 4);
        assert_eq!(set[0].name(), "GEMM");
        assert_eq!(set[3].name(), "MEADOW");
    }

    #[test]
    fn cta_prefill_is_faster_than_gemm_but_slower_than_meadow() {
        let model = presets::opt_125m();
        let gemm = Baseline::Gemm.engine(model.clone(), 12.0).unwrap();
        let cta = Baseline::Cta { keep_ratio: 0.5 }.engine(model.clone(), 12.0).unwrap();
        let meadow = Baseline::Meadow.engine(model, 12.0).unwrap();
        let g = gemm.prefill_latency(512).unwrap().total_ms();
        let c = cta.prefill_latency(512).unwrap().total_ms();
        let m = meadow.prefill_latency(512).unwrap().total_ms();
        assert!(c < g, "CTA {c} !< GEMM {g}");
        assert!(m < c, "MEADOW {m} !< CTA {c}");
    }

    #[test]
    fn flightllm_decode_beats_gemm_but_meadow_wins() {
        let model = presets::opt_125m();
        let gemm = Baseline::Gemm.engine(model.clone(), 12.0).unwrap();
        let fl = Baseline::FlightLlm { n: 2, m: 4 }.engine(model.clone(), 12.0).unwrap();
        let meadow = Baseline::Meadow.engine(model, 12.0).unwrap();
        let g = gemm.decode_latency(512, 64).unwrap().total_ms();
        let f = fl.decode_latency(512, 64).unwrap().total_ms();
        let m = meadow.decode_latency(512, 64).unwrap().total_ms();
        assert!(f <= g, "FlightLLM {f} !<= GEMM {g}");
        assert!(m < f, "MEADOW {m} !< FlightLLM {f}");
    }

    #[test]
    fn meadow_end_to_end_improvement_is_substantial() {
        // §6.4 claims "over 40%" end-to-end improvement vs FlightLLM and
        // CTA on OPT-125M; this substrate reproduces 27-40% depending on
        // bandwidth/workload mix (recorded in EXPERIMENTS.md). Assert the
        // floor here; the calibration integration test pins the bands.
        let model = presets::opt_125m();
        let meadow = Baseline::Meadow.engine(model.clone(), 12.0).unwrap();
        let m = meadow.end_to_end_latency(512, 64).unwrap().total_ms;
        for baseline in [Baseline::Cta { keep_ratio: 0.5 }, Baseline::FlightLlm { n: 2, m: 4 }] {
            let other = baseline.engine(model.clone(), 12.0).unwrap();
            let o = other.end_to_end_latency(512, 64).unwrap().total_ms;
            let improvement = (o - m) / o;
            assert!(
                improvement > 0.25,
                "{}: improvement {improvement:.2} (MEADOW {m:.1} ms vs {o:.1} ms)",
                baseline.name()
            );
        }
    }

    #[test]
    fn flightllm_sparsity_reduces_compute() {
        let model = presets::tiny_decoder();
        let dense = Baseline::Gemm.engine(model.clone(), 12.0).unwrap();
        let sparse = Baseline::FlightLlm { n: 2, m: 4 }.engine(model, 12.0).unwrap();
        let d = dense.prefill_latency(16).unwrap();
        let s = sparse.prefill_latency(16).unwrap();
        let (_, dc, _) = d.components();
        let (_, sc, _) = s.components();
        assert!(sc < dc, "sparse compute {sc} !< dense {dc}");
    }
}
