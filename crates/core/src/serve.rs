//! Multi-session serving simulator with KV-cache memory accounting.
//!
//! [`InferenceSession`](crate::session::InferenceSession) walks one request
//! at a time; a deployed edge accelerator instead serves many concurrent
//! sessions contending for one KV-cache memory budget. This module runs an
//! [`ArrivalTrace`] of requests through a single [`MeadowEngine`] under a
//! continuous-batching scheduler:
//!
//! * **Admission** is head-of-line in arrival order: a request is admitted
//!   only when its next step's KV cache fits alongside every resident
//!   session's, against an explicit per-chip budget
//!   ([`ServeConfig::kv_budget_bytes`], sized with
//!   [`kv_cache_total_bytes`]).
//! * **Eviction** frees residency when the growing caches of admitted
//!   sessions overflow the budget, under a [`KvPolicy`] (FIFO by admission
//!   recency or LRU by stepping recency). Spills and reloads are charged on
//!   the engine's DRAM channel under
//!   [`TrafficClass::KvCache`](meadow_sim::TrafficClass), on top of the
//!   per-step attention traffic.
//! * **Batching** interleaves prefill and decode steps: each scheduler tick
//!   pipelines the batch through the model's layers like a flow shop
//!   (stages = decoder layers, items = per-session steps, via
//!   [`flow_shop_completion_times`]), so the tick costs far less than the
//!   sum of its steps while every step is still measured with the exact
//!   [`MeadowEngine::prefill_latency`]/[`MeadowEngine::decode_latency`]
//!   machinery.
//!
//! The output is a per-request [`ServeTrace`] (queue wait, TTFT, TBT
//! series, evictions) and an aggregate [`ServeReport`] (p50/p95 latency,
//! tokens/sec, peak KV residency, migration traffic). Both are
//! deterministic — bit-identical across `MEADOW_THREADS` settings — and a
//! run with an unbounded budget reproduces exactly the per-token service
//! latencies of independent sessions (the `tests/serve_invariants.rs`
//! contract).

use crate::engine::{LatencyReport, MeadowEngine};
use crate::error::CoreError;
use meadow_dataflow::pipeline::flow_shop_completion_times;
use meadow_dataflow::LayerLatency;
use meadow_models::workload::{kv_cache_total_bytes, ArrivalTrace, ServeRequest};
use meadow_models::TransformerConfig;
use meadow_sim::{Cycles, TrafficClass, TrafficLedger};
use meadow_tensor::parallel::par_map;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Eviction policy for the serving KV-cache pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KvPolicy {
    /// Evict the session (re)admitted longest ago.
    Fifo,
    /// Evict the session stepped longest ago.
    Lru,
}

/// Configuration of one serving run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Per-chip KV-cache memory budget in bytes (`None` = unbounded). Every
    /// request's peak KV cache must fit the budget on its own.
    pub kv_budget_bytes: Option<u64>,
    /// Eviction policy when resident caches overflow the budget.
    pub policy: KvPolicy,
    /// Maximum sessions stepped per scheduler tick (continuous-batching
    /// batch size). Admitted sessions beyond the cap stay resident but
    /// idle; the least recently stepped sessions are scheduled first.
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { kv_budget_bytes: None, policy: KvPolicy::Fifo, max_batch: usize::MAX }
    }
}

impl ServeConfig {
    /// Unbounded KV budget (no eviction can occur).
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// The same configuration with a finite KV budget.
    pub fn with_budget(self, kv_budget_bytes: u64) -> Self {
        Self { kv_budget_bytes: Some(kv_budget_bytes), ..self }
    }

    /// The same configuration with a different eviction policy.
    pub fn with_policy(self, policy: KvPolicy) -> Self {
        Self { policy, ..self }
    }

    /// The same configuration with a batch-size cap.
    pub fn with_max_batch(self, max_batch: usize) -> Self {
        Self { max_batch, ..self }
    }
}

/// Serving-side record of one completed request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeTrace {
    /// Request identifier.
    pub id: u32,
    /// Prompt length.
    pub prompt_tokens: usize,
    /// Tokens generated (always equals the requested count).
    pub generated_tokens: usize,
    /// Arrival time on the serving clock, in ms.
    pub arrival_ms: f64,
    /// Arrival → first admission, in ms.
    pub queue_wait_ms: f64,
    /// Own prefill service latency in ms — comparable to
    /// [`SessionTrace::ttft_ms`](crate::session::SessionTrace) and
    /// independent of batching.
    pub prefill_ms: f64,
    /// Wall-clock time the first token completed, in ms.
    pub first_token_ms: f64,
    /// Wall-clock time the last token completed, in ms.
    pub finish_ms: f64,
    /// Own per-token service latency in ms, including KV reload penalties
    /// after eviction (index 0 = first generated token).
    pub tbt_ms: Vec<f64>,
    /// Times this session's KV cache was evicted from the pool.
    pub evictions: u32,
    /// KV-cache bytes at the end of generation.
    pub final_kv_bytes: u64,
}

impl ServeTrace {
    /// Arrival → last token, in ms (what the user experienced).
    pub fn total_latency_ms(&self) -> f64 {
        self.finish_ms - self.arrival_ms
    }

    /// Arrival → first token, in ms (the serving-side TTFT: queue wait plus
    /// batched prefill completion).
    pub fn ttft_ms(&self) -> f64 {
        self.first_token_ms - self.arrival_ms
    }
}

/// Aggregate result of one serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Eviction policy used.
    pub policy: KvPolicy,
    /// KV budget in bytes (`None` = unbounded).
    pub kv_budget_bytes: Option<u64>,
    /// Batch-size cap used.
    pub max_batch: usize,
    /// Number of requests served.
    pub requests: usize,
    /// Total tokens generated across all requests.
    pub total_generated_tokens: u64,
    /// Scheduler ticks executed.
    pub ticks: u64,
    /// Wall-clock end of the run on the serving clock, in ms.
    pub makespan_ms: f64,
    /// Generated-token throughput over the whole run.
    pub tokens_per_sec: f64,
    /// Median request latency (arrival → last token), in ms.
    pub p50_latency_ms: f64,
    /// 95th-percentile request latency, in ms.
    pub p95_latency_ms: f64,
    /// Peak simultaneous KV-cache residency in bytes.
    pub peak_kv_bytes: u64,
    /// Total evictions across all sessions.
    pub total_evictions: u64,
    /// DRAM traffic of the whole run: per-step fetch/compute/store classes
    /// plus serving-level [`TrafficClass::KvCache`] migration.
    pub ledger: TrafficLedger,
    /// Per-request traces, in the input trace's request order.
    pub traces: Vec<ServeTrace>,
}

impl ServeReport {
    /// Looks up a trace by request id.
    pub fn trace(&self, id: u32) -> Option<&ServeTrace> {
        self.traces.iter().find(|t| t.id == id)
    }

    /// Pretty JSON for artifacts and golden snapshots.
    ///
    /// # Errors
    ///
    /// Propagates serialization errors from the vendored serde_json.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

/// Scheduler-internal state of one request.
#[derive(Debug, Clone)]
struct Session {
    req: ServeRequest,
    generated: usize,
    prefilled: bool,
    evictions: u32,
    /// Sequence number of the most recent (re)admission.
    admission_seq: u64,
    /// Tick of the most recent step (0 = never stepped).
    last_step_tick: u64,
    /// Set at first admission.
    queue_wait_ms: Option<f64>,
    /// KV bytes spilled at the last eviction, to reload on re-admission.
    spilled_kv_bytes: u64,
    /// KV bytes to reload before the next step.
    pending_reload_bytes: u64,
    prefill_ms: f64,
    first_token_ms: f64,
    finish_ms: f64,
    tbt_ms: Vec<f64>,
}

impl Session {
    fn new(req: ServeRequest) -> Self {
        Self {
            req,
            generated: 0,
            prefilled: false,
            evictions: 0,
            admission_seq: 0,
            last_step_tick: 0,
            queue_wait_ms: None,
            spilled_kv_bytes: 0,
            pending_reload_bytes: 0,
            prefill_ms: 0.0,
            first_token_ms: 0.0,
            finish_ms: 0.0,
            tbt_ms: Vec::new(),
        }
    }

    /// KV bytes the session holds while resident (prompt + generated so
    /// far; nothing before prefill).
    fn resident_kv(&self, model: &TransformerConfig) -> u64 {
        if self.prefilled {
            kv_cache_total_bytes(model, self.req.prompt_tokens + self.generated)
        } else {
            0
        }
    }

    /// KV bytes the session will hold after its next step (prefill writes
    /// the whole prompt's keys/values; each decode step appends one token).
    fn next_kv(&self, model: &TransformerConfig) -> u64 {
        if self.prefilled {
            kv_cache_total_bytes(model, self.req.prompt_tokens + self.generated + 1)
        } else {
            kv_cache_total_bytes(model, self.req.prompt_tokens)
        }
    }

    fn victim_key(&self, policy: KvPolicy) -> (u64, u64, u32) {
        match policy {
            KvPolicy::Fifo => (self.admission_seq, self.last_step_tick, self.req.id),
            KvPolicy::Lru => (self.last_step_tick, self.admission_seq, self.req.id),
        }
    }
}

/// Nearest-rank percentile of a sorted sample (0 for an empty one).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[idx - 1]
}

/// Runs an arrival trace through the engine under a continuous-batching
/// scheduler, returning the aggregate report. See the module docs for the
/// scheduling and KV-accounting model.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] when `max_batch` is zero or any
/// request's peak KV cache exceeds the budget on its own (such a request
/// could never run), and propagates request-validation and measurement
/// errors.
pub fn serve(
    engine: &MeadowEngine,
    trace: &ArrivalTrace,
    config: &ServeConfig,
) -> Result<ServeReport, CoreError> {
    let model = &engine.config().model;
    trace.validate(model)?;
    if config.max_batch == 0 {
        return Err(CoreError::InvalidConfig {
            param: "max_batch",
            reason: "must step at least one session per tick".into(),
        });
    }
    if let Some(budget) = config.kv_budget_bytes {
        for r in &trace.requests {
            let peak = r.peak_kv_bytes(model);
            if peak > budget {
                return Err(CoreError::InvalidConfig {
                    param: "kv_budget_bytes",
                    reason: format!(
                        "request {} needs {peak} KV bytes alone, budget is {budget}",
                        r.id
                    ),
                });
            }
        }
    }

    let clock = engine.config().chip.clock;
    let exec = engine.config().exec;
    // Serving-level channel for KV spill/reload migration; per-step
    // attention traffic is ledgered inside each LatencyReport.
    let mut kv_dram = engine.fresh_dram()?;
    let mut ledger = TrafficLedger::new();

    let n = trace.requests.len();
    let mut sessions: Vec<Session> = trace.requests.iter().map(|&r| Session::new(r)).collect();
    // Arrival order: by time, ties broken by id for determinism.
    let mut pending: Vec<usize> = (0..n).collect();
    pending.sort_by(|&a, &b| {
        sessions[a]
            .req
            .arrival_ms
            .total_cmp(&sessions[b].req.arrival_ms)
            .then(sessions[a].req.id.cmp(&sessions[b].req.id))
    });
    let mut pending: VecDeque<usize> = pending.into();
    let mut wait: VecDeque<usize> = VecDeque::new();
    let mut active: Vec<usize> = Vec::new();

    let mut now = 0.0_f64;
    let mut tick: u64 = 0;
    let mut admission_counter: u64 = 0;
    let mut peak_kv: u64 = 0;
    let mut total_evictions: u64 = 0;
    let mut completed = 0usize;

    while completed < n {
        tick += 1;
        // Idle chip: jump to the next arrival.
        if active.is_empty() && wait.is_empty() {
            if let Some(&next) = pending.front() {
                now = now.max(sessions[next].req.arrival_ms);
            }
        }
        // Arrivals.
        while pending.front().is_some_and(|&i| sessions[i].req.arrival_ms <= now) {
            wait.push_back(pending.pop_front().expect("front checked above"));
        }
        // Head-of-line admission: the head joins when its next step fits
        // alongside every resident session's next step (conservative:
        // assumes all of them grow this tick).
        while let Some(&head) = wait.front() {
            let projected: u64 = active.iter().map(|&i| sessions[i].next_kv(model)).sum::<u64>()
                + sessions[head].next_kv(model);
            if config.kv_budget_bytes.is_some_and(|b| projected > b) {
                break;
            }
            wait.pop_front();
            admission_counter += 1;
            let s = &mut sessions[head];
            s.admission_seq = admission_counter;
            if s.queue_wait_ms.is_none() {
                s.queue_wait_ms = Some(now - s.req.arrival_ms);
            }
            // A re-admitted session must reload its spilled cache.
            s.pending_reload_bytes = s.spilled_kv_bytes;
            s.spilled_kv_bytes = 0;
            active.push(head);
        }
        // Step-set selection: least recently stepped first (fair
        // round-robin under a batch cap), deterministic tiebreaks.
        let mut order = active.clone();
        order.sort_by_key(|&i| {
            (sessions[i].last_step_tick, sessions[i].admission_seq, sessions[i].req.id)
        });
        let mut step_set: Vec<usize> = order.iter().copied().take(config.max_batch).collect();
        let mut idle: Vec<usize> = order.iter().copied().skip(config.max_batch).collect();
        // Budget enforcement: evict until the tick fits. Idle sessions with
        // resident caches go first (freeing them costs no progress), then
        // members of the step set.
        let mut spill_cycles = Cycles::ZERO;
        if let Some(budget) = config.kv_budget_bytes {
            loop {
                let needed: u64 = step_set.iter().map(|&i| sessions[i].next_kv(model)).sum::<u64>()
                    + idle.iter().map(|&i| sessions[i].resident_kv(model)).sum::<u64>();
                if needed <= budget {
                    break;
                }
                let victim = idle
                    .iter()
                    .copied()
                    .filter(|&i| sessions[i].resident_kv(model) > 0)
                    .min_by_key(|&i| sessions[i].victim_key(config.policy))
                    .or_else(|| {
                        // Evicting the last stepping session is impossible:
                        // a single next step always fits (validated above).
                        step_set
                            .iter()
                            .copied()
                            .min_by_key(|&i| sessions[i].victim_key(config.policy))
                    })
                    .expect("an over-budget tick always has an evictable session");
                idle.retain(|&i| i != victim);
                step_set.retain(|&i| i != victim);
                active.retain(|&i| i != victim);
                let s = &mut sessions[victim];
                if s.prefilled {
                    // Only a session that actually holds (or owes) a cache
                    // counts as evicted; bumping a not-yet-prefilled session
                    // back to the queue is a preemption that spills nothing.
                    total_evictions += 1;
                    s.evictions += 1;
                    if s.pending_reload_bytes > 0 {
                        // Evicted again before reloading: the cache never
                        // came back on chip, so nothing is written out.
                        s.spilled_kv_bytes = s.pending_reload_bytes;
                        s.pending_reload_bytes = 0;
                    } else {
                        let bytes = s.resident_kv(model);
                        spill_cycles += kv_dram.transfer(TrafficClass::KvCache, bytes);
                        s.spilled_kv_bytes = bytes;
                    }
                }
                wait.push_back(victim);
            }
        }
        debug_assert!(!step_set.is_empty(), "a tick with work must step a session");
        // Reload spilled caches for re-admitted sessions about to step.
        let reload_cycles: Vec<Cycles> = step_set
            .iter()
            .map(|&i| {
                let bytes = std::mem::take(&mut sessions[i].pending_reload_bytes);
                if bytes > 0 {
                    kv_dram.transfer(TrafficClass::KvCache, bytes)
                } else {
                    Cycles::ZERO
                }
            })
            .collect();
        // Measure every step with the exact single-request machinery; the
        // fan-out is the engine's execution policy and the results are
        // order-preserving, so the run is bit-identical across thread
        // counts.
        let measured: Vec<Result<LatencyReport, CoreError>> = par_map(&step_set, &exec, |&i| {
            let s = &sessions[i];
            if s.prefilled {
                engine.decode_latency(s.req.prompt_tokens, s.generated + 1)
            } else {
                engine.prefill_latency(s.req.prompt_tokens)
            }
        });
        let mut matrix: Vec<Vec<Cycles>> = Vec::with_capacity(step_set.len());
        let mut solo_ms: Vec<f64> = Vec::with_capacity(step_set.len());
        for (report, &reload) in measured.into_iter().zip(&reload_cycles) {
            let report = report?;
            let mut row: Vec<Cycles> = report.layers.iter().map(LayerLatency::makespan).collect();
            // The reload must land before the first layer can run.
            row[0] += reload;
            solo_ms.push(report.total_ms() + clock.to_ms(reload));
            ledger.merge(&report.ledger);
            matrix.push(row);
        }
        // Continuous batching: the batch pipelines through the layers like
        // a flow shop; spills occupy the channel before the batch starts.
        let finishes = flow_shop_completion_times(&matrix);
        let tick_cycles = spill_cycles + finishes.last().copied().unwrap_or(Cycles::ZERO);
        let mut finished: Vec<usize> = Vec::new();
        for ((&i, &finish), own_ms) in step_set.iter().zip(&finishes).zip(solo_ms) {
            let s = &mut sessions[i];
            s.last_step_tick = tick;
            let done_ms = now + clock.to_ms(spill_cycles + finish);
            if s.prefilled {
                s.generated += 1;
                s.tbt_ms.push(own_ms);
                if s.generated == s.req.generate_tokens {
                    s.finish_ms = done_ms;
                    finished.push(i);
                }
            } else {
                s.prefilled = true;
                s.prefill_ms = own_ms;
                s.first_token_ms = done_ms;
            }
        }
        // Residency peaks at tick end, before completed caches are freed.
        let resident: u64 = active.iter().map(|&i| sessions[i].resident_kv(model)).sum();
        peak_kv = peak_kv.max(resident);
        active.retain(|i| !finished.contains(i));
        completed += finished.len();
        now += clock.to_ms(tick_cycles);
    }

    ledger.merge(kv_dram.ledger());
    let traces: Vec<ServeTrace> = sessions
        .iter()
        .map(|s| ServeTrace {
            id: s.req.id,
            prompt_tokens: s.req.prompt_tokens,
            generated_tokens: s.generated,
            arrival_ms: s.req.arrival_ms,
            queue_wait_ms: s.queue_wait_ms.unwrap_or(0.0),
            prefill_ms: s.prefill_ms,
            first_token_ms: s.first_token_ms,
            finish_ms: s.finish_ms,
            tbt_ms: s.tbt_ms.clone(),
            evictions: s.evictions,
            final_kv_bytes: kv_cache_total_bytes(model, s.req.final_context_len()),
        })
        .collect();
    let total_generated: u64 = traces.iter().map(|t| t.generated_tokens as u64).sum();
    let mut latencies: Vec<f64> = traces.iter().map(ServeTrace::total_latency_ms).collect();
    latencies.sort_by(f64::total_cmp);
    let tokens_per_sec = if now > 0.0 { total_generated as f64 / (now / 1e3) } else { 0.0 };
    Ok(ServeReport {
        policy: config.policy,
        kv_budget_bytes: config.kv_budget_bytes,
        max_batch: config.max_batch,
        requests: n,
        total_generated_tokens: total_generated,
        ticks: tick,
        makespan_ms: now,
        tokens_per_sec,
        p50_latency_ms: percentile(&latencies, 0.5),
        p95_latency_ms: percentile(&latencies, 0.95),
        peak_kv_bytes: peak_kv,
        total_evictions,
        ledger,
        traces,
    })
}

impl MeadowEngine {
    /// Serves an arrival trace on this engine — see [`serve`].
    ///
    /// # Errors
    ///
    /// See [`serve`].
    pub fn serve(
        &self,
        trace: &ArrivalTrace,
        config: &ServeConfig,
    ) -> Result<ServeReport, CoreError> {
        serve(self, trace, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use meadow_models::presets;

    fn engine() -> MeadowEngine {
        MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0)).unwrap()
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let report = serve(&engine(), &ArrivalTrace::default(), &ServeConfig::default()).unwrap();
        assert_eq!(report.requests, 0);
        assert_eq!(report.total_generated_tokens, 0);
        assert_eq!(report.ticks, 0);
        assert_eq!(report.makespan_ms, 0.0);
        assert_eq!(report.tokens_per_sec, 0.0);
        assert!(report.traces.is_empty());
    }

    #[test]
    fn single_request_completes() {
        let trace = ArrivalTrace::uniform(1, 0.0, 16, 8);
        let report = serve(&engine(), &trace, &ServeConfig::default()).unwrap();
        assert_eq!(report.requests, 1);
        assert_eq!(report.total_generated_tokens, 8);
        assert_eq!(report.total_evictions, 0);
        let t = &report.traces[0];
        assert_eq!(t.generated_tokens, 8);
        assert_eq!(t.tbt_ms.len(), 8);
        assert_eq!(t.queue_wait_ms, 0.0);
        assert!(t.first_token_ms > 0.0);
        assert!(t.finish_ms > t.first_token_ms);
        assert!(report.makespan_ms >= t.finish_ms);
        assert_eq!(t.final_kv_bytes, kv_cache_total_bytes(&presets::tiny_decoder(), 24));
        // One session alone: 1 prefill tick + 8 decode ticks.
        assert_eq!(report.ticks, 9);
    }

    #[test]
    fn batched_run_is_cheaper_than_sequential_makespan() {
        let trace = ArrivalTrace::uniform(4, 0.0, 16, 4);
        let report = serve(&engine(), &trace, &ServeConfig::default()).unwrap();
        let sequential: f64 =
            report.traces.iter().map(|t| t.prefill_ms + t.tbt_ms.iter().sum::<f64>()).sum();
        assert!(
            report.makespan_ms < sequential,
            "pipelined {} !< sequential {}",
            report.makespan_ms,
            sequential
        );
        // But no faster than the slowest single chain.
        assert!(report.makespan_ms > report.traces[0].prefill_ms);
    }

    #[test]
    fn constrained_budget_evicts_but_completes() {
        let model = presets::tiny_decoder();
        let trace = ArrivalTrace::uniform(4, 0.0, 16, 8);
        // Room for roughly two peak sessions: forces contention.
        let budget = 2 * ServeRequest::new(0, 0.0, 16, 8).peak_kv_bytes(&model);
        let config = ServeConfig::default().with_budget(budget);
        let report = serve(&engine(), &trace, &config).unwrap();
        assert_eq!(report.total_generated_tokens, 4 * 8);
        assert!(report.total_evictions > 0, "budget {budget} should force evictions");
        assert!(report.peak_kv_bytes <= budget);
        assert!(report.ledger.bytes(TrafficClass::KvCache) > 0);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let e = engine();
        let trace = ArrivalTrace::uniform(2, 0.0, 16, 8);
        assert!(serve(&e, &trace, &ServeConfig::default().with_max_batch(0)).is_err());
        // Budget smaller than a single request's peak KV can never serve it.
        assert!(serve(&e, &trace, &ServeConfig::default().with_budget(1)).is_err());
        let dup = ArrivalTrace::new(vec![
            ServeRequest::new(7, 0.0, 8, 2),
            ServeRequest::new(7, 0.0, 8, 2),
        ]);
        assert!(serve(&e, &dup, &ServeConfig::default()).is_err());
    }

    #[test]
    fn staggered_arrivals_wait_in_order() {
        let trace = ArrivalTrace::new(vec![
            ServeRequest::new(0, 0.0, 16, 2),
            ServeRequest::new(1, 1e6, 16, 2),
        ]);
        let report = serve(&engine(), &trace, &ServeConfig::default()).unwrap();
        let late = report.trace(1).unwrap();
        // The late request arrives after the first finished: no queueing.
        assert_eq!(late.queue_wait_ms, 0.0);
        assert!(late.first_token_ms >= 1e6);
        assert!(report.trace(0).unwrap().finish_ms < 1e6);
    }

    #[test]
    fn max_batch_cap_still_serves_everyone() {
        let trace = ArrivalTrace::uniform(5, 0.0, 8, 3);
        let capped = ServeConfig::default().with_max_batch(2);
        let report = serve(&engine(), &trace, &capped).unwrap();
        assert_eq!(report.total_generated_tokens, 15);
        assert!(report.ticks > 5, "a cap of 2 needs more ticks than uncapped");
    }

    #[test]
    fn report_round_trips_through_json() {
        let trace = ArrivalTrace::uniform(2, 0.5, 8, 2);
        let config = ServeConfig::default().with_budget(1 << 20).with_policy(KvPolicy::Lru);
        let report = serve(&engine(), &trace, &config).unwrap();
        let json = report.to_json().unwrap();
        let parsed: ServeReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[3.0], 0.5), 3.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 0.5), 2.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 0.95), 4.0);
    }
}
