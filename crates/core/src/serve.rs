//! Multi-session serving simulator with KV-cache memory accounting.
//!
//! [`InferenceSession`](crate::session::InferenceSession) walks one request
//! at a time; a deployed edge accelerator instead serves many concurrent
//! sessions contending for one KV-cache memory budget. This module runs an
//! [`ArrivalTrace`] of requests through a single [`MeadowEngine`] under a
//! continuous-batching scheduler. Each tick:
//!
//! * **Admission** is head-of-line in arrival order: a request is admitted
//!   only when its next step's KV cache fits alongside every resident
//!   session's, against an explicit per-chip budget
//!   ([`ServeConfig::kv_budget_bytes`], sized with
//!   [`kv_cache_total_bytes`]). Under
//!   [`AdmissionPolicy::RejectAfter`], requests that out-wait their TTFT
//!   SLO are shed from the queue instead of queueing forever.
//! * **Batching** interleaves prefill and decode steps: the tick pipelines
//!   the batch through the model's layers like a flow shop (stages =
//!   decoder layers, items = per-session steps, via
//!   [`flow_shop_completion_times`]), so the tick costs far less than the
//!   sum of its steps while every step is still measured with the exact
//!   [`MeadowEngine::prefill_latency`]/[`MeadowEngine::decode_latency`]
//!   machinery.
//! * **Eviction** frees residency when the growing caches of admitted
//!   sessions overflow the budget, under a [`KvPolicy`]:
//!   [`KvPolicy::Fifo`]/[`KvPolicy::Lru`] spill a victim session's *whole*
//!   cache, while [`KvPolicy::PagedLru`] peels fixed-size pages off the
//!   stalest session one at a time (see
//!   [`kv_pages`](crate::kv_pages)), moving only the bytes the tick
//!   actually needs. Spills and reloads are charged on the engine's DRAM
//!   channel per page under
//!   [`TrafficClass::KvCache`](meadow_sim::TrafficClass), on top of the
//!   per-step attention traffic.
//!
//! The output is a per-request [`ServeTrace`] (queue wait, TTFT, TBT
//! series, evictions) and an aggregate [`ServeReport`] (p50/p95 latency,
//! tokens/sec, peak KV residency, migration traffic, page-fault and
//! rejection counts, fragmentation). Both are deterministic —
//! bit-identical across `MEADOW_THREADS` settings — and a run with an
//! unbounded budget reproduces exactly the per-token service latencies of
//! independent sessions (the `tests/serve_invariants.rs` contract). With
//! `page_bytes` at least as large as every session's peak cache,
//! `PagedLru` degenerates to whole-cache `Lru` bit-exactly.
//!
//! # Examples
//!
//! Serve an open-loop Poisson trace under a paged KV budget with SLO-aware
//! admission:
//!
//! ```
//! use meadow_core::serve::{serve, AdmissionPolicy, KvPolicy, ServeConfig};
//! use meadow_core::{EngineConfig, MeadowEngine};
//! use meadow_models::presets;
//! use meadow_models::workload::ArrivalTrace;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), meadow_core::CoreError> {
//! let engine = MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0))?;
//! let mut rng = StdRng::seed_from_u64(42);
//! let trace = ArrivalTrace::poisson(6, 2000.0, 16, 8, &mut rng)?;
//! let config = ServeConfig::default()
//!     .with_budget(2 * trace.requests[0].peak_kv_bytes(&presets::tiny_decoder()))
//!     .with_policy(KvPolicy::PagedLru)
//!     .with_page_bytes(1024)
//!     .with_admission(AdmissionPolicy::RejectAfter { ttft_slo_ms: 50.0 });
//! let report = serve(&engine, &trace, &config)?;
//! assert_eq!(report.requests, 6);
//! assert_eq!(report.total_generated_tokens + 8 * report.rejected_requests, 48);
//! # Ok(())
//! # }
//! ```

use crate::cluster::{Cluster, MigrationCtx};
use crate::engine::{LatencyReport, MeadowEngine};
use crate::error::CoreError;
use crate::events::{EventQueue, ReadyOrder, StepCache};
use crate::kv_pages::KvPageAllocator;
use crate::session::SessionPhase;
use meadow_dataflow::pipeline::flow_shop_completion_times;
use meadow_dataflow::LayerLatency;
use meadow_models::workload::{kv_cache_total_bytes, ArrivalTrace, KvSizer, ServeRequest};
use meadow_models::{KvCompression, KvLayout, TransformerConfig};
use meadow_sim::{Cycles, DramModel, TrafficClass, TrafficLedger};
use meadow_tensor::parallel::par_map;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

/// Typed rejection of an invalid serving or cluster configuration.
///
/// Construction-time validation (`ServeConfig::validate`,
/// `ClusterConfigBuilder::build`) and the serve entry points return these
/// instead of silently misbehaving, wrapped as
/// [`CoreError::Serve`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// `max_batch == 0`: the scheduler could never step a session.
    ZeroMaxBatch,
    /// [`KvPolicy::PagedLru`] with `page_bytes == 0`: no page to peel.
    ZeroPageBytes,
    /// An [`AdmissionPolicy::RejectAfter`] SLO that is not finite and
    /// non-negative.
    InvalidSlo {
        /// The rejected SLO value.
        ttft_slo_ms: f64,
    },
    /// A cluster with no chips to place sessions on.
    ZeroChips,
    /// A request whose peak KV cache exceeds the per-chip budget on its
    /// own — it could never be admitted.
    RequestExceedsBudget {
        /// Request identifier.
        id: u32,
        /// The request's peak KV-cache bytes.
        peak_bytes: u64,
        /// The configured per-chip budget.
        budget_bytes: u64,
    },
    /// A placement policy routed a request to a chip the cluster does not
    /// have.
    PlacementOutOfRange {
        /// The chip index the policy returned.
        chip: usize,
        /// The number of chips in the cluster.
        chips: usize,
    },
    /// A [`SpecDecode`] configuration with a non-sensical parameter: zero
    /// draft length, an acceptance rate outside `[0, 1]`, or a non-finite
    /// or negative draft cost ratio.
    InvalidSpeculation {
        /// The rejected draft length.
        draft_len: usize,
        /// The rejected acceptance rate.
        acceptance: f64,
        /// The rejected draft cost ratio.
        draft_cost_ratio: f64,
    },
    /// Disaggregated serving routed both a prefill-stage and a
    /// decode-stage leg onto the same chip: the two stages simulate
    /// independently, so one chip cannot host both without double-booking
    /// its timeline. Phase placements must keep the pools disjoint.
    PhaseOverlap {
        /// The chip that received legs from both stages.
        chip: usize,
    },
    /// A [`KvLayout`]/[`KvCompression`] combination that is structurally
    /// invalid (zero `kv_heads`, zero `window`, a `keep_ratio` outside
    /// `(0, 1]`) or incompatible with the model (`kv_heads` must divide
    /// the model's head count).
    InvalidKvLayout {
        /// Why the layout was rejected.
        reason: String,
    },
    /// `weight_budget_bytes == Some(0)`: a zero weight budget could never
    /// hold any model's weights, so no request could ever step. Leave the
    /// budget `None` to keep weight-residency modeling off instead.
    ZeroWeightBudget,
    /// A weight budget smaller than one model's weights: even an empty
    /// chip could never finish streaming a model in, so no request could
    /// ever run.
    WeightBudgetTooSmall {
        /// The configured weight budget.
        budget_bytes: u64,
        /// One model's total weight bytes on this engine.
        weight_bytes: u64,
    },
    /// A request targets a model other than the default model 0 while
    /// weight-residency modeling is off (no weight budget): without a
    /// budget the chip permanently holds exactly one resident model, so
    /// other model ids are unservable.
    UnknownModel {
        /// The model id the request asked for.
        model_id: u32,
    },
    /// `chip_specs` was given an empty list: a heterogeneous cluster still
    /// needs at least one chip spec.
    EmptyChipSpecs,
    /// Both `chip_specs` and `chips(n)` were set with disagreeing counts —
    /// the two are mutually exclusive ways of sizing the cluster.
    ChipSpecCountMismatch {
        /// Number of per-chip engine specs.
        specs: usize,
        /// The explicitly requested chip count.
        chips: usize,
    },
    /// One per-chip engine spec could not build a valid engine (bad
    /// bandwidth, invalid chip geometry) or disagrees with the other specs
    /// on the model architecture (a cluster serves one model; chips differ
    /// in speed, not in what they run).
    InvalidChipSpec {
        /// Index of the offending spec.
        chip: usize,
        /// Why it was rejected.
        reason: String,
    },
    /// Per-link NoC hop costs whose length does not match the cluster's
    /// linear interconnect (`chips - 1` links between adjacent chips).
    InvalidLinkHops {
        /// Number of link costs provided.
        got: usize,
        /// Number of links the cluster has.
        expected: usize,
    },
    /// The capacity planner exhausted its chip budget without meeting the
    /// SLO: even the largest allowed fleet missed the p95 TTFT target (or
    /// the rejection-rate cap).
    InfeasibleSlo {
        /// The p95 TTFT target, in ms.
        p95_ttft_ms: f64,
        /// The largest fleet size the planner was allowed to probe.
        max_chips: usize,
        /// The best p95 TTFT any probed fleet achieved, in ms.
        best_p95_ms: f64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::ZeroMaxBatch => {
                write!(f, "max_batch must step at least one session per tick")
            }
            ServeError::ZeroPageBytes => write!(f, "PagedLru needs a non-zero page size"),
            ServeError::InvalidSlo { ttft_slo_ms } => {
                write!(f, "ttft_slo_ms must be finite and non-negative, got {ttft_slo_ms}")
            }
            ServeError::ZeroChips => write!(f, "a cluster needs at least one chip"),
            ServeError::RequestExceedsBudget { id, peak_bytes, budget_bytes } => write!(
                f,
                "request {id} needs {peak_bytes} KV bytes alone, per-chip budget is {budget_bytes}"
            ),
            ServeError::PlacementOutOfRange { chip, chips } => {
                write!(f, "placement routed a request to chip {chip} of a {chips}-chip cluster")
            }
            ServeError::InvalidSpeculation { draft_len, acceptance, draft_cost_ratio } => write!(
                f,
                "speculation needs draft_len >= 1, acceptance in [0, 1] and a finite \
                 non-negative draft_cost_ratio, got ({draft_len}, {acceptance}, \
                 {draft_cost_ratio})"
            ),
            ServeError::PhaseOverlap { chip } => write!(
                f,
                "phase placement routed both prefill-stage and decode-stage legs to chip {chip}; \
                 the stage pools must be disjoint"
            ),
            ServeError::InvalidKvLayout { reason } => {
                write!(f, "invalid KV layout: {reason}")
            }
            ServeError::ZeroWeightBudget => {
                write!(f, "a zero weight budget cannot hold any model; leave it unset instead")
            }
            ServeError::WeightBudgetTooSmall { budget_bytes, weight_bytes } => write!(
                f,
                "weight budget {budget_bytes} cannot hold a single model's {weight_bytes} \
                 weight bytes"
            ),
            ServeError::UnknownModel { model_id } => write!(
                f,
                "request targets model {model_id} but the chip serves only the resident model 0; \
                 set a weight budget to enable multi-model tenancy"
            ),
            ServeError::EmptyChipSpecs => {
                write!(f, "chip_specs needs at least one per-chip engine spec")
            }
            ServeError::ChipSpecCountMismatch { specs, chips } => write!(
                f,
                "chip_specs lists {specs} chips but chips({chips}) was also set; size the \
                 cluster with one of them, not both"
            ),
            ServeError::InvalidChipSpec { chip, reason } => {
                write!(f, "chip spec {chip} is invalid: {reason}")
            }
            ServeError::InvalidLinkHops { got, expected } => write!(
                f,
                "link hop costs cover {got} links but the cluster's linear interconnect has \
                 {expected}"
            ),
            ServeError::InfeasibleSlo { p95_ttft_ms, max_chips, best_p95_ms } => write!(
                f,
                "no fleet of up to {max_chips} chips meets p95 TTFT <= {p95_ttft_ms} ms; best \
                 probed fleet achieved {best_p95_ms} ms"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// Which scheduler implementation runs the per-chip serving loop.
///
/// Both cores implement the *same* discrete-event semantics — one
/// scheduler iteration per batch step, with simulated time jumping by the
/// batch makespan (and to the next arrival when the chip idles) — and
/// produce bit-identical reports. They differ only in how much work one
/// iteration costs:
///
/// * [`SchedulerCore::Event`] (the default) keeps binary min-heaps for
///   arrival and SLO-deadline events, an ordered index for the step and
///   victim order, incremental running sums for the budget accounting,
///   and a memo of step measurements (pure functions of the step shape),
///   so an iteration costs `O(batch · log n)` instead of `O(resident
///   sessions)` — the difference between hours and seconds at 10⁵–10⁶
///   requests (the `serve_1m` perfbench case).
/// * [`SchedulerCore::Tick`] is the original scan loop, retained for one
///   PR as the migration oracle (`tests/event_equivalence.rs` pins the
///   two bit-exact on randomized traces) and as the baseline `serve_1m`
///   measures the event core against.
///
/// Select a core through
/// [`ServeSpec::builder().scheduler(..)`](crate::spec::ServeSpec) or
/// `ClusterConfig::builder().scheduler(..)`; the reports do not record it
/// (the choice is unobservable in the output by construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SchedulerCore {
    /// Event-driven core: heap-ordered events, incremental budget sums,
    /// memoized step measurements.
    #[default]
    Event,
    /// The retired per-tick scan loop, kept as the migration oracle and
    /// perf baseline; scheduled for removal once the equivalence suite
    /// has served its PR.
    Tick,
}

/// Eviction policy for the serving KV-cache pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KvPolicy {
    /// Evict the session (re)admitted longest ago, spilling its whole cache.
    Fifo,
    /// Evict the session stepped longest ago, spilling its whole cache.
    Lru,
    /// Evict at page granularity: peel [`ServeConfig::page_bytes`]-sized
    /// pages off the least recently stepped session until the tick fits,
    /// instead of spilling whole caches (see [`crate::kv_pages`]).
    PagedLru,
}

/// What happens to requests the budget cannot admit yet.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Queue head-of-line until the budget has room (possibly forever on an
    /// overloaded chip).
    #[default]
    Queue,
    /// Shed load: a request still waiting for its *first* admission after
    /// `ttft_slo_ms` on the serving clock is rejected — it can no longer
    /// meet its time-to-first-token SLO, so the scheduler stops spending
    /// budget on it. Already-admitted sessions are never shed.
    RejectAfter {
        /// TTFT service-level objective in milliseconds.
        ttft_slo_ms: f64,
    },
}

/// Speculative-decoding model for the per-tick scheduler: a draft model
/// proposes `draft_len` tokens per verify round and the target engine
/// verifies them in one memory-bound pass.
///
/// The scheduler models the *cost* side of speculation deterministically
/// (no RNG, so reports stay bit-identical across runs and threads). Each
/// decode step is one verify round; drafting is pipelined into the verify
/// pass's memory-bound shadow, so an **accepted** round costs exactly the
/// baseline decode step. Misses are charged through a per-session credit
/// accumulator: every round adds `1 - acceptance` of a miss, and whenever
/// the credit reaches one, a *flush* fires — the wasted draft work
/// (`draft_len × draft_cost_ratio` of the step's own cycles) is charged to
/// the step like a KV reload, landing in its TBT and the tick makespan.
///
/// `acceptance == 1.0` therefore never accumulates credit and degenerates
/// **bit-exactly** to the baseline decode loop — the contract
/// `tests/disagg_invariants.rs` pins.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpecDecode {
    /// Tokens the draft model proposes per verify round (at least 1).
    pub draft_len: usize,
    /// Probability a verify round accepts its whole draft, in `[0, 1]`;
    /// applied as a deterministic per-round miss credit, not sampled.
    pub acceptance: f64,
    /// Cost of drafting one token relative to a target decode step (e.g.
    /// 0.3 for a draft model ~3× smaller); only *wasted* draft work is
    /// charged, on flush.
    pub draft_cost_ratio: f64,
}

impl SpecDecode {
    /// Validates the speculation parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidSpeculation`] for a zero draft length,
    /// an acceptance rate outside `[0, 1]`, or a non-finite or negative
    /// draft cost ratio.
    pub fn validate(&self) -> Result<(), ServeError> {
        let bad_acceptance =
            !self.acceptance.is_finite() || !(0.0..=1.0).contains(&self.acceptance);
        let bad_ratio = !self.draft_cost_ratio.is_finite() || self.draft_cost_ratio < 0.0;
        if self.draft_len == 0 || bad_acceptance || bad_ratio {
            return Err(ServeError::InvalidSpeculation {
                draft_len: self.draft_len,
                acceptance: self.acceptance,
                draft_cost_ratio: self.draft_cost_ratio,
            });
        }
        Ok(())
    }
}

/// Configuration of one serving run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Per-chip KV-cache memory budget in bytes (`None` = unbounded). Every
    /// request's peak KV cache must fit the budget on its own.
    pub kv_budget_bytes: Option<u64>,
    /// Eviction policy when resident caches overflow the budget.
    pub policy: KvPolicy,
    /// Maximum sessions stepped per scheduler tick (continuous-batching
    /// batch size). Admitted sessions beyond the cap stay resident but
    /// idle; the least recently stepped sessions are scheduled first.
    pub max_batch: usize,
    /// Admission behavior for requests the budget keeps waiting.
    pub admission: AdmissionPolicy,
    /// Page size for [`KvPolicy::PagedLru`] spill/reload granularity, in
    /// bytes (ignored by the whole-cache policies).
    pub page_bytes: u64,
    /// Speculative-decoding cost model (`None` = plain autoregressive
    /// decode). Missing from pre-speculation serialized configs, so old
    /// JSON still deserializes.
    #[serde(default)]
    pub speculation: Option<SpecDecode>,
    /// Physical KV-cache layout every session's byte accounting uses
    /// ([`KvLayout::Dense`] = today's full-length caches, bit-identical to
    /// the pre-seam scheduler). Missing from pre-layout serialized
    /// configs, so old JSON still deserializes.
    #[serde(default)]
    pub kv_layout: KvLayout,
    /// Token-level KV eviction model layered on the layout
    /// ([`KvCompression::None`] = keep every resident token). Missing from
    /// pre-compression serialized configs, so old JSON still deserializes.
    #[serde(default)]
    pub kv_compression: KvCompression,
    /// Per-chip model-weight budget in bytes — the single switch for
    /// weight-residency modeling. `None` (the default) keeps every model
    /// permanently resident for free, bit-identical to the pre-residency
    /// scheduler; `Some(b)` starts the chip cold (no weights on chip), and
    /// every model load streams through the DRAM channel under
    /// [`TrafficClass::Weights`](meadow_sim::TrafficClass), with LRU model
    /// eviction when a new model's weights must fit. Missing from
    /// pre-residency serialized configs, so old JSON still deserializes.
    #[serde(default)]
    pub weight_budget_bytes: Option<u64>,
    /// Cold-load cost model when weight-residency modeling is on: `false`
    /// (the default) stalls the cold step for the full sequential weight
    /// load; `true` overlaps each layer's compute with the next layer's
    /// load (EdgeFlow-style per-layer streaming), so the cold step pays
    /// `max(load pipeline, compute pipeline)` instead of their sum. The
    /// ledger bytes are identical either way — only the stall differs.
    /// Ignored (and harmless) without a weight budget.
    #[serde(default)]
    pub weight_streaming: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            kv_budget_bytes: None,
            policy: KvPolicy::Fifo,
            max_batch: usize::MAX,
            admission: AdmissionPolicy::Queue,
            page_bytes: Self::DEFAULT_PAGE_BYTES,
            speculation: None,
            kv_layout: KvLayout::Dense,
            kv_compression: KvCompression::None,
            weight_budget_bytes: None,
            weight_streaming: false,
        }
    }
}

impl ServeConfig {
    /// Default [`ServeConfig::page_bytes`]: 16 KiB, a few decode steps'
    /// worth of KV growth on an OPT-125M-class model.
    pub const DEFAULT_PAGE_BYTES: u64 = 16 << 10;

    /// Unbounded KV budget (no eviction can occur).
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// The same configuration with a finite KV budget.
    pub fn with_budget(self, kv_budget_bytes: u64) -> Self {
        Self { kv_budget_bytes: Some(kv_budget_bytes), ..self }
    }

    /// The same configuration with a different eviction policy.
    pub fn with_policy(self, policy: KvPolicy) -> Self {
        Self { policy, ..self }
    }

    /// The same configuration with a batch-size cap.
    pub fn with_max_batch(self, max_batch: usize) -> Self {
        Self { max_batch, ..self }
    }

    /// The same configuration with a different admission policy.
    pub fn with_admission(self, admission: AdmissionPolicy) -> Self {
        Self { admission, ..self }
    }

    /// The same configuration with a different [`KvPolicy::PagedLru`] page
    /// size.
    pub fn with_page_bytes(self, page_bytes: u64) -> Self {
        Self { page_bytes, ..self }
    }

    /// The same configuration with a speculative-decoding cost model.
    pub fn with_speculation(self, speculation: SpecDecode) -> Self {
        Self { speculation: Some(speculation), ..self }
    }

    /// The same configuration with a different KV-cache layout.
    pub fn with_kv_layout(self, kv_layout: KvLayout) -> Self {
        Self { kv_layout, ..self }
    }

    /// The same configuration with a token-level KV compression model.
    pub fn with_kv_compression(self, kv_compression: KvCompression) -> Self {
        Self { kv_compression, ..self }
    }

    /// The same configuration with a finite per-chip model-weight budget,
    /// turning on weight-residency modeling (cold starts, streamed loads,
    /// LRU model eviction).
    pub fn with_weight_budget(self, weight_budget_bytes: u64) -> Self {
        Self { weight_budget_bytes: Some(weight_budget_bytes), ..self }
    }

    /// The same configuration with per-layer streamed (overlapped) cold
    /// weight loads instead of a sequential load stall. Only meaningful
    /// together with [`ServeConfig::with_weight_budget`].
    pub fn with_weight_streaming(self, weight_streaming: bool) -> Self {
        Self { weight_streaming, ..self }
    }

    /// Construction-time validation: rejects a zero `max_batch`, a zero
    /// `page_bytes` under [`KvPolicy::PagedLru`], and a non-finite or
    /// negative [`AdmissionPolicy::RejectAfter`] SLO with a typed
    /// [`ServeError`]. [`serve`] and the cluster builder
    /// (`ClusterConfigBuilder::build`) both call this, so a bad
    /// configuration fails loudly at the seam instead of misbehaving
    /// mid-run.
    ///
    /// # Errors
    ///
    /// Returns the first [`ServeError`] the configuration violates.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.max_batch == 0 {
            return Err(ServeError::ZeroMaxBatch);
        }
        if self.policy == KvPolicy::PagedLru && self.page_bytes == 0 {
            return Err(ServeError::ZeroPageBytes);
        }
        if let AdmissionPolicy::RejectAfter { ttft_slo_ms } = self.admission {
            if !ttft_slo_ms.is_finite() || ttft_slo_ms < 0.0 {
                return Err(ServeError::InvalidSlo { ttft_slo_ms });
            }
        }
        if let Some(spec) = self.speculation {
            spec.validate()?;
        }
        match self.kv_layout {
            KvLayout::GroupedHeads { kv_heads: 0 } => {
                return Err(ServeError::InvalidKvLayout {
                    reason: "GroupedHeads needs at least one kv head".into(),
                });
            }
            KvLayout::SlidingWindow { window: 0, .. } => {
                return Err(ServeError::InvalidKvLayout {
                    reason: "SlidingWindow needs a window of at least one token".into(),
                });
            }
            _ => {}
        }
        if let KvCompression::VedaVote { keep_ratio } = self.kv_compression {
            if !keep_ratio.is_finite() || keep_ratio <= 0.0 || keep_ratio > 1.0 {
                return Err(ServeError::InvalidKvLayout {
                    reason: format!("VedaVote keep_ratio must be in (0, 1], got {keep_ratio}"),
                });
            }
        }
        if self.weight_budget_bytes == Some(0) {
            return Err(ServeError::ZeroWeightBudget);
        }
        Ok(())
    }

    /// Starts a builder with construction-time validation — the same
    /// `build()?` discipline as `ClusterConfig::builder()`, so the two
    /// config idioms agree. Prefer this (or
    /// [`ServeSpec`](crate::spec::ServeSpec), which embeds it) at new call
    /// sites over the `with_*` chain, which defers validation to the serve
    /// entry points.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder::default()
    }
}

/// Builder for [`ServeConfig`] whose [`build`](ServeConfigBuilder::build)
/// runs [`ServeConfig::validate`], rejecting invalid combinations (zero
/// `max_batch`, zero `page_bytes` under [`KvPolicy::PagedLru`], bad SLOs,
/// nonsensical speculation) with a typed [`ServeError`] at the seam
/// instead of mid-run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Sets a finite per-chip KV budget (the default is unbounded).
    pub fn kv_budget_bytes(mut self, bytes: u64) -> Self {
        self.config.kv_budget_bytes = Some(bytes);
        self
    }

    /// Sets the eviction policy.
    pub fn policy(mut self, policy: KvPolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Sets the continuous-batching batch-size cap.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.config.max_batch = max_batch;
        self
    }

    /// Sets the admission policy.
    pub fn admission(mut self, admission: AdmissionPolicy) -> Self {
        self.config.admission = admission;
        self
    }

    /// Sets the [`KvPolicy::PagedLru`] page size.
    pub fn page_bytes(mut self, page_bytes: u64) -> Self {
        self.config.page_bytes = page_bytes;
        self
    }

    /// Enables the speculative-decoding cost model.
    pub fn speculation(mut self, speculation: SpecDecode) -> Self {
        self.config.speculation = Some(speculation);
        self
    }

    /// Sets the KV-cache layout.
    pub fn kv_layout(mut self, kv_layout: KvLayout) -> Self {
        self.config.kv_layout = kv_layout;
        self
    }

    /// Sets the token-level KV compression model.
    pub fn kv_compression(mut self, kv_compression: KvCompression) -> Self {
        self.config.kv_compression = kv_compression;
        self
    }

    /// Sets a finite per-chip model-weight budget (weight-residency
    /// modeling on).
    pub fn weight_budget_bytes(mut self, bytes: u64) -> Self {
        self.config.weight_budget_bytes = Some(bytes);
        self
    }

    /// Selects streamed (per-layer overlapped) cold weight loads.
    pub fn weight_streaming(mut self, weight_streaming: bool) -> Self {
        self.config.weight_streaming = weight_streaming;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ServeError`] the configuration violates (see
    /// [`ServeConfig::validate`]).
    pub fn build(self) -> Result<ServeConfig, ServeError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Builds the [`KvSizer`] a serving run accounts KV bytes with, mapping
/// model incompatibility (e.g. `kv_heads` not dividing the model's head
/// count) to a typed [`ServeError::InvalidKvLayout`].
pub(crate) fn kv_sizer(
    model: &TransformerConfig,
    config: &ServeConfig,
) -> Result<KvSizer, ServeError> {
    KvSizer::new(model, config.kv_layout, config.kv_compression)
        .map_err(|e| ServeError::InvalidKvLayout { reason: e.to_string() })
}

/// Serving-side record of one completed (or rejected) request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeTrace {
    /// Request identifier.
    pub id: u32,
    /// Prompt length.
    pub prompt_tokens: usize,
    /// Tokens generated (the requested count, or zero when rejected).
    pub generated_tokens: usize,
    /// Arrival time on the serving clock, in ms.
    pub arrival_ms: f64,
    /// Whether admission shed this request
    /// ([`AdmissionPolicy::RejectAfter`]); a rejected trace generates no
    /// tokens and its latency fields stay zero.
    pub rejected: bool,
    /// Arrival → first admission (or rejection), in ms.
    pub queue_wait_ms: f64,
    /// Own prefill service latency in ms — comparable to
    /// [`SessionTrace::ttft_ms`](crate::session::SessionTrace) and
    /// independent of batching.
    pub prefill_ms: f64,
    /// Wall-clock time the first token completed, in ms.
    pub first_token_ms: f64,
    /// Wall-clock time the last token completed, in ms.
    pub finish_ms: f64,
    /// Own per-token service latency in ms, including KV reload penalties
    /// after eviction (index 0 = first generated token).
    pub tbt_ms: Vec<f64>,
    /// Times this session was evicted (demoted from the scheduled set;
    /// under `PagedLru` its pages then spill lazily, page by page).
    pub evictions: u32,
    /// KV-cache bytes at the end of generation (zero when rejected).
    pub final_kv_bytes: u64,
    /// Whether this request's prefill paid a cold-start weight load (its
    /// model was not resident when the prefill stepped). `Some` only when
    /// weight-residency modeling is on, and omitted from the serialized
    /// JSON otherwise, so pre-residency reports stay byte-stable.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cold_start: Option<bool>,
}

impl ServeTrace {
    /// Arrival → last token, in ms (what the user experienced).
    pub fn total_latency_ms(&self) -> f64 {
        self.finish_ms - self.arrival_ms
    }

    /// Arrival → first token, in ms (the serving-side TTFT: queue wait plus
    /// batched prefill completion).
    pub fn ttft_ms(&self) -> f64 {
        self.first_token_ms - self.arrival_ms
    }
}

/// KV layout/compression accounting of one serving run, attached to
/// [`ServeReport::kv`] (and aggregated into `ClusterReport::kv`) whenever
/// the run used a non-dense layout or token-level compression. Absent —
/// and absent from the serialized JSON — for dense uncompressed runs, so
/// every pre-seam report stays byte-stable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KvSummary {
    /// KV-cache layout the run accounted with.
    pub layout: KvLayout,
    /// Token-level compression model the run accounted with.
    pub compression: KvCompression,
    /// Context-length-weighted mean of the per-request retained attention
    /// mass over completed requests, in `[0, 1]` (1.0 when nothing
    /// completed) — the accuracy proxy reported alongside latency.
    pub retained_attention_mass: f64,
    /// Final KV bytes the completed requests would have occupied under a
    /// dense full-length layout.
    pub dense_final_kv_bytes: u64,
    /// Final KV bytes they actually occupied under this layout/compression.
    pub final_kv_bytes: u64,
}

/// Weight-residency accounting of one serving run, attached to
/// [`ServeReport::weights`] (and aggregated into `ClusterReport::weights`)
/// whenever the run declared a weight budget. Absent — and absent from the
/// serialized JSON — otherwise, so every pre-residency report stays
/// byte-stable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightSummary {
    /// The per-chip weight budget the run enforced.
    pub weight_budget_bytes: u64,
    /// Whether cold loads streamed per layer (overlapped with compute).
    pub streaming: bool,
    /// Distinct models the trace requested.
    pub models: usize,
    /// One model's total weight bytes on this engine.
    pub model_weight_bytes: u64,
    /// Total weight bytes streamed on chip
    /// ([`TrafficClass::Weights`](meadow_sim::TrafficClass)) — exactly
    /// `weight_loads × model_weight_bytes`.
    pub weight_bytes: u64,
    /// Model load events: cold starts plus re-streams after eviction.
    pub weight_loads: u64,
    /// Residency churn: models evicted to make room for another's weights.
    pub weight_evictions: u64,
    /// Completed requests whose prefill paid a cold-start weight load.
    pub cold_requests: u64,
    /// TTFT percentiles over completed cold-start requests.
    pub cold_ttft: LatencySummary,
    /// TTFT percentiles over completed warm requests.
    pub warm_ttft: LatencySummary,
}

/// Aggregate result of one serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Eviction policy used.
    pub policy: KvPolicy,
    /// Admission policy used.
    pub admission: AdmissionPolicy,
    /// KV budget in bytes (`None` = unbounded).
    pub kv_budget_bytes: Option<u64>,
    /// Page size configured for [`KvPolicy::PagedLru`].
    pub page_bytes: u64,
    /// Batch-size cap used.
    pub max_batch: usize,
    /// Number of requests in the trace (completed + rejected).
    pub requests: usize,
    /// Requests shed by [`AdmissionPolicy::RejectAfter`].
    pub rejected_requests: u64,
    /// Total tokens generated across all completed requests.
    pub total_generated_tokens: u64,
    /// Scheduler ticks executed.
    pub ticks: u64,
    /// Wall-clock end of the run on the serving clock, in ms.
    pub makespan_ms: f64,
    /// Generated-token throughput over the whole run.
    pub tokens_per_sec: f64,
    /// Median completed-request latency (arrival → last token), in ms.
    pub p50_latency_ms: f64,
    /// 95th-percentile completed-request latency, in ms.
    pub p95_latency_ms: f64,
    /// Peak simultaneous KV-cache residency in bytes.
    pub peak_kv_bytes: u64,
    /// Total session evictions: how many times a session lost its
    /// residency in the scheduled set. Under `PagedLru` the eviction is
    /// counted at demotion — the pages themselves spill lazily afterwards
    /// (possibly never, if the pressure passes), tracked separately in
    /// [`ServeReport::total_page_spills`].
    pub total_evictions: u64,
    /// Pages written out by `PagedLru` eviction (zero for the whole-cache
    /// policies, which account whole spills under
    /// [`ServeReport::total_evictions`]).
    pub total_page_spills: u64,
    /// Pages read back by `PagedLru` before a step could run.
    pub total_page_faults: u64,
    /// Peak internal fragmentation under `PagedLru`: bytes reserved in
    /// partially filled tail pages that hold no KV data (zero for the
    /// whole-cache policies).
    pub kv_frag_peak_bytes: u64,
    /// DRAM traffic of the whole run: per-step fetch/compute/store classes
    /// plus serving-level
    /// [`TrafficClass::KvCache`](meadow_sim::TrafficClass) migration.
    pub ledger: TrafficLedger,
    /// KV layout/compression accounting — `Some` only when the run used a
    /// non-dense layout or token-level compression, and omitted from the
    /// serialized JSON otherwise (pre-seam reports stay byte-stable).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub kv: Option<KvSummary>,
    /// Weight-residency accounting — `Some` only when the run declared a
    /// weight budget, and omitted from the serialized JSON otherwise
    /// (pre-residency reports stay byte-stable).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub weights: Option<WeightSummary>,
    /// Per-request traces, in the input trace's request order.
    pub traces: Vec<ServeTrace>,
}

impl ServeReport {
    /// Looks up a trace by request id.
    pub fn trace(&self, id: u32) -> Option<&ServeTrace> {
        self.traces.iter().find(|t| t.id == id)
    }

    /// Pretty JSON for artifacts and golden snapshots.
    ///
    /// # Errors
    ///
    /// Propagates serialization errors from the vendored serde_json.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

/// Scheduler-internal state of one request.
#[derive(Debug, Clone)]
struct Session {
    req: ServeRequest,
    /// Which part of the request's lifetime this leg simulates.
    phase: SessionPhase,
    generated: usize,
    prefilled: bool,
    /// Decode-only legs start with their prompt KV already delivered (the
    /// handoff charged it on the NoC); the first paged admission loads it
    /// without a DRAM fault.
    kv_preloaded: bool,
    /// Deterministic speculative-decoding miss credit: grows by
    /// `1 - acceptance` per verify round, flushes at 1.0.
    spec_miss_credit: f64,
    rejected: bool,
    evictions: u32,
    /// Sequence number of the most recent (re)admission.
    admission_seq: u64,
    /// Tick of the most recent step (0 = never stepped).
    last_step_tick: u64,
    /// Set at first admission (or at rejection).
    queue_wait_ms: Option<f64>,
    /// Whole-cache mode: KV bytes spilled at the last eviction, to reload
    /// on re-admission.
    spilled_kv_bytes: u64,
    /// Whole-cache mode: KV bytes to reload before the next step.
    pending_reload_bytes: u64,
    /// Paged mode: logical KV bytes whose page frames are currently held
    /// (residency the budget accounts; page-aligned except when fully
    /// resident).
    held_bytes: u64,
    /// Paged mode: prefix of the KV data that is physically on chip
    /// (`loaded <= held`; the `[loaded, kv)` suffix is off chip awaiting
    /// reload).
    loaded_bytes: u64,
    prefill_ms: f64,
    first_token_ms: f64,
    finish_ms: f64,
    tbt_ms: Vec<f64>,
    /// The prefill step paid a cold-start weight load (weight-residency
    /// modeling only; later re-streams at decode count as churn, not
    /// coldness).
    cold_start: bool,
}

impl Session {
    fn new(req: ServeRequest, phase: SessionPhase) -> Self {
        Self {
            req,
            phase,
            generated: 0,
            // A decode-only leg resumes a prefill that already ran
            // elsewhere: its prompt KV is logically present from the start.
            prefilled: phase.starts_prefilled(),
            kv_preloaded: phase.starts_prefilled(),
            spec_miss_credit: 0.0,
            rejected: false,
            evictions: 0,
            admission_seq: 0,
            last_step_tick: 0,
            queue_wait_ms: None,
            spilled_kv_bytes: 0,
            pending_reload_bytes: 0,
            held_bytes: 0,
            loaded_bytes: 0,
            prefill_ms: 0.0,
            first_token_ms: 0.0,
            finish_ms: 0.0,
            tbt_ms: Vec::new(),
            cold_start: false,
        }
    }

    /// Logical KV bytes the session's processed tokens occupy (prompt +
    /// generated so far; nothing before prefill), under the run's KV
    /// layout/compression.
    fn kv_bytes(&self, sizer: &KvSizer) -> u64 {
        if self.prefilled {
            sizer.bytes(self.req.prompt_tokens + self.generated)
        } else {
            0
        }
    }

    /// KV bytes the session holds while resident, as the whole-cache
    /// policies account them.
    fn resident_kv(&self, sizer: &KvSizer) -> u64 {
        self.kv_bytes(sizer)
    }

    /// KV bytes the session will hold after its next step (prefill writes
    /// the whole prompt's keys/values; each decode step appends one token).
    fn next_kv(&self, sizer: &KvSizer) -> u64 {
        if self.prefilled {
            sizer.bytes(self.req.prompt_tokens + self.generated + 1)
        } else {
            sizer.bytes(self.req.prompt_tokens)
        }
    }

    fn victim_key(&self, policy: KvPolicy) -> (u64, u64, u32) {
        match policy {
            KvPolicy::Fifo => (self.admission_seq, self.last_step_tick, self.req.id),
            KvPolicy::Lru | KvPolicy::PagedLru => {
                (self.last_step_tick, self.admission_seq, self.req.id)
            }
        }
    }
}

/// Nearest-rank percentile of a sorted sample (0 for an empty one).
pub(crate) fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[idx - 1]
}

/// Latency percentiles of one sample population, computed by this single
/// shared helper everywhere the serving stack reports them (per-chip
/// serve, cluster aggregation, disaggregated TTFT/pace summaries) so the
/// semantics — nearest-rank percentiles over a `total_cmp`-sorted sample,
/// zero for an empty one — cannot drift between the three paths.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median (nearest-rank p50), in ms.
    pub p50_ms: f64,
    /// Nearest-rank 95th percentile, in ms.
    pub p95_ms: f64,
}

impl LatencySummary {
    /// Summarizes a sample, sorting it internally (`total_cmp`, so NaN
    /// cannot poison the order).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.sort_by(f64::total_cmp);
        Self::from_sorted(&samples)
    }

    /// Summarizes an already-sorted sample.
    pub fn from_sorted(sorted: &[f64]) -> Self {
        Self { p50_ms: percentile(sorted, 0.5), p95_ms: percentile(sorted, 0.95) }
    }
}

/// Charges one KV-cache spill, preferring cross-chip migration when a
/// cluster [`MigrationCtx`] accepts the bytes and falling back to the
/// chip's DRAM channel ([`DramModel::transfer_kv_cache`]) otherwise. With
/// no migration context this is exactly the single-chip spill arithmetic.
fn charge_spill(
    dram: &mut DramModel,
    migration: &mut Option<&mut MigrationCtx<'_>>,
    session: u32,
    bytes: u64,
    granularity: Option<u64>,
) -> Cycles {
    if let Some(ctx) = migration.as_deref_mut() {
        if let Some(cycles) = ctx.park(session, bytes) {
            return cycles;
        }
    }
    dram.transfer_kv_cache(bytes, granularity)
}

/// Charges one KV-cache reload: bytes parked on a remote chip come back
/// over the cluster NoC first, the rest from DRAM.
fn charge_reload(
    dram: &mut DramModel,
    migration: &mut Option<&mut MigrationCtx<'_>>,
    session: u32,
    bytes: u64,
    granularity: Option<u64>,
) -> Cycles {
    let mut cycles = Cycles::ZERO;
    let mut rest = bytes;
    if let Some(ctx) = migration.as_deref_mut() {
        let (noc_cycles, pulled) = ctx.pull_back(session, bytes);
        cycles += noc_cycles;
        rest -= pulled;
    }
    if rest > 0 {
        cycles += dram.transfer_kv_cache(rest, granularity);
    }
    cycles
}

/// Residency state of one model's weights on a chip (`ChipNode`'s weight
/// state machine, materialized per run by the serving loop exactly like
/// the per-run KV state):
///
/// ```text
///            load layer 0..L             last layer lands
/// Evicted ───────────────────▶ Streaming { layers_loaded } ───▶ Resident
///    ▲                                                             │
///    └──────────────── LRU eviction (free: read-only) ◀────────────┘
/// ```
///
/// Every model starts `Evicted` (a cold chip holds no weights); a load
/// walks `Streaming { layers_loaded: 0..layers }` while each layer's bytes
/// stream in over DRAM, and eviction writes nothing back — weights are
/// read-only, so dropping them only costs the eventual re-stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WeightResidency {
    /// Every layer's weights are on chip.
    Resident,
    /// A load is in flight: layers `0..layers_loaded` have landed.
    Streaming {
        /// Layers already on chip.
        layers_loaded: usize,
    },
    /// No weights on chip (the initial state, and the post-eviction one).
    Evicted,
}

impl WeightResidency {
    /// Whether the model's weights are usable (fully resident or currently
    /// streaming in for the step that triggered the load).
    fn holds_weights(self) -> bool {
        !matches!(self, WeightResidency::Evicted)
    }
}

/// Completion time of a cold start whose per-layer weight loads overlap
/// the compute pipeline (EdgeFlow-style): layer `l`'s compute may begin
/// once its weights have landed *and* layer `l-1` has finished, so
///
/// ```text
/// finish[l] = max(finish[l-1], load[0] + … + load[l]) + compute[l]
/// ```
///
/// and the cold step costs `max(load pipeline, compute pipeline)`-ish
/// rather than their sum: the result is at least `Σ load` and at least
/// `Σ compute`, and at most `Σ load + Σ compute`. Zero-latency loads make
/// it exactly the warm compute time — the streamed-equals-resident
/// degeneracy. Mismatched lengths treat the missing entries as zero.
pub fn pipelined_cold_finish(load: &[Cycles], compute: &[Cycles]) -> Cycles {
    let layers = load.len().max(compute.len());
    let mut load_prefix = 0u64;
    let mut finish = 0u64;
    for l in 0..layers {
        load_prefix += load.get(l).map_or(0, |c| c.get());
        finish = finish.max(load_prefix) + compute.get(l).map_or(0, |c| c.get());
    }
    Cycles(finish)
}

/// Slot of one model in a chip's [`WeightSet`].
#[derive(Debug, Clone, Copy)]
struct ModelSlot {
    residency: WeightResidency,
    /// Monotone last-use sequence number (strict LRU victim order).
    use_seq: u64,
}

/// Per-run weight-residency tracker: the budgeted set of models whose
/// weights are on chip, with strict-LRU eviction and per-layer load
/// charging through the chip's DRAM channel. Both scheduler cores drive
/// the same tracker in step order, so the Event==Tick equivalence holds
/// structurally.
struct WeightSet {
    budget_bytes: u64,
    streaming: bool,
    layers: usize,
    layer_bytes: u64,
    model_bytes: u64,
    slots: BTreeMap<u32, ModelSlot>,
    use_seq: u64,
    resident_bytes: u64,
    loads: u64,
    evictions: u64,
}

impl WeightSet {
    /// Builds the tracker for a run, or `None` when the config declares no
    /// weight budget (modeling off: the chip's one model is permanently
    /// resident for free).
    fn for_run(config: &ServeConfig, model: &TransformerConfig) -> Option<Self> {
        let budget_bytes = config.weight_budget_bytes?;
        Some(Self {
            budget_bytes,
            streaming: config.weight_streaming,
            layers: model.layers,
            layer_bytes: model.layer_weight_bytes(),
            model_bytes: model.total_weight_bytes(),
            slots: BTreeMap::new(),
            use_seq: 0,
            resident_bytes: 0,
            loads: 0,
            evictions: 0,
        })
    }

    /// Makes `model_id`'s weights resident for a step whose per-layer
    /// compute row is `compute`, returning the stall the step must absorb
    /// before its first layer and whether a load happened (a cold start
    /// for the stepping session). A hit only refreshes the LRU sequence; a
    /// miss evicts least-recently-used models until the new one fits, then
    /// streams every layer through the DRAM channel — the stall is the
    /// full sequential load, or the pipelined overhang over the warm
    /// compute time when streaming is on.
    fn ensure_resident(
        &mut self,
        dram: &mut DramModel,
        model_id: u32,
        compute: &[Cycles],
    ) -> (Cycles, bool) {
        self.use_seq += 1;
        let seq = self.use_seq;
        if let Some(slot) = self.slots.get_mut(&model_id) {
            if slot.residency.holds_weights() {
                slot.use_seq = seq;
                return (Cycles::ZERO, false);
            }
        }
        // LRU model eviction until the new weights fit. Free: weights are
        // read-only, so nothing is written back — the cost is the churn
        // counted here and the eventual re-stream.
        while self.resident_bytes + self.model_bytes > self.budget_bytes {
            let victim = self
                .slots
                .iter()
                .filter(|(id, slot)| **id != model_id && slot.residency.holds_weights())
                .min_by_key(|(id, slot)| (slot.use_seq, **id))
                .map(|(id, _)| *id)
                .expect("the budget precheck guarantees one model always fits");
            self.slots.get_mut(&victim).expect("found above").residency = WeightResidency::Evicted;
            self.resident_bytes -= self.model_bytes;
            self.evictions += 1;
        }
        // Stream the layers in, charging each on the DRAM channel; the
        // slot walks Streaming { layers_loaded } layer by layer.
        let slot = self
            .slots
            .entry(model_id)
            .or_insert(ModelSlot { residency: WeightResidency::Evicted, use_seq: seq });
        slot.use_seq = seq;
        let mut load = Vec::with_capacity(self.layers);
        for layers_loaded in 0..self.layers {
            slot.residency = WeightResidency::Streaming { layers_loaded };
            load.push(dram.transfer_weights(self.layer_bytes));
        }
        slot.residency = WeightResidency::Resident;
        self.resident_bytes += self.model_bytes;
        self.loads += 1;
        let stall = if self.streaming {
            let warm: u64 = compute.iter().map(|c| c.get()).sum();
            Cycles(pipelined_cold_finish(&load, compute).get() - warm)
        } else {
            Cycles(load.iter().map(|c| c.get()).sum())
        };
        (stall, true)
    }
}

/// Run-start validation of the weight-residency configuration against the
/// engine's model and the trace, shared by both scheduler cores: a budget
/// must hold at least one model ([`ServeError::WeightBudgetTooSmall`]),
/// and without a budget every request must target the default resident
/// model 0 ([`ServeError::UnknownModel`]).
fn validate_weights(
    config: &ServeConfig,
    model: &TransformerConfig,
    trace: &ArrivalTrace,
) -> Result<(), ServeError> {
    match config.weight_budget_bytes {
        Some(budget_bytes) => {
            let weight_bytes = model.total_weight_bytes();
            if budget_bytes < weight_bytes {
                return Err(ServeError::WeightBudgetTooSmall { budget_bytes, weight_bytes });
            }
        }
        None => {
            if let Some(r) = trace.requests.iter().find(|r| r.model() != 0) {
                return Err(ServeError::UnknownModel { model_id: r.model() });
            }
        }
    }
    Ok(())
}

/// Runs an arrival trace through the engine under a continuous-batching
/// scheduler, returning the aggregate report. See the module docs for the
/// scheduling and KV-accounting model.
///
/// This is the single-chip special case of the cluster serving API: it
/// wraps [`Cluster::serve`](crate::cluster::Cluster::serve) around a
/// one-chip cluster with round-robin placement and no migration, which
/// reproduces the pre-cluster scheduler bit-exactly (the
/// `tests/cluster_invariants.rs` contract).
///
/// **Migration note:** this free function is now a thin shim kept for
/// source compatibility. New call sites should go through the unified
/// front door, [`ServeSpec`](crate::spec::ServeSpec) —
/// `ServeSpec::builder().config(config).build()?.run(&engine, &trace)` —
/// which validates at construction and dispatches single-chip, cluster
/// and disaggregated serving through one surface.
///
/// # Errors
///
/// Returns [`CoreError::Serve`] when the configuration is invalid
/// ([`ServeConfig::validate`]) or any request's peak KV cache exceeds the
/// budget on its own (such a request could never run); propagates
/// request-validation and measurement errors.
pub fn serve(
    engine: &MeadowEngine,
    trace: &ArrivalTrace,
    config: &ServeConfig,
) -> Result<ServeReport, CoreError> {
    let cluster = Cluster::single_chip(engine.clone(), *config)?;
    let mut report = cluster.serve(trace)?;
    Ok(report.per_chip.remove(0).report)
}

/// The per-chip serving loop shared by [`serve`],
/// [`Cluster::serve`](crate::cluster::Cluster::serve) and
/// [`Cluster::serve_disaggregated`](crate::cluster::Cluster::serve_disaggregated):
/// runs `trace` on one engine, optionally parking spilled KV bytes on
/// remote chips through a cluster [`MigrationCtx`] instead of DRAM.
///
/// `phases` (aligned with `trace.requests`; `None` = all
/// [`SessionPhase::Full`]) lets disaggregated serving run partial legs:
/// a `PrefillOnly` leg finishes once its prompt KV and first token are
/// produced, a `DecodeOnly` leg starts already prefilled with its prompt
/// KV delivered (the caller charges the handoff on the cluster NoC).
///
/// `core` selects the scheduler implementation; the two cores are
/// bit-identical by contract (see [`SchedulerCore`]).
pub(crate) fn serve_on_chip(
    engine: &MeadowEngine,
    trace: &ArrivalTrace,
    config: &ServeConfig,
    phases: Option<&[SessionPhase]>,
    migration: Option<&mut MigrationCtx<'_>>,
    core: SchedulerCore,
) -> Result<ServeReport, CoreError> {
    match core {
        SchedulerCore::Event => serve_on_chip_event(engine, trace, config, phases, migration),
        SchedulerCore::Tick => serve_on_chip_tick(engine, trace, config, phases, migration),
    }
}

/// The original per-tick scan implementation of [`serve_on_chip`]
/// ([`SchedulerCore::Tick`]): every scheduler iteration re-scans and
/// re-sorts the resident sessions and re-measures every step. Retained
/// verbatim for one PR as the migration oracle the event-driven core is
/// pinned against (`tests/event_equivalence.rs`) and as the `serve_1m`
/// perf baseline; do not add features here — new scheduler work goes in
/// [`serve_on_chip_event`].
fn serve_on_chip_tick(
    engine: &MeadowEngine,
    trace: &ArrivalTrace,
    config: &ServeConfig,
    phases: Option<&[SessionPhase]>,
    mut migration: Option<&mut MigrationCtx<'_>>,
) -> Result<ServeReport, CoreError> {
    let model = &engine.config().model;
    trace.validate(model)?;
    config.validate()?;
    let sizer = kv_sizer(model, config)?;
    let paged = config.policy == KvPolicy::PagedLru;
    if let Some(budget) = config.kv_budget_bytes {
        for r in &trace.requests {
            let peak = sizer.bytes(r.final_context_len());
            if peak > budget {
                return Err(ServeError::RequestExceedsBudget {
                    id: r.id,
                    peak_bytes: peak,
                    budget_bytes: budget,
                }
                .into());
            }
        }
    }
    validate_weights(config, model, trace)?;
    let mut weights = WeightSet::for_run(config, model);

    let clock = engine.config().chip.clock;
    let exec = engine.config().exec;
    // Serving-level channel for KV spill/reload migration; per-step
    // attention traffic is ledgered inside each LatencyReport.
    let mut kv_dram = engine.fresh_dram()?;
    let mut ledger = TrafficLedger::new();
    // The page pool tracks identity and fragmentation; the loop below
    // enforces the byte budget so all three policies share one accounting
    // scheme (and `peak_kv_bytes <= budget` holds exactly, not
    // page-rounded). Sized for every session resident at its peak at once
    // — per session, because each partially filled tail page burns a frame
    // — which no reachable allocation exceeds.
    let mut pages: Option<KvPageAllocator> = if paged {
        let frames: u64 = trace
            .requests
            .iter()
            .map(|r| sizer.bytes(r.final_context_len()).div_ceil(config.page_bytes))
            .sum();
        Some(KvPageAllocator::new(frames.max(1) as usize, config.page_bytes)?)
    } else {
        None
    };
    let page_bytes = config.page_bytes;

    let n = trace.requests.len();
    debug_assert!(phases.is_none_or(|p| p.len() == n), "phases must align with the trace");
    let mut sessions: Vec<Session> = trace
        .requests
        .iter()
        .enumerate()
        .map(|(idx, &r)| Session::new(r, phases.map_or(SessionPhase::Full, |p| p[idx])))
        .collect();
    // Arrival order: by time, ties broken by id for determinism.
    let mut pending: Vec<usize> = (0..n).collect();
    pending.sort_by(|&a, &b| {
        sessions[a]
            .req
            .arrival_ms
            .total_cmp(&sessions[b].req.arrival_ms)
            .then(sessions[a].req.id.cmp(&sessions[b].req.id))
    });
    let mut pending: VecDeque<usize> = pending.into();
    let mut wait: VecDeque<usize> = VecDeque::new();
    let mut active: Vec<usize> = Vec::new();

    let mut now = 0.0_f64;
    let mut tick: u64 = 0;
    let mut admission_counter: u64 = 0;
    let mut peak_kv: u64 = 0;
    let mut frag_peak: u64 = 0;
    let mut total_evictions: u64 = 0;
    let mut page_spills: u64 = 0;
    let mut page_faults: u64 = 0;
    let mut rejected: u64 = 0;
    let mut settled = 0usize;
    // Completion bitset: O(1) membership for the per-tick removal below
    // (the retain over `active` used to scan the `finished` list per
    // element, O(active × finished) every tick).
    let mut done = vec![false; n];

    while settled < n {
        tick += 1;
        // Idle chip: jump to the next arrival.
        if active.is_empty() && wait.is_empty() {
            if let Some(&next) = pending.front() {
                now = now.max(sessions[next].req.arrival_ms);
            }
        }
        // Arrivals.
        while pending.front().is_some_and(|&i| sessions[i].req.arrival_ms <= now) {
            wait.push_back(pending.pop_front().expect("front checked above"));
        }
        // SLO-aware load shedding: requests still waiting for their first
        // admission past the TTFT SLO are rejected. Evicted (previously
        // admitted) sessions are never shed — their work is already sunk.
        if let AdmissionPolicy::RejectAfter { ttft_slo_ms } = config.admission {
            wait.retain(|&i| {
                let s = &mut sessions[i];
                if s.queue_wait_ms.is_none() && now - s.req.arrival_ms > ttft_slo_ms {
                    s.rejected = true;
                    s.queue_wait_ms = Some(now - s.req.arrival_ms);
                    rejected += 1;
                    settled += 1;
                    false
                } else {
                    true
                }
            });
        }
        // Head-of-line admission: the head joins when its next step fits
        // alongside every resident session's next step (conservative:
        // assumes all of them grow this tick). Unspilled pages of demoted
        // sessions deliberately do NOT count against admission: they are
        // reclaimable on demand (the enforcement loop below peels them
        // before anything else), and counting them could wedge the
        // scheduler — a blocked head with no stepping session would never
        // advance the clock, so the pages would never free.
        while let Some(&head) = wait.front() {
            let projected: u64 = active.iter().map(|&i| sessions[i].next_kv(&sizer)).sum::<u64>()
                + sessions[head].next_kv(&sizer);
            if config.kv_budget_bytes.is_some_and(|b| projected > b) {
                break;
            }
            wait.pop_front();
            admission_counter += 1;
            let s = &mut sessions[head];
            s.admission_seq = admission_counter;
            if s.queue_wait_ms.is_none() {
                s.queue_wait_ms = Some(now - s.req.arrival_ms);
            }
            if let Some(pool) = pages.as_mut() {
                // Re-admission reserves frames for the whole cache up
                // front (the budget accounted it at admission); the data
                // itself reloads page-by-page before the next step.
                let kv = s.kv_bytes(&sizer);
                s.held_bytes = kv;
                pool.grow(
                    s.req.id,
                    pool.pages_for(kv),
                    (s.last_step_tick, s.admission_seq, s.req.id),
                )
                .expect("pool is sized for the whole trace");
                if std::mem::take(&mut s.kv_preloaded) {
                    // A decode-only leg's prompt KV arrived over the NoC
                    // handoff: its first admission loads without a DRAM
                    // fault. Later evictions spill and fault normally.
                    s.loaded_bytes = kv;
                }
            } else {
                // A re-admitted session must reload its spilled cache.
                s.pending_reload_bytes = s.spilled_kv_bytes;
                s.spilled_kv_bytes = 0;
            }
            active.push(head);
        }
        // Step-set selection: least recently stepped first (fair
        // round-robin under a batch cap), deterministic tiebreaks.
        let mut order = active.clone();
        order.sort_by_key(|&i| {
            (sessions[i].last_step_tick, sessions[i].admission_seq, sessions[i].req.id)
        });
        let mut step_set: Vec<usize> = order.iter().copied().take(config.max_batch).collect();
        let mut idle: Vec<usize> = order.iter().copied().skip(config.max_batch).collect();
        if step_set.is_empty() {
            // Only reachable when load shedding emptied the queue with no
            // resident work; the next tick jumps to the next arrival.
            continue;
        }
        // Budget enforcement: evict until the tick fits. Idle sessions with
        // resident caches go first (freeing them costs no progress), then
        // members of the step set.
        let mut spill_cycles = Cycles::ZERO;
        if let Some(budget) = config.kv_budget_bytes {
            loop {
                // Demand this tick: every stepping session at its grown
                // size, every idle resident cache, and — in paged mode —
                // the unspilled pages of demoted (zombie) sessions.
                let zombie_held: u64 =
                    if paged { wait.iter().map(|&i| sessions[i].held_bytes).sum() } else { 0 };
                let needed: u64 =
                    step_set.iter().map(|&i| sessions[i].next_kv(&sizer)).sum::<u64>()
                        + idle.iter().map(|&i| sessions[i].resident_kv(&sizer)).sum::<u64>()
                        + zombie_held;
                if needed <= budget {
                    break;
                }
                if let Some(pool) = pages.as_mut() {
                    // Lazy page-granular spill: first peel pages that
                    // demoted sessions left behind (stalest owner first);
                    // once none remain, demote the whole-cache victim —
                    // without spilling anything yet. Demotion is what
                    // throttles the multiprogramming level (the session
                    // stops being scheduled, exactly like whole-cache
                    // eviction, so paging cannot thrash the step set);
                    // peeling is what bounds the traffic (only the bytes
                    // the tick actually needs ever move).
                    let zombie_page =
                        pool.lru_page(|sid| wait.iter().any(|&i| sessions[i].req.id == sid));
                    if let Some((_, owner)) = zombie_page {
                        let victim = *wait
                            .iter()
                            .find(|&&i| sessions[i].req.id == owner)
                            .expect("lru_page owners are demoted sessions");
                        let s = &mut sessions[victim];
                        let frames = pool.session_pages(owner) as u64;
                        let tail_start = (frames - 1) * page_bytes;
                        // Only the valid, on-chip bytes of the tail page
                        // move; reserved-but-unloaded frames free silently
                        // (their data never came back on chip).
                        let write = s.loaded_bytes.saturating_sub(tail_start);
                        if write > 0 {
                            spill_cycles +=
                                charge_spill(&mut kv_dram, &mut migration, owner, write, None);
                            page_spills += 1;
                        }
                        pool.evict_tail(owner);
                        s.held_bytes = tail_start;
                        s.loaded_bytes = s.loaded_bytes.min(tail_start);
                    } else if let Some(victim) = idle
                        .iter()
                        .copied()
                        .filter(|&i| sessions[i].held_bytes > 0)
                        .min_by_key(|&i| sessions[i].victim_key(config.policy))
                    {
                        // Demote the whole-cache victim — without spilling
                        // anything yet: its pages stay resident until a
                        // later iteration (or tick) actually needs the
                        // frames, and only those peel.
                        idle.retain(|&i| i != victim);
                        active.retain(|&i| i != victim);
                        let s = &mut sessions[victim];
                        if s.prefilled {
                            total_evictions += 1;
                            s.evictions += 1;
                        }
                        wait.push_back(victim);
                    } else {
                        // No idle cache left: demote a stepping session
                        // (possible progress loss, same fallback as
                        // whole-cache mode). This path spills eagerly —
                        // the victim was about to run, so its whole cache
                        // must leave at once for the rest of the batch to
                        // fit, exactly as whole-cache eviction would.
                        let victim = step_set
                            .iter()
                            .copied()
                            .min_by_key(|&i| sessions[i].victim_key(config.policy))
                            .expect("an over-budget tick always has a stepping session");
                        step_set.retain(|&i| i != victim);
                        active.retain(|&i| i != victim);
                        let s = &mut sessions[victim];
                        if s.prefilled {
                            total_evictions += 1;
                            s.evictions += 1;
                        }
                        if s.loaded_bytes > 0 {
                            spill_cycles += charge_spill(
                                &mut kv_dram,
                                &mut migration,
                                s.req.id,
                                s.loaded_bytes,
                                Some(page_bytes),
                            );
                            page_spills += pool.pages_for(s.loaded_bytes) as u64;
                        }
                        pool.release(s.req.id);
                        s.held_bytes = 0;
                        s.loaded_bytes = 0;
                        wait.push_back(victim);
                    }
                } else {
                    let victim = idle
                        .iter()
                        .copied()
                        .filter(|&i| sessions[i].resident_kv(&sizer) > 0)
                        .min_by_key(|&i| sessions[i].victim_key(config.policy))
                        .or_else(|| {
                            // Evicting the last stepping session is impossible:
                            // a single next step always fits (validated above).
                            step_set
                                .iter()
                                .copied()
                                .min_by_key(|&i| sessions[i].victim_key(config.policy))
                        })
                        .expect("an over-budget tick always has an evictable session");
                    idle.retain(|&i| i != victim);
                    step_set.retain(|&i| i != victim);
                    active.retain(|&i| i != victim);
                    let s = &mut sessions[victim];
                    if s.prefilled {
                        // Only a session that actually holds (or owes) a cache
                        // counts as evicted; bumping a not-yet-prefilled session
                        // back to the queue is a preemption that spills nothing.
                        total_evictions += 1;
                        s.evictions += 1;
                        if s.pending_reload_bytes > 0 {
                            // Evicted again before reloading: the cache never
                            // came back on chip, so nothing is written out.
                            s.spilled_kv_bytes = s.pending_reload_bytes;
                            s.pending_reload_bytes = 0;
                        } else {
                            let bytes = s.resident_kv(&sizer);
                            spill_cycles +=
                                charge_spill(&mut kv_dram, &mut migration, s.req.id, bytes, None);
                            s.spilled_kv_bytes = bytes;
                        }
                    }
                    wait.push_back(victim);
                }
            }
        }
        debug_assert!(!step_set.is_empty(), "a tick with work must step a session");
        // Reload spilled caches for sessions about to step. Paged mode also
        // reserves the frames the step's KV growth will fill.
        let mut reload_cycles: Vec<Cycles> = Vec::with_capacity(step_set.len());
        for &i in &step_set {
            if let Some(pool) = pages.as_mut() {
                let s = &mut sessions[i];
                let existing = s.kv_bytes(&sizer);
                let next = s.next_kv(&sizer);
                pool.grow(s.req.id, pool.pages_for(next), (tick, s.admission_seq, s.req.id))
                    .expect("pool is sized for the whole trace");
                // Fault the off-chip suffix back in, page by page (the
                // suffix starts page-aligned: eviction only peels whole
                // tail pages).
                let fault = existing - s.loaded_bytes;
                if fault > 0 {
                    reload_cycles.push(charge_reload(
                        &mut kv_dram,
                        &mut migration,
                        s.req.id,
                        fault,
                        Some(page_bytes),
                    ));
                    page_faults += fault.div_ceil(page_bytes);
                    s.loaded_bytes = existing;
                } else {
                    reload_cycles.push(Cycles::ZERO);
                }
            } else {
                let bytes = std::mem::take(&mut sessions[i].pending_reload_bytes);
                reload_cycles.push(if bytes > 0 {
                    charge_reload(&mut kv_dram, &mut migration, sessions[i].req.id, bytes, None)
                } else {
                    Cycles::ZERO
                });
            }
        }
        // Measure every step with the exact single-request machinery; the
        // fan-out is the engine's execution policy and the results are
        // order-preserving, so the run is bit-identical across thread
        // counts.
        let measured: Vec<Result<LatencyReport, CoreError>> = par_map(&step_set, &exec, |&i| {
            let s = &sessions[i];
            if s.prefilled {
                engine.decode_latency(s.req.prompt_tokens, s.generated + 1)
            } else {
                engine.prefill_latency(s.req.prompt_tokens)
            }
        });
        let mut matrix: Vec<Vec<Cycles>> = Vec::with_capacity(step_set.len());
        let mut solo_ms: Vec<f64> = Vec::with_capacity(step_set.len());
        for ((&i, report), &reload) in step_set.iter().zip(measured).zip(&reload_cycles) {
            let report = report?;
            let mut row: Vec<Cycles> = report.layers.iter().map(LayerLatency::makespan).collect();
            let mut stall = reload;
            // Weight residency: the stepping session's model must be on
            // chip. A hit is free; a miss streams every layer through the
            // DRAM channel (evicting LRU models as needed) and stalls the
            // step — the full sequential load, or only the pipelined
            // overhang beyond the compute row when streaming overlap is
            // on. A load at a session's first prefill step is a cold
            // start; later re-streams are residency churn.
            if let Some(ws) = weights.as_mut() {
                let (wstall, was_cold) =
                    ws.ensure_resident(&mut kv_dram, sessions[i].req.model(), &row);
                stall += wstall;
                if was_cold && !sessions[i].prefilled {
                    sessions[i].cold_start = true;
                }
            }
            // Speculative decoding: each decode step is one verify round.
            // Accepted rounds ride in the verify pass's memory-bound shadow
            // for free; the deterministic miss credit fires a flush every
            // `1 / (1 - acceptance)` rounds, charging the wasted draft work
            // up front like a reload. At acceptance 1.0 the credit never
            // grows and this block is arithmetic-free — the bit-exact
            // degeneracy contract.
            if let Some(spec) = config.speculation {
                let s = &mut sessions[i];
                if s.prefilled {
                    s.spec_miss_credit += 1.0 - spec.acceptance;
                    if s.spec_miss_credit >= 1.0 {
                        s.spec_miss_credit -= 1.0;
                        let step: u64 = row.iter().map(|c| c.get()).sum();
                        let waste =
                            (step as f64 * spec.draft_len as f64 * spec.draft_cost_ratio).round();
                        stall += Cycles(waste as u64);
                    }
                }
            }
            // The reload (and any speculation flush) must land before the
            // first layer can run.
            row[0] += stall;
            solo_ms.push(report.total_ms() + clock.to_ms(stall));
            ledger.merge(&report.ledger);
            matrix.push(row);
        }
        // Continuous batching: the batch pipelines through the layers like
        // a flow shop; spills occupy the channel before the batch starts.
        let finishes = flow_shop_completion_times(&matrix);
        let tick_cycles = spill_cycles + finishes.last().copied().unwrap_or(Cycles::ZERO);
        let mut finished: Vec<usize> = Vec::new();
        for ((&i, &finish), own_ms) in step_set.iter().zip(&finishes).zip(solo_ms) {
            let s = &mut sessions[i];
            s.last_step_tick = tick;
            let done_ms = now + clock.to_ms(spill_cycles + finish);
            if s.prefilled {
                s.generated += 1;
                s.tbt_ms.push(own_ms);
                if s.generated == s.req.generate_tokens {
                    s.finish_ms = done_ms;
                    finished.push(i);
                    done[i] = true;
                }
            } else {
                s.prefilled = true;
                s.prefill_ms = own_ms;
                s.first_token_ms = done_ms;
                if s.phase == SessionPhase::PrefillOnly {
                    // The prefill leg's job ends here: its prompt KV and
                    // first token exist, and the cache leaves over the NoC
                    // (the disaggregation driver charges the handoff).
                    s.finish_ms = done_ms;
                    finished.push(i);
                    done[i] = true;
                }
            }
            if paged {
                // The step's own KV writes land on chip as part of the
                // measured attention traffic; residency grows in place.
                let kv = s.kv_bytes(&sizer);
                s.held_bytes = kv;
                s.loaded_bytes = kv;
            }
        }
        // Residency peaks at tick end, before completed caches are freed.
        // Paged residency also counts the unspilled pages of demoted
        // sessions — they hold frames until lazily peeled.
        let resident: u64 = if paged {
            active.iter().chain(wait.iter()).map(|&i| sessions[i].held_bytes).sum()
        } else {
            active.iter().map(|&i| sessions[i].resident_kv(&sizer)).sum()
        };
        peak_kv = peak_kv.max(resident);
        if let Some(pool) = pages.as_ref() {
            let frag: u64 = active
                .iter()
                .chain(wait.iter())
                .map(|&i| pool.frag_bytes(sessions[i].req.id, sessions[i].held_bytes))
                .sum();
            frag_peak = frag_peak.max(frag);
            debug_assert!(pool.conserves_pages(), "page tables must conserve the pool");
        }
        active.retain(|&i| !done[i]);
        if let Some(pool) = pages.as_mut() {
            for &i in &finished {
                pool.release(sessions[i].req.id);
                sessions[i].held_bytes = 0;
                sessions[i].loaded_bytes = 0;
            }
        }
        settled += finished.len();
        now += clock.to_ms(tick_cycles);
    }

    ledger.merge(kv_dram.ledger());
    let totals = SchedTotals {
        ticks: tick,
        makespan_ms: now,
        peak_kv,
        frag_peak,
        total_evictions,
        page_spills,
        page_faults,
        rejected,
        weight_loads: weights.as_ref().map_or(0, |ws| ws.loads),
        weight_evictions: weights.as_ref().map_or(0, |ws| ws.evictions),
    };
    Ok(finalize_report(config, model, &sizer, &sessions, ledger, totals))
}

/// Aggregate counters a scheduler core hands to [`finalize_report`].
struct SchedTotals {
    ticks: u64,
    makespan_ms: f64,
    peak_kv: u64,
    frag_peak: u64,
    total_evictions: u64,
    page_spills: u64,
    page_faults: u64,
    rejected: u64,
    weight_loads: u64,
    weight_evictions: u64,
}

/// Folds final session state into the [`ServeReport`] — one shared path
/// for both scheduler cores, so the trace order, the latency sort and the
/// [`LatencySummary`] percentiles cannot drift between them.
fn finalize_report(
    config: &ServeConfig,
    model: &TransformerConfig,
    sizer: &KvSizer,
    sessions: &[Session],
    ledger: TrafficLedger,
    totals: SchedTotals,
) -> ServeReport {
    let traces: Vec<ServeTrace> = sessions
        .iter()
        .map(|s| ServeTrace {
            id: s.req.id,
            prompt_tokens: s.req.prompt_tokens,
            generated_tokens: s.generated,
            arrival_ms: s.req.arrival_ms,
            rejected: s.rejected,
            queue_wait_ms: s.queue_wait_ms.unwrap_or(0.0),
            prefill_ms: s.prefill_ms,
            first_token_ms: s.first_token_ms,
            finish_ms: s.finish_ms,
            tbt_ms: s.tbt_ms.clone(),
            evictions: s.evictions,
            // Prompt plus tokens actually generated: equals
            // `final_context_len()` for full and decode legs, and the
            // prompt alone for a prefill-only leg (its handoff payload).
            final_kv_bytes: if s.rejected {
                0
            } else {
                sizer.bytes(s.req.prompt_tokens + s.generated)
            },
            cold_start: config.weight_budget_bytes.is_some().then_some(s.cold_start),
        })
        .collect();
    let kv = kv_summary(model, sizer, sessions);
    let weights = weight_summary(config, model, sessions, &ledger, &totals);
    let total_generated: u64 = traces.iter().map(|t| t.generated_tokens as u64).sum();
    let latency = LatencySummary::from_samples(
        traces.iter().filter(|t| !t.rejected).map(ServeTrace::total_latency_ms).collect(),
    );
    let tokens_per_sec = if totals.makespan_ms > 0.0 {
        total_generated as f64 / (totals.makespan_ms / 1e3)
    } else {
        0.0
    };
    ServeReport {
        policy: config.policy,
        admission: config.admission,
        kv_budget_bytes: config.kv_budget_bytes,
        page_bytes: config.page_bytes,
        max_batch: config.max_batch,
        requests: sessions.len(),
        rejected_requests: totals.rejected,
        total_generated_tokens: total_generated,
        ticks: totals.ticks,
        makespan_ms: totals.makespan_ms,
        tokens_per_sec,
        p50_latency_ms: latency.p50_ms,
        p95_latency_ms: latency.p95_ms,
        peak_kv_bytes: totals.peak_kv,
        total_evictions: totals.total_evictions,
        total_page_spills: totals.page_spills,
        total_page_faults: totals.page_faults,
        kv_frag_peak_bytes: totals.frag_peak,
        ledger,
        kv,
        weights,
        traces,
    }
}

/// Builds the [`WeightSummary`] of a run, or `None` when no weight budget
/// is set (the permanently-resident identity, whose reports must stay
/// byte-stable with the pre-residency scheduler). Cold and warm TTFT are
/// summarized separately over non-rejected sessions, split by whether the
/// session's first prefill step had to stream its model's weights in.
fn weight_summary(
    config: &ServeConfig,
    model: &TransformerConfig,
    sessions: &[Session],
    ledger: &TrafficLedger,
    totals: &SchedTotals,
) -> Option<WeightSummary> {
    let weight_budget_bytes = config.weight_budget_bytes?;
    let mut cold: Vec<f64> = Vec::new();
    let mut warm: Vec<f64> = Vec::new();
    for s in sessions.iter().filter(|s| !s.rejected) {
        let ttft = s.first_token_ms - s.req.arrival_ms;
        if s.cold_start {
            cold.push(ttft);
        } else {
            warm.push(ttft);
        }
    }
    let cold_requests = cold.len() as u64;
    let mut models: Vec<u32> = sessions.iter().map(|s| s.req.model()).collect();
    models.sort_unstable();
    models.dedup();
    Some(WeightSummary {
        weight_budget_bytes,
        streaming: config.weight_streaming,
        models: models.len(),
        model_weight_bytes: model.total_weight_bytes(),
        weight_bytes: ledger.bytes(TrafficClass::Weights),
        weight_loads: totals.weight_loads,
        weight_evictions: totals.weight_evictions,
        cold_requests,
        cold_ttft: LatencySummary::from_samples(cold),
        warm_ttft: LatencySummary::from_samples(warm),
    })
}

/// Builds the [`KvSummary`] of a run, or `None` for the dense identity
/// (whose reports must stay byte-stable with the pre-seam scheduler).
/// The retained mass is the context-length-weighted mean over completed
/// sessions — pure arithmetic on final session state, so both scheduler
/// cores and every `MEADOW_THREADS` setting agree bit-exactly.
fn kv_summary(
    model: &TransformerConfig,
    sizer: &KvSizer,
    sessions: &[Session],
) -> Option<KvSummary> {
    if sizer.is_dense() {
        return None;
    }
    let mut dense_bytes = 0u64;
    let mut actual_bytes = 0u64;
    let mut mass_weighted = 0.0f64;
    let mut tokens = 0u64;
    for s in sessions.iter().filter(|s| !s.rejected) {
        let ctx = s.req.prompt_tokens + s.generated;
        dense_bytes += kv_cache_total_bytes(model, ctx);
        actual_bytes += sizer.bytes(ctx);
        mass_weighted += sizer.retained_attention_mass(ctx) * ctx as f64;
        tokens += ctx as u64;
    }
    let retained_attention_mass = if tokens == 0 { 1.0 } else { mass_weighted / tokens as f64 };
    Some(KvSummary {
        layout: sizer.layout(),
        compression: sizer.compression(),
        retained_attention_mass,
        dense_final_kv_bytes: dense_bytes,
        final_kv_bytes: actual_bytes,
    })
}

/// The event-driven implementation of [`serve_on_chip`]
/// ([`SchedulerCore::Event`], the default).
///
/// Semantically identical to [`serve_on_chip_tick`] iteration for
/// iteration — the equivalence suite pins the two bit-exact — but each
/// iteration is `O(batch · log n)` instead of `O(resident sessions)`:
///
/// * Arrival and SLO-deadline events live in binary min-heaps
///   ([`EventQueue`]); deadline events are keyed by *arrival* time (the
///   SLO is one constant per run, so deadline order equals arrival order)
///   and the shedding test stays the tick core's verbatim
///   `now - arrival > slo` float expression. Shed requests stay in the
///   wait deque as tombstones, skipped at the head, instead of an `O(n)`
///   `retain`.
/// * The step/victim order lives in [`ReadyOrder`] indexes maintained
///   incrementally (one in LRU order, one in FIFO order when that policy
///   needs it) instead of a per-iteration clone-and-sort.
/// * The budget sums (`Σ next_kv` for admission, stepping + idle + zombie
///   demand for eviction) are running `u64` totals — exact, because
///   unsigned sums are order-independent — with per-session sizes cached
///   and refreshed at each state change.
/// * Step measurements are memoized by shape ([`StepCache`]): the
///   engine's latency model is a pure function of
///   `(prompt_tokens, token_index)` — every call builds a fresh DRAM
///   channel — so a cache hit (errors included) is bit-identical to
///   re-measuring. Misses fan out through the same order-preserving
///   parallel map as the tick core, preserving `MEADOW_THREADS`
///   bit-identity.
///
/// Sessions live in one arena (`Vec<Session>`, indexed by the trace
/// order) and the per-iteration scratch buffers are reused across
/// iterations, so steady-state scheduling allocates only when the batch
/// shape grows.
#[allow(clippy::too_many_lines)]
fn serve_on_chip_event(
    engine: &MeadowEngine,
    trace: &ArrivalTrace,
    config: &ServeConfig,
    phases: Option<&[SessionPhase]>,
    mut migration: Option<&mut MigrationCtx<'_>>,
) -> Result<ServeReport, CoreError> {
    let model = &engine.config().model;
    trace.validate(model)?;
    config.validate()?;
    let sizer = kv_sizer(model, config)?;
    let paged = config.policy == KvPolicy::PagedLru;
    if let Some(budget) = config.kv_budget_bytes {
        for r in &trace.requests {
            let peak = sizer.bytes(r.final_context_len());
            if peak > budget {
                return Err(ServeError::RequestExceedsBudget {
                    id: r.id,
                    peak_bytes: peak,
                    budget_bytes: budget,
                }
                .into());
            }
        }
    }
    validate_weights(config, model, trace)?;
    let mut weights = WeightSet::for_run(config, model);

    let clock = engine.config().chip.clock;
    let exec = engine.config().exec;
    // Serving-level channel for KV spill/reload migration; per-step
    // attention traffic is ledgered inside each LatencyReport.
    let mut kv_dram = engine.fresh_dram()?;
    let mut ledger = TrafficLedger::new();
    // Sized exactly as in the tick core — see the comment there.
    let mut pages: Option<KvPageAllocator> = if paged {
        let frames: u64 = trace
            .requests
            .iter()
            .map(|r| sizer.bytes(r.final_context_len()).div_ceil(config.page_bytes))
            .sum();
        Some(KvPageAllocator::new(frames.max(1) as usize, config.page_bytes)?)
    } else {
        None
    };
    let page_bytes = config.page_bytes;

    let n = trace.requests.len();
    debug_assert!(phases.is_none_or(|p| p.len() == n), "phases must align with the trace");
    // Session arena, indexed by trace order for the whole run.
    let mut sessions: Vec<Session> = trace
        .requests
        .iter()
        .enumerate()
        .map(|(idx, &r)| Session::new(r, phases.map_or(SessionPhase::Full, |p| p[idx])))
        .collect();
    // id → arena index, built once (lookups only, so map order never
    // influences the schedule).
    let id2idx: HashMap<u32, usize> =
        sessions.iter().enumerate().map(|(i, s)| (s.req.id, i)).collect();

    // Arrival events pop in (arrival_ms, id) order — identical to the
    // tick core's sorted pending queue.
    let mut arrivals = EventQueue::with_capacity(n);
    for (i, s) in sessions.iter().enumerate() {
        arrivals.push(s.req.arrival_ms, s.req.id, i);
    }
    let slo = match config.admission {
        AdmissionPolicy::RejectAfter { ttft_slo_ms } => Some(ttft_slo_ms),
        AdmissionPolicy::Queue => None,
    };
    let mut deadlines = EventQueue::with_capacity(if slo.is_some() { n } else { 0 });

    // Wait queue with tombstones: shed requests stay in the deque and are
    // skipped at the head; `wait_live` counts the live ones and `in_wait`
    // answers the paged zombie-ownership test in O(1).
    let mut wait: VecDeque<usize> = VecDeque::new();
    let mut in_wait = vec![false; n];
    let mut wait_live = 0usize;

    // Resident sessions in step/LRU-victim order; the FIFO index is
    // maintained only when that policy orders victims differently.
    let mut ready = ReadyOrder::default();
    let mut fifo = ReadyOrder::default();
    let use_fifo = config.policy == KvPolicy::Fifo;

    // Cached per-session KV sizes and the running budget sums. The caches
    // are initialized from the *constructed* sessions: a decode-only leg
    // starts prefilled, with its prompt KV logically present.
    let mut resident_kv: Vec<u64> = sessions.iter().map(|s| s.resident_kv(&sizer)).collect();
    let mut next_kv: Vec<u64> = sessions.iter().map(|s| s.next_kv(&sizer)).collect();
    // Σ next_kv / Σ resident_kv over resident (ready) sessions, including
    // this iteration's finishers until the peak snapshot.
    let mut active_next_sum = 0u64;
    let mut active_resident_sum = 0u64;
    // Paged residency: Σ held_bytes over resident sessions and over
    // demoted zombies whose pages have not been peeled yet.
    let mut active_held_sum = 0u64;
    let mut wait_held_sum = 0u64;

    // `step_epoch[i] == tick` marks membership in the current step set,
    // so victim scans skip it without an auxiliary set.
    let mut step_epoch = vec![0u64; n];

    let mut cache = StepCache::new();

    let mut now = 0.0_f64;
    let mut tick: u64 = 0;
    let mut admission_counter: u64 = 0;
    let mut peak_kv: u64 = 0;
    let mut frag_peak: u64 = 0;
    let mut total_evictions: u64 = 0;
    let mut page_spills: u64 = 0;
    let mut page_faults: u64 = 0;
    let mut rejected: u64 = 0;
    let mut settled = 0usize;

    // Scratch buffers reused across iterations (no per-tick churn).
    let mut step_set: Vec<usize> = Vec::new();
    let mut reload_cycles: Vec<Cycles> = Vec::new();
    let mut miss_keys: Vec<(usize, usize)> = Vec::new();
    let mut matrix: Vec<Vec<Cycles>> = Vec::new();
    let mut solo_ms: Vec<f64> = Vec::new();
    let mut finished: Vec<usize> = Vec::new();

    while settled < n {
        tick += 1;
        // Idle chip: jump straight to the next arrival event.
        if ready.is_empty() && wait_live == 0 {
            if let Some(next_ms) = arrivals.peek_time() {
                now = now.max(next_ms);
            }
        }
        // Arrival events at or before `now` enter the wait queue.
        while arrivals.peek_time().is_some_and(|t| t <= now) {
            let (_, i) = arrivals.pop().expect("peeked above");
            wait.push_back(i);
            in_wait[i] = true;
            wait_live += 1;
            if slo.is_some() {
                deadlines.push(sessions[i].req.arrival_ms, sessions[i].req.id, i);
            }
        }
        // Deadline events: shed every request whose TTFT SLO lapsed
        // before first admission. Admitted sessions drop their stale
        // deadline silently — their work is already sunk, never shed.
        if let Some(ttft_slo_ms) = slo {
            while let Some((arrival_ms, i)) = deadlines.peek() {
                if sessions[i].queue_wait_ms.is_some() {
                    deadlines.pop();
                    continue;
                }
                if now - arrival_ms <= ttft_slo_ms {
                    // Earliest deadline not lapsed: none after it has.
                    break;
                }
                deadlines.pop();
                let s = &mut sessions[i];
                s.rejected = true;
                s.queue_wait_ms = Some(now - s.req.arrival_ms);
                rejected += 1;
                settled += 1;
                in_wait[i] = false;
                wait_live -= 1;
            }
        }
        // Head-of-line admission against the running Σ next_kv — the same
        // conservative projection as the tick core (zombie pages of
        // demoted sessions deliberately do not count; see the tick core's
        // comment on why counting them could wedge the scheduler).
        while let Some(&head) = wait.front() {
            if sessions[head].rejected {
                // Tombstone left by a deadline event.
                wait.pop_front();
                continue;
            }
            let projected = active_next_sum + next_kv[head];
            if config.kv_budget_bytes.is_some_and(|b| projected > b) {
                break;
            }
            wait.pop_front();
            in_wait[head] = false;
            wait_live -= 1;
            admission_counter += 1;
            let s = &mut sessions[head];
            s.admission_seq = admission_counter;
            if s.queue_wait_ms.is_none() {
                s.queue_wait_ms = Some(now - s.req.arrival_ms);
            }
            if let Some(pool) = pages.as_mut() {
                // Re-admission reserves frames for the whole cache up
                // front; a zombie's still-held pages move from the wait
                // sum back to the active sum.
                let kv = resident_kv[head];
                wait_held_sum -= s.held_bytes;
                s.held_bytes = kv;
                active_held_sum += kv;
                pool.grow(
                    s.req.id,
                    pool.pages_for(kv),
                    (s.last_step_tick, s.admission_seq, s.req.id),
                )
                .expect("pool is sized for the whole trace");
                if std::mem::take(&mut s.kv_preloaded) {
                    // Decode-only leg: prompt KV arrived over the NoC
                    // handoff, so the first admission loads fault-free.
                    s.loaded_bytes = kv;
                }
            } else {
                s.pending_reload_bytes = s.spilled_kv_bytes;
                s.spilled_kv_bytes = 0;
            }
            active_next_sum += next_kv[head];
            active_resident_sum += resident_kv[head];
            ready.insert((s.last_step_tick, s.admission_seq, s.req.id));
            if use_fifo {
                fifo.insert((s.admission_seq, s.last_step_tick, s.req.id));
            }
        }
        // Step-set selection: the first `max_batch` sessions in ready
        // order — least recently stepped first, deterministic tie-breaks —
        // without cloning or sorting the resident set.
        step_set.clear();
        step_set.extend(ready.iter().take(config.max_batch).map(|&(_, _, id)| id2idx[&id]));
        if step_set.is_empty() {
            // Only reachable when load shedding emptied the queue with no
            // resident work; the next iteration jumps to the next arrival.
            continue;
        }
        let mut step_next = 0u64;
        let mut step_resident = 0u64;
        for &i in &step_set {
            step_epoch[i] = tick;
            step_next += next_kv[i];
            step_resident += resident_kv[i];
        }
        // Budget enforcement: evict until the tick fits, preferring idle
        // victims (same policy order as the tick core), with the demand
        // recomputed O(1) from the running sums each round.
        let mut spill_cycles = Cycles::ZERO;
        if let Some(budget) = config.kv_budget_bytes {
            loop {
                let zombie_held = if paged { wait_held_sum } else { 0 };
                let needed = step_next + (active_resident_sum - step_resident) + zombie_held;
                if needed <= budget {
                    break;
                }
                if let Some(pool) = pages.as_mut() {
                    // Lazy page-granular spill; see the tick core for the
                    // demote-then-peel rationale.
                    let zombie_page = pool.lru_page(|sid| in_wait[id2idx[&sid]]);
                    if let Some((_, owner)) = zombie_page {
                        let victim = id2idx[&owner];
                        let s = &mut sessions[victim];
                        let frames = pool.session_pages(owner) as u64;
                        let tail_start = (frames - 1) * page_bytes;
                        let write = s.loaded_bytes.saturating_sub(tail_start);
                        if write > 0 {
                            spill_cycles +=
                                charge_spill(&mut kv_dram, &mut migration, owner, write, None);
                            page_spills += 1;
                        }
                        pool.evict_tail(owner);
                        wait_held_sum -= s.held_bytes - tail_start;
                        s.held_bytes = tail_start;
                        s.loaded_bytes = s.loaded_bytes.min(tail_start);
                    } else {
                        // First resident session in LRU order that is not
                        // stepping and still holds pages — the same victim
                        // the tick core's filtered min finds, located by
                        // an ordered walk instead of a full scan.
                        let idle_victim = ready
                            .iter()
                            .map(|&(_, _, id)| id2idx[&id])
                            .find(|&i| step_epoch[i] != tick && sessions[i].held_bytes > 0);
                        if let Some(victim) = idle_victim {
                            let s = &mut sessions[victim];
                            ready.remove(&(s.last_step_tick, s.admission_seq, s.req.id));
                            active_next_sum -= next_kv[victim];
                            active_resident_sum -= resident_kv[victim];
                            // Demoted without spilling: its pages become
                            // zombie residency until lazily peeled.
                            active_held_sum -= s.held_bytes;
                            wait_held_sum += s.held_bytes;
                            if s.prefilled {
                                total_evictions += 1;
                                s.evictions += 1;
                            }
                            wait.push_back(victim);
                            in_wait[victim] = true;
                            wait_live += 1;
                        } else {
                            // No idle cache left: demote a stepping
                            // session, spilling eagerly (it was about to
                            // run). Under PagedLru the victim key is the
                            // ready key, so the minimum is the step set's
                            // first remaining member.
                            let victim = *step_set
                                .first()
                                .expect("an over-budget tick always has a stepping session");
                            step_set.remove(0);
                            let s = &mut sessions[victim];
                            ready.remove(&(s.last_step_tick, s.admission_seq, s.req.id));
                            step_next -= next_kv[victim];
                            step_resident -= resident_kv[victim];
                            active_next_sum -= next_kv[victim];
                            active_resident_sum -= resident_kv[victim];
                            if s.prefilled {
                                total_evictions += 1;
                                s.evictions += 1;
                            }
                            if s.loaded_bytes > 0 {
                                spill_cycles += charge_spill(
                                    &mut kv_dram,
                                    &mut migration,
                                    s.req.id,
                                    s.loaded_bytes,
                                    Some(page_bytes),
                                );
                                page_spills += pool.pages_for(s.loaded_bytes) as u64;
                            }
                            pool.release(s.req.id);
                            active_held_sum -= s.held_bytes;
                            s.held_bytes = 0;
                            s.loaded_bytes = 0;
                            wait.push_back(victim);
                            in_wait[victim] = true;
                            wait_live += 1;
                        }
                    }
                } else {
                    // Whole-cache victim: first non-stepping resident
                    // session with a cache, in victim-key order (the FIFO
                    // index when that policy differs from LRU), falling
                    // back to the step set's minimum.
                    let victim_order = if use_fifo { &fifo } else { &ready };
                    let victim = victim_order
                        .iter()
                        .map(|&(_, _, id)| id2idx[&id])
                        .find(|&i| step_epoch[i] != tick && resident_kv[i] > 0)
                        .unwrap_or_else(|| {
                            // Evicting the last stepping session is
                            // impossible: a single next step always fits
                            // (validated above).
                            step_set
                                .iter()
                                .copied()
                                .min_by_key(|&i| sessions[i].victim_key(config.policy))
                                .expect("an over-budget tick always has an evictable session")
                        });
                    if let Some(pos) = step_set.iter().position(|&i| i == victim) {
                        step_set.remove(pos);
                        step_next -= next_kv[victim];
                        step_resident -= resident_kv[victim];
                    }
                    let s = &mut sessions[victim];
                    ready.remove(&(s.last_step_tick, s.admission_seq, s.req.id));
                    if use_fifo {
                        fifo.remove(&(s.admission_seq, s.last_step_tick, s.req.id));
                    }
                    active_next_sum -= next_kv[victim];
                    active_resident_sum -= resident_kv[victim];
                    if s.prefilled {
                        // Only a session that actually holds (or owes) a
                        // cache counts as evicted; preempting an
                        // unprefilled session spills nothing.
                        total_evictions += 1;
                        s.evictions += 1;
                        if s.pending_reload_bytes > 0 {
                            // Evicted again before reloading: nothing to
                            // write out.
                            s.spilled_kv_bytes = s.pending_reload_bytes;
                            s.pending_reload_bytes = 0;
                        } else {
                            let bytes = resident_kv[victim];
                            spill_cycles +=
                                charge_spill(&mut kv_dram, &mut migration, s.req.id, bytes, None);
                            s.spilled_kv_bytes = bytes;
                        }
                    }
                    wait.push_back(victim);
                    in_wait[victim] = true;
                    wait_live += 1;
                }
            }
        }
        debug_assert!(!step_set.is_empty(), "a tick with work must step a session");
        // Reload spilled caches for sessions about to step; paged mode
        // also reserves the frames the step's KV growth will fill.
        reload_cycles.clear();
        for &i in &step_set {
            if let Some(pool) = pages.as_mut() {
                let s = &mut sessions[i];
                let existing = resident_kv[i];
                pool.grow(s.req.id, pool.pages_for(next_kv[i]), (tick, s.admission_seq, s.req.id))
                    .expect("pool is sized for the whole trace");
                let fault = existing - s.loaded_bytes;
                if fault > 0 {
                    reload_cycles.push(charge_reload(
                        &mut kv_dram,
                        &mut migration,
                        s.req.id,
                        fault,
                        Some(page_bytes),
                    ));
                    page_faults += fault.div_ceil(page_bytes);
                    s.loaded_bytes = existing;
                } else {
                    reload_cycles.push(Cycles::ZERO);
                }
            } else {
                let bytes = std::mem::take(&mut sessions[i].pending_reload_bytes);
                reload_cycles.push(if bytes > 0 {
                    charge_reload(&mut kv_dram, &mut migration, sessions[i].req.id, bytes, None)
                } else {
                    Cycles::ZERO
                });
            }
        }
        // Measure each *distinct* step shape once. The engine's latency
        // model is a pure function of (prompt, token index) — every call
        // builds a fresh DRAM channel — so a cached result (errors
        // included) is bit-identical to re-measuring, and the misses fan
        // out through the same order-preserving parallel map as the tick
        // core.
        miss_keys.clear();
        for &i in &step_set {
            let key = step_key(&sessions[i]);
            if !cache.contains(key) && !miss_keys.contains(&key) {
                miss_keys.push(key);
            }
        }
        if !miss_keys.is_empty() {
            let measured = par_map(&miss_keys, &exec, |&(prompt, token)| {
                if token == 0 {
                    engine.prefill_latency(prompt)
                } else {
                    engine.decode_latency(prompt, token)
                }
            });
            for (&key, result) in miss_keys.iter().zip(measured) {
                cache.insert(key, result);
            }
        }
        matrix.clear();
        solo_ms.clear();
        for (pos, &i) in step_set.iter().enumerate() {
            let report = match cache.get(step_key(&sessions[i])).expect("measured above") {
                Ok(report) => report,
                // First failing step in step order propagates, exactly as
                // the tick core's in-order `?` over the parallel map.
                Err(e) => return Err(e.clone()),
            };
            let mut row: Vec<Cycles> = report.layers.iter().map(LayerLatency::makespan).collect();
            let mut stall = reload_cycles[pos];
            // Weight residency — identical state machine to the tick core
            // (see the comment there); step order matches, so the LRU
            // sequence, the eviction choices and the charged cycles agree
            // bit-exactly.
            if let Some(ws) = weights.as_mut() {
                let (wstall, was_cold) =
                    ws.ensure_resident(&mut kv_dram, sessions[i].req.model(), &row);
                stall += wstall;
                if was_cold && !sessions[i].prefilled {
                    sessions[i].cold_start = true;
                }
            }
            // Deterministic speculation credit — identical arithmetic to
            // the tick core (see the comment there).
            if let Some(spec) = config.speculation {
                let s = &mut sessions[i];
                if s.prefilled {
                    s.spec_miss_credit += 1.0 - spec.acceptance;
                    if s.spec_miss_credit >= 1.0 {
                        s.spec_miss_credit -= 1.0;
                        let step: u64 = row.iter().map(|c| c.get()).sum();
                        let waste =
                            (step as f64 * spec.draft_len as f64 * spec.draft_cost_ratio).round();
                        stall += Cycles(waste as u64);
                    }
                }
            }
            row[0] += stall;
            solo_ms.push(report.total_ms() + clock.to_ms(stall));
            ledger.merge(&report.ledger);
            matrix.push(row);
        }
        let finishes = flow_shop_completion_times(&matrix);
        let tick_cycles = spill_cycles + finishes.last().copied().unwrap_or(Cycles::ZERO);
        finished.clear();
        for ((&i, &finish), own_ms) in step_set.iter().zip(&finishes).zip(solo_ms.drain(..)) {
            let s = &mut sessions[i];
            // Re-key the ordered indexes for the new step tick.
            ready.remove(&(s.last_step_tick, s.admission_seq, s.req.id));
            if use_fifo {
                fifo.remove(&(s.admission_seq, s.last_step_tick, s.req.id));
            }
            s.last_step_tick = tick;
            let done_ms = now + clock.to_ms(spill_cycles + finish);
            let mut is_done = false;
            if s.prefilled {
                s.generated += 1;
                s.tbt_ms.push(own_ms);
                if s.generated == s.req.generate_tokens {
                    s.finish_ms = done_ms;
                    is_done = true;
                }
            } else {
                s.prefilled = true;
                s.prefill_ms = own_ms;
                s.first_token_ms = done_ms;
                if s.phase.finishes_at_prefill() {
                    s.finish_ms = done_ms;
                    is_done = true;
                }
            }
            // Refresh the cached sizes and running sums; finishers keep
            // counting until the peak snapshot below, exactly as the tick
            // core's end-of-tick scan observes them.
            let new_resident = s.kv_bytes(&sizer);
            let new_next = s.next_kv(&sizer);
            active_resident_sum = active_resident_sum - resident_kv[i] + new_resident;
            active_next_sum = active_next_sum - next_kv[i] + new_next;
            resident_kv[i] = new_resident;
            next_kv[i] = new_next;
            if paged {
                // The step's KV writes land as measured attention
                // traffic; residency grows in place.
                active_held_sum = active_held_sum - s.held_bytes + new_resident;
                s.held_bytes = new_resident;
                s.loaded_bytes = new_resident;
            }
            if is_done {
                finished.push(i);
            } else {
                ready.insert((tick, s.admission_seq, s.req.id));
                if use_fifo {
                    fifo.insert((s.admission_seq, tick, s.req.id));
                }
            }
        }
        // Residency peaks at tick end, before completed caches are freed;
        // paged residency also counts zombie pages. Both are the running
        // sums — no scan.
        let resident = if paged { active_held_sum + wait_held_sum } else { active_resident_sum };
        peak_kv = peak_kv.max(resident);
        if let Some(pool) = pages.as_ref() {
            // Every frame is owned by a resident or demoted session and
            // each owner's held bytes fit its frames, so pool occupancy
            // minus total held bytes equals the per-session frag sum.
            frag_peak = frag_peak.max(pool.frag_total_bytes(active_held_sum + wait_held_sum));
            debug_assert!(pool.conserves_pages(), "page tables must conserve the pool");
        }
        for &i in &finished {
            active_resident_sum -= resident_kv[i];
            active_next_sum -= next_kv[i];
            if let Some(pool) = pages.as_mut() {
                let s = &mut sessions[i];
                pool.release(s.req.id);
                active_held_sum -= s.held_bytes;
                s.held_bytes = 0;
                s.loaded_bytes = 0;
            }
        }
        settled += finished.len();
        now += clock.to_ms(tick_cycles);
    }

    ledger.merge(kv_dram.ledger());
    let totals = SchedTotals {
        ticks: tick,
        makespan_ms: now,
        peak_kv,
        frag_peak,
        total_evictions,
        page_spills,
        page_faults,
        rejected,
        weight_loads: weights.as_ref().map_or(0, |ws| ws.loads),
        weight_evictions: weights.as_ref().map_or(0, |ws| ws.evictions),
    };
    Ok(finalize_report(config, model, &sizer, &sessions, ledger, totals))
}

/// Memo key of one session's next step: `(prompt_tokens, token_index)`,
/// with index 0 encoding the prefill pass (decode indices start at 1, so
/// the key reproduces the exact `decode_latency(prompt, generated + 1)` /
/// `prefill_latency(prompt)` calls of the tick core).
fn step_key(s: &Session) -> (usize, usize) {
    if s.prefilled {
        (s.req.prompt_tokens, s.generated + 1)
    } else {
        (s.req.prompt_tokens, 0)
    }
}

impl MeadowEngine {
    /// Serves an arrival trace on this engine — see [`serve`].
    ///
    /// # Errors
    ///
    /// See [`serve`].
    pub fn serve(
        &self,
        trace: &ArrivalTrace,
        config: &ServeConfig,
    ) -> Result<ServeReport, CoreError> {
        serve(self, trace, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use meadow_models::presets;
    use meadow_sim::TrafficClass;

    fn engine() -> MeadowEngine {
        MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0)).unwrap()
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let report = serve(&engine(), &ArrivalTrace::default(), &ServeConfig::default()).unwrap();
        assert_eq!(report.requests, 0);
        assert_eq!(report.total_generated_tokens, 0);
        assert_eq!(report.ticks, 0);
        assert_eq!(report.makespan_ms, 0.0);
        assert_eq!(report.tokens_per_sec, 0.0);
        assert!(report.traces.is_empty());
    }

    #[test]
    fn single_request_completes() {
        let trace = ArrivalTrace::uniform(1, 0.0, 16, 8);
        let report = serve(&engine(), &trace, &ServeConfig::default()).unwrap();
        assert_eq!(report.requests, 1);
        assert_eq!(report.total_generated_tokens, 8);
        assert_eq!(report.total_evictions, 0);
        assert_eq!(report.rejected_requests, 0);
        let t = &report.traces[0];
        assert_eq!(t.generated_tokens, 8);
        assert_eq!(t.tbt_ms.len(), 8);
        assert_eq!(t.queue_wait_ms, 0.0);
        assert!(!t.rejected);
        assert!(t.first_token_ms > 0.0);
        assert!(t.finish_ms > t.first_token_ms);
        assert!(report.makespan_ms >= t.finish_ms);
        assert_eq!(t.final_kv_bytes, kv_cache_total_bytes(&presets::tiny_decoder(), 24));
        // One session alone: 1 prefill tick + 8 decode ticks.
        assert_eq!(report.ticks, 9);
    }

    #[test]
    fn batched_run_is_cheaper_than_sequential_makespan() {
        let trace = ArrivalTrace::uniform(4, 0.0, 16, 4);
        let report = serve(&engine(), &trace, &ServeConfig::default()).unwrap();
        let sequential: f64 =
            report.traces.iter().map(|t| t.prefill_ms + t.tbt_ms.iter().sum::<f64>()).sum();
        assert!(
            report.makespan_ms < sequential,
            "pipelined {} !< sequential {}",
            report.makespan_ms,
            sequential
        );
        // But no faster than the slowest single chain.
        assert!(report.makespan_ms > report.traces[0].prefill_ms);
    }

    #[test]
    fn constrained_budget_evicts_but_completes() {
        let model = presets::tiny_decoder();
        let trace = ArrivalTrace::uniform(4, 0.0, 16, 8);
        // Room for roughly two peak sessions: forces contention.
        let budget = 2 * ServeRequest::new(0, 0.0, 16, 8).peak_kv_bytes(&model);
        let config = ServeConfig::default().with_budget(budget);
        let report = serve(&engine(), &trace, &config).unwrap();
        assert_eq!(report.total_generated_tokens, 4 * 8);
        assert!(report.total_evictions > 0, "budget {budget} should force evictions");
        assert!(report.peak_kv_bytes <= budget);
        assert!(report.ledger.bytes(TrafficClass::KvCache) > 0);
    }

    #[test]
    fn paged_policy_completes_under_pressure_with_page_metrics() {
        let model = presets::tiny_decoder();
        let trace = ArrivalTrace::uniform(4, 0.0, 16, 8);
        let budget = 2 * ServeRequest::new(0, 0.0, 16, 8).peak_kv_bytes(&model);
        let config = ServeConfig::default()
            .with_budget(budget)
            .with_policy(KvPolicy::PagedLru)
            .with_page_bytes(256);
        let report = serve(&engine(), &trace, &config).unwrap();
        assert_eq!(report.total_generated_tokens, 4 * 8);
        assert!(report.peak_kv_bytes <= budget);
        assert!(report.total_page_spills > 0, "pressure must peel pages");
        assert!(report.total_page_faults > 0, "peeled pages must fault back");
        assert!(report.ledger.bytes(TrafficClass::KvCache) > 0);
    }

    #[test]
    fn paged_moves_fewer_migration_bytes_than_whole_cache() {
        let model = presets::tiny_decoder();
        let trace = ArrivalTrace::uniform(4, 0.0, 16, 8);
        // Budget slightly under total demand, with a batch cap rotating
        // idle sessions through the pool: whole-cache eviction thrashes
        // entire caches to make a single step's room, paged eviction peels
        // only the overflow.
        let budget = 5 * ServeRequest::new(0, 0.0, 16, 8).peak_kv_bytes(&model) / 2;
        let e = engine();
        let base = ServeConfig::default().with_budget(budget).with_max_batch(2);
        let whole = serve(&e, &trace, &base.with_policy(KvPolicy::Lru)).unwrap();
        let paged =
            serve(&e, &trace, &base.with_policy(KvPolicy::PagedLru).with_page_bytes(256)).unwrap();
        assert!(whole.total_evictions > 0);
        assert!(
            paged.ledger.bytes(TrafficClass::KvCache) < whole.ledger.bytes(TrafficClass::KvCache),
            "paged {} !< whole {}",
            paged.ledger.bytes(TrafficClass::KvCache),
            whole.ledger.bytes(TrafficClass::KvCache)
        );
    }

    #[test]
    fn reject_after_sheds_load_under_pressure() {
        let model = presets::tiny_decoder();
        // Simultaneous arrivals against a one-session budget: later requests
        // blow any tight TTFT SLO while the first one decodes.
        let trace = ArrivalTrace::uniform(4, 0.0, 16, 32);
        let single = ServeRequest::new(0, 0.0, 16, 32).peak_kv_bytes(&model);
        let config = ServeConfig::default()
            .with_budget(single)
            .with_admission(AdmissionPolicy::RejectAfter { ttft_slo_ms: 0.05 });
        let report = serve(&engine(), &trace, &config).unwrap();
        assert!(report.rejected_requests > 0, "pressure must shed load");
        assert!(report.rejected_requests < 4, "the head request always runs");
        let done: u64 =
            report.traces.iter().filter(|t| !t.rejected).map(|t| t.generated_tokens as u64).sum();
        assert_eq!(report.total_generated_tokens, done);
        for t in report.traces.iter().filter(|t| t.rejected) {
            assert_eq!(t.generated_tokens, 0);
            assert_eq!(t.final_kv_bytes, 0);
            assert_eq!(t.finish_ms, 0.0);
        }
    }

    #[test]
    fn queue_admission_never_rejects() {
        let model = presets::tiny_decoder();
        let trace = ArrivalTrace::uniform(4, 0.0, 16, 8);
        let single = ServeRequest::new(0, 0.0, 16, 8).peak_kv_bytes(&model);
        let report = serve(&engine(), &trace, &ServeConfig::default().with_budget(single)).unwrap();
        assert_eq!(report.rejected_requests, 0);
        assert_eq!(report.total_generated_tokens, 32);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let e = engine();
        let trace = ArrivalTrace::uniform(2, 0.0, 16, 8);
        assert!(serve(&e, &trace, &ServeConfig::default().with_max_batch(0)).is_err());
        // Budget smaller than a single request's peak KV can never serve it.
        assert!(serve(&e, &trace, &ServeConfig::default().with_budget(1)).is_err());
        // A paged pool needs non-zero pages, and SLOs must be sane.
        assert!(serve(
            &e,
            &trace,
            &ServeConfig::default().with_policy(KvPolicy::PagedLru).with_page_bytes(0)
        )
        .is_err());
        assert!(serve(
            &e,
            &trace,
            &ServeConfig::default()
                .with_admission(AdmissionPolicy::RejectAfter { ttft_slo_ms: f64::NAN })
        )
        .is_err());
        assert!(serve(
            &e,
            &trace,
            &ServeConfig::default()
                .with_admission(AdmissionPolicy::RejectAfter { ttft_slo_ms: -1.0 })
        )
        .is_err());
        let dup = ArrivalTrace::new(vec![
            ServeRequest::new(7, 0.0, 8, 2),
            ServeRequest::new(7, 0.0, 8, 2),
        ]);
        assert!(serve(&e, &dup, &ServeConfig::default()).is_err());
    }

    #[test]
    fn staggered_arrivals_wait_in_order() {
        let trace = ArrivalTrace::new(vec![
            ServeRequest::new(0, 0.0, 16, 2),
            ServeRequest::new(1, 1e6, 16, 2),
        ]);
        let report = serve(&engine(), &trace, &ServeConfig::default()).unwrap();
        let late = report.trace(1).unwrap();
        // The late request arrives after the first finished: no queueing.
        assert_eq!(late.queue_wait_ms, 0.0);
        assert!(late.first_token_ms >= 1e6);
        assert!(report.trace(0).unwrap().finish_ms < 1e6);
    }

    #[test]
    fn max_batch_cap_still_serves_everyone() {
        let trace = ArrivalTrace::uniform(5, 0.0, 8, 3);
        let capped = ServeConfig::default().with_max_batch(2);
        let report = serve(&engine(), &trace, &capped).unwrap();
        assert_eq!(report.total_generated_tokens, 15);
        assert!(report.ticks > 5, "a cap of 2 needs more ticks than uncapped");
    }

    #[test]
    fn report_round_trips_through_json() {
        let trace = ArrivalTrace::uniform(2, 0.5, 8, 2);
        let config = ServeConfig::default()
            .with_budget(1 << 20)
            .with_policy(KvPolicy::PagedLru)
            .with_page_bytes(512)
            .with_admission(AdmissionPolicy::RejectAfter { ttft_slo_ms: 1e6 });
        let report = serve(&engine(), &trace, &config).unwrap();
        let json = report.to_json().unwrap();
        let parsed: ServeReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[3.0], 0.5), 3.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 0.5), 2.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 0.95), 4.0);
    }

    #[test]
    fn speculation_validation_rejects_bad_configs() {
        let ok = SpecDecode { draft_len: 4, acceptance: 0.7, draft_cost_ratio: 0.25 };
        assert!(ok.validate().is_ok());
        let cases = [
            SpecDecode { draft_len: 0, ..ok },
            SpecDecode { acceptance: -0.1, ..ok },
            SpecDecode { acceptance: 1.1, ..ok },
            SpecDecode { acceptance: f64::NAN, ..ok },
            SpecDecode { draft_cost_ratio: -0.5, ..ok },
            SpecDecode { draft_cost_ratio: f64::INFINITY, ..ok },
        ];
        for bad in cases {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
            // The serving entry point rejects it too.
            let trace = ArrivalTrace::uniform(1, 0.0, 8, 2);
            let config = ServeConfig::default().with_speculation(bad);
            assert!(serve(&engine(), &trace, &config).is_err());
        }
    }

    #[test]
    fn full_acceptance_speculation_is_bit_identical_to_baseline() {
        let e = engine();
        let trace = ArrivalTrace::uniform(4, 0.0, 16, 8);
        let base = ServeConfig::default().with_max_batch(2);
        let baseline = serve(&e, &trace, &base).unwrap();
        let spec = SpecDecode { draft_len: 8, acceptance: 1.0, draft_cost_ratio: 0.5 };
        let accepted = serve(&e, &trace, &base.with_speculation(spec)).unwrap();
        assert_eq!(baseline, accepted, "acceptance 1.0 must never flush a draft");
        assert_eq!(baseline.to_json().unwrap(), accepted.to_json().unwrap());
    }

    #[test]
    fn lower_acceptance_slows_decode_monotonically() {
        let e = engine();
        let trace = ArrivalTrace::uniform(3, 0.0, 16, 12);
        let base = ServeConfig::default();
        let spec = |acceptance: f64| SpecDecode { draft_len: 4, acceptance, draft_cost_ratio: 0.5 };
        let mut prev_makespan = serve(&e, &trace, &base).unwrap().makespan_ms;
        for acceptance in [0.9, 0.5, 0.1] {
            let report = serve(&e, &trace, &base.with_speculation(spec(acceptance))).unwrap();
            assert!(
                report.makespan_ms >= prev_makespan,
                "acceptance {acceptance} makespan {} regressed below {prev_makespan}",
                report.makespan_ms
            );
            // The flush penalty rides own-service decode latency, not TTFT.
            assert_eq!(report.total_generated_tokens, 3 * 12);
            prev_makespan = report.makespan_ms;
        }
        // And a flush really happened at low acceptance.
        let flushed = serve(&e, &trace, &base.with_speculation(spec(0.1))).unwrap();
        let clean = serve(&e, &trace, &base).unwrap();
        assert!(flushed.makespan_ms > clean.makespan_ms, "misses must cost cycles");
    }

    #[test]
    fn pipelined_cold_finish_bounds_and_degeneracies() {
        let load = [Cycles(10), Cycles(10), Cycles(10)];
        let compute = [Cycles(4), Cycles(4), Cycles(4)];
        // Hand-walked: finishes at 14, 24, 34 — load-bound throughout.
        assert_eq!(pipelined_cold_finish(&load, &compute), Cycles(34));
        // Compute-bound: the first load hides everything after it.
        let slow = [Cycles(100), Cycles(100), Cycles(100)];
        assert_eq!(pipelined_cold_finish(&load, &slow), Cycles(310));
        // Degeneracies: zero loads = pure compute, zero compute = pure load.
        assert_eq!(pipelined_cold_finish(&[], &compute), Cycles(12));
        assert_eq!(pipelined_cold_finish(&load, &[]), Cycles(30));
    }

    #[test]
    fn cold_start_stalls_the_first_step_and_charges_weight_traffic() {
        let e = engine();
        let model = presets::tiny_decoder();
        // Spaced far enough apart that request 1 prefills alone on a warm
        // chip — the within-batch case would smear the cold stall onto the
        // sibling through the flow shop.
        let trace = ArrivalTrace::uniform(2, 1000.0, 16, 4);
        let warm = serve(&e, &trace, &ServeConfig::default()).unwrap();
        let cold_config = ServeConfig::default().with_weight_budget(model.total_weight_bytes());
        let cold = serve(&e, &trace, &cold_config).unwrap();
        let weights = cold.weights.expect("a weight budget must yield a summary");
        // One model, one load, no churn; every weight byte crossed DRAM
        // exactly once and is layer-exact.
        assert_eq!((weights.models, weights.weight_loads, weights.weight_evictions), (1, 1, 0));
        assert_eq!(weights.weight_bytes, model.total_weight_bytes());
        assert_eq!(weights.weight_bytes, model.layer_weight_bytes() * model.layers as u64);
        assert_eq!(cold.ledger.bytes(TrafficClass::Weights), weights.weight_bytes);
        assert_eq!(warm.ledger.bytes(TrafficClass::Weights), 0);
        // Only the session whose step triggered the load is cold; its
        // sibling in the same first batch finds the weights resident.
        assert_eq!(weights.cold_requests, 1);
        let cold_traces: Vec<bool> = cold.traces.iter().map(|t| t.cold_start.unwrap()).collect();
        assert_eq!(cold_traces.iter().filter(|&&c| c).count(), 1);
        // The load stalls only the cold session: its TTFT strictly
        // exceeds the permanently-resident identity's, while the warm
        // follow-up matches it exactly (the weights are resident by then).
        assert!(weights.cold_ttft.p50_ms > weights.warm_ttft.p50_ms);
        assert!(cold.traces[0].ttft_ms() > warm.traces[0].ttft_ms());
        assert_eq!(cold.traces[1].ttft_ms(), warm.traces[1].ttft_ms());
        assert!(warm.weights.is_none(), "no budget must serialize no summary");
    }

    #[test]
    fn streaming_overlap_lands_between_warm_and_sequential() {
        let e = engine();
        let model = presets::tiny_decoder();
        let trace = ArrivalTrace::uniform(1, 0.0, 16, 4);
        let warm = serve(&e, &trace, &ServeConfig::default()).unwrap();
        let budget = ServeConfig::default().with_weight_budget(model.total_weight_bytes());
        let sequential = serve(&e, &trace, &budget).unwrap();
        let streamed = serve(&e, &trace, &budget.with_weight_streaming(true)).unwrap();
        let warm_ttft = warm.traces[0].ttft_ms();
        let seq_ttft = sequential.traces[0].ttft_ms();
        let stream_ttft = streamed.traces[0].ttft_ms();
        assert!(
            warm_ttft < stream_ttft && stream_ttft < seq_ttft,
            "overlap must land strictly between warm {warm_ttft} and sequential {seq_ttft}, \
             got {stream_ttft}"
        );
        // Identical bytes moved either way — overlap hides latency, it
        // does not skip traffic.
        assert_eq!(
            streamed.ledger.bytes(TrafficClass::Weights),
            sequential.ledger.bytes(TrafficClass::Weights)
        );
    }

    #[test]
    fn lru_eviction_churns_two_models_through_a_one_model_budget() {
        let e = engine();
        let model = presets::tiny_decoder();
        let mut trace = ArrivalTrace::uniform(4, 0.0, 16, 4);
        for (i, r) in trace.requests.iter_mut().enumerate() {
            *r = r.with_model((i % 2) as u32);
        }
        // Room for exactly one model: every model switch re-streams.
        let config =
            ServeConfig::default().with_weight_budget(model.total_weight_bytes()).with_max_batch(1);
        let report = serve(&e, &trace, &config).unwrap();
        let weights = report.weights.unwrap();
        assert_eq!(weights.models, 2);
        assert!(weights.weight_evictions > 0, "a one-model budget must churn");
        assert_eq!(weights.weight_loads, weights.weight_evictions + 1);
        // Byte conservation through churn: exactly one model's weights
        // per load, nothing written back on evict.
        assert_eq!(weights.weight_bytes, weights.weight_loads * model.total_weight_bytes());
        assert_eq!(report.ledger.bytes(TrafficClass::Weights), weights.weight_bytes);
    }
}
