//! The MEADOW framework: the paper's primary contribution assembled from the
//! workspace substrates.
//!
//! * [`engine`] — [`MeadowEngine`]: configure a chip, model, bandwidth and
//!   execution plan; measure TTFT (prefill), TBT (decode) and end-to-end
//!   latency with full fetch/compute/store breakdowns and traffic ledgers.
//! * [`baselines`] — the prior-work execution models of Table 2 (CTA token
//!   compression, FlightLLM N:M sparsity) re-implemented on the MEADOW
//!   architecture, plus the GEMM baseline.
//! * [`planner`] — the GEMM-vs-TPHS dataflow chooser over (bandwidth, PE)
//!   design points (Fig. 12a).
//! * [`roofline`] — roofline model and per-dataflow operating points
//!   (Fig. 12b).
//! * [`serve`] — the multi-session serving simulator: continuous batching
//!   of many requests on one engine under an explicit KV-cache memory
//!   budget with FIFO/LRU whole-cache eviction or paged (vLLM-style)
//!   eviction, SLO-aware admission, and a deterministic
//!   speculative-decoding model ([`SpecDecode`]).
//! * [`cluster`] — the cluster serving API: shard the session pool across
//!   N simulated chips behind one arrival stream, with pluggable
//!   [`PlacementPolicy`] routing, per-chip page pools,
//!   [`MigrationPolicy`]-driven cross-chip KV migration charged on the
//!   NoC model, and [`PhasePlacement`]-driven prefill/decode
//!   disaggregation with the prompt-KV handoff charged per hop.
//! * [`capacity`] — the capacity planner: binary-search the minimal chip
//!   fleet (per candidate palette mix) that meets a p95-TTFT/rejection
//!   SLO for a workload, each probe a deterministic [`ServeSpec`] run.
//! * [`kv_pages`] — the paged KV-cache allocator behind
//!   [`serve::KvPolicy::PagedLru`]: fixed-size pages, a free list,
//!   per-session page tables and page-LRU victim metadata.
//! * [`vit`] — the DeiT vision-transformer inference path (Fig. 13).
//! * [`accuracy`] — lossless-ness verification: bit-exact pack→unpack round
//!   trips over whole model weight sets (the reproduction's stand-in for
//!   the paper's "approximation-less" accuracy claim).
//! * [`report`] — table formatting and CSV emission for the repro harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod baselines;
pub mod capacity;
pub mod cluster;
pub mod engine;
pub mod error;
pub(crate) mod events;
pub mod kv_pages;
pub mod planner;
pub mod report;
pub mod roofline;
pub mod serve;
pub mod session;
pub mod spec;
pub mod vit;

pub use capacity::{CapacityPlan, CapacityPlanner, MixPlan, PaletteMix, ProbePoint, SloTarget};
pub use cluster::{
    throughput_score_milli, Cluster, ClusterConfig, ClusterReport, Colocated, DisaggReport,
    HandoffStats, LeastLoadedKv, LeastLoadedWeighted, MigrationPolicy, NoMigration,
    PhaseAssignment, PhasePlacement, PlacementPolicy, PrefillDecodeSplit, RequestSummary,
    RoundRobin, SessionAffinity, ToLeastLoaded,
};
pub use engine::{EngineConfig, LatencyReport, MeadowEngine};
pub use error::CoreError;
pub use kv_pages::KvPageAllocator;
pub use serve::{
    AdmissionPolicy, KvPolicy, LatencySummary, SchedulerCore, ServeConfig, ServeConfigBuilder,
    ServeError, ServeReport, ServeTrace, SpecDecode,
};
pub use session::SessionPhase;
pub use spec::{ServeOutcome, ServeSpec, ServeSpecBuilder};
