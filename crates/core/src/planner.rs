//! The GEMM-vs-TPHS dataflow chooser over (bandwidth, PE-count) design
//! points (Fig. 12a of the paper).
//!
//! The planner compares the attention chain (`Q + SM(QKᵀ)·V`) under both
//! dataflows at each design point. Following the paper's design-space
//! analysis (whose companion Fig. 12b is a roofline plot), the GEMM side is
//! assessed at its *roofline* operating point — `max(memory time, compute
//! time)`, i.e. perfect double-buffered overlap — while TPHS is assessed
//! with its event-scheduled pipeline makespan. At high bandwidth the GEMM
//! array's full MAC parallelism wins; once the channel narrows, the
//! intermediate-tensor round trips sink GEMM and TPHS takes over.

use crate::error::CoreError;
use meadow_dataflow::schedule::{attention_block_latency, LayerParams, ScheduleKnobs};
use meadow_dataflow::{AttentionDataflow, ExecutionPlan};
use meadow_models::weights::ModelPackingStats;
use meadow_models::TransformerConfig;
use meadow_packing::{PackingConfig, PackingLevel};
use meadow_sim::{ChipConfig, ClockDomain, Cycles, DramModel};
use serde::{Deserialize, Serialize};

/// One evaluated design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerEntry {
    /// Off-chip bandwidth in Gbps.
    pub bandwidth_gbps: f64,
    /// Total PE count of the scaled tile.
    pub total_pes: usize,
    /// Attention-chain latency under GEMM (roofline-overlapped), ms.
    pub gemm_ms: f64,
    /// Attention-chain latency under TPHS (pipeline makespan), ms.
    pub tphs_ms: f64,
    /// The chosen dataflow.
    pub best: AttentionDataflow,
}

impl PlannerEntry {
    /// Latency of the chosen dataflow in ms.
    pub fn best_ms(&self) -> f64 {
        match self.best {
            AttentionDataflow::Gemm => self.gemm_ms,
            AttentionDataflow::Tphs => self.tphs_ms,
        }
    }
}

/// Evaluates one (bandwidth, PE) design point for the attention chain of
/// `config` at `tokens` prefill tokens.
///
/// # Errors
///
/// Propagates executor errors.
pub fn evaluate_design_point(
    config: &TransformerConfig,
    packing_stats: Option<&ModelPackingStats>,
    packing_config: PackingConfig,
    bandwidth_gbps: f64,
    total_pes: usize,
    tokens: usize,
) -> Result<PlannerEntry, CoreError> {
    let chip = ChipConfig::zcu102_with_total_pes(total_pes);
    let clock = chip.clock;
    let params = LayerParams {
        config,
        layer: 0,
        tokens_new: tokens,
        context: tokens,
        packing_stats,
        packing_config,
        knobs: ScheduleKnobs::default(),
    };
    // GEMM side: sequential components, then roofline overlap.
    let mut dram = DramModel::with_bandwidth(bandwidth_gbps, clock)?;
    let gemm_plan =
        ExecutionPlan { attention: AttentionDataflow::Gemm, packing: packing_level(packing_stats) };
    let gemm = attention_block_latency(&chip, &mut dram, &gemm_plan, &params)?;
    let mem = gemm.fetch() + gemm.store();
    let gemm_cycles = mem.max(gemm.compute());
    // TPHS side: event-scheduled makespan (already overlapped).
    let mut dram = DramModel::with_bandwidth(bandwidth_gbps, clock)?;
    let tphs_plan =
        ExecutionPlan { attention: AttentionDataflow::Tphs, packing: packing_level(packing_stats) };
    let tphs = attention_block_latency(&chip, &mut dram, &tphs_plan, &params)?;
    let tphs_cycles = tphs.makespan();
    let per_layer = config.layers as u64;
    let gemm_ms = clock.to_ms(Cycles(gemm_cycles.get() * per_layer));
    let tphs_ms = clock.to_ms(Cycles(tphs_cycles.get() * per_layer));
    Ok(PlannerEntry {
        bandwidth_gbps,
        total_pes,
        gemm_ms,
        tphs_ms,
        best: if gemm_ms <= tphs_ms { AttentionDataflow::Gemm } else { AttentionDataflow::Tphs },
    })
}

fn packing_level(stats: Option<&ModelPackingStats>) -> Option<PackingLevel> {
    stats.map(|s| s.level)
}

/// Sweeps the full (bandwidth × PE) grid of Fig. 12a.
///
/// # Errors
///
/// Propagates executor errors.
pub fn dataflow_grid(
    config: &TransformerConfig,
    packing_stats: Option<&ModelPackingStats>,
    packing_config: PackingConfig,
    bandwidths_gbps: &[f64],
    pe_counts: &[usize],
    tokens: usize,
) -> Result<Vec<PlannerEntry>, CoreError> {
    let mut grid = Vec::with_capacity(bandwidths_gbps.len() * pe_counts.len());
    for &bw in bandwidths_gbps {
        for &pes in pe_counts {
            grid.push(evaluate_design_point(
                config,
                packing_stats,
                packing_config,
                bw,
                pes,
                tokens,
            )?);
        }
    }
    Ok(grid)
}

/// The paper's Fig. 12a axes: bandwidths 1/6/25/51 Gbps, PEs 14/36/48/96.
pub fn paper_grid_axes() -> (Vec<f64>, Vec<usize>) {
    (vec![1.0, 6.0, 25.0, 51.0], vec![14, 36, 48, 96])
}

/// Builds an engine whose attention dataflow is *chosen automatically* for
/// the deployment point, per §6.5's conclusion that the framework should
/// pick GEMM at high bandwidth and TPHS at low bandwidth. Weight packing is
/// always on (it never hurts).
///
/// `tokens` is the prefill length the choice is optimized for.
///
/// # Errors
///
/// Propagates statistics and engine-construction errors.
pub fn auto_engine(
    model: &TransformerConfig,
    chip: ChipConfig,
    bandwidth_gbps: f64,
    tokens: usize,
) -> Result<crate::engine::MeadowEngine, CoreError> {
    let packing_config = PackingConfig::default();
    let stats = ModelPackingStats::compute(model, &packing_config, PackingLevel::FrequencyAware)?;
    let entry = evaluate_design_point(
        model,
        Some(&stats),
        packing_config,
        bandwidth_gbps,
        chip.total_pes(),
        tokens,
    )?;
    let config = crate::engine::EngineConfig {
        chip,
        model: model.clone(),
        bandwidth_gbps,
        plan: ExecutionPlan { attention: entry.best, packing: Some(PackingLevel::FrequencyAware) },
        packing_config,
        knobs: meadow_dataflow::schedule::ScheduleKnobs::default(),
        exec: meadow_tensor::parallel::ExecConfig::serial(),
    };
    crate::engine::MeadowEngine::with_packing_stats(config, Some(stats))
}

/// Convenience: derive a grid clock for reporting (the tile clock is fixed
/// across design points).
pub fn grid_clock() -> ClockDomain {
    ClockDomain::zcu102()
}

#[cfg(test)]
mod tests {
    use super::*;
    use meadow_models::presets;

    #[test]
    fn paper_grid_shape_reproduces() {
        let (bws, pes) = paper_grid_axes();
        let cfg = presets::opt_125m();
        let grid = dataflow_grid(&cfg, None, PackingConfig::default(), &bws, &pes, 512).unwrap();
        assert_eq!(grid.len(), 16);
        // Fig. 12a: at 51 Gbps GEMM wins regardless of PE count; at 1 Gbps
        // TPHS wins regardless of PE count.
        for e in &grid {
            if e.bandwidth_gbps >= 51.0 {
                assert_eq!(
                    e.best,
                    AttentionDataflow::Gemm,
                    "(bw {}, pe {}): gemm {} tphs {}",
                    e.bandwidth_gbps,
                    e.total_pes,
                    e.gemm_ms,
                    e.tphs_ms
                );
            }
            if e.bandwidth_gbps <= 1.0 {
                assert_eq!(
                    e.best,
                    AttentionDataflow::Tphs,
                    "(bw {}, pe {}): gemm {} tphs {}",
                    e.bandwidth_gbps,
                    e.total_pes,
                    e.gemm_ms,
                    e.tphs_ms
                );
            }
        }
    }

    #[test]
    fn more_pes_never_hurt_gemm() {
        let cfg = presets::opt_125m();
        let small =
            evaluate_design_point(&cfg, None, PackingConfig::default(), 25.0, 14, 512).unwrap();
        let big =
            evaluate_design_point(&cfg, None, PackingConfig::default(), 25.0, 96, 512).unwrap();
        assert!(big.gemm_ms <= small.gemm_ms);
        assert!(big.tphs_ms <= small.tphs_ms);
    }

    #[test]
    fn best_ms_matches_choice() {
        let cfg = presets::tiny_decoder();
        let e = evaluate_design_point(&cfg, None, PackingConfig::default(), 6.0, 96, 32).unwrap();
        let expect = match e.best {
            AttentionDataflow::Gemm => e.gemm_ms,
            AttentionDataflow::Tphs => e.tphs_ms,
        };
        assert_eq!(e.best_ms(), expect);
    }

    #[test]
    fn auto_engine_picks_the_right_dataflow_per_bandwidth() {
        let cfg = presets::opt_125m();
        let low = auto_engine(&cfg, ChipConfig::zcu102(), 1.0, 512).unwrap();
        assert_eq!(low.config().plan.attention, AttentionDataflow::Tphs);
        let high = auto_engine(&cfg, ChipConfig::zcu102(), 51.0, 512).unwrap();
        assert_eq!(high.config().plan.attention, AttentionDataflow::Gemm);
        // Either way packing is on and the engine measures.
        assert!(low.config().plan.packing.is_some());
        assert!(low.prefill_latency(512).unwrap().total_ms() > 0.0);
    }

    #[test]
    fn auto_engine_never_loses_to_a_fixed_choice() {
        let cfg = presets::opt_125m();
        for bw in [1.0, 25.0] {
            let auto = auto_engine(&cfg, ChipConfig::zcu102(), bw, 512).unwrap();
            let auto_ms = auto.prefill_latency(512).unwrap().total_ms();
            let fixed = crate::engine::MeadowEngine::new(crate::engine::EngineConfig::zcu102(
                cfg.clone(),
                bw,
            ))
            .unwrap();
            let fixed_ms = fixed.prefill_latency(512).unwrap().total_ms();
            // Auto picks TPHS at these points, so it matches the MEADOW
            // default within noise; it must never be slower by more than
            // the GEMM/TPHS gap.
            assert!(auto_ms <= fixed_ms * 1.01, "@{bw}: auto {auto_ms} vs fixed {fixed_ms}");
        }
    }
}
