//! Lossless-ness verification (§6.1's accuracy claim, reproduced as
//! bit-exactness).
//!
//! The paper reports that weight packing is "approximation-less" and that
//! the W8A8 models keep their LAMBADA accuracy. Without the LAMBADA
//! checkpoints, the strongest equivalent statement is *bit-exactness*: every
//! weight matrix survives pack→unpack unchanged at every packing level, and
//! the TPHS dataflow computes bit-identical attention outputs to the GEMM
//! reference (see `meadow_dataflow::functional`). This module provides the
//! whole-model packing check.

use crate::error::CoreError;
use meadow_models::synthetic::{generate_matrix, matrix_seed, profile_for};
use meadow_models::{MatrixKind, TransformerConfig};
use meadow_packing::{PackedWeights, PackingConfig, PackingLevel};
use meadow_tensor::parallel::{par_map, ExecConfig};
use serde::{Deserialize, Serialize};

/// Result of a whole-model lossless-ness check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LosslessReport {
    /// Model checked.
    pub model: String,
    /// Number of (matrix, level) pairs verified.
    pub matrices_checked: usize,
    /// Whether every round trip was bit-exact.
    pub all_exact: bool,
    /// Human-readable failures (empty when `all_exact`).
    pub failures: Vec<String>,
}

/// Packs and unpacks every weight matrix of `config` at every packing level
/// and verifies bit-exact reconstruction. `max_rows` caps the generated rows
/// per matrix (weights are row-independent, so a row-capped check exercises
/// the identical code paths at a fraction of the cost; pass `usize::MAX` for
/// full matrices).
///
/// # Errors
///
/// Propagates generation and packing errors (a *failed comparison* is
/// reported in the result, not as an error).
pub fn verify_model_lossless(
    config: &TransformerConfig,
    packing: &PackingConfig,
    max_rows: usize,
) -> Result<LosslessReport, CoreError> {
    verify_model_lossless_with(config, packing, max_rows, &ExecConfig::serial())
}

/// [`verify_model_lossless`] with caller-chosen parallelism: the
/// (layer, matrix) pairs are independent, so each worker generates, packs
/// and round-trips one matrix at a time. Failures are reported in the
/// serial (layer, kind, level) order regardless of thread count.
///
/// # Errors
///
/// Propagates generation and packing errors (the first error in serial
/// order wins).
pub fn verify_model_lossless_with(
    config: &TransformerConfig,
    packing: &PackingConfig,
    max_rows: usize,
    exec: &ExecConfig,
) -> Result<LosslessReport, CoreError> {
    let jobs: Vec<(usize, MatrixKind)> = (0..config.layers)
        .flat_map(|layer| MatrixKind::all().into_iter().map(move |kind| (layer, kind)))
        .collect();
    let per_matrix = par_map(&jobs, exec, |&(layer, kind)| -> Result<_, CoreError> {
        let (rows, cols) = config.matrix_dims(kind);
        let rows = rows.min(max_rows.max(1));
        let profile = profile_for(config, kind, layer);
        let seed = matrix_seed(config, kind, layer);
        let w = generate_matrix(rows, cols, profile, packing.chunk.chunk_elems, seed)?;
        let mut checked = 0;
        let mut failures = Vec::new();
        for level in PackingLevel::all() {
            let packed = PackedWeights::pack(&w, packing, level)?;
            let restored = packed.unpack()?;
            checked += 1;
            if restored != w {
                failures.push(format!("{} layer {layer} {kind:?} at {level:?}", config.name));
            }
        }
        Ok((checked, failures))
    });
    let mut checked = 0;
    let mut failures = Vec::new();
    for result in per_matrix {
        let (c, f) = result?;
        checked += c;
        failures.extend(f);
    }
    Ok(LosslessReport {
        model: config.name.clone(),
        matrices_checked: checked,
        all_exact: failures.is_empty(),
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use meadow_models::presets;

    #[test]
    fn tiny_model_is_lossless_at_all_levels() {
        let report =
            verify_model_lossless(&presets::tiny_decoder(), &PackingConfig::default(), usize::MAX)
                .unwrap();
        assert!(report.all_exact, "failures: {:?}", report.failures);
        // 2 layers × 6 matrices × 3 levels.
        assert_eq!(report.matrices_checked, 36);
    }

    #[test]
    fn parallel_verification_matches_serial() {
        let config = presets::tiny_decoder();
        let packing = PackingConfig::default();
        let serial = verify_model_lossless(&config, &packing, 32).unwrap();
        for threads in [2usize, 4, 8] {
            let exec = ExecConfig::with_threads(threads);
            let par = verify_model_lossless_with(&config, &packing, 32, &exec).unwrap();
            assert_eq!(par, serial, "threads {threads}");
        }
    }

    #[test]
    fn engine_lossless_check_uses_config_exec() {
        use crate::engine::{EngineConfig, MeadowEngine};
        let config = EngineConfig::zcu102(presets::tiny_decoder(), 12.0)
            .with_exec(ExecConfig::with_threads(4));
        let engine = MeadowEngine::new(config).unwrap();
        let report = engine.verify_lossless(16).unwrap();
        assert!(report.all_exact, "failures: {:?}", report.failures);
    }

    #[test]
    fn row_capped_opt125m_layer_is_lossless() {
        let mut cfg = presets::opt_125m();
        cfg.layers = 1; // keep the test fast; the repro binary checks all 12
        let report = verify_model_lossless(&cfg, &PackingConfig::default(), 96).unwrap();
        assert!(report.all_exact, "failures: {:?}", report.failures);
        assert_eq!(report.matrices_checked, 18);
    }
}
