//! The MEADOW engine: TTFT / TBT / end-to-end latency measurement.

use crate::error::CoreError;
use meadow_dataflow::schedule::ScheduleKnobs;
use meadow_dataflow::{ExecutionPlan, LayerLatency};
use meadow_models::weights::ModelPackingStats;
use meadow_models::workload::{DecodeWorkload, PrefillWorkload};
use meadow_models::{ModelKind, TransformerConfig};
use meadow_packing::PackingConfig;
use meadow_sim::energy::{ActivityCounts, EnergyModel, PowerReport};
use meadow_sim::{ChipConfig, ClockDomain, Cycles, DramModel, TrafficLedger};
use meadow_tensor::parallel::ExecConfig;
use serde::{Deserialize, Serialize};

/// Full configuration of one engine instance.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Accelerator tile description.
    pub chip: ChipConfig,
    /// Model architecture.
    pub model: TransformerConfig,
    /// Off-chip DRAM bandwidth in Gbps.
    pub bandwidth_gbps: f64,
    /// Execution plan (dataflow + packing level).
    pub plan: ExecutionPlan,
    /// Packing configuration.
    pub packing_config: PackingConfig,
    /// Baseline-modeling knobs (identity for GEMM and MEADOW).
    pub knobs: ScheduleKnobs,
    /// Host-side execution policy for the engine's parallel work —
    /// currently the per-matrix fan-out of
    /// [`MeadowEngine::verify_lossless`]. Serial by default; callers that
    /// want `MEADOW_THREADS` behaviour pass
    /// [`ExecConfig::from_env`] via [`EngineConfig::with_exec`].
    pub exec: ExecConfig,
}

impl EngineConfig {
    /// Full MEADOW on the ZCU102 at the given bandwidth.
    pub fn zcu102(model: TransformerConfig, bandwidth_gbps: f64) -> Self {
        Self {
            chip: ChipConfig::zcu102(),
            model,
            bandwidth_gbps,
            plan: ExecutionPlan::meadow(),
            packing_config: PackingConfig::default(),
            knobs: ScheduleKnobs::default(),
            exec: ExecConfig::serial(),
        }
    }

    /// Full MEADOW on the LITTLE sibling of the big/LITTLE palette
    /// ([`ChipConfig::zcu102_little`]: half the ZCU102's PEs) — the slow
    /// chip of the heterogeneous-cluster artifacts.
    pub fn zcu102_little(model: TransformerConfig, bandwidth_gbps: f64) -> Self {
        Self { chip: ChipConfig::zcu102_little(), ..Self::zcu102(model, bandwidth_gbps) }
    }

    /// Returns the same configuration with a different execution policy.
    pub fn with_exec(self, exec: ExecConfig) -> Self {
        Self { exec, ..self }
    }

    /// The paper's GEMM baseline on the ZCU102.
    pub fn gemm_baseline(model: TransformerConfig, bandwidth_gbps: f64) -> Self {
        Self { plan: ExecutionPlan::gemm_baseline(), ..Self::zcu102(model, bandwidth_gbps) }
    }
}

/// Latency measurement of one prefill or decode step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyReport {
    /// Total wall-clock cycles.
    pub cycles: Cycles,
    /// Clock domain for time conversion.
    pub clock: ClockDomain,
    /// Per-layer latencies with op breakdowns.
    pub layers: Vec<LayerLatency>,
    /// DRAM traffic ledger for the whole measurement.
    pub ledger: TrafficLedger,
}

impl LatencyReport {
    /// Total latency in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.clock.to_ms(self.cycles)
    }

    /// Component totals across all layers (fetch, compute, store).
    pub fn components(&self) -> (Cycles, Cycles, Cycles) {
        (
            self.layers.iter().map(LayerLatency::fetch).sum(),
            self.layers.iter().map(LayerLatency::compute).sum(),
            self.layers.iter().map(LayerLatency::store).sum(),
        )
    }
}

/// End-to-end latency (TTFT + all TBTs) of a full generation request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EndToEndReport {
    /// Time to first token in milliseconds.
    pub ttft_ms: f64,
    /// Total decode time in milliseconds.
    pub decode_ms: f64,
    /// Number of generated tokens.
    pub generated_tokens: usize,
    /// Total request latency in milliseconds.
    pub total_ms: f64,
}

/// The MEADOW engine.
///
/// Construction precomputes per-matrix packing statistics when the plan
/// packs weights; measurements are then pure functions of the workload.
///
/// # Example
///
/// ```
/// use meadow_core::{EngineConfig, MeadowEngine};
/// use meadow_models::presets;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let engine = MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0))?;
/// let ttft = engine.prefill_latency(16)?;
/// assert!(ttft.total_ms() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MeadowEngine {
    config: EngineConfig,
    packing_stats: Option<ModelPackingStats>,
}

impl MeadowEngine {
    /// Builds an engine, validating the configuration and precomputing
    /// packing statistics if the plan packs weights.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for invalid bandwidth and
    /// propagates model/packing errors.
    pub fn new(config: EngineConfig) -> Result<Self, CoreError> {
        if !config.bandwidth_gbps.is_finite() || config.bandwidth_gbps <= 0.0 {
            return Err(CoreError::InvalidConfig {
                param: "bandwidth_gbps",
                reason: format!("must be finite and positive, got {}", config.bandwidth_gbps),
            });
        }
        config.chip.validate()?;
        config.model.validate()?;
        let packing_stats = match config.plan.packing {
            Some(level) => {
                Some(ModelPackingStats::compute(&config.model, &config.packing_config, level)?)
            }
            None => None,
        };
        Ok(Self { config, packing_stats })
    }

    /// Builds an engine with precomputed packing statistics (sweep harnesses
    /// reuse one statistics computation across many bandwidth points).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the plan packs weights but
    /// `stats` is `None` for a packing plan, or on invalid bandwidth.
    pub fn with_packing_stats(
        config: EngineConfig,
        stats: Option<ModelPackingStats>,
    ) -> Result<Self, CoreError> {
        if !config.bandwidth_gbps.is_finite() || config.bandwidth_gbps <= 0.0 {
            return Err(CoreError::InvalidConfig {
                param: "bandwidth_gbps",
                reason: format!("must be finite and positive, got {}", config.bandwidth_gbps),
            });
        }
        config.chip.validate()?;
        config.model.validate()?;
        if config.plan.packing.is_some() && stats.is_none() {
            return Err(CoreError::InvalidConfig {
                param: "packing_stats",
                reason: "plan packs weights but no statistics were provided".into(),
            });
        }
        Ok(Self { config, packing_stats: stats })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The same engine with a different host-side execution policy —
    /// measurements are bit-identical for any thread count, so this only
    /// changes how the engine's internal fan-outs are scheduled (the
    /// cluster layer uses it to split one thread budget among chips).
    pub fn with_exec(mut self, exec: ExecConfig) -> Self {
        self.config.exec = exec;
        self
    }

    /// Precomputed packing statistics, if the plan packs weights.
    pub fn packing_stats(&self) -> Option<&ModelPackingStats> {
        self.packing_stats.as_ref()
    }

    /// Verifies whole-model pack→unpack bit-exactness on this engine's
    /// model and packing configuration, using the engine's execution policy
    /// ([`EngineConfig::exec`]) to fan the per-matrix checks out across
    /// worker threads.
    ///
    /// # Errors
    ///
    /// Propagates generation and packing errors.
    pub fn verify_lossless(
        &self,
        max_rows: usize,
    ) -> Result<crate::accuracy::LosslessReport, CoreError> {
        crate::accuracy::verify_model_lossless_with(
            &self.config.model,
            &self.config.packing_config,
            max_rows,
            &self.config.exec,
        )
    }

    /// A fresh DRAM channel at this engine's bandwidth and clock (the serve
    /// simulator charges KV-cache migration traffic on its own channel).
    pub(crate) fn fresh_dram(&self) -> Result<DramModel, CoreError> {
        DramModel::with_bandwidth(self.config.bandwidth_gbps, self.config.chip.clock)
            .map_err(CoreError::from)
    }

    fn measure(&self, tokens_new: usize, context: usize) -> Result<LatencyReport, CoreError> {
        use meadow_dataflow::schedule::{layer_latency, LayerParams};
        let mut dram = self.fresh_dram()?;
        let layers: Vec<LayerLatency> = (0..self.config.model.layers)
            .map(|layer| {
                let params = LayerParams {
                    config: &self.config.model,
                    layer,
                    tokens_new,
                    context,
                    packing_stats: self.packing_stats.as_ref(),
                    packing_config: self.config.packing_config,
                    knobs: self.config.knobs,
                };
                layer_latency(&self.config.chip, &mut dram, &self.config.plan, &params)
                    .map_err(CoreError::from)
            })
            .collect::<Result<_, _>>()?;
        let cycles = layers.iter().map(LayerLatency::makespan).sum();
        Ok(LatencyReport {
            cycles,
            clock: self.config.chip.clock,
            layers,
            ledger: dram.ledger().clone(),
        })
    }

    /// Time to first token: the full prompt processed in one prefill pass.
    ///
    /// # Errors
    ///
    /// Propagates workload validation and executor errors.
    pub fn prefill_latency(&self, prompt_tokens: usize) -> Result<LatencyReport, CoreError> {
        let w = PrefillWorkload::new(&self.config.model, prompt_tokens)?;
        self.measure(w.prompt_tokens, w.prompt_tokens)
    }

    /// Time between tokens: predicting the `token_index`-th generated token
    /// after `prefill_tokens` of prompt (§6.1).
    ///
    /// # Errors
    ///
    /// Propagates workload validation and executor errors; vision
    /// transformers reject decode workloads.
    pub fn decode_latency(
        &self,
        prefill_tokens: usize,
        token_index: usize,
    ) -> Result<LatencyReport, CoreError> {
        let w = DecodeWorkload::new(&self.config.model, prefill_tokens, token_index)?;
        self.measure(1, w.context_len())
    }

    /// Single-pass inference latency for a vision transformer.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for decoder-LM configs.
    pub fn vit_inference_latency(&self) -> Result<LatencyReport, CoreError> {
        match self.config.model.kind {
            ModelKind::VisionTransformer { tokens } => self.measure(tokens, tokens),
            ModelKind::DecoderLm => Err(CoreError::InvalidConfig {
                param: "model",
                reason: "vit_inference_latency requires a vision transformer".into(),
            }),
        }
    }

    /// End-to-end latency of a generation request: one prefill plus
    /// `generated_tokens` decode steps. TBT grows linearly in the context
    /// length, so the decode total is integrated from the first and last
    /// step's TBT (trapezoid rule — exact for a linear model).
    ///
    /// # Errors
    ///
    /// Propagates workload validation and executor errors.
    pub fn end_to_end_latency(
        &self,
        prompt_tokens: usize,
        generated_tokens: usize,
    ) -> Result<EndToEndReport, CoreError> {
        if generated_tokens == 0 {
            return Err(CoreError::InvalidConfig {
                param: "generated_tokens",
                reason: "must generate at least one token".into(),
            });
        }
        let ttft = self.prefill_latency(prompt_tokens)?;
        let first = self.decode_latency(prompt_tokens, 1)?;
        let last = self.decode_latency(prompt_tokens, generated_tokens)?;
        let decode_ms = (first.total_ms() + last.total_ms()) / 2.0 * generated_tokens as f64;
        Ok(EndToEndReport {
            ttft_ms: ttft.total_ms(),
            decode_ms,
            generated_tokens,
            total_ms: ttft.total_ms() + decode_ms,
        })
    }

    /// Average-power report for a measurement, combining the DRAM ledger
    /// with the model's MAC count (BRAM/NoC traffic estimated as twice the
    /// DRAM volume: every transferred byte crosses a BRAM and the NoC once
    /// on each side).
    pub fn power_report(
        &self,
        report: &LatencyReport,
        tokens_new: usize,
        context: usize,
    ) -> PowerReport {
        let dram_bytes = report.ledger.fetch_bytes() + report.ledger.store_bytes();
        let macs =
            self.config.model.layer_macs(tokens_new, context) * self.config.model.layers as u64;
        let activity = ActivityCounts {
            macs,
            dram_bytes,
            bram_bytes: 2 * dram_bytes,
            noc_bytes: 2 * dram_bytes,
        };
        EnergyModel::zcu102().report(activity, report.cycles, self.config.chip.clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meadow_models::presets;

    #[test]
    fn invalid_bandwidth_rejected() {
        assert!(MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 0.0)).is_err());
        assert!(MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), -2.0)).is_err());
        assert!(MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), f64::NAN)).is_err());
    }

    #[test]
    fn tiny_model_end_to_end() {
        let engine =
            MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0)).unwrap();
        let prefill = engine.prefill_latency(16).unwrap();
        assert!(prefill.total_ms() > 0.0);
        assert_eq!(prefill.layers.len(), 2);
        let decode = engine.decode_latency(16, 4).unwrap();
        assert!(decode.total_ms() > 0.0);
        assert!(decode.total_ms() < prefill.total_ms());
        let e2e = engine.end_to_end_latency(16, 8).unwrap();
        assert!(e2e.total_ms > e2e.ttft_ms);
        assert_eq!(e2e.generated_tokens, 8);
    }

    #[test]
    fn meadow_beats_gemm_on_opt125m_prefill() {
        let model = presets::opt_125m();
        let meadow = MeadowEngine::new(EngineConfig::zcu102(model.clone(), 12.0)).unwrap();
        let gemm = MeadowEngine::new(EngineConfig::gemm_baseline(model, 12.0)).unwrap();
        let m = meadow.prefill_latency(512).unwrap();
        let g = gemm.prefill_latency(512).unwrap();
        let speedup = g.total_ms() / m.total_ms();
        assert!(speedup > 1.2, "prefill speedup {speedup}");
    }

    #[test]
    fn vit_path_works_and_decode_rejected() {
        let engine = MeadowEngine::new(EngineConfig::zcu102(presets::tiny_vit(), 6.0)).unwrap();
        let lat = engine.vit_inference_latency().unwrap();
        assert!(lat.total_ms() > 0.0);
        assert!(engine.decode_latency(8, 1).is_err());
        let lm = MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 6.0)).unwrap();
        assert!(lm.vit_inference_latency().is_err());
    }

    #[test]
    fn lower_bandwidth_is_slower() {
        let model = presets::tiny_decoder();
        let fast = MeadowEngine::new(EngineConfig::zcu102(model.clone(), 12.0)).unwrap();
        let slow = MeadowEngine::new(EngineConfig::zcu102(model, 1.0)).unwrap();
        let f = fast.prefill_latency(32).unwrap();
        let s = slow.prefill_latency(32).unwrap();
        assert!(s.cycles > f.cycles);
    }

    #[test]
    fn power_stays_under_ten_watts() {
        let model = presets::opt_125m();
        let engine = MeadowEngine::new(EngineConfig::zcu102(model, 12.0)).unwrap();
        let prefill = engine.prefill_latency(512).unwrap();
        let power = engine.power_report(&prefill, 512, 512);
        assert!(power.average_watts < 10.0, "power {}", power.average_watts);
        assert!(power.average_watts > 0.0);
    }

    #[test]
    fn components_sum_to_makespan_for_gemm() {
        let engine =
            MeadowEngine::new(EngineConfig::gemm_baseline(presets::tiny_decoder(), 12.0)).unwrap();
        let r = engine.prefill_latency(16).unwrap();
        let (f, c, s) = r.components();
        assert_eq!(f + c + s, r.cycles, "GEMM is fully sequential");
    }

    #[test]
    fn e2e_validation() {
        let engine =
            MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0)).unwrap();
        assert!(engine.end_to_end_latency(16, 0).is_err());
    }
}
