//! The capacity planner: size the minimal chip fleet that meets an SLO.
//!
//! Real edge fleets mix big and LITTLE chips, and the deployment question
//! is *sizing*: "what is the smallest cluster that meets this SLO for
//! this workload?". The planner answers it by binary search over the
//! fleet size — every probe is one deterministic [`ServeSpec`] run of the
//! event core on a heterogeneous
//! [`chip_specs`](crate::cluster::ClusterConfigBuilder::chip_specs)
//! cluster under [`LeastLoadedWeighted`] placement, so a whole plan costs
//! `O(log max_chips)` cheap simulations per candidate mix and is
//! bit-reproducible.
//!
//! A [`PaletteMix`] names a repeating pattern of per-chip
//! [`EngineConfig`]s (e.g. `[big, little]` alternates chips); a fleet of
//! `n` chips cycles the pattern. The [`SloTarget`] is a p95 TTFT bound
//! with an optional rejection-rate cap. The returned [`CapacityPlan`]
//! carries, per mix, the chosen fleet, its measured p95/rejections, the
//! SLO margin, per-chip utilization and KV peaks, and the full probe
//! ladder the search walked. The contract is verified by construction:
//! the chosen fleet's probe meets the SLO and the `chips − 1` probe
//! misses it (both probes are in the ladder), or the plan fails with
//! [`ServeError::InfeasibleSlo`] when even `max_chips` chips miss it.
//!
//! # Example
//!
//! ```
//! use meadow_core::capacity::{CapacityPlanner, PaletteMix, SloTarget};
//! use meadow_core::{EngineConfig, ServeConfig};
//! use meadow_models::presets;
//! use meadow_models::workload::ArrivalTrace;
//!
//! # fn main() -> Result<(), meadow_core::CoreError> {
//! let big = EngineConfig::zcu102(presets::tiny_decoder(), 12.0);
//! let trace = ArrivalTrace::uniform(24, 0.5, 24, 6);
//! let slo = SloTarget { p95_ttft_ms: 40.0, max_rejected_fraction: None };
//! let plan = CapacityPlanner::new(ServeConfig::default(), slo)
//!     .max_chips(8)
//!     .plan(&trace, &[PaletteMix::new("big", vec![big])])?;
//! let mix = &plan.plans[0];
//! assert!(mix.p95_ttft_ms <= 40.0);
//! # Ok(())
//! # }
//! ```

use crate::cluster::LeastLoadedWeighted;
use crate::engine::{EngineConfig, MeadowEngine};
use crate::error::CoreError;
use crate::serve::{LatencySummary, ServeConfig, ServeError};
use crate::spec::ServeSpec;
use meadow_models::workload::ArrivalTrace;
use meadow_tensor::parallel::ExecConfig;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The service-level objective a fleet must meet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloTarget {
    /// 95th-percentile time-to-first-token bound across non-rejected
    /// requests, in ms.
    pub p95_ttft_ms: f64,
    /// Optional cap on the fraction of requests admission may shed
    /// (`None` = rejections don't fail the SLO).
    pub max_rejected_fraction: Option<f64>,
}

/// A named, repeating pattern of per-chip engine specs: chip `i` of a
/// fleet gets `pattern[i % pattern.len()]`, so `[big, little]` alternates
/// chip types as the fleet grows.
#[derive(Debug, Clone)]
pub struct PaletteMix {
    name: String,
    pattern: Vec<EngineConfig>,
}

impl PaletteMix {
    /// Names a palette mix over a repeating spec pattern.
    pub fn new(name: impl Into<String>, pattern: Vec<EngineConfig>) -> Self {
        Self { name: name.into(), pattern }
    }

    /// The mix's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The repeating spec pattern.
    pub fn pattern(&self) -> &[EngineConfig] {
        &self.pattern
    }

    /// The concrete fleet of `chips` chips: the pattern, cycled.
    pub fn fleet_of(&self, chips: usize) -> Vec<EngineConfig> {
        (0..chips).map(|i| self.pattern[i % self.pattern.len()].clone()).collect()
    }
}

/// Short human-readable description of one chip spec, used in plan
/// reports (the full [`EngineConfig`] is not serializable).
pub fn describe_spec(spec: &EngineConfig) -> String {
    format!("{}pe@{}gbps", spec.chip.total_pes(), spec.bandwidth_gbps)
}

/// One probed fleet size on the binary-search ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbePoint {
    /// Fleet size probed.
    pub chips: usize,
    /// Measured p95 TTFT across non-rejected requests, in ms.
    pub p95_ttft_ms: f64,
    /// Fraction of requests admission shed.
    pub rejected_fraction: f64,
    /// Whether this fleet met the SLO.
    pub meets_slo: bool,
}

/// The minimal fleet found for one palette mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixPlan {
    /// The mix's name.
    pub mix: String,
    /// Minimal fleet size that meets the SLO.
    pub chips: usize,
    /// The chosen fleet, chip by chip ([`describe_spec`] strings).
    pub fleet: Vec<String>,
    /// The chosen fleet's measured p95 TTFT, in ms.
    pub p95_ttft_ms: f64,
    /// The chosen fleet's rejected fraction.
    pub rejected_fraction: f64,
    /// SLO headroom: the p95 bound minus the measured p95, in ms
    /// (non-negative by construction).
    pub slo_margin_ms: f64,
    /// Per-chip busy fraction of the makespan on the chosen fleet.
    pub per_chip_utilization: Vec<f64>,
    /// Per-chip peak KV residency on the chosen fleet, in bytes.
    pub per_chip_peak_kv_bytes: Vec<u64>,
    /// Every fleet size the search probed, ascending — includes the
    /// chosen size (meets) and, when `chips > 1`, size `chips − 1`
    /// (misses), so the minimality contract is auditable from the report.
    pub probes: Vec<ProbePoint>,
}

/// A full capacity plan: the minimal fleet per candidate mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityPlan {
    /// The SLO's p95 TTFT bound, in ms.
    pub slo_p95_ttft_ms: f64,
    /// The SLO's rejection cap, if any.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub max_rejected_fraction: Option<f64>,
    /// Requests in the planning workload.
    pub requests: usize,
    /// Largest fleet size the search may probe.
    pub max_chips: usize,
    /// One sizing result per candidate mix, in input order.
    pub plans: Vec<MixPlan>,
}

impl CapacityPlan {
    /// Pretty JSON for artifacts and golden snapshots.
    ///
    /// # Errors
    ///
    /// Propagates serialization errors from the vendored serde_json.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

/// The planner: a per-chip [`ServeConfig`], an [`SloTarget`], and a
/// search bound — see the [module docs](self).
#[derive(Debug, Clone)]
pub struct CapacityPlanner {
    serve: ServeConfig,
    slo: SloTarget,
    max_chips: usize,
    exec: ExecConfig,
}

impl CapacityPlanner {
    /// A planner probing fleets of up to 16 chips (see
    /// [`max_chips`](Self::max_chips)) with serial probe execution.
    pub fn new(serve: ServeConfig, slo: SloTarget) -> Self {
        Self { serve, slo, max_chips: 16, exec: ExecConfig::serial() }
    }

    /// Bounds the search: the largest fleet size a probe may try.
    pub fn max_chips(mut self, max_chips: usize) -> Self {
        self.max_chips = max_chips;
        self
    }

    /// Execution policy for the probe simulations — a performance knob
    /// only; plans are bit-identical for any thread count.
    pub fn exec(mut self, exec: ExecConfig) -> Self {
        self.exec = exec;
        self
    }

    /// Sizes the minimal fleet per mix.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ZeroChips`] when `max_chips` is zero,
    /// [`ServeError::EmptyChipSpecs`] for a mix with an empty pattern,
    /// [`ServeError::InfeasibleSlo`] when even `max_chips` chips of a mix
    /// miss the SLO, and propagates spec-validation and simulation
    /// errors.
    pub fn plan(
        &self,
        trace: &ArrivalTrace,
        mixes: &[PaletteMix],
    ) -> Result<CapacityPlan, CoreError> {
        if self.max_chips == 0 {
            return Err(ServeError::ZeroChips.into());
        }
        let mut plans = Vec::with_capacity(mixes.len());
        for mix in mixes {
            plans.push(self.plan_mix(trace, mix)?);
        }
        Ok(CapacityPlan {
            slo_p95_ttft_ms: self.slo.p95_ttft_ms,
            max_rejected_fraction: self.slo.max_rejected_fraction,
            requests: trace.requests.len(),
            max_chips: self.max_chips,
            plans,
        })
    }

    /// Binary search over the fleet size of one mix, memoizing probes.
    fn plan_mix(&self, trace: &ArrivalTrace, mix: &PaletteMix) -> Result<MixPlan, CoreError> {
        if mix.pattern.is_empty() {
            return Err(ServeError::EmptyChipSpecs.into());
        }
        let mut probed: BTreeMap<usize, Probe> = BTreeMap::new();
        let probe =
            |chips: usize, probed: &mut BTreeMap<usize, Probe>| -> Result<Probe, CoreError> {
                if let Some(p) = probed.get(&chips) {
                    return Ok(p.clone());
                }
                let p = self.probe(trace, mix, chips)?;
                probed.insert(chips, p.clone());
                Ok(p)
            };

        // Feasibility first: if the largest allowed fleet misses the SLO,
        // no smaller one is worth searching — fail with the best evidence.
        let ceiling = probe(self.max_chips, &mut probed)?;
        if !ceiling.meets {
            return Err(ServeError::InfeasibleSlo {
                p95_ttft_ms: self.slo.p95_ttft_ms,
                max_chips: self.max_chips,
                best_p95_ms: ceiling.point.p95_ttft_ms,
            }
            .into());
        }

        // Binary search the meets/misses boundary, assuming monotonicity.
        let (mut lo, mut hi) = (1usize, self.max_chips);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if probe(mid, &mut probed)?.meets {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let mut chips = lo;

        // Verify the minimality contract by direct probes rather than
        // trusting monotonicity: the chosen size must meet, and size − 1
        // must miss. Walk if a probe disagrees, so the returned plan
        // holds by construction.
        while !probe(chips, &mut probed)?.meets && chips < self.max_chips {
            chips += 1;
        }
        while chips > 1 && probe(chips - 1, &mut probed)?.meets {
            chips -= 1;
        }
        let chosen = probe(chips, &mut probed)?;

        let fleet = mix.fleet_of(chips);
        Ok(MixPlan {
            mix: mix.name.clone(),
            chips,
            fleet: fleet.iter().map(describe_spec).collect(),
            p95_ttft_ms: chosen.point.p95_ttft_ms,
            rejected_fraction: chosen.point.rejected_fraction,
            slo_margin_ms: self.slo.p95_ttft_ms - chosen.point.p95_ttft_ms,
            per_chip_utilization: chosen.utilization,
            per_chip_peak_kv_bytes: chosen.peak_kv,
            probes: probed.into_values().map(|p| p.point).collect(),
        })
    }

    /// One probe: a deterministic cluster simulation of `chips` chips of
    /// the mix under weighted placement.
    fn probe(
        &self,
        trace: &ArrivalTrace,
        mix: &PaletteMix,
        chips: usize,
    ) -> Result<Probe, CoreError> {
        let fleet = mix.fleet_of(chips);
        let engine = MeadowEngine::new(fleet[0].clone().with_exec(self.exec))?;
        let spec = ServeSpec::builder()
            .chip_specs(fleet)
            .config(self.serve)
            .placement(LeastLoadedWeighted)
            .build()?;
        let report =
            spec.run(&engine, trace)?.into_cluster().expect("placement selects cluster mode");

        let ttfts: Vec<f64> = report
            .per_chip
            .iter()
            .flat_map(|c| c.report.traces.iter())
            .filter(|t| !t.rejected)
            .map(|t| t.ttft_ms())
            .collect();
        let p95 = LatencySummary::from_samples(ttfts).p95_ms;
        let rejected_fraction = if report.requests > 0 {
            report.rejected_requests as f64 / report.requests as f64
        } else {
            0.0
        };
        let meets = p95 <= self.slo.p95_ttft_ms
            && self.slo.max_rejected_fraction.is_none_or(|cap| rejected_fraction <= cap);
        Ok(Probe {
            point: ProbePoint { chips, p95_ttft_ms: p95, rejected_fraction, meets_slo: meets },
            meets,
            utilization: report.per_chip.iter().map(|c| c.utilization.unwrap_or(0.0)).collect(),
            peak_kv: report.per_chip.iter().map(|c| c.report.peak_kv_bytes).collect(),
        })
    }
}

/// Memoized result of one probe.
#[derive(Debug, Clone)]
struct Probe {
    point: ProbePoint,
    meets: bool,
    utilization: Vec<f64>,
    peak_kv: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use meadow_models::presets;

    fn big() -> EngineConfig {
        EngineConfig::zcu102(presets::tiny_decoder(), 12.0)
    }

    #[test]
    fn plan_meets_and_minus_one_misses() {
        let trace = ArrivalTrace::uniform(32, 0.25, 24, 8);
        let slo = SloTarget { p95_ttft_ms: 30.0, max_rejected_fraction: None };
        let plan = CapacityPlanner::new(ServeConfig::default().with_max_batch(2), slo)
            .max_chips(8)
            .plan(&trace, &[PaletteMix::new("big", vec![big()])])
            .unwrap();
        let mix = &plan.plans[0];
        assert!(mix.p95_ttft_ms <= 30.0);
        assert!(mix.slo_margin_ms >= 0.0);
        let chosen = mix.probes.iter().find(|p| p.chips == mix.chips).unwrap();
        assert!(chosen.meets_slo);
        if mix.chips > 1 {
            let below = mix.probes.iter().find(|p| p.chips == mix.chips - 1).unwrap();
            assert!(!below.meets_slo);
        }
        assert_eq!(mix.fleet.len(), mix.chips);
        assert_eq!(mix.per_chip_utilization.len(), mix.chips);
    }

    #[test]
    fn infeasible_slo_is_a_typed_error() {
        let trace = ArrivalTrace::uniform(16, 0.0, 32, 8);
        let slo = SloTarget { p95_ttft_ms: 1e-6, max_rejected_fraction: None };
        let err = CapacityPlanner::new(ServeConfig::default(), slo)
            .max_chips(2)
            .plan(&trace, &[PaletteMix::new("big", vec![big()])])
            .unwrap_err();
        match err {
            CoreError::Serve(ServeError::InfeasibleSlo { max_chips, .. }) => {
                assert_eq!(max_chips, 2);
            }
            other => panic!("expected InfeasibleSlo, got {other:?}"),
        }
    }

    #[test]
    fn empty_pattern_is_rejected() {
        let trace = ArrivalTrace::uniform(4, 0.0, 16, 4);
        let slo = SloTarget { p95_ttft_ms: 100.0, max_rejected_fraction: None };
        let err = CapacityPlanner::new(ServeConfig::default(), slo)
            .plan(&trace, &[PaletteMix::new("empty", vec![])])
            .unwrap_err();
        assert!(matches!(err, CoreError::Serve(ServeError::EmptyChipSpecs)));
    }

    #[test]
    fn plans_are_deterministic() {
        let trace = ArrivalTrace::uniform(16, 0.5, 24, 6);
        let slo = SloTarget { p95_ttft_ms: 50.0, max_rejected_fraction: Some(0.5) };
        let planner = CapacityPlanner::new(ServeConfig::default(), slo).max_chips(4);
        let mixes = [PaletteMix::new("big", vec![big()])];
        let a = planner.plan(&trace, &mixes).unwrap();
        let b = planner.plan(&trace, &mixes).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
    }
}
