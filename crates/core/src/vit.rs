//! Vision-transformer inference with MEADOW (§6.6, Fig. 13).
//!
//! ViTs process all image tokens together — structurally the prefill stage
//! of an LLM — so the combined TPHS/GEMM dataflow and weight packing apply
//! unchanged. [`vit_speedup`] measures MEADOW against the GEMM baseline for
//! one DeiT model at one bandwidth.

use crate::engine::{EngineConfig, MeadowEngine};
use crate::error::CoreError;
use meadow_models::TransformerConfig;
use serde::{Deserialize, Serialize};

/// MEADOW-vs-GEMM comparison for one ViT at one bandwidth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VitComparison {
    /// Model name.
    pub model: String,
    /// Bandwidth in Gbps.
    pub bandwidth_gbps: f64,
    /// GEMM-baseline inference latency in ms.
    pub gemm_ms: f64,
    /// MEADOW inference latency in ms.
    pub meadow_ms: f64,
    /// Speedup (GEMM ÷ MEADOW).
    pub speedup: f64,
}

/// Measures one ViT model under both execution plans.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for non-ViT configs and propagates
/// engine errors.
pub fn vit_speedup(
    model: &TransformerConfig,
    bandwidth_gbps: f64,
) -> Result<VitComparison, CoreError> {
    let gemm = MeadowEngine::new(EngineConfig::gemm_baseline(model.clone(), bandwidth_gbps))?;
    let meadow = MeadowEngine::new(EngineConfig::zcu102(model.clone(), bandwidth_gbps))?;
    let g = gemm.vit_inference_latency()?.total_ms();
    let m = meadow.vit_inference_latency()?.total_ms();
    Ok(VitComparison {
        model: model.name.clone(),
        bandwidth_gbps,
        gemm_ms: g,
        meadow_ms: m,
        speedup: g / m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use meadow_models::presets;

    #[test]
    fn deit_models_speed_up_in_the_paper_band() {
        // Fig. 13: 1.5–1.6× lower inference latency across bandwidths.
        for model in [presets::deit_s(), presets::deit_b()] {
            for bw in [3.0, 12.0] {
                let c = vit_speedup(&model, bw).unwrap();
                assert!(
                    (1.2..=2.2).contains(&c.speedup),
                    "{} @ {bw} Gbps: speedup {}",
                    c.model,
                    c.speedup
                );
            }
        }
    }

    #[test]
    fn decoder_lm_rejected() {
        assert!(vit_speedup(&presets::opt_125m(), 12.0).is_err());
    }

    #[test]
    fn comparison_fields_consistent() {
        let c = vit_speedup(&presets::tiny_vit(), 6.0).unwrap();
        assert!((c.speedup - c.gemm_ms / c.meadow_ms).abs() < 1e-12);
        assert_eq!(c.model, "tiny-vit");
    }
}
