//! Event-queue machinery for the event-driven serving core.
//!
//! The serving scheduler ([`crate::serve`]) advances simulated time from
//! event to event instead of scanning every resident session each tick.
//! This module owns the data structures that make those jumps cheap while
//! preserving the scheduler's determinism contract (bit-identical reports
//! across `MEADOW_THREADS`):
//!
//! * [`EventQueue`] — a binary min-heap of `(time, request id)` pairs.
//!   Ties break **by request id**, matching the arrival ordering the tick
//!   scheduler used (`arrival_ms` then `id`), so the event core admits and
//!   sheds requests in exactly the same order. Two event kinds live in
//!   these queues: *arrival* events (keyed by the request's `arrival_ms`)
//!   and *SLO deadline* events (also keyed by `arrival_ms` — the TTFT SLO
//!   is a constant offset within one run, so deadline order equals arrival
//!   order and the shedding condition can be evaluated verbatim against
//!   the original arrival time, avoiding a differently-rounded
//!   `arrival + slo` sum).
//! * [`ReadyOrder`] — an ordered index over the resident (admitted)
//!   sessions keyed by `(last step tick, admission sequence, request id)`,
//!   the scheduler's step order *and* the LRU victim order. Selecting the
//!   step set is a prefix walk; finding an eviction victim is an in-order
//!   scan that skips the step set — no per-tick clone-and-sort.
//! * [`StepCache`] — a memo of step measurements keyed by
//!   `(prompt_tokens, token_index)` (`token_index == 0` encodes the
//!   prefill pass). [`MeadowEngine::measure`] is a pure function of the
//!   workload shape — every call builds a fresh DRAM channel — so caching
//!   is bit-exact, and it removes the dominant cost of long traces:
//!   re-measuring the same decode step shape millions of times.
//!
//! Step completion is the third event kind: the batch's flow-shop makespan
//! decides the next time the scheduler wakes, so it is always the nearest
//! engine event and never needs to enter a heap. Eviction spills, KV
//! reloads and speculative-decoding flushes complete *within* the step
//! that needs them (the cost model charges them as stalls ahead of the
//! first layer), and a disaggregated handoff arrival is an ordinary
//! arrival event of the decode stage whose time is `prefill finish +
//! handoff latency`. See `docs/ARCHITECTURE.md` for the full taxonomy.
//!
//! [`MeadowEngine::measure`]: crate::engine::MeadowEngine

use crate::engine::LatencyReport;
use crate::error::CoreError;
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

/// A finite event time in milliseconds, ordered by `f64::total_cmp` so it
/// can key a heap (serving clocks are non-negative and finite, where
/// `total_cmp` agrees with the usual `<`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct EventTime(pub f64);

impl Eq for EventTime {}

impl PartialOrd for EventTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// One pending event: a time, the request id (the deterministic
/// tie-break), and the session's arena index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: EventTime,
    id: u32,
    idx: usize,
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    /// Reversed, so the `BinaryHeap` (a max-heap) pops the *earliest*
    /// event; ties break by the smaller request id first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.id).cmp(&(self.time, self.id))
    }
}

/// Binary min-heap of `(time, request id, arena index)` events. Pops in
/// `(time, id)` order — the same total order the tick scheduler's sorted
/// arrival queue used.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Event>,
}

impl EventQueue {
    pub(crate) fn with_capacity(n: usize) -> Self {
        Self { heap: BinaryHeap::with_capacity(n) }
    }

    pub(crate) fn push(&mut self, time: f64, id: u32, idx: usize) {
        self.heap.push(Event { time: EventTime(time), id, idx });
    }

    /// Time of the earliest pending event.
    pub(crate) fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time.0)
    }

    /// The earliest pending event as `(time, arena index)`, without
    /// popping it.
    pub(crate) fn peek(&self) -> Option<(f64, usize)> {
        self.heap.peek().map(|e| (e.time.0, e.idx))
    }

    /// Pops the earliest event as `(time, arena index)`.
    pub(crate) fn pop(&mut self) -> Option<(f64, usize)> {
        self.heap.pop().map(|e| (e.time.0, e.idx))
    }
}

/// Scheduling key of one resident session: `(last step tick, admission
/// sequence, request id)` — the step-set order and the LRU victim order.
pub(crate) type ReadyKey = (u64, u64, u32);

/// Ordered index over resident sessions. One instance keyed by the ready
/// key serves step selection and LRU victims; a second instance keyed by
/// `(admission sequence, last step tick, id)` serves FIFO victims.
#[derive(Debug, Default)]
pub(crate) struct ReadyOrder {
    set: BTreeSet<ReadyKey>,
}

impl ReadyOrder {
    pub(crate) fn insert(&mut self, key: ReadyKey) {
        let fresh = self.set.insert(key);
        debug_assert!(fresh, "ready keys embed the unique request id");
    }

    pub(crate) fn remove(&mut self, key: &ReadyKey) {
        let existed = self.set.remove(key);
        debug_assert!(existed, "removed sessions must be resident");
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Sessions in key order (ascending — least recently stepped first
    /// under the ready key).
    pub(crate) fn iter(&self) -> impl Iterator<Item = &ReadyKey> {
        self.set.iter()
    }
}

/// Memoized step measurements, keyed by `(prompt_tokens, token_index)`
/// with `token_index == 0` encoding the prefill pass (decode indices start
/// at 1). Results — including errors — are cached verbatim: the underlying
/// measurement is a pure function of the key, so replaying a cached result
/// is bit-identical to re-measuring.
///
/// The key deliberately omits the chip: a cache lives and dies inside one
/// `serve_on_chip_event` call, so it is private to one chip's engine.
/// That per-chip scoping is load-bearing for heterogeneous clusters
/// ([`ClusterConfigBuilder::chip_specs`](crate::cluster::ClusterConfigBuilder::chip_specs)):
/// the same `(prompt_tokens, token_index)` shape measures differently on
/// a big chip than on a LITTLE one, so a cache shared across chips would
/// silently serve one chip's latencies to another. Never hoist this memo
/// above the per-chip serving loop.
#[derive(Debug, Default)]
pub(crate) struct StepCache {
    cache: HashMap<(usize, usize), Result<LatencyReport, CoreError>>,
}

impl StepCache {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn contains(&self, key: (usize, usize)) -> bool {
        self.cache.contains_key(&key)
    }

    pub(crate) fn insert(&mut self, key: (usize, usize), result: Result<LatencyReport, CoreError>) {
        self.cache.insert(key, result);
    }

    pub(crate) fn get(&self, key: (usize, usize)) -> Option<&Result<LatencyReport, CoreError>> {
        self.cache.get(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_queue_pops_by_time_then_id() {
        let mut q = EventQueue::with_capacity(4);
        q.push(2.0, 5, 0);
        q.push(1.0, 9, 1);
        q.push(1.0, 3, 2);
        q.push(0.5, 7, 3);
        assert_eq!(q.peek_time(), Some(0.5));
        assert_eq!(q.peek(), Some((0.5, 3)));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, idx)| idx)).collect();
        // 0.5 first, then the 1.0 tie broken by id (3 before 9), then 2.0.
        assert_eq!(order, vec![3, 2, 1, 0]);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn ready_order_walks_step_order() {
        let mut r = ReadyOrder::default();
        r.insert((3, 1, 10));
        r.insert((1, 2, 11));
        r.insert((1, 1, 12));
        let ids: Vec<u32> = r.iter().map(|&(_, _, id)| id).collect();
        // Sorted by (last_step_tick, admission_seq, id).
        assert_eq!(ids, vec![12, 11, 10]);
        r.remove(&(1, 2, 11));
        assert!(!r.is_empty());
    }
}
