//! Paged KV-cache allocation for the serving simulator.
//!
//! PR 3's serving layer spilled a victim session's *entire* KV cache on
//! every eviction — simple, but it overstates migration traffic versus
//! block-granular schemes (vLLM's paged attention, VEDA's voting-based
//! eviction): when the scheduler only needs room for one more decode step,
//! writing out a whole multi-megabyte cache is waste. This module provides
//! the page-granular alternative behind
//! [`KvPolicy::PagedLru`](crate::serve::KvPolicy):
//!
//! * The KV region is carved into fixed-size pages of
//!   [`ServeConfig::page_bytes`](crate::serve::ServeConfig). A session
//!   holding `n` KV bytes owns `ceil(n / page_bytes)` pages; only the last
//!   page may be partially filled, and transfers move the *valid* bytes of
//!   a page (a software-managed scratchpad does not write dead bytes).
//! * [`KvPageAllocator`] owns the page pool: a LIFO free list, a
//!   per-session page table, and per-page LRU metadata ([`TouchKey`], the
//!   same `(last step tick, admission sequence, request id)` recency triple
//!   the whole-cache policies order victims by).
//! * Eviction peels **tail pages** one at a time from the session owning
//!   the stalest page ([`KvPageAllocator::lru_page`]). Within one session
//!   every page is equally stale — attention reads the whole cache each
//!   step — so peeling from the tail keeps the resident region a prefix
//!   and the byte arithmetic exact.
//!
//! The serving loop remains the budget enforcer (in bytes, so that
//! `Fifo`/`Lru`/`PagedLru` share one accounting scheme and
//! `ServeReport::peak_kv_bytes <= budget` holds exactly); the allocator is
//! the source of truth for page identity, occupancy and fragmentation. Its
//! conservation invariant — every page is either free or in exactly one
//! page table — is property-tested in `tests/kv_paging.rs`. Under the
//! cluster API ([`crate::cluster`]) every
//! [`ChipNode`](crate::cluster::ChipNode) materializes its own pool per
//! serving run, and evicted pages may migrate to a remote chip's pool
//! over the NoC instead of spilling to DRAM.
//!
//! # Examples
//!
//! ```
//! use meadow_core::kv_pages::KvPageAllocator;
//!
//! # fn main() -> Result<(), meadow_core::CoreError> {
//! // A 16-page pool of 4 KiB pages.
//! let mut pool = KvPageAllocator::new(16, 4096)?;
//! assert_eq!(pool.pages_for(9000), 3); // 9000 B straddles three pages
//!
//! // Session 7 grows to three pages; a later eviction peels its tail.
//! pool.grow(7, 3, (1, 1, 7))?;
//! assert_eq!(pool.session_pages(7), 3);
//! let (page, owner) = pool.lru_page(|_| true).expect("pages are resident");
//! assert_eq!(owner, 7);
//! assert_eq!(pool.evict_tail(7), Some(page));
//! assert_eq!(pool.free_pages(), 14);
//! # Ok(())
//! # }
//! ```

use crate::error::CoreError;
use std::collections::BTreeMap;

/// Index of one page frame in the pool.
pub type PageId = u32;

/// Recency key ordering pages for LRU eviction: `(last step tick,
/// admission sequence, request id)` — smaller is staler. All pages of one
/// session share a key (attention touches the whole cache every step), so
/// distinct sessions always compare by the unique `(sequence, id)` tail.
pub type TouchKey = (u64, u64, u32);

/// Fixed-page KV-cache pool with a free list, per-session page tables and
/// per-page LRU metadata. See the [module docs](self) for the model.
#[derive(Debug, Clone)]
pub struct KvPageAllocator {
    page_bytes: u64,
    /// Per-frame owner; `None` = on the free list.
    owner: Vec<Option<u32>>,
    /// Per-frame recency key (meaningful only while owned).
    touched: Vec<TouchKey>,
    /// LIFO free list of frame ids.
    free: Vec<PageId>,
    /// Session id → owned frames, in allocation order (the resident
    /// prefix; eviction peels from the back).
    tables: BTreeMap<u32, Vec<PageId>>,
}

impl KvPageAllocator {
    /// Creates a pool of `total_pages` frames of `page_bytes` each.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for zero-sized pages, an empty
    /// pool, or a pool larger than the `PageId` space.
    pub fn new(total_pages: usize, page_bytes: u64) -> Result<Self, CoreError> {
        if page_bytes == 0 {
            return Err(CoreError::InvalidConfig {
                param: "page_bytes",
                reason: "pages must hold at least one byte".into(),
            });
        }
        if total_pages == 0 {
            return Err(CoreError::InvalidConfig {
                param: "total_pages",
                reason: "the pool must hold at least one page".into(),
            });
        }
        if total_pages > PageId::MAX as usize {
            return Err(CoreError::InvalidConfig {
                param: "total_pages",
                reason: format!("{total_pages} exceeds the page-id space"),
            });
        }
        Ok(Self {
            page_bytes,
            owner: vec![None; total_pages],
            touched: vec![(0, 0, 0); total_pages],
            // LIFO: lowest ids come off first, deterministically.
            free: (0..total_pages as PageId).rev().collect(),
            tables: BTreeMap::new(),
        })
    }

    /// Creates a pool just large enough to hold `demand_bytes` of KV cache.
    ///
    /// # Errors
    ///
    /// See [`KvPageAllocator::new`]; `demand_bytes == 0` still allocates a
    /// single-page pool so the allocator is usable.
    pub fn for_demand(demand_bytes: u64, page_bytes: u64) -> Result<Self, CoreError> {
        if page_bytes == 0 {
            return Err(CoreError::InvalidConfig {
                param: "page_bytes",
                reason: "pages must hold at least one byte".into(),
            });
        }
        let pages = demand_bytes.div_ceil(page_bytes).max(1);
        Self::new(pages as usize, page_bytes)
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Total frames in the pool.
    pub fn total_pages(&self) -> usize {
        self.owner.len()
    }

    /// Frames currently on the free list.
    pub fn free_pages(&self) -> usize {
        self.free.len()
    }

    /// Frames currently owned by any session.
    pub fn used_pages(&self) -> usize {
        self.total_pages() - self.free_pages()
    }

    /// Pages needed to hold `bytes` (zero bytes needs no pages).
    pub fn pages_for(&self, bytes: u64) -> usize {
        bytes.div_ceil(self.page_bytes) as usize
    }

    /// Frames owned by `session`.
    pub fn session_pages(&self, session: u32) -> usize {
        self.tables.get(&session).map_or(0, Vec::len)
    }

    /// Grows `session`'s page table to `target_pages` frames (a no-op when
    /// it already holds at least that many), stamping every owned frame
    /// with `key`. Returns the number of frames newly taken from the free
    /// list.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the free list cannot cover
    /// the growth; the allocator is unchanged in that case.
    pub fn grow(
        &mut self,
        session: u32,
        target_pages: usize,
        key: TouchKey,
    ) -> Result<usize, CoreError> {
        let held = self.session_pages(session);
        let needed = target_pages.saturating_sub(held);
        if needed > self.free.len() {
            return Err(CoreError::InvalidConfig {
                param: "kv_pages",
                reason: format!(
                    "session {session} needs {needed} more pages, only {} free of {}",
                    self.free.len(),
                    self.total_pages()
                ),
            });
        }
        let table = self.tables.entry(session).or_default();
        for _ in 0..needed {
            let page = self.free.pop().expect("free-list length checked above");
            self.owner[page as usize] = Some(session);
            table.push(page);
        }
        self.touch(session, key);
        Ok(needed)
    }

    /// Re-stamps every frame of `session` with `key` (called when the
    /// session steps or is re-admitted).
    pub fn touch(&mut self, session: u32, key: TouchKey) {
        if let Some(table) = self.tables.get(&session) {
            for &page in table {
                self.touched[page as usize] = key;
            }
        }
    }

    /// The stalest resident page among sessions accepted by `candidate`,
    /// as `(page, owner)` — ties cannot occur across sessions because the
    /// key embeds the unique admission sequence and id; within a session
    /// the **tail** page wins, so the returned page is always the one
    /// [`KvPageAllocator::evict_tail`] would free.
    pub fn lru_page(&self, candidate: impl Fn(u32) -> bool) -> Option<(PageId, u32)> {
        self.tables
            .iter()
            .filter(|(&s, table)| !table.is_empty() && candidate(s))
            .min_by_key(|(&s, table)| {
                (self.touched[table[0] as usize], s) // all pages share the key
            })
            .map(|(&s, table)| (*table.last().expect("filtered non-empty"), s))
    }

    /// Frees the tail page of `session`'s table, returning it (or `None`
    /// when the session holds no pages).
    pub fn evict_tail(&mut self, session: u32) -> Option<PageId> {
        let table = self.tables.get_mut(&session)?;
        let page = table.pop()?;
        if table.is_empty() {
            self.tables.remove(&session);
        }
        self.owner[page as usize] = None;
        self.free.push(page);
        Some(page)
    }

    /// Frees every page of `session` (on completion or full eviction),
    /// returning how many were released.
    pub fn release(&mut self, session: u32) -> usize {
        let Some(table) = self.tables.remove(&session) else { return 0 };
        let n = table.len();
        for page in table {
            self.owner[page as usize] = None;
            self.free.push(page);
        }
        n
    }

    /// Bytes of internal fragmentation if `session` holds `held_bytes` of
    /// KV data: the dead space in its partially filled tail page.
    pub fn frag_bytes(&self, session: u32, held_bytes: u64) -> u64 {
        (self.session_pages(session) as u64 * self.page_bytes).saturating_sub(held_bytes)
    }

    /// Total internal fragmentation of the pool given `held_total`, the
    /// KV bytes held across *every* page-owning session: pool occupancy
    /// minus held bytes, in O(1) from the frame counters. Equal to
    /// summing [`KvPageAllocator::frag_bytes`] over all owners whenever
    /// each owner's held bytes fit within its own frames — the serving
    /// scheduler's invariant — which is how the event-driven core reports
    /// fragmentation without a per-session scan.
    pub fn frag_total_bytes(&self, held_total: u64) -> u64 {
        (self.used_pages() as u64 * self.page_bytes).saturating_sub(held_total)
    }

    /// Conservation check for tests and debug assertions: every frame is
    /// either free or in exactly one page table, and the owner index
    /// agrees with the tables.
    pub fn conserves_pages(&self) -> bool {
        let tabled: usize = self.tables.values().map(Vec::len).sum();
        if tabled + self.free.len() != self.total_pages() {
            return false;
        }
        let mut seen = vec![false; self.total_pages()];
        for (&s, table) in &self.tables {
            for &page in table {
                let idx = page as usize;
                if seen[idx] || self.owner[idx] != Some(s) {
                    return false;
                }
                seen[idx] = true;
            }
        }
        self.free.iter().all(|&p| !seen[p as usize] && self.owner[p as usize].is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_construction_and_validation() {
        let pool = KvPageAllocator::new(8, 1024).unwrap();
        assert_eq!(pool.total_pages(), 8);
        assert_eq!(pool.free_pages(), 8);
        assert_eq!(pool.used_pages(), 0);
        assert_eq!(pool.page_bytes(), 1024);
        assert!(KvPageAllocator::new(0, 1024).is_err());
        assert!(KvPageAllocator::new(8, 0).is_err());
        assert!(KvPageAllocator::for_demand(0, 64).unwrap().total_pages() == 1);
        assert_eq!(KvPageAllocator::for_demand(9000, 4096).unwrap().total_pages(), 3);
        assert!(KvPageAllocator::for_demand(1, 0).is_err());
    }

    #[test]
    fn pages_for_arithmetic() {
        let pool = KvPageAllocator::new(8, 100).unwrap();
        assert_eq!(pool.pages_for(0), 0);
        assert_eq!(pool.pages_for(1), 1);
        assert_eq!(pool.pages_for(100), 1);
        assert_eq!(pool.pages_for(101), 2);
    }

    #[test]
    fn grow_touch_evict_cycle_conserves() {
        let mut pool = KvPageAllocator::new(4, 64).unwrap();
        assert_eq!(pool.grow(1, 2, (1, 1, 1)).unwrap(), 2);
        assert_eq!(pool.grow(2, 2, (1, 2, 2)).unwrap(), 2);
        assert!(pool.conserves_pages());
        assert_eq!(pool.free_pages(), 0);
        // Over-subscription fails and leaves the pool untouched.
        assert!(pool.grow(3, 1, (2, 3, 3)).is_err());
        assert!(pool.conserves_pages());
        // Growing to a target at or below the held count is a no-op.
        assert_eq!(pool.grow(1, 1, (3, 1, 1)).unwrap(), 0);
        assert_eq!(pool.session_pages(1), 2);
        // Peel one page and the freed frame is reusable.
        assert!(pool.evict_tail(1).is_some());
        assert_eq!(pool.session_pages(1), 1);
        assert_eq!(pool.grow(3, 1, (4, 3, 3)).unwrap(), 1);
        assert!(pool.conserves_pages());
    }

    #[test]
    fn lru_page_orders_by_key_and_peels_tails() {
        let mut pool = KvPageAllocator::new(8, 64).unwrap();
        pool.grow(1, 2, (5, 1, 1)).unwrap();
        pool.grow(2, 3, (3, 2, 2)).unwrap(); // stalest: tick 3
        pool.grow(3, 1, (9, 3, 3)).unwrap();
        let (page, owner) = pool.lru_page(|_| true).unwrap();
        assert_eq!(owner, 2);
        assert_eq!(Some(page), pool.tables.get(&2).unwrap().last().copied());
        // A touch rescues session 2; session 1 (tick 5) becomes the victim.
        pool.touch(2, (10, 2, 2));
        assert_eq!(pool.lru_page(|_| true).unwrap().1, 1);
        // The candidate filter excludes sessions (e.g. the step set):
        // without session 1, the stalest remaining page is session 3's
        // (tick 9, still ahead of session 2's tick 10).
        assert_eq!(pool.lru_page(|s| s != 1).unwrap().1, 3);
        assert!(pool.lru_page(|_| false).is_none());
    }

    #[test]
    fn release_returns_all_frames() {
        let mut pool = KvPageAllocator::new(6, 32).unwrap();
        pool.grow(4, 5, (1, 1, 4)).unwrap();
        assert_eq!(pool.release(4), 5);
        assert_eq!(pool.release(4), 0);
        assert_eq!(pool.free_pages(), 6);
        assert!(pool.conserves_pages());
        assert!(pool.lru_page(|_| true).is_none());
    }

    #[test]
    fn frag_accounts_partial_tail_pages() {
        let mut pool = KvPageAllocator::new(8, 100).unwrap();
        pool.grow(1, 3, (1, 1, 1)).unwrap();
        assert_eq!(pool.frag_bytes(1, 250), 50);
        assert_eq!(pool.frag_bytes(1, 300), 0);
        assert_eq!(pool.frag_bytes(2, 0), 0);
    }

    #[test]
    fn frag_total_matches_per_session_sum() {
        let mut pool = KvPageAllocator::new(8, 100).unwrap();
        pool.grow(1, 3, (1, 1, 1)).unwrap(); // holds 250 B → 50 B frag
        pool.grow(2, 2, (1, 2, 2)).unwrap(); // holds 130 B → 70 B frag
        let per_session = pool.frag_bytes(1, 250) + pool.frag_bytes(2, 130);
        assert_eq!(pool.frag_total_bytes(250 + 130), per_session);
        assert_eq!(pool.frag_total_bytes(500), 0);
    }
}
