//! Streaming inference sessions: prefill once, then decode token by token
//! with a growing KV cache.
//!
//! [`MeadowEngine::end_to_end_latency`] integrates decode cost analytically
//! (exact for the linear-in-context TBT model). `InferenceSession` instead
//! *walks* the generation loop step by step, which is what a serving stack
//! on the device would observe: per-token latencies, cumulative time,
//! KV-cache growth and the final tokens/second.
//!
//! One session is also the *reference semantics* of the multi-session
//! scheduler: [`serve`](crate::serve::serve) with an unbounded budget
//! reproduces each request's [`SessionTrace::ttft_ms`] and
//! [`SessionTrace::tbt_ms`] bit-for-bit (the `tests/serve_invariants.rs`
//! solo-equivalence contract), so everything the serving layer adds —
//! queueing, batching, paged eviction — is measurable as a delta against
//! this walk.
//!
//! # Examples
//!
//! ```
//! use meadow_core::session::InferenceSession;
//! use meadow_core::{EngineConfig, MeadowEngine};
//! use meadow_models::presets;
//!
//! # fn main() -> Result<(), meadow_core::CoreError> {
//! let engine = MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0))?;
//! let mut session = InferenceSession::start(&engine, 16)?;
//! session.generate(8)?;
//! let trace = session.finish();
//! assert_eq!(trace.tbt_ms.len(), 8);
//! assert!(trace.tbt_is_monotone(), "the KV cache only grows");
//! # Ok(())
//! # }
//! ```

use crate::engine::MeadowEngine;
use crate::error::CoreError;
use meadow_models::workload::KvSizer;
use serde::{Deserialize, Serialize};

/// Which part of a session's lifetime one serving leg covers.
///
/// A session's reference walk is prefill once, then decode token by token
/// (see [`InferenceSession`]). Disaggregated serving
/// ([`Cluster::serve_disaggregated`](crate::cluster::Cluster::serve_disaggregated))
/// may split that walk across chips: the prefill leg runs on one chip, the
/// KV cache hands off over the NoC, and the decode leg resumes on another.
/// `Full` is the colocated default — both phases on one chip — and is what
/// every pre-disaggregation serving path uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SessionPhase {
    /// Prefill and decode both run on this chip (colocated serving).
    #[default]
    Full,
    /// Only the prefill runs here: the leg finishes once the prompt's KV
    /// cache (and first token) are produced, and the cache leaves over the
    /// NoC.
    PrefillOnly,
    /// Only the decode runs here: the session starts already prefilled,
    /// its prompt KV delivered by the handoff, and generates every token.
    DecodeOnly,
}

impl SessionPhase {
    /// Whether a leg of this phase begins with its prompt KV already
    /// present (a decode-only leg resumes a prefill that ran elsewhere,
    /// delivered over the NoC handoff).
    pub fn starts_prefilled(self) -> bool {
        self == SessionPhase::DecodeOnly
    }

    /// Whether a leg of this phase is complete once its prefill step has
    /// produced the prompt KV and first token (the cache then leaves over
    /// the NoC; the disaggregation driver charges the handoff).
    pub fn finishes_at_prefill(self) -> bool {
        self == SessionPhase::PrefillOnly
    }
}

/// Latency trace of one generation request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionTrace {
    /// Prompt length.
    pub prompt_tokens: usize,
    /// TTFT in ms.
    pub ttft_ms: f64,
    /// Per-generated-token latency in ms (index 0 = first generated token).
    pub tbt_ms: Vec<f64>,
    /// KV-cache bytes at the end of generation.
    pub final_kv_bytes: u64,
}

impl SessionTrace {
    /// Total request latency in ms.
    pub fn total_ms(&self) -> f64 {
        self.ttft_ms + self.tbt_ms.iter().sum::<f64>()
    }

    /// Steady-state decode throughput in tokens/second.
    pub fn decode_tokens_per_sec(&self) -> f64 {
        let decode_ms: f64 = self.tbt_ms.iter().sum();
        if decode_ms <= 0.0 {
            return 0.0;
        }
        self.tbt_ms.len() as f64 / (decode_ms / 1e3)
    }

    /// Whether per-token latency is non-decreasing (it must be: the KV cache
    /// only grows).
    ///
    /// Traces with fewer than two tokens are vacuously monotone; any NaN
    /// entry makes the trace non-monotone (NaN would otherwise slip through
    /// the pairwise comparison when it sits in the first window slot).
    pub fn tbt_is_monotone(&self) -> bool {
        if self.tbt_ms.iter().any(|t| t.is_nan()) {
            return false;
        }
        if self.tbt_ms.len() < 2 {
            return true;
        }
        self.tbt_ms.windows(2).all(|w| w[1] >= w[0] - 1e-9)
    }
}

/// A stateful generation session over an engine.
#[derive(Debug, Clone)]
pub struct InferenceSession<'a> {
    engine: &'a MeadowEngine,
    prompt_tokens: usize,
    generated: usize,
    ttft_ms: f64,
    tbt_ms: Vec<f64>,
    /// KV accounting seam: decides how many bytes the final context costs.
    /// [`InferenceSession::start`] uses the dense identity (bit-exact with
    /// the pre-seam `kv_cache_total_bytes`); compressed layouts come in via
    /// [`InferenceSession::start_with_kv`].
    sizer: KvSizer,
}

impl<'a> InferenceSession<'a> {
    /// Starts a session by running the prefill pass, with dense KV
    /// accounting.
    ///
    /// # Errors
    ///
    /// Propagates workload validation and executor errors.
    pub fn start(engine: &'a MeadowEngine, prompt_tokens: usize) -> Result<Self, CoreError> {
        let sizer = KvSizer::dense(&engine.config().model);
        Self::start_with_kv(engine, prompt_tokens, sizer)
    }

    /// Starts a session whose KV bytes are accounted through `sizer`
    /// (layout sharing and/or token-level compression). Latency is
    /// unaffected — only the byte accounting routes through the seam.
    ///
    /// # Errors
    ///
    /// Propagates workload validation and executor errors.
    pub fn start_with_kv(
        engine: &'a MeadowEngine,
        prompt_tokens: usize,
        sizer: KvSizer,
    ) -> Result<Self, CoreError> {
        let ttft = engine.prefill_latency(prompt_tokens)?;
        Ok(Self {
            engine,
            prompt_tokens,
            generated: 0,
            ttft_ms: ttft.total_ms(),
            tbt_ms: Vec::new(),
            sizer,
        })
    }

    /// Tokens generated so far.
    pub fn generated(&self) -> usize {
        self.generated
    }

    /// Current context length (prompt + generated).
    pub fn context_len(&self) -> usize {
        self.prompt_tokens + self.generated
    }

    /// Generates one more token, returning its latency in ms.
    ///
    /// # Errors
    ///
    /// Propagates workload validation errors (e.g. exceeding `max_seq`).
    pub fn step(&mut self) -> Result<f64, CoreError> {
        let tbt = self.engine.decode_latency(self.prompt_tokens, self.generated + 1)?;
        self.generated += 1;
        let ms = tbt.total_ms();
        self.tbt_ms.push(ms);
        Ok(ms)
    }

    /// Generates `n` tokens.
    ///
    /// # Errors
    ///
    /// Propagates step errors (generation stops at the first failure).
    pub fn generate(&mut self, n: usize) -> Result<(), CoreError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Finishes the session, returning its trace.
    pub fn finish(self) -> SessionTrace {
        SessionTrace {
            prompt_tokens: self.prompt_tokens,
            ttft_ms: self.ttft_ms,
            final_kv_bytes: self.sizer.bytes(self.context_len()),
            tbt_ms: self.tbt_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use meadow_models::presets;

    fn engine() -> MeadowEngine {
        MeadowEngine::new(EngineConfig::zcu102(presets::tiny_decoder(), 12.0)).unwrap()
    }

    #[test]
    fn session_walks_the_generation_loop() {
        let engine = engine();
        let mut session = InferenceSession::start(&engine, 16).unwrap();
        session.generate(8).unwrap();
        assert_eq!(session.generated(), 8);
        assert_eq!(session.context_len(), 24);
        let trace = session.finish();
        assert_eq!(trace.tbt_ms.len(), 8);
        assert!(trace.total_ms() > trace.ttft_ms);
        assert!(trace.decode_tokens_per_sec() > 0.0);
        assert!(trace.tbt_is_monotone(), "KV growth must not shrink TBT: {:?}", trace.tbt_ms);
        assert_eq!(trace.final_kv_bytes, (2 * 24 * 32 * 2) as u64);
    }

    #[test]
    fn session_respects_max_seq() {
        let engine = engine();
        let mut session = InferenceSession::start(&engine, 60).unwrap();
        // max_seq = 64: the 5th generated token sees context 64 (still
        // provisioned); the 6th would need context 65 and must fail.
        session.generate(5).unwrap();
        assert!(session.step().is_err());
    }

    #[test]
    fn trace_matches_analytic_end_to_end() {
        // The trapezoid integration in `end_to_end_latency` must agree with
        // the walked sum (TBT is linear in context).
        let engine = engine();
        let analytic = engine.end_to_end_latency(16, 8).unwrap();
        let mut session = InferenceSession::start(&engine, 16).unwrap();
        session.generate(8).unwrap();
        let walked = session.finish();
        let rel = (analytic.total_ms - walked.total_ms()).abs() / walked.total_ms();
        assert!(rel < 0.02, "analytic {} vs walked {}", analytic.total_ms, walked.total_ms());
    }

    #[test]
    fn empty_session_trace() {
        let engine = engine();
        let session = InferenceSession::start(&engine, 8).unwrap();
        let trace = session.finish();
        assert!(trace.tbt_ms.is_empty());
        assert_eq!(trace.decode_tokens_per_sec(), 0.0);
        assert!(trace.tbt_is_monotone());
    }

    #[test]
    fn tbt_monotone_edge_cases() {
        let trace = |tbt_ms: Vec<f64>| SessionTrace {
            prompt_tokens: 4,
            ttft_ms: 1.0,
            tbt_ms,
            final_kv_bytes: 0,
        };
        // Empty and single-token traces are vacuously monotone.
        assert!(trace(vec![]).tbt_is_monotone());
        assert!(trace(vec![2.5]).tbt_is_monotone());
        assert!(trace(vec![f64::INFINITY]).tbt_is_monotone());
        // Ordinary cases, including the 1e-9 jitter tolerance.
        assert!(trace(vec![1.0, 1.0, 2.0]).tbt_is_monotone());
        assert!(trace(vec![1.0, 1.0 - 1e-12]).tbt_is_monotone());
        assert!(!trace(vec![2.0, 1.0]).tbt_is_monotone());
        // NaN anywhere poisons the trace, wherever it sits in the windows.
        assert!(!trace(vec![f64::NAN]).tbt_is_monotone());
        assert!(!trace(vec![1.0, f64::NAN]).tbt_is_monotone());
        assert!(!trace(vec![f64::NAN, 1.0, 2.0]).tbt_is_monotone());
    }
}
