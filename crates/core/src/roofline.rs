//! Roofline model and dataflow operating points (Fig. 12b of the paper).
//!
//! Performance is bounded by `min(peak compute, bandwidth × operational
//! intensity)`. The attention chain's operational intensity (MACs per DRAM
//! byte) differs sharply between dataflows: GEMM round-trips every
//! intermediate, depressing its intensity, while TPHS touches DRAM only for
//! inputs, per-head weights/KV and outputs.

use crate::error::CoreError;
use meadow_dataflow::schedule::{attention_block_latency, LayerParams, ScheduleKnobs};
use meadow_dataflow::{AttentionDataflow, ExecutionPlan};
use meadow_models::TransformerConfig;
use meadow_packing::PackingConfig;
use meadow_sim::{ChipConfig, DramModel};
use serde::{Deserialize, Serialize};

/// The two roofs of a roofline plot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflineModel {
    /// Peak compute throughput in GMAC/s.
    pub peak_gmacs: f64,
    /// Memory bandwidth in GB/s.
    pub bandwidth_gbs: f64,
}

impl RooflineModel {
    /// Builds the roofline for a chip at a DRAM bandwidth in Gbps.
    pub fn new(chip: &ChipConfig, bandwidth_gbps: f64) -> Self {
        Self { peak_gmacs: chip.peak_gmacs_per_sec(), bandwidth_gbs: bandwidth_gbps / 8.0 }
    }

    /// Attainable GMAC/s at a given operational intensity (MACs/byte).
    pub fn roof_at(&self, intensity: f64) -> f64 {
        (self.bandwidth_gbs * intensity).min(self.peak_gmacs)
    }

    /// The knee: intensity where the memory roof meets the compute roof.
    pub fn knee(&self) -> f64 {
        if self.bandwidth_gbs <= 0.0 {
            return f64::INFINITY;
        }
        self.peak_gmacs / self.bandwidth_gbs
    }
}

/// One measured operating point on the roofline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Label ("GEMM" / "TPHS").
    pub name: String,
    /// Operational intensity in MACs per DRAM byte.
    pub operational_intensity: f64,
    /// Achieved throughput in GMAC/s.
    pub achieved_gmacs: f64,
    /// Fraction of the attainable roof actually achieved, in `[0, 1]`.
    pub roof_fraction: f64,
}

/// Measures the attention chain's roofline point under one dataflow.
///
/// # Errors
///
/// Propagates executor errors.
pub fn attention_roofline_point(
    config: &TransformerConfig,
    chip: &ChipConfig,
    bandwidth_gbps: f64,
    dataflow: AttentionDataflow,
    tokens: usize,
) -> Result<RooflinePoint, CoreError> {
    let mut dram = DramModel::with_bandwidth(bandwidth_gbps, chip.clock)?;
    let plan = ExecutionPlan { attention: dataflow, packing: None };
    let params = LayerParams {
        config,
        layer: 0,
        tokens_new: tokens,
        context: tokens,
        packing_stats: None,
        packing_config: PackingConfig::default(),
        knobs: ScheduleKnobs::default(),
    };
    let latency = attention_block_latency(chip, &mut dram, &plan, &params)?;
    // The DRAM channel is full duplex (separate read/write AXI channels), so
    // the binding direction sets the memory floor.
    let bytes = dram.ledger().fetch_bytes().max(dram.ledger().store_bytes());
    // Attention-chain MACs: Q projection + QKᵀ + SM·V over all heads.
    let t = tokens as u64;
    let d = config.d_model as u64;
    let macs = t * d * d + 2 * t * t * d;
    let seconds = chip.clock.to_seconds(latency.makespan());
    let achieved = if seconds > 0.0 { macs as f64 / seconds / 1e9 } else { 0.0 };
    let intensity = if bytes > 0 { macs as f64 / bytes as f64 } else { f64::INFINITY };
    let roof = RooflineModel::new(chip, bandwidth_gbps).roof_at(intensity);
    Ok(RooflinePoint {
        name: match dataflow {
            AttentionDataflow::Gemm => "GEMM".to_string(),
            AttentionDataflow::Tphs => "TPHS".to_string(),
        },
        operational_intensity: intensity,
        achieved_gmacs: achieved,
        roof_fraction: if roof > 0.0 { (achieved / roof).min(1.0) } else { 0.0 },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use meadow_models::presets;

    #[test]
    fn roofline_shape() {
        let chip = ChipConfig::zcu102();
        let r = RooflineModel::new(&chip, 12.0);
        assert!((r.bandwidth_gbs - 1.5).abs() < 1e-9);
        assert!((r.peak_gmacs - 614.4).abs() < 1e-6);
        // Below the knee: memory-bound; above: compute-bound.
        let knee = r.knee();
        assert!(r.roof_at(knee / 2.0) < r.peak_gmacs);
        assert!((r.roof_at(knee * 2.0) - r.peak_gmacs).abs() < 1e-9);
    }

    #[test]
    fn tphs_has_higher_intensity_than_gemm() {
        let cfg = presets::opt_125m();
        let chip = ChipConfig::zcu102();
        let gemm =
            attention_roofline_point(&cfg, &chip, 1.0, AttentionDataflow::Gemm, 512).unwrap();
        let tphs =
            attention_roofline_point(&cfg, &chip, 1.0, AttentionDataflow::Tphs, 512).unwrap();
        assert!(
            tphs.operational_intensity > 2.0 * gemm.operational_intensity,
            "TPHS {} vs GEMM {}",
            tphs.operational_intensity,
            gemm.operational_intensity
        );
        // At 1 Gbps the memory roof crushes GEMM throughput.
        assert!(tphs.achieved_gmacs > gemm.achieved_gmacs);
    }

    #[test]
    fn points_stay_under_the_roof() {
        let cfg = presets::opt_125m();
        for (bw, pes) in [(1.0, 14), (1.0, 96), (51.0, 14), (51.0, 96)] {
            let chip = ChipConfig::zcu102_with_total_pes(pes);
            for df in [AttentionDataflow::Gemm, AttentionDataflow::Tphs] {
                let p = attention_roofline_point(&cfg, &chip, bw, df, 512).unwrap();
                let roof = RooflineModel::new(&chip, bw).roof_at(p.operational_intensity);
                assert!(
                    p.achieved_gmacs <= roof * 1.01,
                    "({bw}, {pes}, {df:?}): achieved {} over roof {roof}",
                    p.achieved_gmacs
                );
                assert!(p.roof_fraction <= 1.0);
            }
        }
    }

    #[test]
    fn zero_bandwidth_knee_is_infinite() {
        let r = RooflineModel { peak_gmacs: 100.0, bandwidth_gbs: 0.0 };
        assert!(r.knee().is_infinite());
    }
}
