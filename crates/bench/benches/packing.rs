//! Criterion benches for the weight-packing pipeline: pack and WILU-unpack
//! throughput at each optimization level, and the re-indexing pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use meadow_models::synthetic::{generate_matrix, RedundancyProfile};
use meadow_packing::reindex::frequency_reindex;
use meadow_packing::{chunk, ChunkConfig, PackedWeights, PackingConfig, PackingLevel, WiluModule};

fn anchor_matrix() -> meadow_tensor::Matrix<i8> {
    // A 384x768 slice with the OPT-125M MLP1 redundancy character.
    let profile =
        RedundancyProfile { unique_chunks: 1272, zipf_exponent: 1.18, mean_run_len: 16.0 };
    generate_matrix(384, 768, profile, 2, 42).expect("generation is infallible here")
}

fn bench_pack(c: &mut Criterion) {
    let w = anchor_matrix();
    let bytes = (w.rows() * w.cols()) as u64;
    let mut group = c.benchmark_group("pack");
    group.throughput(Throughput::Bytes(bytes));
    for level in PackingLevel::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{level:?}")),
            &level,
            |b, &level| {
                b.iter(|| PackedWeights::pack(&w, &PackingConfig::default(), level).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_unpack(c: &mut Criterion) {
    let w = anchor_matrix();
    let bytes = (w.rows() * w.cols()) as u64;
    let wilu = WiluModule::zcu102();
    let mut group = c.benchmark_group("wilu_unpack");
    group.throughput(Throughput::Bytes(bytes));
    for level in PackingLevel::all() {
        let packed = PackedWeights::pack(&w, &PackingConfig::default(), level).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{level:?}")),
            &packed,
            |b, packed| {
                b.iter(|| wilu.execute(packed).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_decompose_and_reindex(c: &mut Criterion) {
    let w = anchor_matrix();
    c.bench_function("decompose", |b| {
        b.iter(|| chunk::decompose(&w, ChunkConfig::default()).unwrap());
    });
    let (unique, encoded) = chunk::decompose(&w, ChunkConfig::default()).unwrap();
    c.bench_function("frequency_reindex", |b| {
        b.iter(|| frequency_reindex(&unique, &encoded).unwrap());
    });
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_pack, bench_unpack, bench_decompose_and_reindex
}
criterion_main!(benches);
