//! Criterion benches for the latency-model executors: how fast the
//! simulator itself evaluates GEMM layers, TPHS pipelines and whole-model
//! prefill/decode measurements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meadow_core::baselines::Baseline;
use meadow_dataflow::gemm::WeightFetch;
use meadow_dataflow::schedule::{layer_latency, LayerParams, ScheduleKnobs};
use meadow_dataflow::tphs::{tphs_attention_latency, TphsParams};
use meadow_dataflow::ExecutionPlan;
use meadow_models::presets;
use meadow_packing::{PackingConfig, WiluModule};
use meadow_sim::{ChipConfig, ClockDomain, DramModel};

fn bench_layer_latency(c: &mut Criterion) {
    let cfg = presets::opt_125m();
    let chip = ChipConfig::zcu102();
    let mut group = c.benchmark_group("layer_latency");
    for (name, plan) in [
        ("gemm", ExecutionPlan::gemm_baseline()),
        (
            "tphs",
            ExecutionPlan { attention: meadow_dataflow::AttentionDataflow::Tphs, packing: None },
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &plan, |b, plan| {
            b.iter(|| {
                let mut dram = DramModel::with_bandwidth(12.0, ClockDomain::zcu102()).unwrap();
                let params = LayerParams {
                    config: &cfg,
                    layer: 0,
                    tokens_new: 512,
                    context: 512,
                    packing_stats: None,
                    packing_config: PackingConfig::default(),
                    knobs: ScheduleKnobs::default(),
                };
                layer_latency(&chip, &mut dram, plan, &params).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_tphs_pipeline(c: &mut Criterion) {
    let chip = ChipConfig::zcu102();
    let mut group = c.benchmark_group("tphs_pipeline");
    for tokens in [64usize, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(tokens), &tokens, |b, &tokens| {
            b.iter(|| {
                let mut dram = DramModel::with_bandwidth(12.0, ClockDomain::zcu102()).unwrap();
                let params = TphsParams {
                    d_model: 768,
                    heads: 12,
                    head_dim: 64,
                    tokens_new: tokens,
                    context: tokens,
                    wq: WeightFetch::raw(768 * 768),
                };
                tphs_attention_latency(&chip, &mut dram, &WiluModule::zcu102(), &params).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_engine_measurements(c: &mut Criterion) {
    let engine = Baseline::Gemm.engine(presets::opt_125m(), 12.0).unwrap();
    c.bench_function("engine_prefill_512", |b| {
        b.iter(|| engine.prefill_latency(512).unwrap());
    });
    c.bench_function("engine_decode_64", |b| {
        b.iter(|| engine.decode_latency(512, 64).unwrap());
    });
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_layer_latency, bench_tphs_pipeline, bench_engine_measurements
}
criterion_main!(benches);
