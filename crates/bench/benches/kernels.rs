//! Criterion benches for the numeric kernels: INT8 GEMM, softmax variants
//! and the functional TPHS attention path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use meadow_dataflow::functional::{
    attention_reference, attention_tphs_functional, AttentionProblem, AttentionScales,
};
use meadow_tensor::fixed::ExpLut;
use meadow_tensor::gemm::{matmul_i8, matmul_i8_tiled};
use meadow_tensor::softmax::{softmax_row_exact, softmax_row_lut, SoftmaxKind};
use meadow_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<i8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<i8> = (0..rows * cols).map(|_| rng.gen_range(-64..=64)).collect();
    Matrix::from_vec(rows, cols, data).unwrap()
}

fn bench_gemm(c: &mut Criterion) {
    let a = random_matrix(128, 256, 1);
    let b = random_matrix(256, 128, 2);
    let macs = (128 * 256 * 128) as u64;
    let mut group = c.benchmark_group("int8_gemm");
    group.throughput(Throughput::Elements(macs));
    group.bench_function("reference", |bch| {
        bch.iter(|| matmul_i8(&a, &b).unwrap());
    });
    for tile in [16usize, 64] {
        group.bench_with_input(BenchmarkId::new("tiled", tile), &tile, |bch, &t| {
            bch.iter(|| matmul_i8_tiled(&a, &b, t, t, t).unwrap());
        });
    }
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let row: Vec<f32> = (0..512).map(|_| rng.gen_range(-8.0..8.0)).collect();
    let lut = ExpLut::hardware_default();
    let mut group = c.benchmark_group("softmax_512");
    group.bench_function("exact", |b| {
        b.iter(|| softmax_row_exact(&row));
    });
    group.bench_function("lut", |b| {
        b.iter(|| softmax_row_lut(&row, &lut));
    });
    group.finish();
}

fn bench_functional_attention(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let (t, ctx, d, heads) = (32, 32, 64, 4);
    let mut mat = |rows: usize, cols: usize| {
        let data: Vec<i8> = (0..rows * cols).map(|_| rng.gen_range(-40..=40)).collect();
        Matrix::from_vec(rows, cols, data).unwrap()
    };
    let p = AttentionProblem {
        x: mat(t, d),
        wq: mat(d, d),
        k_cache: mat(ctx, d),
        v_cache: mat(ctx, d),
        heads,
        scales: AttentionScales::default(),
        softmax: SoftmaxKind::Exact,
    };
    let lut = ExpLut::hardware_default();
    let mut group = c.benchmark_group("functional_attention");
    group.bench_function("gemm_reference", |b| {
        b.iter(|| attention_reference(&p, &lut).unwrap());
    });
    group.bench_function("tphs", |b| {
        b.iter(|| attention_tphs_functional(&p, 8, &lut).unwrap());
    });
    group.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_gemm, bench_softmax, bench_functional_attention
}
criterion_main!(benches);
