//! Criterion timing sweeps over the design choices DESIGN.md §7 calls out:
//! chunk size, packet payload width and TPHS token parallelism. The quality
//! side of the same ablations (compression ratios, latency deltas) is
//! produced by `repro -- ablations`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meadow_dataflow::gemm::WeightFetch;
use meadow_dataflow::tphs::{plan_allocation, stage_times, TphsParams};
use meadow_models::synthetic::{generate_matrix, RedundancyProfile};
use meadow_packing::{ChunkConfig, PackedWeights, PackingConfig, PackingLevel};
use meadow_sim::ChipConfig;

fn bench_chunk_size(c: &mut Criterion) {
    let profile = RedundancyProfile { unique_chunks: 800, zipf_exponent: 1.15, mean_run_len: 12.0 };
    let mut group = c.benchmark_group("ablation_chunk_size");
    for chunk_elems in [1usize, 2, 4, 8] {
        let w = generate_matrix(128, 768, profile, chunk_elems, 3).unwrap();
        let cfg = PackingConfig { chunk: ChunkConfig { chunk_elems }, ..PackingConfig::default() };
        group.bench_with_input(BenchmarkId::from_parameter(chunk_elems), &cfg, |b, cfg| {
            b.iter(|| PackedWeights::pack(&w, cfg, PackingLevel::FrequencyAware).unwrap());
        });
    }
    group.finish();
}

fn bench_payload_width(c: &mut Criterion) {
    let profile = RedundancyProfile { unique_chunks: 800, zipf_exponent: 1.15, mean_run_len: 12.0 };
    let w = generate_matrix(128, 768, profile, 2, 5).unwrap();
    let mut group = c.benchmark_group("ablation_payload_width");
    for payload_bits in [32u32, 64, 128, 256] {
        let cfg = PackingConfig { payload_bits, ..PackingConfig::default() };
        group.bench_with_input(BenchmarkId::from_parameter(payload_bits), &cfg, |b, cfg| {
            b.iter(|| PackedWeights::pack(&w, cfg, PackingLevel::PacketSpecific).unwrap());
        });
    }
    group.finish();
}

fn bench_tphs_planning(c: &mut Criterion) {
    let chip = ChipConfig::zcu102();
    let mut group = c.benchmark_group("ablation_tphs_planning");
    for tokens in [64usize, 256, 512] {
        let params = TphsParams {
            d_model: 768,
            heads: 12,
            head_dim: 64,
            tokens_new: tokens,
            context: tokens,
            wq: WeightFetch::raw(768 * 768),
        };
        group.bench_with_input(BenchmarkId::from_parameter(tokens), &params, |b, params| {
            b.iter(|| {
                let alloc = plan_allocation(&chip, params);
                stage_times(&chip, params, &alloc)
            });
        });
    }
    group.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_chunk_size, bench_payload_width, bench_tphs_planning
}
criterion_main!(benches);
