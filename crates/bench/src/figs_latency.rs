//! Latency figures: Figs. 1, 6, 7, 8, 9, 11 and the §6.4 end-to-end claim.

use crate::{Artifact, ReproContext};
use meadow_core::baselines::Baseline;
use meadow_core::report::{fmt_ms, fmt_speedup, Table};
use meadow_core::{CoreError, LatencyReport};
use meadow_models::presets;
use meadow_sim::ClockDomain;

const PREFILL_TOKENS: usize = 512;
const BANDWIDTHS: [f64; 4] = [1.0, 3.0, 6.0, 12.0];

fn op_breakdown_rows(table: &mut Table, clock: ClockDomain, report: &LatencyReport, tag: &str) {
    // One decoder layer's breakdown (layer 0), as in the paper's
    // distribution figures.
    let layer = &report.layers[0];
    for op in &layer.ops {
        table.row([
            tag.to_string(),
            op.name.clone(),
            fmt_ms(clock.to_ms(op.fetch)),
            fmt_ms(clock.to_ms(op.compute)),
            fmt_ms(clock.to_ms(op.store)),
            fmt_ms(clock.to_ms(op.makespan)),
        ]);
    }
}

/// Fig. 1b: prefill latency distribution across fetch/compute/store per
/// decoder op, GEMM execution, OPT-125M at 12 Gbps.
///
/// # Errors
///
/// Propagates engine errors.
pub fn fig1b(ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let engine = ctx.engine(Baseline::Gemm, &presets::opt_125m(), 12.0)?;
    let report = engine.prefill_latency(PREFILL_TOKENS)?;
    let mut table = Table::new(["mode", "op", "fetch_ms", "compute_ms", "store_ms", "total_ms"]);
    op_breakdown_rows(&mut table, engine.config().chip.clock, &report, "GEMM-prefill");
    let (f, c, s) = report.components();
    let clock = engine.config().chip.clock;
    Ok(Artifact {
        id: "fig1b",
        paper_claim: "prefill is dominated by data fetch and store of intermediates (QKT/SM/SMxV) under GEMM execution",
        table,
        notes: vec![format!(
            "whole-model prefill components: fetch {:.1} ms, compute {:.1} ms, store {:.1} ms",
            clock.to_ms(f),
            clock.to_ms(c),
            clock.to_ms(s)
        )],
    })
}

/// Fig. 1c: decode latency distribution, GEMM execution, OPT-125M at
/// 12 Gbps (64th token after a 512-token prefill).
///
/// # Errors
///
/// Propagates engine errors.
pub fn fig1c(ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let engine = ctx.engine(Baseline::Gemm, &presets::opt_125m(), 12.0)?;
    let report = engine.decode_latency(PREFILL_TOKENS, 64)?;
    let mut table = Table::new(["mode", "op", "fetch_ms", "compute_ms", "store_ms", "total_ms"]);
    op_breakdown_rows(&mut table, engine.config().chip.clock, &report, "GEMM-decode");
    let (f, c, s) = report.components();
    let clock = engine.config().chip.clock;
    let fetch_frac = f.get() as f64 / (f + c + s).get().max(1) as f64;
    Ok(Artifact {
        id: "fig1c",
        paper_claim:
            "during decode, compute and store are negligible; weight and input fetch dominates",
        table,
        notes: vec![
            format!("fetch fraction of decode: {:.1}%", fetch_frac * 100.0),
            format!(
                "decode totals: fetch {:.1} ms, compute {:.2} ms, store {:.2} ms",
                clock.to_ms(f),
                clock.to_ms(c),
                clock.to_ms(s)
            ),
        ],
    })
}

/// Figs. 6a/6b: TTFT vs DRAM bandwidth, GEMM vs MEADOW, at 64 and 512
/// prefill tokens, OPT-125M and OPT-1.3B.
///
/// # Errors
///
/// Propagates engine errors.
pub fn fig6(ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let mut table = Table::new([
        "model",
        "bandwidth_gbps",
        "prefill_tokens",
        "gemm_ttft_ms",
        "meadow_ttft_ms",
        "speedup",
    ]);
    let mut notes = Vec::new();
    for model in [presets::opt_125m(), presets::opt_1_3b()] {
        let mut extremes: Vec<f64> = Vec::new();
        for &bw in &BANDWIDTHS {
            let gemm = ctx.engine(Baseline::Gemm, &model, bw)?;
            let meadow = ctx.engine(Baseline::Meadow, &model, bw)?;
            for tokens in [64usize, 512] {
                let g = gemm.prefill_latency(tokens)?.total_ms();
                let m = meadow.prefill_latency(tokens)?.total_ms();
                table.row([
                    model.name.clone(),
                    format!("{bw}"),
                    tokens.to_string(),
                    fmt_ms(g),
                    fmt_ms(m),
                    fmt_speedup(g / m),
                ]);
                extremes.push(g / m);
            }
        }
        let min = extremes.iter().copied().fold(f64::INFINITY, f64::min);
        let max = extremes.iter().copied().fold(0.0, f64::max);
        notes.push(format!("{}: TTFT speedup range {:.2}x – {:.2}x", model.name, min, max));
    }
    Ok(Artifact {
        id: "fig6",
        paper_claim: "TTFT: 1.5-1.7x (125M) / 1.5-1.6x (1.3B) at 12 Gbps, up to 2.5x (125M) / 2x (1.3B) at 1 Gbps",
        table,
        notes,
    })
}

/// Figs. 7a/7b: TBT vs DRAM bandwidth for the 64th and 512th generated
/// token (512-token prefill), OPT-125M and OPT-1.3B.
///
/// # Errors
///
/// Propagates engine errors.
pub fn fig7(ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let mut table = Table::new([
        "model",
        "bandwidth_gbps",
        "token_index",
        "gemm_tbt_ms",
        "meadow_tbt_ms",
        "speedup",
    ]);
    let mut notes = Vec::new();
    for model in [presets::opt_125m(), presets::opt_1_3b()] {
        let mut extremes: Vec<f64> = Vec::new();
        for &bw in &BANDWIDTHS {
            let gemm = ctx.engine(Baseline::Gemm, &model, bw)?;
            let meadow = ctx.engine(Baseline::Meadow, &model, bw)?;
            for idx in [64usize, 512] {
                let g = gemm.decode_latency(PREFILL_TOKENS, idx)?.total_ms();
                let m = meadow.decode_latency(PREFILL_TOKENS, idx)?.total_ms();
                table.row([
                    model.name.clone(),
                    format!("{bw}"),
                    idx.to_string(),
                    fmt_ms(g),
                    fmt_ms(m),
                    fmt_speedup(g / m),
                ]);
                extremes.push(g / m);
            }
        }
        let min = extremes.iter().copied().fold(f64::INFINITY, f64::min);
        let max = extremes.iter().copied().fold(0.0, f64::max);
        notes.push(format!("{}: TBT speedup range {:.2}x – {:.2}x", model.name, min, max));
    }
    Ok(Artifact {
        id: "fig7",
        paper_claim:
            "TBT: 1.4-1.46x (125M) / 1.4-1.52x (1.3B) at 12 Gbps; 1.4-1.47x / 1.5-1.53x at 1 Gbps",
        table,
        notes,
    })
}

fn breakdown_artifact(
    ctx: &ReproContext,
    id: &'static str,
    paper_claim: &'static str,
    decode: bool,
) -> Result<Artifact, CoreError> {
    let mut table = Table::new([
        "bandwidth_gbps",
        "mode",
        "op",
        "fetch_ms",
        "compute_ms",
        "store_ms",
        "total_ms",
    ]);
    let mut notes = Vec::new();
    for bw in [12.0, 1.0] {
        for baseline in [Baseline::Gemm, Baseline::Meadow] {
            let engine = ctx.engine(baseline, &presets::opt_125m(), bw)?;
            let report = if decode {
                engine.decode_latency(PREFILL_TOKENS, 64)?
            } else {
                engine.prefill_latency(PREFILL_TOKENS)?
            };
            let clock = engine.config().chip.clock;
            let layer = &report.layers[0];
            for op in &layer.ops {
                table.row([
                    format!("{bw}"),
                    baseline.name().to_string(),
                    op.name.clone(),
                    fmt_ms(clock.to_ms(op.fetch)),
                    fmt_ms(clock.to_ms(op.compute)),
                    fmt_ms(clock.to_ms(op.store)),
                    fmt_ms(clock.to_ms(op.makespan)),
                ]);
            }
            notes.push(format!(
                "{} @ {bw} Gbps: one-layer {} {:.2} ms",
                baseline.name(),
                if decode { "decode" } else { "prefill" },
                clock.to_ms(layer.makespan())
            ));
        }
    }
    Ok(Artifact { id, paper_claim, table, notes })
}

/// Figs. 8a/8b: one-decoder-layer prefill latency distribution, GEMM vs
/// MEADOW, at 12 and 1 Gbps (OPT-125M, 512 tokens).
///
/// # Errors
///
/// Propagates engine errors.
pub fn fig8(ctx: &ReproContext) -> Result<Artifact, CoreError> {
    breakdown_artifact(
        ctx,
        "fig8",
        "MEADOW eliminates the QKT/SM/SMxV intermediate fetch+store that dominates GEMM prefill, especially at 1 Gbps",
        false,
    )
}

/// Figs. 9a/9b: one-decoder-layer decode latency distribution, GEMM vs
/// MEADOW, at 12 and 1 Gbps (64th token, 512 prefill).
///
/// # Errors
///
/// Propagates engine errors.
pub fn fig9(ctx: &ReproContext) -> Result<Artifact, CoreError> {
    breakdown_artifact(
        ctx,
        "fig9",
        "decode is weight-fetch bound; MEADOW's packing shrinks the dominant weight-fetch bars",
        true,
    )
}

/// Figs. 11a/11b + §6.4: TTFT and TBT of CTA / FlightLLM / MEADOW (Table 2
/// settings) at 12 and 1 Gbps, plus the end-to-end improvement claim.
///
/// # Errors
///
/// Propagates engine errors.
pub fn fig11(ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let model = presets::opt_125m();
    let mut table = Table::new(["bandwidth_gbps", "system", "ttft_ms", "tbt_ms", "e2e_ms(512+64)"]);
    let mut notes = Vec::new();
    for bw in [12.0, 1.0] {
        let mut meadow_e2e = 0.0;
        let mut worst_prior_e2e: f64 = 0.0;
        for baseline in Baseline::comparison_set() {
            let engine = ctx.engine(baseline, &model, bw)?;
            let ttft = engine.prefill_latency(PREFILL_TOKENS)?.total_ms();
            let tbt = engine.decode_latency(PREFILL_TOKENS, 64)?.total_ms();
            let e2e = engine.end_to_end_latency(PREFILL_TOKENS, 64)?.total_ms;
            table.row([
                format!("{bw}"),
                baseline.name().to_string(),
                fmt_ms(ttft),
                fmt_ms(tbt),
                fmt_ms(e2e),
            ]);
            match baseline {
                Baseline::Meadow => meadow_e2e = e2e,
                Baseline::Cta { .. } | Baseline::FlightLlm { .. } => {
                    worst_prior_e2e = worst_prior_e2e.max(e2e)
                }
                Baseline::Gemm => {}
            }
        }
        let improvement = (worst_prior_e2e - meadow_e2e) / worst_prior_e2e * 100.0;
        notes.push(format!(
            "@ {bw} Gbps: end-to-end improvement over the slower prior work: {improvement:.0}%"
        ));
    }
    Ok(Artifact {
        id: "fig11",
        paper_claim:
            "MEADOW achieves >40% end-to-end latency improvement over CTA and FlightLLM on OPT-125M",
        table,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_artifacts_have_op_rows() {
        let ctx = ReproContext::new();
        let a = fig1b(&ctx).unwrap();
        assert_eq!(a.table.len(), 12, "12 ops per GEMM layer");
        let c = fig1c(&ctx).unwrap();
        assert_eq!(c.table.len(), 12);
        assert!(c.notes[0].contains("fetch fraction"));
    }

    #[test]
    fn fig11_reports_improvement() {
        let ctx = ReproContext::new();
        let a = fig11(&ctx).unwrap();
        assert_eq!(a.table.len(), 8);
        assert!(a.notes.iter().all(|n| n.contains("improvement")));
    }
}
