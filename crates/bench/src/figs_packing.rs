//! Packing figures: Fig. 4a (reduction ratios), Fig. 10 (packing ablation
//! and chunk-ID histograms) and the §6.1 lossless-ness check.

use crate::{Artifact, ReproContext};
use meadow_core::accuracy::verify_model_lossless;
use meadow_core::report::{fmt_speedup, Table};
use meadow_core::CoreError;
use meadow_models::synthetic::{generate_decomposition, matrix_seed, profile_for};
use meadow_models::{presets, MatrixKind};
use meadow_packing::chunk::reduction_ratio;
use meadow_packing::reindex::frequency_reindex;
use meadow_packing::stats::IdHistogram;
use meadow_packing::{PackedWeights, PackingConfig, PackingLevel};
use meadow_sim::{ClockDomain, DramModel, TrafficClass};

/// Fig. 4a: reduction-ratio trends across decoder layers for OPT-125M and
/// OPT-1.3B (per-layer average over the six weight matrices).
///
/// # Errors
///
/// Propagates statistics errors.
pub fn fig4a(ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let mut table = Table::new(["model", "layer", "avg_reduction_ratio", "min", "max"]);
    let mut notes = Vec::new();
    for model in [presets::opt_125m(), presets::opt_1_3b()] {
        let stats = ctx.stats_for(&model)?;
        let mut model_lo = f64::INFINITY;
        let mut model_hi = 0.0_f64;
        for layer in 0..model.layers {
            let ratios: Vec<f64> = MatrixKind::all()
                .iter()
                .filter_map(|&k| stats.matrix(layer, k))
                .map(|s| s.reduction_ratio)
                .collect();
            let avg = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
            let lo = ratios.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = ratios.iter().copied().fold(0.0, f64::max);
            model_lo = model_lo.min(lo);
            model_hi = model_hi.max(hi);
            table.row([
                model.name.clone(),
                layer.to_string(),
                format!("{avg:.1}"),
                format!("{lo:.1}"),
                format!("{hi:.1}"),
            ]);
        }
        notes.push(format!(
            "{}: reduction ratios span {:.0} – {:.0} (paper: order 10^2 to 10^3)",
            model.name, model_lo, model_hi
        ));
    }
    Ok(Artifact {
        id: "fig4a",
        paper_claim: "decoder-weight reduction ratios vary in the order of 10^2 to 10^3",
        table,
        notes,
    })
}

/// Fig. 10a: weight-transfer latency under the three packing optimizations
/// for the first MLP matrix of decoder 1 of OPT-125M (the paper's anchor:
/// 1272 unique chunks, 11-bit IDs; naive 1.4x, packet-specific 1.54x,
/// frequency-aware 2.63x).
///
/// # Errors
///
/// Propagates generation and packing errors.
pub fn fig10a(_ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let model = presets::opt_125m();
    let kind = MatrixKind::MlpUp;
    let (rows, cols) = model.matrix_dims(kind);
    let profile = profile_for(&model, kind, 0);
    let seed = matrix_seed(&model, kind, 0);
    let packing = PackingConfig::default();
    let (unique, encoded) =
        generate_decomposition(rows, cols, profile, packing.chunk.chunk_elems, seed)
            .map_err(CoreError::from)?;
    let raw_bytes = (rows * cols) as u64;
    let clock = ClockDomain::zcu102();
    let mut table = Table::new([
        "scheme",
        "unique_chunks",
        "id_bits",
        "transfer_bytes",
        "cycles@12Gbps",
        "speedup_vs_raw",
    ]);
    let mut dram = DramModel::with_bandwidth(12.0, clock)?;
    let raw_cycles = dram.transfer(TrafficClass::WeightFetch, raw_bytes);
    table.row([
        "raw (no packing)".to_string(),
        "-".to_string(),
        "-".to_string(),
        raw_bytes.to_string(),
        raw_cycles.get().to_string(),
        "1.00x".to_string(),
    ]);
    let mut notes = Vec::new();
    for level in PackingLevel::all() {
        let packed =
            PackedWeights::from_decomposition(unique.clone(), encoded.clone(), &packing, level)?;
        let mut dram = DramModel::with_bandwidth(12.0, clock)?;
        let cycles = dram.transfer(TrafficClass::WeightFetch, packed.transfer_bytes());
        let speedup = raw_cycles.get() as f64 / cycles.get().max(1) as f64;
        let name = match level {
            PackingLevel::Naive => "indexing + naive packing",
            PackingLevel::PacketSpecific => "indexing + packet-specific precision",
            PackingLevel::FrequencyAware => "freq-aware reindex + packet-specific",
        };
        table.row([
            name.to_string(),
            packed.meta().unique_count.to_string(),
            packed.meta().max_id_bits.to_string(),
            packed.transfer_bytes().to_string(),
            cycles.get().to_string(),
            fmt_speedup(speedup),
        ]);
        notes.push(format!("{name}: {:.2}x lower transfer latency", speedup));
    }
    Ok(Artifact {
        id: "fig10a",
        paper_claim: "MLP1 of decoder 1: 1272 unique chunks / 11-bit IDs; naive 1.4x, packet-specific 1.54x, freq-aware 2.63x",
        table,
        notes,
    })
}

/// Figs. 10b/10c: histograms of chunk-ID occurrences before and after
/// frequency-aware re-indexing for the same anchor matrix.
///
/// # Errors
///
/// Propagates generation errors.
pub fn fig10bc(_ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let model = presets::opt_125m();
    let kind = MatrixKind::MlpUp;
    let (rows, cols) = model.matrix_dims(kind);
    let profile = profile_for(&model, kind, 0);
    let seed = matrix_seed(&model, kind, 0);
    let (unique, encoded) =
        generate_decomposition(rows, cols, profile, 2, seed).map_err(CoreError::from)?;
    let bins = 16;
    let before = IdHistogram::new(&encoded, unique.len(), bins);
    let re = frequency_reindex(&unique, &encoded)?;
    let after = IdHistogram::new(&re.encoded, re.unique.len(), bins);
    let mut table = Table::new(["bin_start_id", "count_before_reindex", "count_after_reindex"]);
    for i in 0..bins {
        table.row([
            before.bin_edges[i].to_string(),
            before.counts[i].to_string(),
            after.counts[i].to_string(),
        ]);
    }
    let notes = vec![
        format!(
            "head-bin mass before: {:.1}%, after: {:.1}% (re-indexing concentrates IDs near zero)",
            before.head_mass(1) * 100.0,
            after.head_mass(1) * 100.0
        ),
        format!("reduction ratio of the matrix: {:.0}", reduction_ratio(&unique, &encoded)),
    ];
    Ok(Artifact {
        id: "fig10bc",
        paper_claim: "before re-indexing, frequent chunk IDs are scattered across the range; after, occurrences concentrate at low IDs",
        table,
        notes,
    })
}

/// §6.1 accuracy stand-in: bit-exact pack→unpack round trips over the whole
/// OPT-125M weight set (row-capped for time) at every packing level.
///
/// # Errors
///
/// Propagates generation and packing errors.
pub fn lossless(_ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let mut table = Table::new(["model", "matrices_checked", "all_bit_exact"]);
    let mut notes = Vec::new();
    for (model, cap) in [(presets::opt_125m(), 256), (presets::tiny_decoder(), usize::MAX)] {
        let report = verify_model_lossless(&model, &PackingConfig::default(), cap)?;
        table.row([
            report.model.clone(),
            report.matrices_checked.to_string(),
            report.all_exact.to_string(),
        ]);
        notes.push(format!(
            "{}: {} round trips, all bit-exact: {}",
            report.model, report.matrices_checked, report.all_exact
        ));
        assert!(report.all_exact, "lossless check failed: {:?}", report.failures);
    }
    Ok(Artifact {
        id: "lossless",
        paper_claim: "weight packing is approximation-less: W8A8 accuracy (60.7% / 69.7% LAMBADA) is unchanged because reconstruction is exact",
        table,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10a_lands_in_paper_bands() {
        let ctx = ReproContext::new();
        let a = fig10a(&ctx).unwrap();
        assert_eq!(a.table.len(), 4);
        // Parse the speedups out of the notes.
        let get = |i: usize| -> f64 {
            let n = &a.notes[i];
            n.split(':').nth(1).unwrap().trim().split('x').next().unwrap().parse().unwrap()
        };
        let naive = get(0);
        let packet = get(1);
        let freq = get(2);
        assert!((1.25..=1.55).contains(&naive), "naive {naive}");
        assert!((1.35..=1.75).contains(&packet), "packet {packet}");
        assert!((2.2..=3.0).contains(&freq), "freq {freq}");
        assert!(naive < packet && packet < freq);
    }

    #[test]
    fn fig10bc_shows_concentration() {
        let ctx = ReproContext::new();
        let a = fig10bc(&ctx).unwrap();
        assert_eq!(a.table.len(), 16);
        assert!(a.notes[0].contains("after"));
    }
}
