//! Design-space artifacts: Table 1, Fig. 12a (dataflow choice grid),
//! Fig. 12b (rooflines) and Fig. 13 (ViT latency).

use crate::{Artifact, ReproContext};
use meadow_core::planner::{dataflow_grid, paper_grid_axes};
use meadow_core::report::{fmt_ms, fmt_speedup, Table};
use meadow_core::roofline::{attention_roofline_point, RooflineModel};
use meadow_core::vit::vit_speedup;
use meadow_core::CoreError;
use meadow_dataflow::AttentionDataflow;
use meadow_models::presets;
use meadow_packing::PackingConfig;
use meadow_sim::ChipConfig;

/// Table 1: the hardware parameters of the evaluated tile.
///
/// # Errors
///
/// Infallible in practice; typed for harness uniformity.
pub fn table1(_ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let c = ChipConfig::zcu102();
    let mut table = Table::new(["parameter", "value"]);
    table.row([
        "#Parallel & #Broadcasting PEs",
        &format!("{}, {}", c.parallel_pes, c.broadcasting_pes),
    ]);
    table.row(["#Multipliers per PE", &c.pe_geometry.multipliers.to_string()]);
    table.row([
        "#SM, #LN & #ReLU Modules",
        &format!("{}, {}, {}", c.sm_modules, c.ln_modules, c.nl_modules),
    ]);
    table.row([
        "Weight, Input & Output BRAM Size",
        &format!(
            "{} MB, {} MB, {} MB",
            c.weight_bram_bytes >> 20,
            c.input_bram_bytes >> 20,
            c.output_bram_bytes >> 20
        ),
    ]);
    table.row(["Weight, Input & Output RF Size", &format!("{} KB each", c.rf_bytes >> 10)]);
    table.row(["Clock Frequency", "100 MHz"]);
    Ok(Artifact {
        id: "table1",
        paper_claim: "84 parallel + 12 broadcasting PEs, 64 multipliers/PE, 84/8/8 SM/LN/ReLU modules, 1 MB BRAMs, 4 KB RFs, 100 MHz",
        table,
        notes: vec![format!("peak throughput: {:.1} GMAC/s", c.peak_gmacs_per_sec())],
    })
}

/// Fig. 12a: optimal dataflow for the `Q+SM(QKᵀ)·V` layers over the
/// (bandwidth × PE) grid, with the attention-chain latency of each choice.
///
/// # Errors
///
/// Propagates planner errors.
pub fn fig12a(ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let model = presets::opt_125m();
    let stats = ctx.stats_for(&model)?;
    let (bws, pes) = paper_grid_axes();
    let grid = dataflow_grid(&model, Some(&stats), PackingConfig::default(), &bws, &pes, 512)?;
    let mut table =
        Table::new(["bandwidth_gbps", "total_pes", "gemm_ms", "tphs_ms", "chosen", "best_ms"]);
    let mut notes = Vec::new();
    for e in &grid {
        table.row([
            format!("{}", e.bandwidth_gbps),
            e.total_pes.to_string(),
            fmt_ms(e.gemm_ms),
            fmt_ms(e.tphs_ms),
            match e.best {
                AttentionDataflow::Gemm => "GEMM".to_string(),
                AttentionDataflow::Tphs => "TPHS".to_string(),
            },
            fmt_ms(e.best_ms()),
        ]);
    }
    let gemm_points: Vec<String> = grid
        .iter()
        .filter(|e| e.best == AttentionDataflow::Gemm)
        .map(|e| format!("(BW {}, PE {})", e.bandwidth_gbps, e.total_pes))
        .collect();
    notes.push(format!("GEMM chosen at: {}", gemm_points.join(", ")));
    Ok(Artifact {
        id: "fig12a",
        paper_claim:
            "GEMM is optimal at high bandwidth (51 Gbps); TPHS at low-bandwidth configurations",
        table,
        notes,
    })
}

/// Fig. 12b: roofline operating points for the four corner configurations
/// (BW, PE) ∈ {1, 51} × {14, 96}.
///
/// # Errors
///
/// Propagates roofline errors.
pub fn fig12b(_ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let model = presets::opt_125m();
    let mut table = Table::new([
        "bandwidth_gbps",
        "total_pes",
        "dataflow",
        "intensity_macs_per_byte",
        "achieved_gmacs",
        "roof_gmacs",
        "knee_intensity",
    ]);
    let mut notes = Vec::new();
    for (bw, pes) in [(1.0, 14), (1.0, 96), (51.0, 14), (51.0, 96)] {
        let chip = ChipConfig::zcu102_with_total_pes(pes);
        let roofline = RooflineModel::new(&chip, bw);
        for df in [AttentionDataflow::Gemm, AttentionDataflow::Tphs] {
            let p = attention_roofline_point(&model, &chip, bw, df, 512)?;
            table.row([
                format!("{bw}"),
                pes.to_string(),
                p.name.clone(),
                format!("{:.1}", p.operational_intensity),
                format!("{:.1}", p.achieved_gmacs),
                format!("{:.1}", roofline.roof_at(p.operational_intensity)),
                format!("{:.1}", roofline.knee()),
            ]);
        }
        notes.push(format!(
            "(BW {bw}, PE {pes}): peak {:.1} GMAC/s, memory roof knee at {:.1} MACs/B",
            roofline.peak_gmacs,
            roofline.knee()
        ));
    }
    Ok(Artifact {
        id: "fig12b",
        paper_claim: "TPHS sits at much higher operational intensity than GEMM; at 51 Gbps GEMM leaves the memory-bound region",
        table,
        notes,
    })
}

/// Fig. 13: DeiT-S and DeiT-B inference latency, MEADOW vs GEMM, across
/// bandwidths.
///
/// # Errors
///
/// Propagates engine errors.
pub fn fig13(_ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let mut table = Table::new(["model", "bandwidth_gbps", "gemm_ms", "meadow_ms", "speedup"]);
    let mut notes = Vec::new();
    for model in [presets::deit_s(), presets::deit_b()] {
        let mut extremes: Vec<f64> = Vec::new();
        for bw in [1.0, 3.0, 6.0, 12.0] {
            let c = vit_speedup(&model, bw)?;
            table.row([
                c.model.clone(),
                format!("{bw}"),
                fmt_ms(c.gemm_ms),
                fmt_ms(c.meadow_ms),
                fmt_speedup(c.speedup),
            ]);
            extremes.push(c.speedup);
        }
        let min = extremes.iter().copied().fold(f64::INFINITY, f64::min);
        let max = extremes.iter().copied().fold(0.0, f64::max);
        notes.push(format!("{}: speedup range {min:.2}x – {max:.2}x", model.name));
    }
    Ok(Artifact {
        id: "fig13",
        paper_claim: "DeiT-S / DeiT-B: 1.5-1.6x lower inference latency vs GEMM across bandwidths",
        table,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let a = table1(&ReproContext::new()).unwrap();
        let text = a.table.to_string();
        assert!(text.contains("84, 12"));
        assert!(text.contains("100 MHz"));
    }

    #[test]
    fn fig12b_has_eight_points() {
        let a = fig12b(&ReproContext::new()).unwrap();
        assert_eq!(a.table.len(), 8);
    }
}
