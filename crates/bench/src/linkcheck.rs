//! Offline Markdown link checker for the repository's docs.
//!
//! CI runs the `linkcheck` binary over `README.md` and `docs/*.md` so a
//! moved file or renamed heading breaks the build instead of the reader.
//! The checker is deliberately small and dependency-free:
//!
//! * **Inline links** `[text](target)` are extracted outside fenced code
//!   blocks (the repo's Markdown does not use reference-style links).
//! * `http(s)://` and `mailto:` targets are skipped — the build
//!   environment has no network, and external rot is not this gate's job.
//! * Relative targets must resolve to an existing file or directory, and a
//!   `#fragment` must match a heading anchor in the target file, using
//!   GitHub's slug rules (lowercase, punctuation stripped, spaces to
//!   dashes).

use std::fmt;
use std::path::{Path, PathBuf};

/// One broken link: where it was found and why it failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrokenLink {
    /// File containing the link.
    pub source: PathBuf,
    /// The link target as written.
    pub target: String,
    /// Why it does not resolve.
    pub reason: String,
}

impl fmt::Display for BrokenLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: [{}] {}", self.source.display(), self.target, self.reason)
    }
}

/// Extracts inline-link targets from Markdown, skipping fenced code blocks
/// and inline code spans.
pub fn extract_links(markdown: &str) -> Vec<String> {
    let mut links = Vec::new();
    let mut fenced = false;
    for line in markdown.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
            fenced = !fenced;
            continue;
        }
        if fenced {
            continue;
        }
        let mut in_code = false;
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'`' => in_code = !in_code,
                b'[' if !in_code => {
                    // Find the matching "](" then the closing ")".
                    if let Some(close) = line[i..].find("](") {
                        let start = i + close + 2;
                        if let Some(end) = line[start..].find(')') {
                            let target = &line[start..start + end];
                            if !target.is_empty() {
                                links.push(target.to_string());
                            }
                            i = start + end;
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    links
}

/// GitHub-style heading slug: lowercase, alphanumerics, dashes and
/// underscores kept, spaces become dashes, everything else dropped.
pub fn heading_slug(heading: &str) -> String {
    heading
        .trim()
        .chars()
        .filter_map(|c| {
            if c.is_alphanumeric() || c == '_' {
                Some(c.to_ascii_lowercase())
            } else if c == ' ' || c == '-' {
                Some('-')
            } else {
                None
            }
        })
        .collect()
}

/// All heading anchors of a Markdown document (ATX `#` headings only,
/// outside fenced code blocks).
pub fn heading_anchors(markdown: &str) -> Vec<String> {
    let mut anchors = Vec::new();
    let mut fenced = false;
    for line in markdown.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
            fenced = !fenced;
            continue;
        }
        if !fenced && trimmed.starts_with('#') {
            let title = trimmed.trim_start_matches('#');
            anchors.push(heading_slug(title));
        }
    }
    anchors
}

/// Whether a target is external (not this gate's job to verify).
fn is_external(target: &str) -> bool {
    target.starts_with("http://") || target.starts_with("https://") || target.starts_with("mailto:")
}

/// Checks every relative link in `file` against the filesystem, appending
/// failures to `broken`.
///
/// # Errors
///
/// Returns an I/O error when `file` itself cannot be read — a missing
/// input is a caller mistake, not a broken link.
pub fn check_file(file: &Path, broken: &mut Vec<BrokenLink>) -> std::io::Result<()> {
    let text = std::fs::read_to_string(file)?;
    let dir = file.parent().unwrap_or_else(|| Path::new("."));
    for target in extract_links(&text) {
        if is_external(&target) {
            continue;
        }
        let (path_part, fragment) = match target.split_once('#') {
            Some((p, f)) => (p, Some(f)),
            None => (target.as_str(), None),
        };
        // Resolve the target document: a bare "#fragment" points into the
        // current file.
        let resolved = if path_part.is_empty() { file.to_path_buf() } else { dir.join(path_part) };
        if !resolved.exists() {
            broken.push(BrokenLink {
                source: file.to_path_buf(),
                target: target.clone(),
                reason: format!("missing file {}", resolved.display()),
            });
            continue;
        }
        if let Some(frag) = fragment {
            if resolved.is_dir() {
                broken.push(BrokenLink {
                    source: file.to_path_buf(),
                    target: target.clone(),
                    reason: "fragment on a directory link".into(),
                });
                continue;
            }
            let doc = std::fs::read_to_string(&resolved)?;
            if !heading_anchors(&doc).iter().any(|a| a == frag) {
                broken.push(BrokenLink {
                    source: file.to_path_buf(),
                    target: target.clone(),
                    reason: format!("no heading #{frag} in {}", resolved.display()),
                });
            }
        }
    }
    Ok(())
}

/// Checks a set of files and directories (directories are scanned,
/// non-recursively, for `*.md`), returning every broken link found.
///
/// # Errors
///
/// Propagates I/O errors reading the inputs.
pub fn check_paths(paths: &[PathBuf]) -> std::io::Result<Vec<BrokenLink>> {
    let mut files: Vec<PathBuf> = Vec::new();
    for p in paths {
        if p.is_dir() {
            let mut entries: Vec<PathBuf> = std::fs::read_dir(p)?
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|e| e.extension().is_some_and(|x| x == "md"))
                .collect();
            entries.sort();
            files.extend(entries);
        } else {
            files.push(p.clone());
        }
    }
    let mut broken = Vec::new();
    for f in files {
        check_file(&f, &mut broken)?;
    }
    Ok(broken)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_inline_links_outside_code() {
        let md = "\
See [the docs](docs/ARCH.md) and [section](#setup).
```
[not a link](ignored.md)
```
Inline `[also ignored](x.md)` code, then [real](README.md#top).
";
        assert_eq!(extract_links(md), vec!["docs/ARCH.md", "#setup", "README.md#top"]);
    }

    #[test]
    fn slugs_match_github_rules() {
        assert_eq!(heading_slug("Paged KV-cache allocation"), "paged-kv-cache-allocation");
        assert_eq!(heading_slug("perfbench and the BENCH JSON"), "perfbench-and-the-bench-json");
        assert_eq!(heading_slug("  What's new?  "), "whats-new");
        // GitHub keeps underscores (e.g. symbol-named headings).
        assert_eq!(heading_slug("The serve_paged artifact"), "the-serve_paged-artifact");
    }

    #[test]
    fn anchors_skip_fenced_blocks() {
        let md = "# Title\n```sh\n# a comment, not a heading\n```\n## Sub section\n";
        assert_eq!(heading_anchors(md), vec!["title", "sub-section"]);
    }

    #[test]
    fn check_file_flags_missing_targets_and_anchors() {
        let dir = std::env::temp_dir().join(format!("linkcheck_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.md");
        let b = dir.join("b.md");
        std::fs::write(&b, "# Real Heading\n").unwrap();
        std::fs::write(
            &a,
            "[ok](b.md) [ok2](b.md#real-heading) [bad](c.md) [badfrag](b.md#nope) \
             [self](#here)\n# Here\n[ext](https://example.com/x)\n",
        )
        .unwrap();
        let mut broken = Vec::new();
        check_file(&a, &mut broken).unwrap();
        let targets: Vec<&str> = broken.iter().map(|b| b.target.as_str()).collect();
        assert_eq!(targets, vec!["c.md", "b.md#nope"]);
        let all = check_paths(std::slice::from_ref(&dir)).unwrap();
        assert_eq!(all.len(), 2, "directory scan finds the same breaks: {all:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repo_docs_have_no_broken_links() {
        // The gate CI runs, executed as a unit test too: README plus every
        // docs/*.md must link-check clean from the repo root.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let broken = check_paths(&[root.join("README.md"), root.join("docs")]).unwrap();
        assert!(broken.is_empty(), "broken links: {broken:?}");
    }
}
