//! Ablation studies over the design choices DESIGN.md §7 calls out. These
//! extend the paper's evaluation: each isolates one mechanism and shows the
//! regime where it earns its complexity.

use crate::{Artifact, ReproContext};
use meadow_core::report::Table;
use meadow_core::CoreError;
use meadow_dataflow::gemm::WeightFetch;
use meadow_dataflow::tphs::{plan_allocation, tphs_attention_latency, TphsParams};
use meadow_models::synthetic::{generate_decomposition, RedundancyProfile};
use meadow_packing::{ChunkConfig, PackedWeights, PackingConfig, PackingLevel, WiluModule};
use meadow_sim::{ChipConfig, ClockDomain, DramModel};

fn anchor_profile() -> RedundancyProfile {
    RedundancyProfile { unique_chunks: 1272, zipf_exponent: 1.18, mean_run_len: 16.0 }
}

/// Ablation 1: chunk size `C`. Small chunks find more redundancy per chunk
/// but pay more IDs; large chunks dedup worse. `C = 2` (16-bit chunks) is
/// the paper-consistent sweet spot.
///
/// # Errors
///
/// Propagates generation and packing errors.
pub fn ablation_chunk(_ctx: &ReproContext) -> Result<Artifact, CoreError> {
    // One fixed weight matrix (the anchor redundancy structure), decomposed
    // at different chunk sizes — the honest comparison: chunk size changes
    // what the *same* bytes dedup into.
    let w = meadow_models::synthetic::generate_matrix(256, 768, anchor_profile(), 2, 404)
        .map_err(CoreError::from)?;
    let mut table = Table::new([
        "chunk_elems",
        "unique_chunks",
        "id_bits",
        "table_bytes",
        "compression_freq_aware",
    ]);
    let mut best = (0usize, 0.0f64);
    for chunk_elems in [1usize, 2, 4, 8] {
        let cfg = PackingConfig { chunk: ChunkConfig { chunk_elems }, ..PackingConfig::default() };
        let packed = PackedWeights::pack(&w, &cfg, PackingLevel::FrequencyAware)?;
        let ratio = packed.compression_ratio();
        if ratio > best.1 {
            best = (chunk_elems, ratio);
        }
        table.row([
            chunk_elems.to_string(),
            packed.meta().unique_count.to_string(),
            packed.meta().max_id_bits.to_string(),
            packed.unique().size_bytes().to_string(),
            format!("{ratio:.2}"),
        ]);
    }
    Ok(Artifact {
        id: "ablation_chunk",
        paper_claim: "extension: the paper fixes C such that C*Q = 16 bits; this sweep decomposes one matrix at several chunk sizes",
        table,
        notes: vec![format!("best compression at chunk_elems = {} ({:.2}x)", best.0, best.1)],
    })
}

/// Ablation 2: packet payload width. Wide payloads amortize mode bits but
/// force a whole packet to the precision of its worst ID; narrow payloads
/// adapt faster but pay more framing.
///
/// # Errors
///
/// Propagates generation and packing errors.
pub fn ablation_payload(_ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let (unique, encoded) =
        generate_decomposition(256, 768, anchor_profile(), 2, 405).map_err(CoreError::from)?;
    let mut table = Table::new([
        "payload_bits",
        "compression_packet_specific",
        "compression_freq_aware",
        "packets_freq",
    ]);
    for payload_bits in [32u32, 64, 128, 256, 512] {
        let cfg = PackingConfig { payload_bits, ..PackingConfig::default() };
        let pkt = PackedWeights::from_decomposition(
            unique.clone(),
            encoded.clone(),
            &cfg,
            PackingLevel::PacketSpecific,
        )?;
        let freq = PackedWeights::from_decomposition(
            unique.clone(),
            encoded.clone(),
            &cfg,
            PackingLevel::FrequencyAware,
        )?;
        table.row([
            payload_bits.to_string(),
            format!("{:.2}", pkt.compression_ratio()),
            format!("{:.2}", freq.compression_ratio()),
            freq.meta().packets.to_string(),
        ]);
    }
    Ok(Artifact {
        id: "ablation_payload",
        paper_claim: "extension: packet width trades mode-bit overhead against precision adaptivity; 128-bit payloads are near-optimal",
        table,
        notes: Vec::new(),
    })
}

/// Ablation 3: TPHS token parallelism, controlled through the broadcasting
/// PE budget (each in-flight token needs one broadcasting PE for SM·V).
///
/// # Errors
///
/// Propagates executor errors.
pub fn ablation_parallelism(_ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let mut table =
        Table::new(["broadcasting_pes", "token_parallelism", "waves", "tphs_attention_ms@12Gbps"]);
    let clock = ClockDomain::zcu102();
    let params = TphsParams {
        d_model: 768,
        heads: 12,
        head_dim: 64,
        tokens_new: 512,
        context: 512,
        wq: WeightFetch::raw(768 * 768),
    };
    let mut notes = Vec::new();
    let mut prev_ms = f64::INFINITY;
    for bc in [1usize, 2, 4, 8, 12, 24] {
        let mut chip = ChipConfig::zcu102();
        chip.broadcasting_pes = bc;
        let alloc = plan_allocation(&chip, &params);
        let mut dram = DramModel::with_bandwidth(12.0, clock)?;
        let lat = tphs_attention_latency(&chip, &mut dram, &WiluModule::zcu102(), &params)?;
        let ms = clock.to_ms(lat.makespan);
        table.row([
            bc.to_string(),
            alloc.token_parallelism.to_string(),
            alloc.waves.to_string(),
            format!("{ms:.2}"),
        ]);
        if ms > prev_ms * 1.001 {
            notes.push(format!("non-monotonic at {bc} broadcasting PEs"));
        }
        prev_ms = ms;
    }
    notes.push("token parallelism is the first-order TPHS throughput lever; beyond the parallel-PE budget it saturates".to_string());
    Ok(Artifact {
        id: "ablation_parallelism",
        paper_claim: "extension: justifies the 84:12 parallel:broadcasting PE split of Table 1",
        table,
        notes,
    })
}

/// Ablation 4: DMA/compute overlap (double buffering). "Off" charges the
/// fully sequential component sum — what the TPHS pipeline would cost if
/// every head waited for its operands.
///
/// # Errors
///
/// Propagates executor errors.
pub fn ablation_overlap(_ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let clock = ClockDomain::zcu102();
    let params = TphsParams {
        d_model: 768,
        heads: 12,
        head_dim: 64,
        tokens_new: 512,
        context: 512,
        wq: WeightFetch::raw(768 * 768),
    };
    let mut table =
        Table::new(["bandwidth_gbps", "overlapped_ms", "sequential_ms", "overlap_gain"]);
    let mut notes = Vec::new();
    for bw in [1.0, 6.0, 12.0, 51.0] {
        let mut dram = DramModel::with_bandwidth(bw, clock)?;
        let lat = tphs_attention_latency(
            &ChipConfig::zcu102(),
            &mut dram,
            &WiluModule::zcu102(),
            &params,
        )?;
        let overlapped = clock.to_ms(lat.makespan);
        let sequential = clock.to_ms(lat.component_sum());
        table.row([
            format!("{bw}"),
            format!("{overlapped:.2}"),
            format!("{sequential:.2}"),
            format!("{:.2}x", sequential / overlapped),
        ]);
        if bw == 1.0 {
            notes.push(format!(
                "at 1 Gbps double buffering hides {:.0}% of the fetch time",
                (1.0 - overlapped / sequential) * 100.0
            ));
        }
    }
    Ok(Artifact {
        id: "ablation_overlap",
        paper_claim: "extension: quantifies the double-buffered prefetch the architecture (Fig. 2b) relies on",
        table,
        notes,
    })
}

/// Ablation 5: frequency-aware re-indexing across skew levels. With flat
/// chunk frequencies re-indexing cannot help; the paper's gains require the
/// heavy skew real quantized weights exhibit.
///
/// # Errors
///
/// Propagates generation and packing errors.
pub fn ablation_zipf(_ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let mut table =
        Table::new(["zipf_exponent", "naive", "packet_specific", "freq_aware", "reindex_gain"]);
    let mut notes = Vec::new();
    for zipf in [1.001f64, 1.1, 1.2, 1.35, 1.5] {
        let profile =
            RedundancyProfile { unique_chunks: 1272, zipf_exponent: zipf, mean_run_len: 16.0 };
        let (unique, encoded) =
            generate_decomposition(256, 768, profile, 2, 406).map_err(CoreError::from)?;
        let cfg = PackingConfig::default();
        let mut ratios = Vec::new();
        for level in PackingLevel::all() {
            let packed =
                PackedWeights::from_decomposition(unique.clone(), encoded.clone(), &cfg, level)?;
            ratios.push(packed.compression_ratio());
        }
        let gain = ratios[2] / ratios[1];
        table.row([
            format!("{zipf}"),
            format!("{:.2}", ratios[0]),
            format!("{:.2}", ratios[1]),
            format!("{:.2}", ratios[2]),
            format!("{gain:.2}x"),
        ]);
        if zipf <= 1.001 {
            notes.push(format!("flat frequencies: re-indexing gains only {gain:.2}x"));
        }
        if zipf >= 1.5 {
            notes.push(format!("heavy skew: re-indexing gains {gain:.2}x over packet-specific"));
        }
    }
    Ok(Artifact {
        id: "ablation_zipf",
        paper_claim: "extension: re-indexing gains grow with frequency skew; flat distributions neutralize it",
        table,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ablation_prefers_small_chunks() {
        let a = ablation_chunk(&ReproContext::new()).unwrap();
        assert_eq!(a.table.len(), 4);
        assert!(a.notes[0].contains("chunk_elems"));
    }

    #[test]
    fn parallelism_ablation_is_monotone() {
        let a = ablation_parallelism(&ReproContext::new()).unwrap();
        assert!(
            !a.notes.iter().any(|n| n.contains("non-monotonic")),
            "more broadcasting PEs must never slow TPHS: {:?}",
            a.notes
        );
    }

    #[test]
    fn overlap_gains_exist_at_low_bandwidth() {
        let a = ablation_overlap(&ReproContext::new()).unwrap();
        assert!(a.notes[0].contains("double buffering"));
    }

    #[test]
    fn zipf_ablation_shows_growing_reindex_gain() {
        let a = ablation_zipf(&ReproContext::new()).unwrap();
        assert_eq!(a.table.len(), 5);
        // The flat case must show ~no gain; the heavy-skew case a clear one.
        assert!(a.notes.iter().any(|n| n.contains("flat")));
        assert!(a.notes.iter().any(|n| n.contains("heavy skew")));
    }
}
