//! Shared state for the reproduction harness: packing statistics are
//! expensive to sample, so they are computed once per model and reused
//! across every bandwidth point and figure.

use meadow_core::baselines::Baseline;
use meadow_core::{CoreError, MeadowEngine};
use meadow_models::weights::ModelPackingStats;
use meadow_models::TransformerConfig;
use meadow_packing::{PackingConfig, PackingLevel};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Caches per-model packing statistics across figure generators.
#[derive(Debug, Default)]
pub struct ReproContext {
    stats: Mutex<BTreeMap<String, ModelPackingStats>>,
}

impl ReproContext {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Packing statistics for a model at the MEADOW level, computed on
    /// first use.
    ///
    /// # Errors
    ///
    /// Propagates statistics-computation errors.
    pub fn stats_for(&self, model: &TransformerConfig) -> Result<ModelPackingStats, CoreError> {
        let mut cache = self.stats.lock().expect("stats cache poisoned");
        if let Some(s) = cache.get(&model.name) {
            return Ok(s.clone());
        }
        let stats = ModelPackingStats::compute(
            model,
            &PackingConfig::default(),
            PackingLevel::FrequencyAware,
        )?;
        cache.insert(model.name.clone(), stats.clone());
        Ok(stats)
    }

    /// Builds an engine for a baseline, reusing cached packing statistics
    /// for the MEADOW baseline.
    ///
    /// # Errors
    ///
    /// Propagates engine-construction errors.
    pub fn engine(
        &self,
        baseline: Baseline,
        model: &TransformerConfig,
        bandwidth_gbps: f64,
    ) -> Result<MeadowEngine, CoreError> {
        let config = baseline.engine_config(model.clone(), bandwidth_gbps);
        let stats = if config.plan.packing.is_some() { Some(self.stats_for(model)?) } else { None };
        MeadowEngine::with_packing_stats(config, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meadow_models::presets;

    #[test]
    fn stats_are_cached() {
        let ctx = ReproContext::new();
        let a = ctx.stats_for(&presets::tiny_decoder()).unwrap();
        let b = ctx.stats_for(&presets::tiny_decoder()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn engines_for_all_baselines() {
        let ctx = ReproContext::new();
        for b in Baseline::comparison_set() {
            let engine = ctx.engine(b, &presets::tiny_decoder(), 12.0).unwrap();
            assert!(engine.prefill_latency(8).unwrap().total_ms() > 0.0);
        }
    }
}
