//! Reproduction harness for every table and figure in the MEADOW paper's
//! evaluation (§6), plus Criterion kernel benches.
//!
//! Each `figXX` function regenerates one artifact as a
//! [`meadow_core::report::Table`]; the `repro` binary prints them and writes
//! CSVs under `target/repro/` (redirectable with `--out-dir`). The `PAPER:`
//! annotation strings document what the original reports, so divergence is
//! visible right in the output (see `EXPERIMENTS.md` for the recorded
//! comparison).
//!
//! The [`perf`] module and its `perfbench` binary are the machine-readable
//! performance surface: serial-vs-parallel timings of the hot paths as
//! schema-versioned `BENCH_<id>.json`, with a regression gate used by CI.
//! The [`linkcheck`] module and binary keep `README.md` and `docs/*.md`
//! free of broken relative links (also a CI gate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod context;
pub mod figs_design;
pub mod figs_latency;
pub mod figs_packing;
pub mod figs_serve;
pub mod linkcheck;
pub mod perf;

pub use context::ReproContext;
pub use perf::{BenchReport, PerfOptions};

use meadow_core::report::Table;
use std::path::PathBuf;

/// One regenerated artifact: a table plus its paper-side expectation.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Identifier ("fig6a", "table1", ...).
    pub id: &'static str,
    /// One-line description of what the paper's version shows.
    pub paper_claim: &'static str,
    /// The regenerated data.
    pub table: Table,
    /// Free-form notes computed during regeneration (measured headline
    /// numbers, in the same units the paper quotes).
    pub notes: Vec<String>,
}

impl Artifact {
    /// Output path for this artifact's CSV.
    pub fn csv_path(&self, out_dir: &std::path::Path) -> PathBuf {
        out_dir.join(format!("{}.csv", self.id))
    }
}

/// Default output directory (`target/repro`).
pub fn default_out_dir() -> PathBuf {
    PathBuf::from("target/repro")
}
