//! Offline Markdown link checker — CI gate over `README.md` and `docs/`.
//!
//! ```text
//! cargo run --release -p meadow-bench --bin linkcheck -- README.md docs
//! ```
//!
//! Arguments are Markdown files or directories (scanned for `*.md`).
//! Exits non-zero when any relative link or heading fragment fails to
//! resolve; external URLs are not checked (no network in CI).

use meadow_bench::linkcheck::check_paths;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("Usage: linkcheck <FILE|DIR>...");
        println!();
        println!("Checks relative Markdown links and #heading fragments offline.");
        return ExitCode::SUCCESS;
    }
    let paths: Vec<PathBuf> = if args.is_empty() {
        vec![PathBuf::from("README.md"), PathBuf::from("docs")]
    } else {
        args.into_iter().map(PathBuf::from).collect()
    };
    match check_paths(&paths) {
        Ok(broken) if broken.is_empty() => {
            println!("linkcheck: all relative links resolve ({} inputs)", paths.len());
            ExitCode::SUCCESS
        }
        Ok(broken) => {
            for b in &broken {
                eprintln!("broken link: {b}");
            }
            eprintln!("linkcheck: {} broken link(s)", broken.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("linkcheck: cannot read inputs: {e}");
            ExitCode::FAILURE
        }
    }
}
