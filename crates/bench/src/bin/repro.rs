//! Regenerates every table and figure of the MEADOW paper's evaluation.
//!
//! ```text
//! cargo run --release -p meadow-bench --bin repro -- all
//! cargo run --release -p meadow-bench --bin repro -- fig6 fig7
//! cargo run --release -p meadow-bench --bin repro -- --list
//! cargo run --release -p meadow-bench --bin repro -- --out-dir out/repro fig6
//! ```
//!
//! Each artifact is printed as an aligned table (with the paper's claim for
//! side-by-side comparison) and written as CSV under `target/repro/` (or
//! `--out-dir`). Artifacts regenerate concurrently; set `MEADOW_THREADS`
//! to bound the worker count.

use meadow_bench::{
    ablations, default_out_dir, figs_design, figs_latency, figs_packing, figs_serve, Artifact,
    ReproContext,
};
use meadow_core::CoreError;
use meadow_tensor::parallel::{par_map, ExecConfig};
use std::path::PathBuf;
use std::process::ExitCode;

type Generator = fn(&ReproContext) -> Result<Artifact, CoreError>;

const GENERATORS: &[(&str, Generator)] = &[
    ("table1", figs_design::table1 as Generator),
    ("fig1b", figs_latency::fig1b),
    ("fig1c", figs_latency::fig1c),
    ("fig4a", figs_packing::fig4a),
    ("fig6", figs_latency::fig6),
    ("fig7", figs_latency::fig7),
    ("fig8", figs_latency::fig8),
    ("fig9", figs_latency::fig9),
    ("fig10a", figs_packing::fig10a),
    ("fig10bc", figs_packing::fig10bc),
    ("fig11", figs_latency::fig11),
    ("fig12a", figs_design::fig12a),
    ("fig12b", figs_design::fig12b),
    ("fig13", figs_design::fig13),
    ("lossless", figs_packing::lossless),
    ("serve", figs_serve::serve_artifact),
    ("serve_paged", figs_serve::serve_paged_artifact),
    ("serve_kvcomp", figs_serve::serve_kvcomp_artifact),
    ("serve_cluster", figs_serve::serve_cluster_artifact),
    ("serve_disagg", figs_serve::serve_disagg_artifact),
    ("serve_coldstart", figs_serve::serve_coldstart_artifact),
    ("serve_hetero", figs_serve::serve_hetero_artifact),
    ("plan_capacity", figs_serve::plan_capacity_artifact),
    ("serve_scale", figs_serve::serve_scale_artifact),
    ("ablation_chunk", ablations::ablation_chunk),
    ("ablation_payload", ablations::ablation_payload),
    ("ablation_parallelism", ablations::ablation_parallelism),
    ("ablation_overlap", ablations::ablation_overlap),
    ("ablation_zipf", ablations::ablation_zipf),
];

fn main() -> ExitCode {
    let raw_args: Vec<String> = std::env::args().skip(1).collect();
    if raw_args.iter().any(|a| a == "--help" || a == "-h") {
        println!("Usage: repro [--list] [--out-dir DIR] [ARTIFACT...]");
        println!();
        println!("Regenerates tables and figures from the MEADOW paper's evaluation.");
        println!("With no arguments (or `all`), regenerates every artifact. Tables are");
        println!("printed to stdout and written as CSV under target/repro/.");
        println!();
        println!("Options:");
        println!("  --list             print the available artifact names and exit");
        println!("  --out-dir <DIR>    write CSVs under DIR instead of target/repro/");
        println!("  -h, --help         print this help and exit");
        return ExitCode::SUCCESS;
    }
    if raw_args.iter().any(|a| a == "--list") {
        for (name, _) in GENERATORS {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    let mut out_dir = default_out_dir();
    let mut args = Vec::new();
    let mut it = raw_args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--out-dir" {
            match it.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("missing value for `--out-dir`; see --help");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            args.push(arg);
        }
    }
    let selected: Vec<&(&str, Generator)> = if args.is_empty() || args.iter().any(|a| a == "all") {
        GENERATORS.iter().collect()
    } else {
        let mut sel = Vec::new();
        for a in &args {
            match GENERATORS.iter().find(|(name, _)| name == a) {
                Some(g) => sel.push(g),
                None => {
                    eprintln!("unknown artifact `{a}`; use --list to see options");
                    return ExitCode::FAILURE;
                }
            }
        }
        sel
    };
    let ctx = ReproContext::new();
    // Artifacts are independent and ragged in cost; fan them out on the
    // shared worker pool (MEADOW_THREADS or available parallelism) and
    // print in the selection order.
    let exec = ExecConfig::from_env();
    let results: Vec<(&str, Result<Artifact, CoreError>)> =
        par_map(&selected, &exec, |(name, generator)| (*name, generator(&ctx)));
    let mut failures = 0;
    for (name, result) in results {
        println!("==================================================================");
        println!("=== {name}");
        match result {
            Ok(artifact) => {
                println!("PAPER: {}", artifact.paper_claim);
                println!();
                print!("{}", artifact.table);
                for note in &artifact.notes {
                    println!("MEASURED: {note}");
                }
                let path = artifact.csv_path(&out_dir);
                match artifact.table.write_csv(&path) {
                    Ok(()) => println!("(csv written to {})", path.display()),
                    Err(e) => {
                        eprintln!("failed to write {}: {e}", path.display());
                        failures += 1;
                    }
                }
                println!();
            }
            Err(e) => {
                eprintln!("{name} FAILED: {e}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
