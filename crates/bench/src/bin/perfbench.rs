//! Machine-readable performance harness for the MEADOW hot paths.
//!
//! ```text
//! cargo run --release --bin perfbench                       # run, write BENCH_local.json
//! cargo run --release --bin perfbench -- --threads 4 --id ci
//! cargo run --release --bin perfbench -- --compare bench/baseline.json --max-regress 25
//! cargo run --release --bin perfbench -- --compare bench/baseline.json --gate ratio
//! cargo run --release --bin perfbench -- --current a.json --compare b.json
//! ```
//!
//! Times the tiled INT8 GEMM, packing chunk decomposition, functional batch
//! forward, continuous-batching serve simulator and multi-chip cluster
//! serve serial vs parallel
//! (warmup + N trials, median/p95), emits a schema-versioned
//! `BENCH_<id>.json`, and — in `--compare` mode — exits nonzero on a
//! regression past `--max-regress` percent. `--gate absolute` (default)
//! compares best-trial times (`min_ms`, the noise-robust statistic) and
//! needs a baseline from like hardware; `--gate ratio` compares each case's
//! parallel/serial ratio, which is machine-normalized and safe against
//! baselines recorded on different hardware.

use meadow_bench::perf::{self, BenchReport, PerfOptions};
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum GateMode {
    Absolute,
    Ratio,
}

struct Args {
    out_dir: PathBuf,
    bench_id: String,
    opts: PerfOptions,
    compare: Option<PathBuf>,
    current: Option<PathBuf>,
    max_regress_pct: f64,
    gate: GateMode,
}

fn print_help() {
    println!("Usage: perfbench [OPTIONS]");
    println!();
    println!("Times the MEADOW hot paths (tiled INT8 GEMM, packing decompose, batch");
    println!("forward) serial vs parallel and writes a schema-versioned BENCH_<id>.json.");
    println!();
    println!("Options:");
    println!("  --out-dir <DIR>      output directory for BENCH_<id>.json (default target/perf)");
    println!("  --id <ID>            report identifier (default `local`)");
    println!("  --threads <N>        parallel-variant worker threads (default MEADOW_THREADS");
    println!("                       or the host's available parallelism)");
    println!("  --warmup <N>         untimed warmup iterations per variant (default 3)");
    println!("  --trials <N>         timed trials per variant (default 10)");
    println!("  --quick              reduced problem sizes (CI smoke / tests)");
    println!("  --compare <FILE>     compare against a baseline BENCH json; exit 1 on");
    println!("                       regression beyond --max-regress");
    println!("  --current <FILE>     with --compare: read the current report from FILE");
    println!("                       instead of running the suite");
    println!("  --max-regress <PCT>  allowed slowdown in percent (default 25)");
    println!("  --gate <MODE>        comparison mode: `absolute` (best-trial ms, needs a");
    println!("                       like-hardware baseline; default) or `ratio`");
    println!("                       (parallel/serial ratio per case, machine-normalized)");
    println!("  -h, --help           print this help and exit");
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        out_dir: PathBuf::from("target/perf"),
        bench_id: "local".to_string(),
        opts: PerfOptions::default(),
        compare: None,
        current: None,
        max_regress_pct: 25.0,
        gate: GateMode::Absolute,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().ok_or_else(|| format!("missing value for `{name}`; see --help"));
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--out-dir" => args.out_dir = PathBuf::from(value("--out-dir")?),
            "--id" => args.bench_id = value("--id")?,
            "--threads" => {
                args.opts.threads =
                    value("--threads")?.parse().map_err(|e| format!("bad --threads value: {e}"))?;
            }
            "--warmup" => {
                args.opts.warmup =
                    value("--warmup")?.parse().map_err(|e| format!("bad --warmup value: {e}"))?;
            }
            "--trials" => {
                args.opts.trials =
                    value("--trials")?.parse().map_err(|e| format!("bad --trials value: {e}"))?;
            }
            "--quick" => args.opts.quick = true,
            "--compare" => args.compare = Some(PathBuf::from(value("--compare")?)),
            "--current" => args.current = Some(PathBuf::from(value("--current")?)),
            "--max-regress" => {
                args.max_regress_pct = value("--max-regress")?
                    .parse()
                    .map_err(|e| format!("bad --max-regress value: {e}"))?;
            }
            "--gate" => {
                args.gate = match value("--gate")?.as_str() {
                    "absolute" => GateMode::Absolute,
                    "ratio" => GateMode::Ratio,
                    other => {
                        return Err(format!(
                            "bad --gate value `{other}`; expected `absolute` or `ratio`"
                        ))
                    }
                };
            }
            other => return Err(format!("unknown option `{other}`; see --help")),
        }
    }
    if args.current.is_some() && args.compare.is_none() {
        return Err("`--current` requires `--compare <baseline>`".to_string());
    }
    Ok(Some(args))
}

fn load_report(path: &std::path::Path) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    BenchReport::from_json(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

fn print_summary(report: &BenchReport) {
    println!(
        "perfbench `{}`: {} threads, {} warmup + {} trials{}",
        report.bench_id,
        report.threads,
        report.warmup,
        report.trials,
        if report.quick { ", quick sizes" } else { "" }
    );
    println!("{:<34} {:>14} {:>14} {:>9}", "case", "serial med ms", "par med ms", "speedup");
    for case in &report.cases {
        println!(
            "{:<34} {:>14.3} {:>14.3} {:>8.2}x",
            case.name, case.serial.median_ms, case.parallel.median_ms, case.speedup
        );
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => {
            print_help();
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // Obtain the current report: from a file, or by running the suite.
    let current = match &args.current {
        Some(path) => match load_report(path) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let report = perf::run_suite(&args.bench_id, &args.opts);
            print_summary(&report);
            if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
                eprintln!("cannot create {}: {e}", args.out_dir.display());
                return ExitCode::FAILURE;
            }
            let path = args.out_dir.join(report.file_name());
            let json = match report.to_json() {
                Ok(json) => json,
                Err(e) => {
                    eprintln!("serialization failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = std::fs::write(&path, json + "\n") {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("(report written to {})", path.display());
            report
        }
    };
    // Gate against the baseline when requested.
    let Some(baseline_path) = &args.compare else {
        return ExitCode::SUCCESS;
    };
    let baseline = match load_report(baseline_path) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // Medians are only comparable when both runs used the same worker
    // count and problem sizes; flag mismatches loudly instead of gating on
    // apples-to-oranges numbers.
    if current.threads != baseline.threads {
        eprintln!(
            "warning: comparing {} threads against a {}-thread baseline; parallel medians are not comparable",
            current.threads, baseline.threads
        );
    }
    if current.quick != baseline.quick {
        eprintln!(
            "error: current quick={} but baseline quick={}; problem sizes differ, refusing to compare",
            current.quick, baseline.quick
        );
        return ExitCode::FAILURE;
    }
    let compared = current.cases.iter().filter(|c| baseline.case(&c.name).is_some()).count();
    match args.gate {
        GateMode::Absolute => {
            let regressions = perf::find_regressions(&current, &baseline, args.max_regress_pct);
            if regressions.is_empty() {
                println!(
                    "no regression beyond {:.1}% vs {} ({compared} cases compared)",
                    args.max_regress_pct,
                    baseline_path.display(),
                );
                return ExitCode::SUCCESS;
            }
            eprintln!(
                "{} regression(s) beyond {:.1}% vs {}:",
                regressions.len(),
                args.max_regress_pct,
                baseline_path.display()
            );
            for r in &regressions {
                eprintln!(
                    "  {} [{}]: {:.3} ms -> {:.3} ms (+{:.1}%)",
                    r.case, r.variant, r.baseline_ms, r.current_ms, r.regress_pct
                );
            }
            ExitCode::FAILURE
        }
        GateMode::Ratio => {
            let regressions =
                perf::find_ratio_regressions(&current, &baseline, args.max_regress_pct);
            if regressions.is_empty() {
                println!(
                    "no parallel/serial ratio worse than baseline by {:.1}% vs {} ({compared} cases compared)",
                    args.max_regress_pct,
                    baseline_path.display(),
                );
                return ExitCode::SUCCESS;
            }
            eprintln!(
                "{} ratio regression(s) beyond {:.1}% vs {}:",
                regressions.len(),
                args.max_regress_pct,
                baseline_path.display()
            );
            for r in &regressions {
                eprintln!(
                    "  {}: parallel/serial ratio {:.3} -> {:.3} (+{:.1}%)",
                    r.case, r.baseline_ratio, r.current_ratio, r.regress_pct
                );
            }
            ExitCode::FAILURE
        }
    }
}
