//! `planner`: the capacity-planning CLI — size the minimal chip fleet
//! that meets a p95 TTFT SLO on a seed-pinned open-loop workload.
//!
//! Wraps [`meadow_core::capacity::CapacityPlanner`] around the same
//! tiny-decoder workload family the `plan_capacity` repro artifact uses,
//! with the SLO, search ceiling and trace knobs exposed as flags. Prints
//! the full [`CapacityPlan`] as JSON (fleet per palette mix, SLO margin,
//! per-chip utilization and the binary-search probe ladder), so the
//! output is scriptable; the plan is deterministic for fixed flags.
//!
//! [`CapacityPlan`]: meadow_core::capacity::CapacityPlan

use meadow_core::capacity::{CapacityPlanner, PaletteMix, SloTarget};
use meadow_core::serve::ServeConfig;
use meadow_core::EngineConfig;
use meadow_models::presets;
use meadow_models::workload::{ArrivalTrace, ZipfLengths};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

struct Options {
    slo_ms: f64,
    max_rejected: Option<f64>,
    max_chips: usize,
    requests: usize,
    rate: f64,
    seed: u64,
    mix: String,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            slo_ms: 0.1,
            max_rejected: None,
            max_chips: 8,
            requests: 32,
            rate: 50_000.0,
            seed: 31337,
            mix: "all".to_string(),
        }
    }
}

fn print_help() {
    println!("Usage: planner [OPTIONS]");
    println!();
    println!("Sizes the minimal chip fleet whose simulated p95 TTFT meets the SLO,");
    println!("per palette mix, and prints the CapacityPlan as JSON (fleet, margin,");
    println!("per-chip utilization, and the probe ladder that pins minimality).");
    println!();
    println!("Options:");
    println!("  --slo-ms <MS>         p95 TTFT target in milliseconds (default 0.1)");
    println!("  --max-rejected <FRAC> also cap the rejected fraction (default: off)");
    println!("  --max-chips <N>       fleet-size search ceiling (default 8)");
    println!("  --requests <N>        open-loop trace length (default 32)");
    println!("  --rate <REQ_PER_S>    Poisson arrival rate (default 50000)");
    println!("  --seed <SEED>         trace seed (default 31337)");
    println!("  --mix <NAME>          palette mix: big, big-little, or all (default all)");
    println!("  -h, --help            print this help and exit");
}

fn parse_options(args: Vec<String>) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value =
            |flag: &str| it.next().ok_or_else(|| format!("missing value for `{flag}`; see --help"));
        match arg.as_str() {
            "--slo-ms" => {
                opts.slo_ms =
                    value("--slo-ms")?.parse().map_err(|e| format!("invalid --slo-ms: {e}"))?;
            }
            "--max-rejected" => {
                opts.max_rejected = Some(
                    value("--max-rejected")?
                        .parse()
                        .map_err(|e| format!("invalid --max-rejected: {e}"))?,
                );
            }
            "--max-chips" => {
                opts.max_chips = value("--max-chips")?
                    .parse()
                    .map_err(|e| format!("invalid --max-chips: {e}"))?;
            }
            "--requests" => {
                opts.requests =
                    value("--requests")?.parse().map_err(|e| format!("invalid --requests: {e}"))?;
            }
            "--rate" => {
                opts.rate = value("--rate")?.parse().map_err(|e| format!("invalid --rate: {e}"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?.parse().map_err(|e| format!("invalid --seed: {e}"))?;
            }
            "--mix" => {
                opts.mix = value("--mix")?;
                if !matches!(opts.mix.as_str(), "big" | "big-little" | "all") {
                    return Err(format!(
                        "unknown mix `{}`; expected big, big-little, or all",
                        opts.mix
                    ));
                }
            }
            other => return Err(format!("unknown option `{other}`; see --help")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let raw_args: Vec<String> = std::env::args().skip(1).collect();
    if raw_args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return ExitCode::SUCCESS;
    }
    let opts = match parse_options(raw_args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let model = presets::tiny_decoder();
    // The same length family as the `plan_capacity` repro artifact; the
    // rate and seed knobs move the load and draw without changing it.
    let lengths = ZipfLengths {
        prompt_min: 8,
        prompt_max: 32,
        generate_min: 4,
        generate_max: 16,
        exponent: 1.1,
    };
    let trace = match ArrivalTrace::open_loop(
        opts.requests,
        opts.rate,
        &lengths,
        &mut StdRng::seed_from_u64(opts.seed),
    ) {
        Ok(trace) => trace,
        Err(e) => {
            eprintln!("invalid workload: {e}");
            return ExitCode::FAILURE;
        }
    };
    let big = EngineConfig::zcu102(model.clone(), 12.0);
    let little = EngineConfig::zcu102_little(model.clone(), 6.0);
    let mut mixes = Vec::new();
    if opts.mix == "big" || opts.mix == "all" {
        mixes.push(PaletteMix::new("big", vec![big.clone()]));
    }
    if opts.mix == "big-little" || opts.mix == "all" {
        mixes.push(PaletteMix::new("big-little", vec![big, little]));
    }
    let slo = SloTarget { p95_ttft_ms: opts.slo_ms, max_rejected_fraction: opts.max_rejected };
    let planner = CapacityPlanner::new(ServeConfig::default().with_max_batch(2), slo)
        .max_chips(opts.max_chips);
    match planner.plan(&trace, &mixes) {
        Ok(plan) => match plan.to_json() {
            Ok(json) => {
                println!("{json}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("failed to serialize plan: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
