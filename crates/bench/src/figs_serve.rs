//! Serving artifacts: multi-session continuous batching on the ZCU102
//! under KV-cache budgets — `serve` (whole-cache FIFO/LRU budget sweep),
//! `serve_paged` (paged vs whole-cache eviction on an open-loop
//! Poisson/Zipf workload, with SLO-aware admission) and `serve_cluster`
//! (session-pool sharding across simulated chips: placement policies and
//! NoC-charged cross-chip KV migration), plus `serve_scale` (the
//! event-driven scheduler core vs the per-tick scan oracle on growing
//! open-loop traces). Not paper figures; see the ROADMAP's serving north
//! star. Every run goes through the unified [`ServeSpec`] front door.

use crate::{Artifact, ReproContext};
use meadow_core::baselines::Baseline;
use meadow_core::capacity::{CapacityPlanner, PaletteMix, SloTarget};
use meadow_core::cluster::{
    ClusterReport, Colocated, DisaggReport, LeastLoadedKv, LeastLoadedWeighted, PrefillDecodeSplit,
    RoundRobin, SessionAffinity, ToLeastLoaded,
};
use meadow_core::report::{fmt_ms, Table};
use meadow_core::serve::{
    AdmissionPolicy, KvPolicy, SchedulerCore, ServeConfig, ServeReport, SpecDecode,
};
use meadow_core::spec::ServeSpec;
use meadow_core::{CoreError, EngineConfig, MeadowEngine};
use meadow_models::presets;
use meadow_models::workload::{ArrivalTrace, ServeRequest, ZipfLengths};
use meadow_models::{KvCompression, KvLayout};
use meadow_sim::TrafficClass;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MB: f64 = (1 << 20) as f64;
const KB: f64 = 1024.0;

/// Runs a single-chip serving configuration through the unified
/// [`ServeSpec`] front door (the artifacts' only construction path).
fn run_single(
    engine: &MeadowEngine,
    trace: &ArrivalTrace,
    config: ServeConfig,
) -> Result<ServeReport, CoreError> {
    let spec = ServeSpec::builder().config(config).build().map_err(CoreError::from)?;
    Ok(spec.run(engine, trace)?.into_single().expect("one chip, no cluster policies"))
}

/// The artifact's fixed 8-request trace: staggered arrivals on the scale of
/// OPT-125M decode steps (several ms), mixing summarization-style requests
/// (long prompt, short generation) with chat-style ones (short prompt, long
/// generation — cheap to admit, but their KV caches grow several MB while
/// resident, which is what forces evictions under a tight budget).
fn arrival_trace() -> ArrivalTrace {
    ArrivalTrace::new(vec![
        ServeRequest::new(0, 0.0, 256, 48),
        ServeRequest::new(1, 0.0, 16, 256),
        ServeRequest::new(2, 10.0, 8, 192),
        ServeRequest::new(3, 15.0, 256, 32),
        ServeRequest::new(4, 20.0, 24, 224),
        ServeRequest::new(5, 40.0, 96, 96),
        ServeRequest::new(6, 60.0, 12, 256),
        ServeRequest::new(7, 90.0, 224, 64),
    ])
}

/// `serve`: p50/p95 latency, throughput, evictions and KV migration traffic
/// for FIFO vs LRU across KV budgets (unbounded / fit-all / constrained).
///
/// # Errors
///
/// Propagates engine and serving errors.
pub fn serve_artifact(ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let model = presets::opt_125m();
    let engine = ctx.engine(Baseline::Meadow, &model, 12.0)?;
    let trace = arrival_trace();
    let total_peak = trace.total_peak_kv_bytes(&model);
    let single_max = trace.requests.iter().map(|r| r.peak_kv_bytes(&model)).max().unwrap_or(0);
    // A third of total demand (but always one full session) forces the
    // scheduler to juggle residency.
    let constrained = (total_peak / 3).max(single_max);
    let budgets: [(&str, Option<u64>); 3] =
        [("unbounded", None), ("fit-all", Some(total_peak)), ("constrained", Some(constrained))];
    let mut table = Table::new([
        "policy",
        "budget",
        "budget_mb",
        "p50_ms",
        "p95_ms",
        "tok_per_s",
        "evictions",
        "peak_kv_mb",
        "kv_migration_mb",
    ]);
    let mut constrained_evictions = 0u64;
    let mut unbounded_tps = 0.0f64;
    for policy in [KvPolicy::Fifo, KvPolicy::Lru] {
        for (label, budget) in budgets {
            let mut config = ServeConfig::default().with_policy(policy).with_max_batch(4);
            config.kv_budget_bytes = budget;
            let report = run_single(&engine, &trace, config)?;
            if label == "constrained" {
                constrained_evictions += report.total_evictions;
            }
            if label == "unbounded" {
                unbounded_tps = report.tokens_per_sec;
            }
            table.row([
                format!("{policy:?}"),
                label.to_string(),
                budget.map_or("inf".to_string(), |b| format!("{:.1}", b as f64 / MB)),
                fmt_ms(report.p50_latency_ms),
                fmt_ms(report.p95_latency_ms),
                format!("{:.1}", report.tokens_per_sec),
                report.total_evictions.to_string(),
                format!("{:.2}", report.peak_kv_bytes as f64 / MB),
                format!("{:.2}", report.ledger.bytes(TrafficClass::KvCache) as f64 / MB),
            ]);
        }
    }
    Ok(Artifact {
        id: "serve",
        paper_claim: "beyond the paper: VEDA/EdgeFlow-style multi-request serving — KV residency is the binding constraint on a fixed edge memory budget",
        table,
        notes: vec![
            format!(
                "8 requests, OPT-125M @ 12 Gbps, batch cap 4; constrained budget {:.1} MB of {:.1} MB total demand",
                constrained as f64 / MB,
                total_peak as f64 / MB
            ),
            format!(
                "unbounded-budget throughput {unbounded_tps:.1} tok/s; constrained run evicts {constrained_evictions} times (FIFO+LRU)"
            ),
        ],
    })
}

/// The `serve_paged` workload: an open-loop trace of 16 requests at 40
/// req/s with Zipf-distributed lengths (mostly short chats, a heavy tail
/// of long prompts/completions), seed-pinned so the artifact and its
/// acceptance test reproduce byte-for-byte. Returns the trace plus the
/// constrained budget and batch cap the comparison runs under.
pub fn serve_paged_workload() -> (ArrivalTrace, u64, usize) {
    let model = presets::opt_125m();
    let lengths = ZipfLengths {
        prompt_min: 16,
        prompt_max: 256,
        generate_min: 16,
        generate_max: 192,
        exponent: 1.1,
    };
    let trace = ArrivalTrace::open_loop(16, 40.0, &lengths, &mut StdRng::seed_from_u64(2025))
        .expect("workload parameters are valid");
    let total_peak = trace.total_peak_kv_bytes(&model);
    let single_max = trace.requests.iter().map(|r| r.peak_kv_bytes(&model)).max().unwrap_or(0);
    // Two fifths of total demand (but always one full session) and a
    // tight batch cap: deep enough contention that both policies must
    // evict repeatedly, with enough idle residency that partial spills
    // pay off.
    let budget = (2 * total_peak / 5).max(single_max);
    (trace, budget, 2)
}

/// `serve_paged`: page-granular vs whole-cache eviction on the open-loop
/// workload — migration traffic, page-fault counts, fragmentation and
/// SLO-rejection behavior across admission policies.
///
/// # Errors
///
/// Propagates engine and serving errors.
pub fn serve_paged_artifact(ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let model = presets::opt_125m();
    let engine = ctx.engine(Baseline::Meadow, &model, 12.0)?;
    let (trace, budget, max_batch) = serve_paged_workload();
    let page_bytes = 64 << 10;
    let slo_ms = 400.0;
    let mut table = Table::new([
        "policy",
        "admission",
        "budget_mb",
        "p50_ms",
        "p95_ms",
        "tok_per_s",
        "evictions",
        "page_spills",
        "page_faults",
        "rejected",
        "kv_migration_mb",
        "frag_peak_kb",
    ]);
    let mut whole_migration = 0u64;
    let mut paged_migration = 0u64;
    for policy in [KvPolicy::Lru, KvPolicy::PagedLru] {
        for admission in
            [AdmissionPolicy::Queue, AdmissionPolicy::RejectAfter { ttft_slo_ms: slo_ms }]
        {
            let config = ServeConfig::default()
                .with_budget(budget)
                .with_policy(policy)
                .with_page_bytes(page_bytes)
                .with_max_batch(max_batch)
                .with_admission(admission);
            let report = run_single(&engine, &trace, config)?;
            if admission == AdmissionPolicy::Queue {
                match policy {
                    KvPolicy::PagedLru => {
                        paged_migration = report.ledger.bytes(TrafficClass::KvCache)
                    }
                    _ => whole_migration = report.ledger.bytes(TrafficClass::KvCache),
                }
            }
            table.row([
                format!("{policy:?}"),
                match admission {
                    AdmissionPolicy::Queue => "queue".to_string(),
                    AdmissionPolicy::RejectAfter { .. } => format!("slo{slo_ms:.0}ms"),
                },
                format!("{:.1}", budget as f64 / MB),
                fmt_ms(report.p50_latency_ms),
                fmt_ms(report.p95_latency_ms),
                format!("{:.1}", report.tokens_per_sec),
                report.total_evictions.to_string(),
                report.total_page_spills.to_string(),
                report.total_page_faults.to_string(),
                report.rejected_requests.to_string(),
                format!("{:.2}", report.ledger.bytes(TrafficClass::KvCache) as f64 / MB),
                format!("{:.1}", report.kv_frag_peak_bytes as f64 / KB),
            ]);
        }
    }
    Ok(Artifact {
        id: "serve_paged",
        paper_claim: "beyond the paper: vLLM/VEDA-style paged KV allocation — page-granular eviction moves less DRAM traffic than whole-cache spill under the same budget",
        table,
        notes: vec![
            format!(
                "16 open-loop requests (Poisson 40 req/s, Zipf lengths), OPT-125M @ 12 Gbps, batch cap {max_batch}, {} KiB pages",
                page_bytes >> 10
            ),
            format!(
                "KV migration under the queueing admission: whole-cache {:.2} MB vs paged {:.2} MB ({:.1}x less)",
                whole_migration as f64 / MB,
                paged_migration as f64 / MB,
                if paged_migration > 0 {
                    whole_migration as f64 / paged_migration as f64
                } else {
                    f64::INFINITY
                }
            ),
        ],
    })
}

/// The `serve_kvcomp` workload: 16 open-loop requests (Poisson 80 req/s,
/// Zipf lengths, seed-pinned) under a *fixed* KV budget sized for dense
/// caches — a quarter of total dense demand (but always one full dense
/// cache) — with a tight batch cap. The budget is the control variable:
/// every layout/compression row of the artifact runs under the same
/// bytes, so any extra admissions or lower residency pressure are
/// attributable to the smaller per-token KV footprint alone.
pub fn serve_kvcomp_workload() -> (ArrivalTrace, u64, usize) {
    let model = presets::opt_125m();
    let lengths = ZipfLengths {
        prompt_min: 32,
        prompt_max: 256,
        generate_min: 32,
        generate_max: 192,
        exponent: 1.1,
    };
    let trace = ArrivalTrace::open_loop(16, 80.0, &lengths, &mut StdRng::seed_from_u64(31_337))
        .expect("workload parameters are valid");
    let total_peak = trace.total_peak_kv_bytes(&model);
    let single_max = trace.requests.iter().map(|r| r.peak_kv_bytes(&model)).max().unwrap_or(0);
    let budget = (total_peak / 4).max(single_max);
    (trace, budget, 2)
}

/// The layout/compression sweep the `serve_kvcomp` artifact runs: dense
/// (the degeneracy oracle), grouped-query and sliding-window layouts, and
/// the VEDA-style vote-based token eviction at descending keep ratios.
fn kvcomp_sweep() -> [(&'static str, KvLayout, KvCompression); 7] {
    [
        ("dense", KvLayout::Dense, KvCompression::None),
        ("gqa-4", KvLayout::GroupedHeads { kv_heads: 4 }, KvCompression::None),
        ("window-64+4", KvLayout::SlidingWindow { window: 64, sinks: 4 }, KvCompression::None),
        ("veda-1.00", KvLayout::Dense, KvCompression::VedaVote { keep_ratio: 1.0 }),
        ("veda-0.75", KvLayout::Dense, KvCompression::VedaVote { keep_ratio: 0.75 }),
        ("veda-0.50", KvLayout::Dense, KvCompression::VedaVote { keep_ratio: 0.5 }),
        ("veda-0.25", KvLayout::Dense, KvCompression::VedaVote { keep_ratio: 0.25 }),
    ]
}

/// Runs one `serve_kvcomp` sweep point: the fixed workload and budget with
/// SLO-rejecting admission under the given KV layout and compression.
fn run_kvcomp(
    engine: &MeadowEngine,
    trace: &ArrivalTrace,
    budget: u64,
    max_batch: usize,
    layout: KvLayout,
    compression: KvCompression,
) -> Result<ServeReport, CoreError> {
    let config = ServeConfig::default()
        .with_budget(budget)
        .with_policy(KvPolicy::Lru)
        .with_max_batch(max_batch)
        .with_admission(AdmissionPolicy::RejectAfter { ttft_slo_ms: 400.0 })
        .with_kv_layout(layout)
        .with_kv_compression(compression);
    run_single(engine, trace, config)
}

/// `serve_kvcomp`: token-level KV compression under a fixed dense-sized
/// budget — layout sharing (GQA, sliding window) and VEDA-style vote-based
/// token eviction at descending keep ratios, against the dense oracle.
/// Reports the capacity side (admissions, evictions, final KV bytes) and
/// the tail-latency side (p95) together with the retained attention mass,
/// the accuracy proxy each keep ratio trades away.
///
/// # Errors
///
/// Propagates engine and serving errors.
pub fn serve_kvcomp_artifact(ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let model = presets::opt_125m();
    let engine = ctx.engine(Baseline::Meadow, &model, 12.0)?;
    let (trace, budget, max_batch) = serve_kvcomp_workload();
    let mut table = Table::new([
        "layout",
        "keep",
        "p50_ms",
        "p95_ms",
        "tok_per_s",
        "admitted",
        "rejected",
        "evictions",
        "final_kv_mb",
        "dense_kv_mb",
        "retained_mass",
    ]);
    let mut dense_rejected = 0u64;
    let mut dense_bytes = 0u64;
    let mut best = ("dense", u64::MAX, u64::MAX); // (label, rejected, final bytes)
    for (label, layout, compression) in kvcomp_sweep() {
        let report = run_kvcomp(&engine, &trace, budget, max_batch, layout, compression)?;
        let final_bytes: u64 = report.traces.iter().map(|t| t.final_kv_bytes).sum();
        let (dense_final, mass) = match report.kv {
            Some(kv) => (kv.dense_final_kv_bytes, kv.retained_attention_mass),
            None => (final_bytes, 1.0),
        };
        if label == "dense" {
            dense_rejected = report.rejected_requests;
            dense_bytes = final_bytes;
        }
        if report.rejected_requests < best.1
            || (report.rejected_requests == best.1 && final_bytes < best.2)
        {
            best = (label, report.rejected_requests, final_bytes);
        }
        let keep = match compression {
            KvCompression::VedaVote { keep_ratio } => format!("{keep_ratio:.2}"),
            KvCompression::None => "1.00".to_string(),
        };
        table.row([
            label.to_string(),
            keep,
            fmt_ms(report.p50_latency_ms),
            fmt_ms(report.p95_latency_ms),
            format!("{:.1}", report.tokens_per_sec),
            (report.requests as u64 - report.rejected_requests).to_string(),
            report.rejected_requests.to_string(),
            report.total_evictions.to_string(),
            format!("{:.2}", final_bytes as f64 / MB),
            format!("{:.2}", dense_final as f64 / MB),
            format!("{mass:.4}"),
        ]);
    }
    Ok(Artifact {
        id: "serve_kvcomp",
        paper_claim: "beyond the paper: VEDA-style token-level KV compression — dropping low-vote tokens shrinks per-session KV residency, so a fixed budget admits more sessions and evicts less, at a measured retained-attention-mass cost",
        table,
        notes: vec![
            format!(
                "16 open-loop requests (Poisson 80 req/s, Zipf lengths), OPT-125M @ 12 Gbps, batch cap {max_batch}, fixed budget {:.1} MB, TTFT SLO 400 ms",
                budget as f64 / MB
            ),
            format!(
                "dense oracle: {dense_rejected} rejected, {:.2} MB final KV; best sweep point {} ({} rejected, {:.2} MB)",
                dense_bytes as f64 / MB,
                best.0,
                best.1,
                best.2 as f64 / MB
            ),
        ],
    })
}

/// The `serve_cluster` workload: 24 open-loop requests (Poisson 60 req/s,
/// Zipf lengths) from 5 sticky "users" (affinity hints `id % 5` — the
/// multi-turn conversations [`SessionAffinity`] keeps chip-local), plus
/// the per-chip KV budget the comparison runs under: a sixth of total
/// demand (but always one full session), so affinity-skewed chips overflow
/// while balanced ones keep headroom.
pub fn serve_cluster_workload() -> (ArrivalTrace, u64) {
    let model = presets::opt_125m();
    let lengths = ZipfLengths {
        prompt_min: 16,
        prompt_max: 256,
        generate_min: 16,
        generate_max: 192,
        exponent: 1.1,
    };
    let mut trace = ArrivalTrace::open_loop(24, 60.0, &lengths, &mut StdRng::seed_from_u64(4242))
        .expect("workload parameters are valid");
    for r in &mut trace.requests {
        *r = r.with_affinity(r.id % 5);
    }
    let total_peak = trace.total_peak_kv_bytes(&model);
    let single_max = trace.requests.iter().map(|r| r.peak_kv_bytes(&model)).max().unwrap_or(0);
    let budget = (total_peak / 6).max(single_max);
    (trace, budget)
}

/// Runs the cluster workload under one `(chips, placement, migration)`
/// combination. `placement` is one of the builder names
/// (`"round-robin"`, `"least-loaded-kv"`, `"session-affinity"`).
fn run_cluster(
    ctx: &ReproContext,
    trace: &ArrivalTrace,
    budget: u64,
    chips: usize,
    placement: &str,
    migrate: bool,
) -> Result<ClusterReport, CoreError> {
    let model = presets::opt_125m();
    let engine = ctx.engine(Baseline::Meadow, &model, 12.0)?;
    let serve_config = ServeConfig::default()
        .with_budget(budget)
        .with_policy(KvPolicy::PagedLru)
        .with_page_bytes(64 << 10)
        .with_max_batch(2);
    let builder = ServeSpec::builder().chips(chips).config(serve_config);
    let builder = match placement {
        "round-robin" => builder.placement(RoundRobin),
        "least-loaded-kv" => builder.placement(LeastLoadedKv),
        _ => builder.placement(SessionAffinity),
    };
    let builder = if migrate { builder.migration(ToLeastLoaded) } else { builder };
    let spec = builder.build().map_err(CoreError::from)?;
    Ok(spec.run(&engine, trace)?.into_cluster().expect("placement policy selects cluster mode"))
}

/// `serve_cluster`: session-pool sharding across 4 simulated chips —
/// placement policies (round-robin vs least-loaded vs sticky affinity)
/// against the single-chip baseline, and NoC-charged cross-chip KV
/// migration vs DRAM spill under the same per-chip budget.
///
/// # Errors
///
/// Propagates engine, cluster-construction and serving errors.
pub fn serve_cluster_artifact(ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let (trace, budget) = serve_cluster_workload();
    let runs: [(usize, &str, bool); 6] = [
        (1, "round-robin", false),
        (4, "round-robin", false),
        (4, "least-loaded-kv", false),
        (4, "session-affinity", false),
        (4, "least-loaded-kv", true),
        (4, "session-affinity", true),
    ];
    let mut table = Table::new([
        "chips",
        "placement",
        "migration",
        "p50_ms",
        "p95_ms",
        "tok_per_s",
        "evictions",
        "imbalance",
        "dram_kv_mb",
        "migrated_mb",
        "noc_link_mb",
    ]);
    let mut single_p95 = 0.0f64;
    let mut sharded_p95 = f64::INFINITY;
    let mut affinity_spill = (0u64, 0u64); // (no migration, migration)
    let mut affinity_migrated = 0u64;
    for (chips, placement, migrate) in runs {
        let report = run_cluster(ctx, &trace, budget, chips, placement, migrate)?;
        if chips == 1 {
            single_p95 = report.p95_latency_ms;
        } else if !migrate {
            sharded_p95 = sharded_p95.min(report.p95_latency_ms);
        }
        if placement == "session-affinity" {
            if migrate {
                affinity_spill.1 = report.dram_kv_bytes;
                affinity_migrated = report.migrated_out_bytes;
            } else {
                affinity_spill.0 = report.dram_kv_bytes;
            }
        }
        let evictions: u64 = report.per_chip.iter().map(|c| c.report.total_evictions).sum();
        table.row([
            chips.to_string(),
            report.placement.clone(),
            report.migration.clone(),
            fmt_ms(report.p50_latency_ms),
            fmt_ms(report.p95_latency_ms),
            format!("{:.1}", report.tokens_per_sec),
            evictions.to_string(),
            format!("{:.2}", report.kv_imbalance),
            format!("{:.2}", report.dram_kv_bytes as f64 / MB),
            format!("{:.2}", report.migrated_out_bytes as f64 / MB),
            format!("{:.2}", report.noc_link_bytes as f64 / MB),
        ]);
    }
    Ok(Artifact {
        id: "serve_cluster",
        paper_claim: "beyond the paper: EdgeProfiler-style multi-chip serving — sharding the session pool relieves the per-chip KV budget, and NoC migration to underloaded chips replaces DRAM spill",
        table,
        notes: vec![
            format!(
                "24 open-loop requests (Poisson 60 req/s, Zipf lengths, 5 sticky users), OPT-125M @ 12 Gbps, per-chip budget {:.1} MB, 64 KiB pages",
                budget as f64 / MB
            ),
            format!(
                "p95 latency: 1 chip {:.1} ms vs best 4-chip placement {:.1} ms ({:.1}x)",
                single_p95,
                sharded_p95,
                if sharded_p95 > 0.0 { single_p95 / sharded_p95 } else { f64::INFINITY }
            ),
            format!(
                "sticky-affinity DRAM KV traffic (spill+reload): {:.2} MB without migration vs {:.2} MB with ({:.2} MB rerouted over the NoC)",
                affinity_spill.0 as f64 / MB,
                affinity_spill.1 as f64 / MB,
                affinity_migrated as f64 / MB
            ),
        ],
    })
}

/// The `serve_hetero` workload: 24 open-loop requests at an arrival rate
/// that keeps a queue resident on the tiny decoder (steps are tens of
/// microseconds, so the Poisson rate is scaled to match), plus the shared
/// per-chip KV budget. The tiny model keeps the artifact fast: every
/// heterogeneous cluster run builds one engine per chip spec, so the
/// packing-stat cost scales with fleet size — and the placement contract
/// this artifact pins is model-independent.
pub fn serve_hetero_workload() -> (ArrivalTrace, u64) {
    let model = presets::tiny_decoder();
    let lengths = ZipfLengths {
        prompt_min: 8,
        prompt_max: 32,
        generate_min: 4,
        generate_max: 16,
        exponent: 1.1,
    };
    let trace = ArrivalTrace::open_loop(24, 2_000.0, &lengths, &mut StdRng::seed_from_u64(9090))
        .expect("workload parameters are valid");
    let total_peak = trace.total_peak_kv_bytes(&model);
    let single_max = trace.requests.iter().map(|r| r.peak_kv_bytes(&model)).max().unwrap_or(0);
    let budget = (total_peak / 4).max(single_max);
    (trace, budget)
}

/// The two `serve_hetero` fleets, built to equal total compute: three big
/// chips (96 PEs @ 12 Gbps each) against two big plus two LITTLE chips
/// (48 PEs @ 6 Gbps each) — 3 × 614.4 GMACs = 2 × 614.4 + 2 × 307.2.
pub fn serve_hetero_fleets() -> (Vec<EngineConfig>, Vec<EngineConfig>) {
    let model = presets::tiny_decoder();
    let big = || EngineConfig::zcu102(model.clone(), 12.0);
    let little = || EngineConfig::zcu102_little(model.clone(), 6.0);
    (vec![big(), big(), big()], vec![big(), big(), little(), little()])
}

/// Runs the heterogeneity workload on one fleet under one placement
/// (`"round-robin"` or `"least-loaded-weighted"`).
fn run_hetero(
    ctx: &ReproContext,
    trace: &ArrivalTrace,
    budget: u64,
    fleet: &[EngineConfig],
    placement: &str,
) -> Result<ClusterReport, CoreError> {
    let engine = ctx.engine(Baseline::Meadow, &presets::tiny_decoder(), 12.0)?;
    let serve_config = ServeConfig::default()
        .with_budget(budget)
        .with_policy(KvPolicy::PagedLru)
        .with_page_bytes(256)
        .with_max_batch(2);
    let builder = ServeSpec::builder().chip_specs(fleet.to_vec()).config(serve_config);
    let builder = match placement {
        "round-robin" => builder.placement(RoundRobin),
        _ => builder.placement(LeastLoadedWeighted),
    };
    let spec = builder.build().map_err(CoreError::from)?;
    Ok(spec.run(&engine, trace)?.into_cluster().expect("chip specs select cluster mode"))
}

/// `serve_hetero`: heterogeneous big/LITTLE serving — a homogeneous
/// three-big-chip fleet against a 2 big + 2 LITTLE fleet with the *same
/// total compute*, under speed-oblivious round-robin and throughput-aware
/// weighted placement. On the mixed fleet, weighted placement must beat
/// round-robin on p95 latency: round-robin hands the LITTLE chips as many
/// sessions as the big ones and the tail forms there.
///
/// # Errors
///
/// Propagates engine, cluster-construction and serving errors.
///
/// # Panics
///
/// Panics if weighted placement fails to beat round-robin on the mixed
/// fleet — that is the contract this artifact exists to demonstrate.
pub fn serve_hetero_artifact(ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let (trace, budget) = serve_hetero_workload();
    let (homogeneous, mixed) = serve_hetero_fleets();
    let runs: [(&str, &[EngineConfig], &str); 4] = [
        ("3xbig", &homogeneous, "round-robin"),
        ("3xbig", &homogeneous, "least-loaded-weighted"),
        ("2big+2little", &mixed, "round-robin"),
        ("2big+2little", &mixed, "least-loaded-weighted"),
    ];
    let mut table = Table::new([
        "fleet",
        "placement",
        "p50_ms",
        "p95_ms",
        "tok_per_s",
        "imbalance",
        "util_min",
        "util_max",
        "evictions",
    ]);
    let mut mixed_p95 = (0.0f64, 0.0f64); // (round-robin, weighted)
    let mut homogeneous_p95 = f64::INFINITY;
    for (fleet_name, fleet, placement) in runs {
        let report = run_hetero(ctx, &trace, budget, fleet, placement)?;
        if fleet_name == "2big+2little" {
            if placement == "round-robin" {
                mixed_p95.0 = report.p95_latency_ms;
            } else {
                mixed_p95.1 = report.p95_latency_ms;
            }
        } else {
            homogeneous_p95 = homogeneous_p95.min(report.p95_latency_ms);
        }
        let utils: Vec<f64> = report.per_chip.iter().filter_map(|c| c.utilization).collect();
        let util_min = utils.iter().copied().fold(f64::INFINITY, f64::min);
        let util_max = utils.iter().copied().fold(0.0f64, f64::max);
        let evictions: u64 = report.per_chip.iter().map(|c| c.report.total_evictions).sum();
        table.row([
            fleet_name.to_string(),
            report.placement.clone(),
            fmt_ms(report.p50_latency_ms),
            fmt_ms(report.p95_latency_ms),
            format!("{:.1}", report.tokens_per_sec),
            format!("{:.2}", report.kv_imbalance),
            format!("{util_min:.2}"),
            format!("{util_max:.2}"),
            evictions.to_string(),
        ]);
    }
    assert!(
        mixed_p95.1 < mixed_p95.0,
        "weighted placement p95 {} must beat round-robin p95 {} on the mixed fleet",
        mixed_p95.1,
        mixed_p95.0
    );
    Ok(Artifact {
        id: "serve_hetero",
        paper_claim: "beyond the paper: big/LITTLE heterogeneous serving — at equal total compute, speed-oblivious round-robin lets the tail form on the slow chips; throughput-weighted placement reclaims it",
        table,
        notes: vec![
            format!(
                "24 open-loop requests (Poisson 2000 req/s, Zipf lengths), tiny decoder, per-chip budget {:.1} KB; fleets hold total compute fixed (3 x 614.4 GMACs vs 2 x 614.4 + 2 x 307.2)",
                budget as f64 / KB
            ),
            format!(
                "mixed-fleet p95: round-robin {} vs weighted {} ({:.2}x); best homogeneous p95 {}",
                fmt_ms(mixed_p95.0),
                fmt_ms(mixed_p95.1),
                if mixed_p95.1 > 0.0 { mixed_p95.0 / mixed_p95.1 } else { f64::INFINITY },
                fmt_ms(homogeneous_p95)
            ),
        ],
    })
}

/// The `plan_capacity` workload: 32 open-loop requests at a rate that
/// overloads a single chip, so the SLO ladder genuinely forces fleet
/// growth. Seed-pinned like every artifact workload.
pub fn plan_capacity_workload() -> ArrivalTrace {
    let lengths = ZipfLengths {
        prompt_min: 8,
        prompt_max: 32,
        generate_min: 4,
        generate_max: 16,
        exponent: 1.1,
    };
    ArrivalTrace::open_loop(32, 50_000.0, &lengths, &mut StdRng::seed_from_u64(31337))
        .expect("workload parameters are valid")
}

/// The `plan_capacity` SLO ladder: p95 TTFT targets from tight to loose,
/// in milliseconds on the tiny decoder's microsecond-scale steps. The
/// tight point sits between the one-chip and two-chip p95 on the artifact
/// workload, so it genuinely forces fleet growth; the loose point is met
/// by a single chip.
pub const PLAN_CAPACITY_SLOS: [f64; 2] = [0.1, 0.2];

/// `plan_capacity`: the capacity planner sizing the minimal fleet for
/// each point of an SLO ladder, over a homogeneous big-chip palette and a
/// big/LITTLE mix. Every row re-asserts the planner's minimality contract
/// in the artifact itself: the chosen fleet meets the SLO and the
/// fleet-minus-one probe on its ladder misses it.
///
/// # Errors
///
/// Propagates engine, planner and serving errors.
///
/// # Panics
///
/// Panics if a plan violates the minimality contract, or if the tight SLO
/// point fails to require a larger fleet than the loose one — those are
/// the properties this artifact exists to demonstrate.
pub fn plan_capacity_artifact(_ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let model = presets::tiny_decoder();
    let trace = plan_capacity_workload();
    let mixes = [
        PaletteMix::new("big", vec![EngineConfig::zcu102(model.clone(), 12.0)]),
        PaletteMix::new(
            "big-little",
            vec![
                EngineConfig::zcu102(model.clone(), 12.0),
                EngineConfig::zcu102_little(model.clone(), 6.0),
            ],
        ),
    ];
    let mut table = Table::new([
        "slo_p95_ttft_ms",
        "mix",
        "chips",
        "fleet",
        "p95_ttft_ms",
        "margin_ms",
        "rejected_frac",
        "probes",
    ]);
    let mut chips_at = Vec::new(); // (slo, minimal chips across mixes)
    for slo_ms in PLAN_CAPACITY_SLOS {
        let slo = SloTarget { p95_ttft_ms: slo_ms, max_rejected_fraction: None };
        let planner =
            CapacityPlanner::new(ServeConfig::default().with_max_batch(2), slo).max_chips(8);
        let plan = planner.plan(&trace, &mixes)?;
        let mut min_chips = usize::MAX;
        for mix_plan in &plan.plans {
            assert!(
                mix_plan.p95_ttft_ms <= slo_ms,
                "plan for {} at SLO {slo_ms} ms misses it: p95 {} ms",
                mix_plan.mix,
                mix_plan.p95_ttft_ms
            );
            if mix_plan.chips > 1 {
                let below = mix_plan
                    .probes
                    .iter()
                    .find(|p| p.chips == mix_plan.chips - 1)
                    .expect("the ladder records the fleet-minus-one probe");
                assert!(
                    !below.meets_slo,
                    "fleet-minus-one ({} chips of {}) must miss SLO {slo_ms} ms",
                    below.chips, mix_plan.mix
                );
            }
            min_chips = min_chips.min(mix_plan.chips);
            table.row([
                format!("{slo_ms:.1}"),
                mix_plan.mix.clone(),
                mix_plan.chips.to_string(),
                mix_plan.fleet.join("+"),
                fmt_ms(mix_plan.p95_ttft_ms),
                fmt_ms(mix_plan.slo_margin_ms),
                format!("{:.2}", mix_plan.rejected_fraction),
                mix_plan.probes.len().to_string(),
            ]);
        }
        chips_at.push((slo_ms, min_chips));
    }
    let (tight, loose) = (chips_at[0].1, chips_at[chips_at.len() - 1].1);
    assert!(
        tight > loose,
        "the tight SLO point must need a larger fleet: {tight} chips !> {loose}"
    );
    Ok(Artifact {
        id: "plan_capacity",
        paper_claim: "beyond the paper: SLO-driven capacity planning — binary-search the minimal chip fleet whose simulated p95 TTFT meets each SLO point, with the fleet-minus-one probe pinning minimality",
        table,
        notes: vec![
            "32 open-loop requests (Poisson 50000 req/s, Zipf lengths), tiny decoder, batch cap 2, weighted placement; planner caps the search at 8 chips".to_string(),
            format!(
                "minimal fleet: {} chips at the {:.1} ms SLO vs {} at {:.1} ms — every row's ladder shows fleet-minus-one missing",
                tight,
                chips_at[0].0,
                loose,
                chips_at[chips_at.len() - 1].0
            ),
        ],
    })
}

/// The `serve_disagg` workload: 24 open-loop requests under *heavy*
/// Poisson load (150 req/s — arrivals far outpace service) with
/// decode-heavy Zipf lengths (every request generates at least 96
/// tokens), seed-pinned. Long mandatory generations under a contended KV
/// budget are what make phase placement matter: on a colocated chip every
/// resident decode holds its cache for hundreds of milliseconds, so
/// freshly arrived prompts block at admission and TTFT balloons; a
/// dedicated prefill pool releases each prompt's KV the moment it is
/// computed and drains arrivals as fast as it can prefill them, and the
/// decode pool pays for it in pace.
pub fn serve_disagg_workload() -> ArrivalTrace {
    let lengths = ZipfLengths {
        prompt_min: 32,
        prompt_max: 192,
        generate_min: 96,
        generate_max: 256,
        exponent: 1.1,
    };
    ArrivalTrace::open_loop(24, 150.0, &lengths, &mut StdRng::seed_from_u64(777))
        .expect("workload parameters are valid")
}

/// Runs the disaggregation workload on a 4-chip cluster.
/// `prefill_chips == 0` means colocated (the default phase placement);
/// otherwise chips `[0, prefill_chips)` prefill and the rest decode.
fn run_disagg(
    ctx: &ReproContext,
    trace: &ArrivalTrace,
    prefill_chips: usize,
    spec: Option<SpecDecode>,
) -> Result<DisaggReport, CoreError> {
    let model = presets::opt_125m();
    let engine = ctx.engine(Baseline::Meadow, &model, 12.0)?;
    // A contended per-chip KV budget (~2 resident peak caches) is what
    // makes phase placement matter: on a colocated chip admission blocks
    // while long decodes hold their KV, whereas prefill-only legs release
    // theirs the moment the prompt is computed.
    let single_max = trace
        .requests
        .iter()
        .map(|r| r.peak_kv_bytes(&model))
        .max()
        .expect("workload is non-empty");
    let mut serve_config = ServeConfig::default().with_budget(single_max).with_max_batch(2);
    if let Some(spec) = spec {
        serve_config = serve_config.with_speculation(spec);
    }
    let builder = ServeSpec::builder().chips(4).config(serve_config);
    let builder = if prefill_chips == 0 {
        builder.phases(Colocated)
    } else {
        builder.phases(PrefillDecodeSplit { prefill_chips })
    };
    let spec = builder.build().map_err(CoreError::from)?;
    Ok(spec.run(&engine, trace)?.into_disaggregated().expect("phase placement selects disagg"))
}

/// `serve_disagg`: prefill/decode disaggregation on a 4-chip cluster
/// under heavy Poisson load — colocated serving vs 1+3 and 2+2
/// prefill/decode splits (the TTFT / decode-pace trade-off, with the KV
/// handoff charged on the NoC), plus a speculative-decoding acceptance
/// sweep on the colocated baseline.
///
/// # Errors
///
/// Propagates engine, cluster-construction and serving errors.
pub fn serve_disagg_artifact(ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let trace = serve_disagg_workload();
    let spec = |acceptance: f64| SpecDecode { draft_len: 4, acceptance, draft_cost_ratio: 0.5 };
    let runs: [(&str, usize, Option<SpecDecode>); 6] = [
        ("colocated", 0, None),
        ("split-1+3", 1, None),
        ("split-2+2", 2, None),
        ("colocated", 0, Some(spec(1.0))),
        ("colocated", 0, Some(spec(0.8))),
        ("colocated", 0, Some(spec(0.5))),
    ];
    let mut table = Table::new([
        "mode",
        "spec_accept",
        "p50_ttft_ms",
        "p95_ttft_ms",
        "p50_tbt_ms",
        "p95_tbt_ms",
        "makespan_ms",
        "tok_per_s",
        "split_reqs",
        "handoff_mb",
        "noc_link_mb",
    ]);
    let mut colocated_ttft = 0.0f64;
    let mut colocated_pace = 0.0f64;
    let mut best_split_ttft = f64::INFINITY;
    let mut worst_split_pace = 0.0f64;
    for (mode, prefill_chips, spec) in runs {
        let report = run_disagg(ctx, &trace, prefill_chips, spec)?;
        if spec.is_none() {
            if prefill_chips == 0 {
                colocated_ttft = report.p95_ttft_ms;
                colocated_pace = report.p95_tbt_ms;
            } else {
                best_split_ttft = best_split_ttft.min(report.p95_ttft_ms);
                worst_split_pace = worst_split_pace.max(report.p95_tbt_ms);
            }
        }
        table.row([
            mode.to_string(),
            spec.map_or("off".to_string(), |s| format!("{:.1}", s.acceptance)),
            fmt_ms(report.p50_ttft_ms),
            fmt_ms(report.p95_ttft_ms),
            fmt_ms(report.p50_tbt_ms),
            fmt_ms(report.p95_tbt_ms),
            fmt_ms(report.makespan_ms),
            format!("{:.1}", report.tokens_per_sec),
            report.split_requests.to_string(),
            format!("{:.2}", report.handoff.handoff_bytes as f64 / MB),
            format!("{:.2}", report.handoff.noc_link_bytes as f64 / MB),
        ]);
    }
    Ok(Artifact {
        id: "serve_disagg",
        paper_claim: "beyond the paper: DistServe/Splitwise-style prefill-decode disaggregation — a dedicated prefill pool cuts tail TTFT under heavy load, paying for it in decode pace (KV handoff over the NoC plus a smaller decode pool)",
        table,
        notes: vec![
            "24 open-loop requests (Poisson 150 req/s, decode-heavy Zipf lengths), OPT-125M @ 12 Gbps, 4 chips, batch cap 2, per-chip KV budget = one peak cache".to_string(),
            format!(
                "p95 TTFT: colocated {:.1} ms vs best split {:.1} ms ({:.1}x); p95 decode pace: colocated {:.2} ms/tok vs worst split {:.2} ms/tok",
                colocated_ttft,
                best_split_ttft,
                if best_split_ttft > 0.0 { colocated_ttft / best_split_ttft } else { f64::INFINITY },
                colocated_pace,
                worst_split_pace
            ),
            "speculation rows: acceptance 1.0 reproduces the baseline bit-exactly; lower acceptance pays the draft-flush penalty in decode pace".to_string(),
        ],
    })
}

/// The `serve_scale` workload ladder: open-loop Poisson traces (fixed
/// seed, narrow Zipf lengths — the step-shape reuse the event core's
/// measurement memo exploits) at the given request count, plus the
/// contended serving configuration both scheduler cores run under.
fn serve_scale_setup(requests: usize) -> (ArrivalTrace, ServeConfig) {
    let model = presets::tiny_decoder();
    let lengths = ZipfLengths {
        prompt_min: 16,
        prompt_max: 32,
        generate_min: 4,
        generate_max: 16,
        exponent: 1.1,
    };
    let trace = ArrivalTrace::open_loop(
        requests,
        10_000.0,
        &lengths,
        &mut StdRng::seed_from_u64(1_000_000),
    )
    .expect("workload parameters are valid");
    let single_max = trace.requests.iter().map(|r| r.peak_kv_bytes(&model)).max().unwrap_or(0);
    // Overload: arrivals outpace service, so the backlog builds until the
    // tight TTFT SLO sheds it — admission, eviction and deadline shedding
    // all stay hot as the trace grows.
    let config = ServeConfig::default()
        .with_budget(8 * single_max)
        .with_policy(KvPolicy::Lru)
        .with_max_batch(8)
        .with_admission(AdmissionPolicy::RejectAfter { ttft_slo_ms: 5.0 });
    (trace, config)
}

/// `serve_scale`: the event-driven scheduler core against the per-tick
/// scan oracle on a growing open-loop trace — wall-clock per run, processed
/// events per second, and the speedup, with the two cores' reports checked
/// bit-identical at every size (the `SchedulerCore` contract, measured
/// rather than assumed).
///
/// Wall-clock columns vary run to run (this artifact measures the harness
/// itself, not the simulated chip), so it is not part of the CI smoke set.
///
/// # Errors
///
/// Propagates engine and serving errors.
///
/// # Panics
///
/// Panics if the two scheduler cores ever disagree on a report — that is
/// the contract this artifact exists to demonstrate.
pub fn serve_scale_artifact(ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let model = presets::tiny_decoder();
    let engine = ctx.engine(Baseline::Meadow, &model, 12.0)?;
    let mut table = Table::new([
        "requests",
        "ticks",
        "events",
        "tick_ms",
        "event_ms",
        "speedup",
        "events_per_s",
    ]);
    let mut top_speedup = 0.0f64;
    let mut top_events_per_s = 0.0f64;
    for requests in [500usize, 2_000, 8_000] {
        let (trace, config) = serve_scale_setup(requests);
        let run = |core| -> Result<(ServeReport, f64), CoreError> {
            let spec = ServeSpec::builder()
                .config(config)
                .scheduler(core)
                .build()
                .map_err(CoreError::from)?;
            let start = std::time::Instant::now();
            let report = spec.run(&engine, &trace)?.into_single().expect("one chip");
            Ok((report, start.elapsed().as_secs_f64() * 1e3))
        };
        let (tick_report, tick_ms) = run(SchedulerCore::Tick)?;
        let (event_report, event_ms) = run(SchedulerCore::Event)?;
        assert_eq!(event_report, tick_report, "scheduler cores diverged at {requests} requests");
        // Processed events: one admission event per request, one step
        // completion per scheduler iteration, one shed deadline per
        // rejection.
        let events = requests as u64 + event_report.ticks + event_report.rejected_requests;
        let speedup = if event_ms > 0.0 { tick_ms / event_ms } else { f64::INFINITY };
        let events_per_s = if event_ms > 0.0 { events as f64 / (event_ms / 1e3) } else { 0.0 };
        top_speedup = speedup;
        top_events_per_s = events_per_s;
        table.row([
            requests.to_string(),
            event_report.ticks.to_string(),
            events.to_string(),
            format!("{tick_ms:.1}"),
            format!("{event_ms:.1}"),
            format!("{speedup:.1}"),
            format!("{events_per_s:.0}"),
        ]);
    }
    Ok(Artifact {
        id: "serve_scale",
        paper_claim: "beyond the paper: event-driven serving core — jumping the clock between scheduler events (with memoized step measurement) replaces the per-tick scan, bit-identically",
        table,
        notes: vec![
            "open-loop Poisson arrivals (10k req/s overload, narrow Zipf lengths), tiny decoder @ 12 Gbps, batch cap 8, TTFT SLO 5 ms; both cores produce bit-identical reports at every size".to_string(),
            format!(
                "largest size: event core {top_speedup:.1}x faster than the tick scan, {top_events_per_s:.0} events/s"
            ),
        ],
    })
}

/// The `serve_coldstart` workload: one summarization-style request at
/// t=0 hitting a cold chip, then four chat-style requests arriving after
/// the weight load has drained, so they prefill against a warm chip.
/// The ladder compares request 0's TTFT across residency modes; the late
/// arrivals pin the warm class inside the same budgeted run.
pub fn serve_coldstart_workload() -> ArrivalTrace {
    ArrivalTrace::new(vec![
        ServeRequest::new(0, 0.0, 256, 48),
        ServeRequest::new(1, 150.0, 16, 64),
        ServeRequest::new(2, 160.0, 8, 48),
        ServeRequest::new(3, 175.0, 24, 56),
        ServeRequest::new(4, 190.0, 12, 64),
    ])
}

/// `serve_coldstart`: the cold-start TTFT ladder — a permanently-resident
/// chip vs a cold chip loading all weights up front vs a cold chip
/// streaming per-layer loads overlapped with compute (EdgeFlow-style:
/// cold TTFT ≈ max(load pipeline, compute pipeline) instead of their
/// sum). Streaming must land strictly between the other two rungs; the
/// run itself asserts the ladder, and `figs_serve` tests pin it in CI.
///
/// # Errors
///
/// Propagates engine and serving errors.
///
/// # Panics
///
/// Panics if the TTFT ladder inverts — that is the contract this
/// artifact exists to demonstrate.
pub fn serve_coldstart_artifact(ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let model = presets::opt_125m();
    let engine = ctx.engine(Baseline::Meadow, &model, 12.0)?;
    let trace = serve_coldstart_workload();
    let weight_budget = model.total_weight_bytes();
    let modes: [(&str, Option<bool>); 3] =
        [("resident", None), ("cold-sequential", Some(false)), ("cold-streaming", Some(true))];
    let mut table = Table::new([
        "mode",
        "cold_ttft_ms",
        "warm_p50_ttft_ms",
        "weight_mb",
        "weight_loads",
        "cold_requests",
    ]);
    let mut ladder = [0.0f64; 3];
    for (slot, (label, streaming)) in modes.into_iter().enumerate() {
        let mut config = ServeConfig::default().with_max_batch(4);
        if let Some(streaming) = streaming {
            config = config.with_weight_budget(weight_budget).with_weight_streaming(streaming);
        }
        let report = run_single(&engine, &trace, config)?;
        // Request 0 is the ladder rung; the late arrivals are the warm
        // class in every mode (the resident run is all-warm by definition).
        let cold_ttft = report.traces[0].ttft_ms();
        let mut warm: Vec<f64> = report.traces[1..].iter().map(|t| t.ttft_ms()).collect();
        warm.sort_by(f64::total_cmp);
        let warm_p50 = warm[warm.len() / 2];
        ladder[slot] = cold_ttft;
        let (loads, cold_requests) =
            report.weights.map_or((0, 0), |w| (w.weight_loads, w.cold_requests));
        if streaming.is_some() {
            let weights = report.weights.expect("budgeted runs attach a weight summary");
            assert_eq!(weights.cold_requests, 1, "only request 0 hits the cold chip");
            assert_eq!(weights.weight_bytes, weight_budget, "one full-model load");
        }
        table.row([
            label.to_string(),
            fmt_ms(cold_ttft),
            fmt_ms(warm_p50),
            format!("{:.1}", report.ledger.bytes(TrafficClass::Weights) as f64 / MB),
            loads.to_string(),
            cold_requests.to_string(),
        ]);
    }
    let [warm, sequential, streamed] = [ladder[0], ladder[1], ladder[2]];
    assert!(
        warm < streamed && streamed < sequential,
        "the cold-start ladder must order warm {warm} < streamed {streamed} < sequential \
         {sequential}"
    );
    Ok(Artifact {
        id: "serve_coldstart",
        paper_claim: "beyond the paper: EdgeFlow-style pipelined weight streaming — overlapping each layer's load with the previous layer's compute makes cold-start TTFT max(load, compute) instead of load + compute",
        table,
        notes: vec![
            format!(
                "OPT-125M @ 12 Gbps, {:.1} MB of weights; chips start cold when a weight budget is set, and prefill may begin once layer 0 lands",
                weight_budget as f64 / MB
            ),
            format!(
                "request 0 TTFT: resident {}, streaming-overlap {}, sequential load {} — overlap hides {:.1}% of the full-load stall",
                fmt_ms(warm),
                fmt_ms(streamed),
                fmt_ms(sequential),
                100.0 * (sequential - streamed) / (sequential - warm)
            ),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_artifact_generates() {
        let ctx = ReproContext::new();
        let artifact = serve_artifact(&ctx).unwrap();
        assert_eq!(artifact.id, "serve");
        // 2 policies × 3 budgets.
        assert_eq!(artifact.table.len(), 6);
        let csv = artifact.table.to_csv();
        assert!(csv.starts_with("policy,budget,"));
        assert!(csv.contains("Fifo") && csv.contains("Lru"));
    }

    #[test]
    fn serve_paged_artifact_generates() {
        let ctx = ReproContext::new();
        let artifact = serve_paged_artifact(&ctx).unwrap();
        assert_eq!(artifact.id, "serve_paged");
        // 2 policies × 2 admission modes.
        assert_eq!(artifact.table.len(), 4);
        let csv = artifact.table.to_csv();
        assert!(csv.starts_with("policy,admission,"));
        assert!(csv.contains("PagedLru") && csv.contains("queue"));
    }

    #[test]
    fn serve_kvcomp_artifact_generates() {
        let ctx = ReproContext::new();
        let artifact = serve_kvcomp_artifact(&ctx).unwrap();
        assert_eq!(artifact.id, "serve_kvcomp");
        // Dense oracle + 2 layouts + 4 keep ratios.
        assert_eq!(artifact.table.len(), 7);
        let csv = artifact.table.to_csv();
        assert!(csv.starts_with("layout,keep,"));
        assert!(csv.contains("dense") && csv.contains("gqa-4") && csv.contains("veda-0.50"));
    }

    /// Acceptance criterion: under the fixed dense-sized budget, VEDA
    /// compression with `keep_ratio < 1` occupies strictly fewer final KV
    /// bytes than the dense oracle and admits at least as many sessions
    /// (strictly more whenever the dense run rejects anyone), while
    /// `keep_ratio = 1.0` reproduces the dense run bit-exactly up to the
    /// attached KV summary.
    #[test]
    fn compression_relieves_the_fixed_budget_on_the_kvcomp_workload() {
        let ctx = ReproContext::new();
        let model = presets::opt_125m();
        let engine = ctx.engine(Baseline::Meadow, &model, 12.0).unwrap();
        let (trace, budget, max_batch) = serve_kvcomp_workload();
        let run = |layout, compression| {
            run_kvcomp(&engine, &trace, budget, max_batch, layout, compression).unwrap()
        };
        let dense = run(KvLayout::Dense, KvCompression::None);
        assert!(dense.rejected_requests > 0, "the dense oracle must be budget-bound");
        for keep_ratio in [0.75, 0.5, 0.25] {
            let compressed = run(KvLayout::Dense, KvCompression::VedaVote { keep_ratio });
            // More admitted sessions under the same budget (the sum of the
            // admitted traces' bytes is *not* comparable across the runs —
            // the compressed run completes sessions the dense one shed).
            assert!(
                compressed.rejected_requests < dense.rejected_requests,
                "keep {keep_ratio}: rejected {} !< dense {}",
                compressed.rejected_requests,
                dense.rejected_requests
            );
            // Strictly fewer bytes than the dense accounting of the *same*
            // admitted sessions.
            let kv = compressed.kv.expect("compressed run attaches a KV summary");
            assert!(
                kv.final_kv_bytes < kv.dense_final_kv_bytes,
                "keep {keep_ratio}: compressed bytes {} !< dense accounting {}",
                kv.final_kv_bytes,
                kv.dense_final_kv_bytes
            );
            assert!(kv.retained_attention_mass < 1.0);
            assert!(kv.retained_attention_mass >= keep_ratio * (1.0 - 1e-9));
        }
        // keep_ratio = 1.0 is the degeneracy point: identical scheduling,
        // identical bytes, only the (informational) KV summary differs.
        let mut unit = run(KvLayout::Dense, KvCompression::VedaVote { keep_ratio: 1.0 });
        let kv = unit.kv.take().expect("non-dense config attaches a KV summary");
        assert_eq!(kv.retained_attention_mass, 1.0);
        assert_eq!(kv.final_kv_bytes, kv.dense_final_kv_bytes);
        assert_eq!(unit, dense);
    }

    #[test]
    fn serve_cluster_artifact_generates() {
        let ctx = ReproContext::new();
        let artifact = serve_cluster_artifact(&ctx).unwrap();
        assert_eq!(artifact.id, "serve_cluster");
        assert_eq!(artifact.table.len(), 6);
        let csv = artifact.table.to_csv();
        assert!(csv.starts_with("chips,placement,"));
        assert!(csv.contains("least-loaded-kv") && csv.contains("session-affinity"));
    }

    /// Acceptance criterion: sharding the pool across 4 chips relieves the
    /// per-chip budget (lower tail latency than one chip under the same
    /// budget), and under sticky-affinity placement NoC migration strictly
    /// reduces the DRAM KV spill.
    #[test]
    fn sharding_and_migration_pay_off_on_the_cluster_workload() {
        let ctx = ReproContext::new();
        let (trace, budget) = serve_cluster_workload();
        let single = run_cluster(&ctx, &trace, budget, 1, "round-robin", false).unwrap();
        let sharded = run_cluster(&ctx, &trace, budget, 4, "least-loaded-kv", false).unwrap();
        assert!(
            sharded.p95_latency_ms < single.p95_latency_ms,
            "sharded p95 {} !< single-chip p95 {}",
            sharded.p95_latency_ms,
            single.p95_latency_ms
        );
        let sticky = run_cluster(&ctx, &trace, budget, 4, "session-affinity", false).unwrap();
        let migrated = run_cluster(&ctx, &trace, budget, 4, "session-affinity", true).unwrap();
        assert!(sticky.dram_kv_bytes > 0, "the workload must spill under affinity skew");
        assert!(migrated.migrated_out_bytes > 0, "migration must fire");
        assert!(
            migrated.dram_kv_bytes < sticky.dram_kv_bytes,
            "migration spill {} !< no-migration spill {}",
            migrated.dram_kv_bytes,
            sticky.dram_kv_bytes
        );
        // Both serve every token either way.
        assert_eq!(migrated.total_generated_tokens, sticky.total_generated_tokens);
    }

    #[test]
    fn serve_hetero_artifact_generates() {
        let ctx = ReproContext::new();
        let artifact = serve_hetero_artifact(&ctx).unwrap();
        assert_eq!(artifact.id, "serve_hetero");
        // 2 fleets × 2 placements.
        assert_eq!(artifact.table.len(), 4);
        let csv = artifact.table.to_csv();
        assert!(csv.starts_with("fleet,placement,"));
        assert!(csv.contains("2big+2little") && csv.contains("least-loaded-weighted"));
    }

    /// Acceptance criterion: on the mixed big/LITTLE fleet,
    /// throughput-weighted placement strictly beats speed-oblivious
    /// round-robin on p95 latency, and both runs serve every token.
    #[test]
    fn weighted_placement_beats_round_robin_on_the_mixed_fleet() {
        let ctx = ReproContext::new();
        let (trace, budget) = serve_hetero_workload();
        let (_, mixed) = serve_hetero_fleets();
        let oblivious = run_hetero(&ctx, &trace, budget, &mixed, "round-robin").unwrap();
        let weighted = run_hetero(&ctx, &trace, budget, &mixed, "least-loaded-weighted").unwrap();
        assert!(
            weighted.p95_latency_ms < oblivious.p95_latency_ms,
            "weighted p95 {} !< round-robin p95 {}",
            weighted.p95_latency_ms,
            oblivious.p95_latency_ms
        );
        assert_eq!(weighted.total_generated_tokens, oblivious.total_generated_tokens);
        // The hetero path reports per-chip utilization.
        for report in [&oblivious, &weighted] {
            for chip in &report.per_chip {
                let util = chip.utilization.expect("hetero runs attach utilization");
                assert!((0.0..=1.0).contains(&util));
            }
        }
    }

    #[test]
    fn plan_capacity_artifact_generates() {
        let ctx = ReproContext::new();
        let artifact = plan_capacity_artifact(&ctx).unwrap();
        assert_eq!(artifact.id, "plan_capacity");
        // 2 SLO points × 2 palette mixes.
        assert_eq!(artifact.table.len(), 4);
        let csv = artifact.table.to_csv();
        assert!(csv.starts_with("slo_p95_ttft_ms,mix,"));
        assert!(csv.contains("big-little") && csv.contains("96pe@12gbps"));
    }

    /// Acceptance criterion: at the artifact's tight SLO point the planner
    /// needs more than one chip, the chosen fleet meets the SLO, and the
    /// ladder's fleet-minus-one probe misses it.
    #[test]
    fn capacity_plan_is_minimal_at_the_tight_slo() {
        let trace = plan_capacity_workload();
        let slo = SloTarget { p95_ttft_ms: PLAN_CAPACITY_SLOS[0], max_rejected_fraction: None };
        let planner =
            CapacityPlanner::new(ServeConfig::default().with_max_batch(2), slo).max_chips(8);
        let mixes =
            [PaletteMix::new("big", vec![EngineConfig::zcu102(presets::tiny_decoder(), 12.0)])];
        let plan = planner.plan(&trace, &mixes).unwrap();
        let result = &plan.plans[0];
        assert!(result.chips > 1, "the tight SLO must force fleet growth");
        assert!(result.p95_ttft_ms <= PLAN_CAPACITY_SLOS[0]);
        let below = result.probes.iter().find(|p| p.chips == result.chips - 1).unwrap();
        assert!(!below.meets_slo, "fleet-minus-one must miss the SLO");
    }

    #[test]
    fn serve_disagg_artifact_generates() {
        let ctx = ReproContext::new();
        let artifact = serve_disagg_artifact(&ctx).unwrap();
        assert_eq!(artifact.id, "serve_disagg");
        assert_eq!(artifact.table.len(), 6);
        let csv = artifact.table.to_csv();
        assert!(csv.starts_with("mode,spec_accept,"));
        assert!(csv.contains("split-1+3") && csv.contains("split-2+2"));
    }

    /// Acceptance criterion: on the heavy-load workload, disaggregation
    /// trades decode pace for TTFT — the split's p95 TTFT beats colocated
    /// serving, while its p95 wall-clock decode pace (handoff plus a
    /// smaller decode pool) is strictly worse.
    #[test]
    fn disaggregation_trades_decode_pace_for_ttft() {
        let ctx = ReproContext::new();
        let trace = serve_disagg_workload();
        let colocated = run_disagg(&ctx, &trace, 0, None).unwrap();
        let split = run_disagg(&ctx, &trace, 2, None).unwrap();
        assert_eq!(split.split_requests as usize, trace.requests.len());
        assert!(split.handoff.handoff_bytes > 0);
        assert!(
            split.p95_ttft_ms < colocated.p95_ttft_ms,
            "split p95 TTFT {} !< colocated {}",
            split.p95_ttft_ms,
            colocated.p95_ttft_ms
        );
        assert!(
            split.p95_tbt_ms > colocated.p95_tbt_ms,
            "split p95 decode pace {} !> colocated {}",
            split.p95_tbt_ms,
            colocated.p95_tbt_ms
        );
        // Both serve every token either way.
        assert_eq!(split.total_generated_tokens, colocated.total_generated_tokens);
    }

    /// Acceptance criterion: speculation with acceptance 1.0 reproduces
    /// the baseline bit-exactly on the artifact workload, and dropping
    /// acceptance only slows the run down.
    #[test]
    fn speculation_sweep_behaves_on_the_artifact_workload() {
        let ctx = ReproContext::new();
        let trace = serve_disagg_workload();
        let spec = |acceptance: f64| SpecDecode { draft_len: 4, acceptance, draft_cost_ratio: 0.5 };
        let baseline = run_disagg(&ctx, &trace, 0, None).unwrap();
        let accepted = run_disagg(&ctx, &trace, 0, Some(spec(1.0))).unwrap();
        assert_eq!(accepted, baseline);
        let mut prev = baseline.makespan_ms;
        for acceptance in [0.8, 0.5] {
            let report = run_disagg(&ctx, &trace, 0, Some(spec(acceptance))).unwrap();
            assert!(
                report.makespan_ms >= prev,
                "acceptance {acceptance} makespan {} regressed below {prev}",
                report.makespan_ms
            );
            prev = report.makespan_ms;
        }
    }

    /// Acceptance criterion: both scheduler cores produce bit-identical
    /// reports on a small slice of the `serve_scale` workload, and the
    /// processed-events accounting the artifact reports is consistent.
    /// (The full artifact's 8k-request tick run is release-binary scale,
    /// so the test pins the contract on a 200-request slice instead.)
    #[test]
    fn scheduler_cores_agree_on_the_scale_workload() {
        let ctx = ReproContext::new();
        let engine = ctx.engine(Baseline::Meadow, &presets::tiny_decoder(), 12.0).unwrap();
        let (trace, config) = serve_scale_setup(200);
        let run = |core| {
            ServeSpec::builder()
                .config(config)
                .scheduler(core)
                .build()
                .unwrap()
                .run(&engine, &trace)
                .unwrap()
                .into_single()
                .unwrap()
        };
        let tick = run(SchedulerCore::Tick);
        let event = run(SchedulerCore::Event);
        assert_eq!(event, tick);
        assert!(event.ticks > 0);
        assert!(event.total_evictions > 0, "the budget must churn under overload");
    }

    #[test]
    fn serve_coldstart_artifact_generates() {
        let ctx = ReproContext::new();
        let artifact = serve_coldstart_artifact(&ctx).unwrap();
        assert_eq!(artifact.id, "serve_coldstart");
        // Resident, cold-sequential, cold-streaming.
        assert_eq!(artifact.table.len(), 3);
        let csv = artifact.table.to_csv();
        assert!(csv.starts_with("mode,cold_ttft_ms,"));
        assert!(csv.contains("resident") && csv.contains("cold-streaming"));
    }

    /// Acceptance criterion: on the `serve_coldstart` workload, the
    /// streaming-overlap cold TTFT lands strictly between the warm
    /// (permanently resident) TTFT and the sequential-load cold TTFT, and
    /// both cold modes move identical weight bytes — overlap hides
    /// latency, it never skips traffic.
    #[test]
    fn streaming_overlap_lands_strictly_inside_the_coldstart_ladder() {
        let ctx = ReproContext::new();
        let model = presets::opt_125m();
        let engine = ctx.engine(Baseline::Meadow, &model, 12.0).unwrap();
        let trace = serve_coldstart_workload();
        let budget =
            ServeConfig::default().with_max_batch(4).with_weight_budget(model.total_weight_bytes());
        let warm = run_single(&engine, &trace, ServeConfig::default().with_max_batch(4)).unwrap();
        let sequential = run_single(&engine, &trace, budget).unwrap();
        let streamed = run_single(&engine, &trace, budget.with_weight_streaming(true)).unwrap();
        let (w, s, q) = (
            warm.traces[0].ttft_ms(),
            streamed.traces[0].ttft_ms(),
            sequential.traces[0].ttft_ms(),
        );
        assert!(w < s, "streamed cold TTFT {s} must exceed warm {w}");
        assert!(s < q, "streamed cold TTFT {s} must undercut sequential {q}");
        assert_eq!(
            streamed.ledger.bytes(TrafficClass::Weights),
            sequential.ledger.bytes(TrafficClass::Weights)
        );
        // The late arrivals land warm in both budgeted modes.
        assert_eq!(streamed.weights.unwrap().cold_requests, 1);
        assert_eq!(sequential.weights.unwrap().cold_requests, 1);
    }

    /// Acceptance criterion: on the `serve_paged` workload, page-granular
    /// eviction moves strictly fewer `TrafficClass::KvCache` bytes than
    /// whole-cache spill under the same constrained budget.
    #[test]
    fn paged_undercuts_whole_cache_on_the_artifact_workload() {
        let model = presets::opt_125m();
        let ctx = ReproContext::new();
        let engine = ctx.engine(Baseline::Meadow, &model, 12.0).unwrap();
        let (trace, budget, max_batch) = serve_paged_workload();
        let base = ServeConfig::default().with_budget(budget).with_max_batch(max_batch);
        let whole = run_single(&engine, &trace, base.with_policy(KvPolicy::Lru)).unwrap();
        let paged = run_single(
            &engine,
            &trace,
            base.with_policy(KvPolicy::PagedLru).with_page_bytes(64 << 10),
        )
        .unwrap();
        assert!(whole.total_evictions > 0, "the workload must exercise eviction");
        assert!(paged.total_page_spills > 0);
        let (w, p) =
            (whole.ledger.bytes(TrafficClass::KvCache), paged.ledger.bytes(TrafficClass::KvCache));
        assert!(p < w, "paged migration {p} must undercut whole-cache {w}");
    }
}
