//! Serving artifacts: multi-session continuous batching on the ZCU102
//! under KV-cache budgets — `serve` (whole-cache FIFO/LRU budget sweep)
//! and `serve_paged` (paged vs whole-cache eviction on an open-loop
//! Poisson/Zipf workload, with SLO-aware admission). Not paper figures;
//! see the ROADMAP's serving north star.

use crate::{Artifact, ReproContext};
use meadow_core::baselines::Baseline;
use meadow_core::report::{fmt_ms, Table};
use meadow_core::serve::{serve, AdmissionPolicy, KvPolicy, ServeConfig};
use meadow_core::CoreError;
use meadow_models::presets;
use meadow_models::workload::{ArrivalTrace, ServeRequest, ZipfLengths};
use meadow_sim::TrafficClass;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MB: f64 = (1 << 20) as f64;
const KB: f64 = 1024.0;

/// The artifact's fixed 8-request trace: staggered arrivals on the scale of
/// OPT-125M decode steps (several ms), mixing summarization-style requests
/// (long prompt, short generation) with chat-style ones (short prompt, long
/// generation — cheap to admit, but their KV caches grow several MB while
/// resident, which is what forces evictions under a tight budget).
fn arrival_trace() -> ArrivalTrace {
    ArrivalTrace::new(vec![
        ServeRequest::new(0, 0.0, 256, 48),
        ServeRequest::new(1, 0.0, 16, 256),
        ServeRequest::new(2, 10.0, 8, 192),
        ServeRequest::new(3, 15.0, 256, 32),
        ServeRequest::new(4, 20.0, 24, 224),
        ServeRequest::new(5, 40.0, 96, 96),
        ServeRequest::new(6, 60.0, 12, 256),
        ServeRequest::new(7, 90.0, 224, 64),
    ])
}

/// `serve`: p50/p95 latency, throughput, evictions and KV migration traffic
/// for FIFO vs LRU across KV budgets (unbounded / fit-all / constrained).
///
/// # Errors
///
/// Propagates engine and serving errors.
pub fn serve_artifact(ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let model = presets::opt_125m();
    let engine = ctx.engine(Baseline::Meadow, &model, 12.0)?;
    let trace = arrival_trace();
    let total_peak = trace.total_peak_kv_bytes(&model);
    let single_max = trace.requests.iter().map(|r| r.peak_kv_bytes(&model)).max().unwrap_or(0);
    // A third of total demand (but always one full session) forces the
    // scheduler to juggle residency.
    let constrained = (total_peak / 3).max(single_max);
    let budgets: [(&str, Option<u64>); 3] =
        [("unbounded", None), ("fit-all", Some(total_peak)), ("constrained", Some(constrained))];
    let mut table = Table::new([
        "policy",
        "budget",
        "budget_mb",
        "p50_ms",
        "p95_ms",
        "tok_per_s",
        "evictions",
        "peak_kv_mb",
        "kv_migration_mb",
    ]);
    let mut constrained_evictions = 0u64;
    let mut unbounded_tps = 0.0f64;
    for policy in [KvPolicy::Fifo, KvPolicy::Lru] {
        for (label, budget) in budgets {
            let mut config = ServeConfig::default().with_policy(policy).with_max_batch(4);
            config.kv_budget_bytes = budget;
            let report = serve(&engine, &trace, &config)?;
            if label == "constrained" {
                constrained_evictions += report.total_evictions;
            }
            if label == "unbounded" {
                unbounded_tps = report.tokens_per_sec;
            }
            table.row([
                format!("{policy:?}"),
                label.to_string(),
                budget.map_or("inf".to_string(), |b| format!("{:.1}", b as f64 / MB)),
                fmt_ms(report.p50_latency_ms),
                fmt_ms(report.p95_latency_ms),
                format!("{:.1}", report.tokens_per_sec),
                report.total_evictions.to_string(),
                format!("{:.2}", report.peak_kv_bytes as f64 / MB),
                format!("{:.2}", report.ledger.bytes(TrafficClass::KvCache) as f64 / MB),
            ]);
        }
    }
    Ok(Artifact {
        id: "serve",
        paper_claim: "beyond the paper: VEDA/EdgeFlow-style multi-request serving — KV residency is the binding constraint on a fixed edge memory budget",
        table,
        notes: vec![
            format!(
                "8 requests, OPT-125M @ 12 Gbps, batch cap 4; constrained budget {:.1} MB of {:.1} MB total demand",
                constrained as f64 / MB,
                total_peak as f64 / MB
            ),
            format!(
                "unbounded-budget throughput {unbounded_tps:.1} tok/s; constrained run evicts {constrained_evictions} times (FIFO+LRU)"
            ),
        ],
    })
}

/// The `serve_paged` workload: an open-loop trace of 16 requests at 40
/// req/s with Zipf-distributed lengths (mostly short chats, a heavy tail
/// of long prompts/completions), seed-pinned so the artifact and its
/// acceptance test reproduce byte-for-byte. Returns the trace plus the
/// constrained budget and batch cap the comparison runs under.
pub fn serve_paged_workload() -> (ArrivalTrace, u64, usize) {
    let model = presets::opt_125m();
    let lengths = ZipfLengths {
        prompt_min: 16,
        prompt_max: 256,
        generate_min: 16,
        generate_max: 192,
        exponent: 1.1,
    };
    let trace = ArrivalTrace::open_loop(16, 40.0, &lengths, &mut StdRng::seed_from_u64(2025))
        .expect("workload parameters are valid");
    let total_peak = trace.total_peak_kv_bytes(&model);
    let single_max = trace.requests.iter().map(|r| r.peak_kv_bytes(&model)).max().unwrap_or(0);
    // Two fifths of total demand (but always one full session) and a
    // tight batch cap: deep enough contention that both policies must
    // evict repeatedly, with enough idle residency that partial spills
    // pay off.
    let budget = (2 * total_peak / 5).max(single_max);
    (trace, budget, 2)
}

/// `serve_paged`: page-granular vs whole-cache eviction on the open-loop
/// workload — migration traffic, page-fault counts, fragmentation and
/// SLO-rejection behavior across admission policies.
///
/// # Errors
///
/// Propagates engine and serving errors.
pub fn serve_paged_artifact(ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let model = presets::opt_125m();
    let engine = ctx.engine(Baseline::Meadow, &model, 12.0)?;
    let (trace, budget, max_batch) = serve_paged_workload();
    let page_bytes = 64 << 10;
    let slo_ms = 400.0;
    let mut table = Table::new([
        "policy",
        "admission",
        "budget_mb",
        "p50_ms",
        "p95_ms",
        "tok_per_s",
        "evictions",
        "page_spills",
        "page_faults",
        "rejected",
        "kv_migration_mb",
        "frag_peak_kb",
    ]);
    let mut whole_migration = 0u64;
    let mut paged_migration = 0u64;
    for policy in [KvPolicy::Lru, KvPolicy::PagedLru] {
        for admission in
            [AdmissionPolicy::Queue, AdmissionPolicy::RejectAfter { ttft_slo_ms: slo_ms }]
        {
            let config = ServeConfig::default()
                .with_budget(budget)
                .with_policy(policy)
                .with_page_bytes(page_bytes)
                .with_max_batch(max_batch)
                .with_admission(admission);
            let report = serve(&engine, &trace, &config)?;
            if admission == AdmissionPolicy::Queue {
                match policy {
                    KvPolicy::PagedLru => {
                        paged_migration = report.ledger.bytes(TrafficClass::KvCache)
                    }
                    _ => whole_migration = report.ledger.bytes(TrafficClass::KvCache),
                }
            }
            table.row([
                format!("{policy:?}"),
                match admission {
                    AdmissionPolicy::Queue => "queue".to_string(),
                    AdmissionPolicy::RejectAfter { .. } => format!("slo{slo_ms:.0}ms"),
                },
                format!("{:.1}", budget as f64 / MB),
                fmt_ms(report.p50_latency_ms),
                fmt_ms(report.p95_latency_ms),
                format!("{:.1}", report.tokens_per_sec),
                report.total_evictions.to_string(),
                report.total_page_spills.to_string(),
                report.total_page_faults.to_string(),
                report.rejected_requests.to_string(),
                format!("{:.2}", report.ledger.bytes(TrafficClass::KvCache) as f64 / MB),
                format!("{:.1}", report.kv_frag_peak_bytes as f64 / KB),
            ]);
        }
    }
    Ok(Artifact {
        id: "serve_paged",
        paper_claim: "beyond the paper: vLLM/VEDA-style paged KV allocation — page-granular eviction moves less DRAM traffic than whole-cache spill under the same budget",
        table,
        notes: vec![
            format!(
                "16 open-loop requests (Poisson 40 req/s, Zipf lengths), OPT-125M @ 12 Gbps, batch cap {max_batch}, {} KiB pages",
                page_bytes >> 10
            ),
            format!(
                "KV migration under the queueing admission: whole-cache {:.2} MB vs paged {:.2} MB ({:.1}x less)",
                whole_migration as f64 / MB,
                paged_migration as f64 / MB,
                if paged_migration > 0 {
                    whole_migration as f64 / paged_migration as f64
                } else {
                    f64::INFINITY
                }
            ),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_artifact_generates() {
        let ctx = ReproContext::new();
        let artifact = serve_artifact(&ctx).unwrap();
        assert_eq!(artifact.id, "serve");
        // 2 policies × 3 budgets.
        assert_eq!(artifact.table.len(), 6);
        let csv = artifact.table.to_csv();
        assert!(csv.starts_with("policy,budget,"));
        assert!(csv.contains("Fifo") && csv.contains("Lru"));
    }

    #[test]
    fn serve_paged_artifact_generates() {
        let ctx = ReproContext::new();
        let artifact = serve_paged_artifact(&ctx).unwrap();
        assert_eq!(artifact.id, "serve_paged");
        // 2 policies × 2 admission modes.
        assert_eq!(artifact.table.len(), 4);
        let csv = artifact.table.to_csv();
        assert!(csv.starts_with("policy,admission,"));
        assert!(csv.contains("PagedLru") && csv.contains("queue"));
    }

    /// Acceptance criterion: on the `serve_paged` workload, page-granular
    /// eviction moves strictly fewer `TrafficClass::KvCache` bytes than
    /// whole-cache spill under the same constrained budget.
    #[test]
    fn paged_undercuts_whole_cache_on_the_artifact_workload() {
        let model = presets::opt_125m();
        let ctx = ReproContext::new();
        let engine = ctx.engine(Baseline::Meadow, &model, 12.0).unwrap();
        let (trace, budget, max_batch) = serve_paged_workload();
        let base = ServeConfig::default().with_budget(budget).with_max_batch(max_batch);
        let whole = serve(&engine, &trace, &base.with_policy(KvPolicy::Lru)).unwrap();
        let paged =
            serve(&engine, &trace, &base.with_policy(KvPolicy::PagedLru).with_page_bytes(64 << 10))
                .unwrap();
        assert!(whole.total_evictions > 0, "the workload must exercise eviction");
        assert!(paged.total_page_spills > 0);
        let (w, p) =
            (whole.ledger.bytes(TrafficClass::KvCache), paged.ledger.bytes(TrafficClass::KvCache));
        assert!(p < w, "paged migration {p} must undercut whole-cache {w}");
    }
}
