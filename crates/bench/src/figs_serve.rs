//! Serving artifact: multi-session continuous batching on the ZCU102 under
//! KV-cache budgets — the first multi-tenant scenario in the reproduction
//! (not a paper figure; see the ROADMAP's serving north star).

use crate::{Artifact, ReproContext};
use meadow_core::baselines::Baseline;
use meadow_core::report::{fmt_ms, Table};
use meadow_core::serve::{serve, KvPolicy, ServeConfig};
use meadow_core::CoreError;
use meadow_models::presets;
use meadow_models::workload::{ArrivalTrace, ServeRequest};
use meadow_sim::TrafficClass;

const MB: f64 = (1 << 20) as f64;

/// The artifact's fixed 8-request trace: staggered arrivals on the scale of
/// OPT-125M decode steps (several ms), mixing summarization-style requests
/// (long prompt, short generation) with chat-style ones (short prompt, long
/// generation — cheap to admit, but their KV caches grow several MB while
/// resident, which is what forces evictions under a tight budget).
fn arrival_trace() -> ArrivalTrace {
    ArrivalTrace::new(vec![
        ServeRequest::new(0, 0.0, 256, 48),
        ServeRequest::new(1, 0.0, 16, 256),
        ServeRequest::new(2, 10.0, 8, 192),
        ServeRequest::new(3, 15.0, 256, 32),
        ServeRequest::new(4, 20.0, 24, 224),
        ServeRequest::new(5, 40.0, 96, 96),
        ServeRequest::new(6, 60.0, 12, 256),
        ServeRequest::new(7, 90.0, 224, 64),
    ])
}

/// `serve`: p50/p95 latency, throughput, evictions and KV migration traffic
/// for FIFO vs LRU across KV budgets (unbounded / fit-all / constrained).
///
/// # Errors
///
/// Propagates engine and serving errors.
pub fn serve_artifact(ctx: &ReproContext) -> Result<Artifact, CoreError> {
    let model = presets::opt_125m();
    let engine = ctx.engine(Baseline::Meadow, &model, 12.0)?;
    let trace = arrival_trace();
    let total_peak = trace.total_peak_kv_bytes(&model);
    let single_max = trace.requests.iter().map(|r| r.peak_kv_bytes(&model)).max().unwrap_or(0);
    // A third of total demand (but always one full session) forces the
    // scheduler to juggle residency.
    let constrained = (total_peak / 3).max(single_max);
    let budgets: [(&str, Option<u64>); 3] =
        [("unbounded", None), ("fit-all", Some(total_peak)), ("constrained", Some(constrained))];
    let mut table = Table::new([
        "policy",
        "budget",
        "budget_mb",
        "p50_ms",
        "p95_ms",
        "tok_per_s",
        "evictions",
        "peak_kv_mb",
        "kv_migration_mb",
    ]);
    let mut constrained_evictions = 0u64;
    let mut unbounded_tps = 0.0f64;
    for policy in [KvPolicy::Fifo, KvPolicy::Lru] {
        for (label, budget) in budgets {
            let mut config = ServeConfig::default().with_policy(policy).with_max_batch(4);
            config.kv_budget_bytes = budget;
            let report = serve(&engine, &trace, &config)?;
            if label == "constrained" {
                constrained_evictions += report.total_evictions;
            }
            if label == "unbounded" {
                unbounded_tps = report.tokens_per_sec;
            }
            table.row([
                format!("{policy:?}"),
                label.to_string(),
                budget.map_or("inf".to_string(), |b| format!("{:.1}", b as f64 / MB)),
                fmt_ms(report.p50_latency_ms),
                fmt_ms(report.p95_latency_ms),
                format!("{:.1}", report.tokens_per_sec),
                report.total_evictions.to_string(),
                format!("{:.2}", report.peak_kv_bytes as f64 / MB),
                format!("{:.2}", report.ledger.bytes(TrafficClass::KvCache) as f64 / MB),
            ]);
        }
    }
    Ok(Artifact {
        id: "serve",
        paper_claim: "beyond the paper: VEDA/EdgeFlow-style multi-request serving — KV residency is the binding constraint on a fixed edge memory budget",
        table,
        notes: vec![
            format!(
                "8 requests, OPT-125M @ 12 Gbps, batch cap 4; constrained budget {:.1} MB of {:.1} MB total demand",
                constrained as f64 / MB,
                total_peak as f64 / MB
            ),
            format!(
                "unbounded-budget throughput {unbounded_tps:.1} tok/s; constrained run evicts {constrained_evictions} times (FIFO+LRU)"
            ),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_artifact_generates() {
        let ctx = ReproContext::new();
        let artifact = serve_artifact(&ctx).unwrap();
        assert_eq!(artifact.id, "serve");
        // 2 policies × 3 budgets.
        assert_eq!(artifact.table.len(), 6);
        let csv = artifact.table.to_csv();
        assert!(csv.starts_with("policy,budget,"));
        assert!(csv.contains("Fifo") && csv.contains("Lru"));
    }
}
