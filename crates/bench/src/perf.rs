//! Structured wall-clock performance harness with machine-readable output.
//!
//! The Criterion harnesses under `benches/` are for interactive
//! exploration; this module is the *regression* surface. It times the
//! workspace's hot paths — tiled INT8 GEMM, packing chunk decomposition,
//! the functional batch forward, the continuous-batching serving
//! simulator (whole-cache and paged eviction), the multi-model
//! weight-churn serve, the multi-chip cluster serve, the heterogeneous
//! big/LITTLE cluster serve and the disaggregated
//! two-stage serve — serial vs parallel,
//! with warmup and a fixed number of trials, and reports
//! median/p95/min/mean per variant as a
//! schema-versioned [`BenchReport`] that serializes to `BENCH_<id>.json`.
//!
//! CI runs the `perfbench` binary on every push, uploads the JSON as an
//! artifact, and gates on [`find_ratio_regressions`] against the committed
//! `bench/baseline.json`: the serial-vs-parallel *ratio* per case is
//! machine-normalized, so the gate works even when the baseline was
//! recorded on different hardware than the CI runner. The absolute
//! [`find_regressions`] gate remains available via `perfbench --gate
//! absolute` for same-machine comparisons.

use meadow_core::cluster::{
    LeastLoadedKv, LeastLoadedWeighted, PrefillDecodeSplit, SessionAffinity, ToLeastLoaded,
};
use meadow_core::serve::{AdmissionPolicy, KvPolicy, SchedulerCore, ServeConfig, SpecDecode};
use meadow_core::spec::ServeSpec;
use meadow_core::{EngineConfig, MeadowEngine};
use meadow_dataflow::forward::{batch_model_forward, model_forward, ForwardMode, ForwardScales};
use meadow_models::presets;
use meadow_models::weights::ModelWeights;
use meadow_models::workload::ArrivalTrace;
use meadow_models::workload::ZipfLengths;
use meadow_models::KvCompression;
use meadow_packing::chunk::{decompose, decompose_with, ChunkConfig};
use meadow_tensor::fixed::ExpLut;
use meadow_tensor::gemm::{matmul_i8_tiled, matmul_i8_tiled_with};
use meadow_tensor::parallel::ExecConfig;
use meadow_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Version stamped into every [`BenchReport`]. Bump when the JSON layout
/// changes incompatibly so `--compare` can refuse mismatched files.
pub const SCHEMA_VERSION: u32 = 1;

/// Knobs for one harness run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfOptions {
    /// Worker threads for the parallel variants.
    pub threads: usize,
    /// Untimed warmup iterations per variant.
    pub warmup: usize,
    /// Timed trials per variant (median/p95 computed over these).
    pub trials: usize,
    /// Shrink problem sizes for CI smoke runs and tests.
    pub quick: bool,
}

impl Default for PerfOptions {
    fn default() -> Self {
        Self { threads: ExecConfig::from_env().threads(), warmup: 3, trials: 10, quick: false }
    }
}

/// Wall-clock statistics over the trials of one variant, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingStats {
    /// Median trial time.
    pub median_ms: f64,
    /// 95th-percentile trial time (the regression gate ignores this, but
    /// it makes noisy runs visible in the artifact).
    pub p95_ms: f64,
    /// Fastest trial.
    pub min_ms: f64,
    /// Mean trial time.
    pub mean_ms: f64,
}

/// Runs `f` for `warmup` untimed and `trials` timed iterations.
pub fn time_trials<F: FnMut()>(warmup: usize, trials: usize, mut f: F) -> TimingStats {
    for _ in 0..warmup {
        f();
    }
    let trials = trials.max(1);
    let mut samples_ms: Vec<f64> = (0..trials)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples_ms.sort_by(|a, b| a.partial_cmp(b).expect("trial time is never NaN"));
    let idx = |q: f64| ((samples_ms.len() as f64 * q).ceil() as usize).clamp(1, samples_ms.len());
    TimingStats {
        median_ms: samples_ms[idx(0.5) - 1],
        p95_ms: samples_ms[idx(0.95) - 1],
        min_ms: samples_ms[0],
        mean_ms: samples_ms.iter().sum::<f64>() / samples_ms.len() as f64,
    }
}

/// Serial-vs-parallel timings of one hot path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchCase {
    /// Hot-path identifier (stable across runs; the compare key).
    pub name: String,
    /// Single-threaded reference timing.
    pub serial: TimingStats,
    /// Timing at [`BenchReport::threads`] workers.
    pub parallel: TimingStats,
    /// `serial.median_ms / parallel.median_ms` (> 1 is a parallel win).
    pub speedup: f64,
}

/// One complete harness run: the content of a `BENCH_<id>.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// JSON layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Caller-chosen run identifier (becomes the file name).
    pub bench_id: String,
    /// Worker threads used by the parallel variants.
    pub threads: usize,
    /// Untimed warmup iterations per variant.
    pub warmup: usize,
    /// Timed trials per variant.
    pub trials: usize,
    /// Whether reduced problem sizes were used.
    pub quick: bool,
    /// Per-hot-path results.
    pub cases: Vec<BenchCase>,
}

impl BenchReport {
    /// Canonical file name for this report.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.bench_id)
    }

    /// Pretty JSON for the artifact file.
    ///
    /// # Errors
    ///
    /// Propagates serialization errors from the vendored serde_json.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a report back from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a parse error for malformed JSON or a schema mismatch.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        let report: Self = serde_json::from_str(text)?;
        if report.schema_version != SCHEMA_VERSION {
            return Err(serde_json::Error::msg(format!(
                "schema version {} does not match supported {SCHEMA_VERSION}",
                report.schema_version
            )));
        }
        Ok(report)
    }

    /// Looks up a case by name.
    pub fn case(&self, name: &str) -> Option<&BenchCase> {
        self.cases.iter().find(|c| c.name == name)
    }
}

fn random_i8_matrix(rows: usize, cols: usize, modulus: i32) -> Matrix<i8> {
    // Deterministic pseudo-random fill with bounded distinct chunk pairs so
    // the decompose path sees MEADOW-like redundancy.
    let data: Vec<i8> = (0..rows * cols)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33;
            ((x as i32) % modulus - modulus / 2) as i8
        })
        .collect();
    Matrix::from_vec(rows, cols, data).expect("shape matches data")
}

fn gemm_case(opts: &PerfOptions, exec: &ExecConfig) -> BenchCase {
    let (m, k, n, tile) = if opts.quick { (64, 96, 64, 16) } else { (256, 512, 256, 32) };
    let a = random_i8_matrix(m, k, 127);
    let b = random_i8_matrix(k, n, 127);
    let serial = time_trials(opts.warmup, opts.trials, || {
        std::hint::black_box(matmul_i8_tiled(&a, &b, tile, tile, tile).expect("valid shapes"));
    });
    let parallel = time_trials(opts.warmup, opts.trials, || {
        std::hint::black_box(
            matmul_i8_tiled_with(&a, &b, tile, tile, tile, exec).expect("valid shapes"),
        );
    });
    named_case(format!("gemm_i8_tiled_{m}x{k}x{n}"), serial, parallel)
}

fn packing_case(opts: &PerfOptions, exec: &ExecConfig) -> BenchCase {
    let (rows, cols) = if opts.quick { (128, 256) } else { (768, 1024) };
    // Small modulus → few distinct 2-element chunks → realistic dedup load.
    let w = random_i8_matrix(rows, cols, 23);
    let config = ChunkConfig::default();
    let serial = time_trials(opts.warmup, opts.trials, || {
        std::hint::black_box(decompose(&w, config).expect("chunkable matrix"));
    });
    let parallel = time_trials(opts.warmup, opts.trials, || {
        std::hint::black_box(decompose_with(&w, config, exec).expect("chunkable matrix"));
    });
    named_case(format!("packing_decompose_{rows}x{cols}"), serial, parallel)
}

fn forward_case(opts: &PerfOptions, exec: &ExecConfig) -> BenchCase {
    let (batch, tokens) = if opts.quick { (2, 4) } else { (8, 16) };
    let config = presets::tiny_decoder();
    let weights = ModelWeights::synthesize(&config).expect("tiny model synthesizes");
    let lut = ExpLut::hardware_default();
    let scales = ForwardScales::default();
    let inputs: Vec<Matrix<i8>> =
        (0..batch).map(|i| random_i8_matrix(tokens, config.d_model, 101 + i)).collect();
    let serial = time_trials(opts.warmup, opts.trials, || {
        for x in &inputs {
            std::hint::black_box(
                model_forward(x, &weights, ForwardMode::Gemm, &scales, &lut)
                    .expect("forward succeeds"),
            );
        }
    });
    let parallel = time_trials(opts.warmup, opts.trials, || {
        std::hint::black_box(
            batch_model_forward(&inputs, &weights, ForwardMode::Gemm, &scales, &lut, exec)
                .expect("forward succeeds"),
        );
    });
    named_case(format!("dataflow_batch_forward_{batch}x{tokens}"), serial, parallel)
}

fn serve_case(opts: &PerfOptions, exec: &ExecConfig) -> BenchCase {
    let (requests, generate) = if opts.quick { (4, 6) } else { (8, 12) };
    let model = presets::tiny_decoder();
    // Dense arrivals (tick scale) and a squeezed budget exercise the full
    // scheduler: admission, eviction, reload and the batched measurement
    // fan-out (the axis the parallel variant accelerates).
    let trace = ArrivalTrace::uniform(requests, 0.01, 16, generate);
    let budget = trace.total_peak_kv_bytes(&model) / 2;
    let config = ServeConfig::default().with_budget(budget);
    let spec = ServeSpec::builder().config(config).build().expect("valid spec");
    let serial_engine =
        MeadowEngine::new(EngineConfig::zcu102(model.clone(), 12.0)).expect("valid engine");
    let parallel_engine = MeadowEngine::new(EngineConfig::zcu102(model, 12.0).with_exec(*exec))
        .expect("valid engine");
    let serial = time_trials(opts.warmup, opts.trials, || {
        std::hint::black_box(spec.run(&serial_engine, &trace).expect("serve succeeds"));
    });
    let parallel = time_trials(opts.warmup, opts.trials, || {
        std::hint::black_box(spec.run(&parallel_engine, &trace).expect("serve succeeds"));
    });
    named_case(format!("serve_continuous_batch_{requests}x{generate}"), serial, parallel)
}

fn serve_paged_case(opts: &PerfOptions, exec: &ExecConfig) -> BenchCase {
    let (requests, generate) = if opts.quick { (4, 6) } else { (8, 12) };
    let model = presets::tiny_decoder();
    // Same squeezed scenario as `serve_continuous_batch`, but evicting at
    // page granularity: the scheduler additionally walks the page pool
    // (LRU scan, peel, fault-in), which is the overhead this case guards.
    let trace = ArrivalTrace::uniform(requests, 0.01, 16, generate);
    let budget = trace.total_peak_kv_bytes(&model) / 2;
    let config = ServeConfig::default()
        .with_budget(budget)
        .with_policy(KvPolicy::PagedLru)
        .with_page_bytes(256)
        .with_max_batch(requests / 2);
    let spec = ServeSpec::builder().config(config).build().expect("valid spec");
    let serial_engine =
        MeadowEngine::new(EngineConfig::zcu102(model.clone(), 12.0)).expect("valid engine");
    let parallel_engine = MeadowEngine::new(EngineConfig::zcu102(model, 12.0).with_exec(*exec))
        .expect("valid engine");
    let serial = time_trials(opts.warmup, opts.trials, || {
        std::hint::black_box(spec.run(&serial_engine, &trace).expect("serve succeeds"));
    });
    let parallel = time_trials(opts.warmup, opts.trials, || {
        std::hint::black_box(spec.run(&parallel_engine, &trace).expect("serve succeeds"));
    });
    named_case(format!("serve_paged_{requests}x{generate}"), serial, parallel)
}

fn serve_kvcomp_case(opts: &PerfOptions, exec: &ExecConfig) -> BenchCase {
    let (requests, generate) = if opts.quick { (4, 6) } else { (8, 12) };
    let model = presets::tiny_decoder();
    // The squeezed `serve_continuous_batch` scenario with VEDA token
    // eviction on: every per-step KV accounting call routes through the
    // sizer (vote model, keep-ratio rounding), which is the overhead this
    // case guards.
    let trace = ArrivalTrace::uniform(requests, 0.01, 16, generate);
    let budget = trace.total_peak_kv_bytes(&model) / 2;
    let config = ServeConfig::default()
        .with_budget(budget)
        .with_kv_compression(KvCompression::VedaVote { keep_ratio: 0.5 });
    let spec = ServeSpec::builder().config(config).build().expect("valid spec");
    let serial_engine =
        MeadowEngine::new(EngineConfig::zcu102(model.clone(), 12.0)).expect("valid engine");
    let parallel_engine = MeadowEngine::new(EngineConfig::zcu102(model, 12.0).with_exec(*exec))
        .expect("valid engine");
    let serial = time_trials(opts.warmup, opts.trials, || {
        std::hint::black_box(spec.run(&serial_engine, &trace).expect("serve succeeds"));
    });
    let parallel = time_trials(opts.warmup, opts.trials, || {
        std::hint::black_box(spec.run(&parallel_engine, &trace).expect("serve succeeds"));
    });
    named_case(format!("serve_kvcomp_{requests}x{generate}"), serial, parallel)
}

fn serve_multimodel_case(opts: &PerfOptions, exec: &ExecConfig) -> BenchCase {
    let (requests, generate) = if opts.quick { (4, 6) } else { (8, 12) };
    let model = presets::tiny_decoder();
    // Two models alternating request-for-request under a one-model weight
    // budget with streaming on: every scheduler step walks the residency
    // state machine (LRU pick, per-layer stream, overlap fold), which is
    // the overhead this case guards on top of `serve_continuous_batch`.
    let mut trace = ArrivalTrace::uniform(requests, 0.01, 16, generate);
    for r in &mut trace.requests {
        *r = r.with_model(r.id % 2);
    }
    let config = ServeConfig::default()
        .with_weight_budget(model.total_weight_bytes())
        .with_weight_streaming(true)
        .with_max_batch(2);
    let spec = ServeSpec::builder().config(config).build().expect("valid spec");
    let serial_engine =
        MeadowEngine::new(EngineConfig::zcu102(model.clone(), 12.0)).expect("valid engine");
    let parallel_engine = MeadowEngine::new(EngineConfig::zcu102(model, 12.0).with_exec(*exec))
        .expect("valid engine");
    let serial = time_trials(opts.warmup, opts.trials, || {
        std::hint::black_box(spec.run(&serial_engine, &trace).expect("serve succeeds"));
    });
    let parallel = time_trials(opts.warmup, opts.trials, || {
        std::hint::black_box(spec.run(&parallel_engine, &trace).expect("serve succeeds"));
    });
    named_case(format!("serve_multimodel_{requests}x{generate}"), serial, parallel)
}

fn serve_cluster_case(opts: &PerfOptions, exec: &ExecConfig) -> BenchCase {
    let (requests, generate) = if opts.quick { (6, 5) } else { (12, 8) };
    let model = presets::tiny_decoder();
    // A 3-chip cluster with sticky-affinity skew and NoC migration: the
    // per-chip serving loops fan out on the engine's worker pool (the axis
    // the parallel variant accelerates), and the placement/migration
    // machinery itself is the overhead this case guards.
    let mut trace = ArrivalTrace::uniform(requests, 0.01, 16, generate);
    for r in &mut trace.requests {
        *r = r.with_affinity(r.id % 2);
    }
    let budget = (2 * trace.total_peak_kv_bytes(&model) / (3 * requests as u64))
        .max(trace.requests[0].peak_kv_bytes(&model));
    let serve_config = ServeConfig::default()
        .with_budget(budget)
        .with_policy(KvPolicy::PagedLru)
        .with_page_bytes(256)
        .with_max_batch(2);
    let spec = ServeSpec::builder()
        .chips(3)
        .config(serve_config)
        .placement(SessionAffinity)
        .migration(ToLeastLoaded)
        .build()
        .expect("valid spec");
    let engine_for = |exec: ExecConfig| {
        MeadowEngine::new(EngineConfig::zcu102(model.clone(), 12.0).with_exec(exec))
            .expect("valid engine")
    };
    let serial_engine = engine_for(ExecConfig::serial());
    let parallel_engine = engine_for(*exec);
    let serial = time_trials(opts.warmup, opts.trials, || {
        std::hint::black_box(spec.run(&serial_engine, &trace).expect("serve succeeds"));
    });
    let parallel = time_trials(opts.warmup, opts.trials, || {
        std::hint::black_box(spec.run(&parallel_engine, &trace).expect("serve succeeds"));
    });
    named_case(format!("serve_cluster_3x{requests}x{generate}"), serial, parallel)
}

/// The heterogeneous-cluster case: a mixed big/LITTLE fleet served twice.
/// Like [`serve_1m_case`], the two variants are not serial-vs-parallel
/// threading: `serial` runs speed-oblivious [`LeastLoadedKv`] placement
/// and `parallel` runs throughput-aware [`LeastLoadedWeighted`] on the
/// same fleet and engine, so the committed baseline ratio pins the cost
/// of the weighted scoring (the integer cross-multiply per placement) at
/// parity — the gate fails if weighting ever makes placement itself a
/// bottleneck.
fn serve_hetero_case(opts: &PerfOptions, exec: &ExecConfig) -> BenchCase {
    let (requests, generate) = if opts.quick { (6, 5) } else { (12, 8) };
    let model = presets::tiny_decoder();
    let trace = ArrivalTrace::uniform(requests, 0.01, 16, generate);
    let budget = (2 * trace.total_peak_kv_bytes(&model) / (3 * requests as u64))
        .max(trace.requests[0].peak_kv_bytes(&model));
    let serve_config = ServeConfig::default()
        .with_budget(budget)
        .with_policy(KvPolicy::PagedLru)
        .with_page_bytes(256)
        .with_max_batch(2);
    let specs = vec![
        EngineConfig::zcu102(model.clone(), 12.0),
        EngineConfig::zcu102(model.clone(), 12.0),
        EngineConfig::zcu102_little(model.clone(), 6.0),
    ];
    let spec_for = |weighted: bool| {
        let builder = ServeSpec::builder().chip_specs(specs.clone()).config(serve_config);
        let builder = if weighted {
            builder.placement(LeastLoadedWeighted)
        } else {
            builder.placement(LeastLoadedKv)
        };
        builder.migration(ToLeastLoaded).build().expect("valid spec")
    };
    let unweighted = spec_for(false);
    let weighted = spec_for(true);
    let engine = MeadowEngine::new(EngineConfig::zcu102(model, 12.0).with_exec(*exec))
        .expect("valid engine");
    let serial = time_trials(opts.warmup, opts.trials, || {
        std::hint::black_box(unweighted.run(&engine, &trace).expect("serve succeeds"));
    });
    let parallel = time_trials(opts.warmup, opts.trials, || {
        std::hint::black_box(weighted.run(&engine, &trace).expect("serve succeeds"));
    });
    named_case(format!("serve_hetero_3x{requests}x{generate}"), serial, parallel)
}

fn serve_disagg_case(opts: &PerfOptions, exec: &ExecConfig) -> BenchCase {
    let (requests, generate) = if opts.quick { (6, 5) } else { (12, 8) };
    let model = presets::tiny_decoder();
    // Prefill/decode disaggregation on a 3-chip cluster (1 prefill + 2
    // decode chips) with speculative decoding on: a two-pass simulation
    // with the KV handoff charged on the NoC between the stages. The
    // phase-routing, handoff and draft-flush machinery layered on the
    // per-chip loops is the overhead this case guards.
    let trace = ArrivalTrace::uniform(requests, 0.01, 16, generate);
    let serve_config = ServeConfig::default().with_max_batch(2).with_speculation(SpecDecode {
        draft_len: 4,
        acceptance: 0.7,
        draft_cost_ratio: 0.5,
    });
    let spec = ServeSpec::builder()
        .chips(3)
        .config(serve_config)
        .phases(PrefillDecodeSplit { prefill_chips: 1 })
        .build()
        .expect("valid spec");
    let engine_for = |exec: ExecConfig| {
        MeadowEngine::new(EngineConfig::zcu102(model.clone(), 12.0).with_exec(exec))
            .expect("valid engine")
    };
    let serial_engine = engine_for(ExecConfig::serial());
    let parallel_engine = engine_for(*exec);
    let serial = time_trials(opts.warmup, opts.trials, || {
        std::hint::black_box(spec.run(&serial_engine, &trace).expect("serve succeeds"));
    });
    let parallel = time_trials(opts.warmup, opts.trials, || {
        std::hint::black_box(spec.run(&parallel_engine, &trace).expect("serve succeeds"));
    });
    named_case(format!("serve_disagg_3x{requests}x{generate}"), serial, parallel)
}

/// The event-core scaling case: one long open-loop Poisson trace through
/// both scheduler cores. Unlike every other case, the two variants here
/// are not serial-vs-parallel threading but **tick-scan vs event-driven
/// scheduling** on the same engine: `serial` runs [`SchedulerCore::Tick`]
/// (the O(resident × ticks) oracle) and `parallel` runs
/// [`SchedulerCore::Event`], so the committed baseline ratio locks in the
/// event core's advantage and the CI ratio gate fails if it erodes. The
/// narrow length distribution is deliberate — it maximizes step-shape
/// reuse, the axis the event core's measurement memo exploits, which is
/// exactly the million-request regime the core exists for. The full-size
/// trace (100k requests) makes the tick variant minutes-scale; CI runs
/// `--quick` (2k requests).
fn serve_1m_case(opts: &PerfOptions, exec: &ExecConfig) -> BenchCase {
    let requests = if opts.quick { 2_000 } else { 100_000 };
    let model = presets::tiny_decoder();
    let lengths = ZipfLengths {
        prompt_min: 16,
        prompt_max: 32,
        generate_min: 4,
        generate_max: 16,
        exponent: 1.1,
    };
    let trace = ArrivalTrace::open_loop(
        requests,
        10_000.0,
        &lengths,
        &mut StdRng::seed_from_u64(1_000_000),
    )
    .expect("workload parameters are valid");
    let single_max = trace.requests.iter().map(|r| r.peak_kv_bytes(&model)).max().unwrap_or(0);
    // Open-loop overload with a bounded budget, batch cap and a tight TTFT
    // SLO: admission queues, the SLO sheds the backlog, and eviction
    // churns — every scheduler path is hot.
    let config = ServeConfig::default()
        .with_budget(8 * single_max)
        .with_policy(KvPolicy::Lru)
        .with_max_batch(8)
        .with_admission(AdmissionPolicy::RejectAfter { ttft_slo_ms: 5.0 });
    let engine = MeadowEngine::new(EngineConfig::zcu102(model, 12.0).with_exec(*exec))
        .expect("valid engine");
    let spec_for = |core: SchedulerCore| {
        ServeSpec::builder().config(config).scheduler(core).build().expect("valid spec")
    };
    let tick = spec_for(SchedulerCore::Tick);
    let event = spec_for(SchedulerCore::Event);
    let serial = time_trials(opts.warmup, opts.trials, || {
        std::hint::black_box(tick.run(&engine, &trace).expect("serve succeeds"));
    });
    let parallel = time_trials(opts.warmup, opts.trials, || {
        std::hint::black_box(event.run(&engine, &trace).expect("serve succeeds"));
    });
    named_case(format!("serve_1m_open_loop_{requests}"), serial, parallel)
}

fn named_case(name: String, serial: TimingStats, parallel: TimingStats) -> BenchCase {
    let speedup =
        if parallel.median_ms > 0.0 { serial.median_ms / parallel.median_ms } else { 0.0 };
    BenchCase { name, serial, parallel, speedup }
}

/// Runs the whole suite and assembles the report.
pub fn run_suite(bench_id: &str, opts: &PerfOptions) -> BenchReport {
    let exec = ExecConfig::with_threads(opts.threads);
    let cases = vec![
        gemm_case(opts, &exec),
        packing_case(opts, &exec),
        forward_case(opts, &exec),
        serve_case(opts, &exec),
        serve_paged_case(opts, &exec),
        serve_kvcomp_case(opts, &exec),
        serve_multimodel_case(opts, &exec),
        serve_cluster_case(opts, &exec),
        serve_hetero_case(opts, &exec),
        serve_disagg_case(opts, &exec),
        serve_1m_case(opts, &exec),
    ];
    BenchReport {
        schema_version: SCHEMA_VERSION,
        bench_id: bench_id.to_string(),
        threads: exec.threads(),
        warmup: opts.warmup,
        trials: opts.trials,
        quick: opts.quick,
        cases,
    }
}

/// One variant of one case regressing past the allowed threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Regression {
    /// Case name.
    pub case: String,
    /// `"serial"` or `"parallel"`.
    pub variant: String,
    /// Baseline best-trial time in ms.
    pub baseline_ms: f64,
    /// Current best-trial time in ms.
    pub current_ms: f64,
    /// Slowdown in percent over baseline (always > 0 for a regression).
    pub regress_pct: f64,
}

/// Compares two reports case-by-case and returns every variant that slowed
/// down by more than `max_regress_pct` percent.
///
/// The gate compares `min_ms` (fastest trial): the minimum is the
/// least noise-sensitive statistic of a wall-clock sample — scheduler
/// interference only ever adds time — so it flakes far less than the
/// median on shared CI runners while still moving one-for-one with real
/// code regressions. The medians/p95s stay in the report for humans.
///
/// Cases present in only one report are skipped (renaming a case resets
/// its baseline rather than failing the gate); comparing reports produced
/// with different `quick` settings or thread counts is the caller's
/// responsibility.
pub fn find_regressions(
    current: &BenchReport,
    baseline: &BenchReport,
    max_regress_pct: f64,
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for cur in &current.cases {
        let Some(base) = baseline.case(&cur.name) else { continue };
        for (variant, cur_ms, base_ms) in [
            ("serial", cur.serial.min_ms, base.serial.min_ms),
            ("parallel", cur.parallel.min_ms, base.parallel.min_ms),
        ] {
            if base_ms <= 0.0 {
                continue;
            }
            let regress_pct = (cur_ms / base_ms - 1.0) * 100.0;
            if regress_pct > max_regress_pct {
                regressions.push(Regression {
                    case: cur.name.clone(),
                    variant: variant.to_string(),
                    baseline_ms: base_ms,
                    current_ms: cur_ms,
                    regress_pct,
                });
            }
        }
    }
    regressions
}

/// One case whose parallel-vs-serial *ratio* worsened past the threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatioRegression {
    /// Case name.
    pub case: String,
    /// Baseline `parallel.min_ms / serial.min_ms` (lower is better).
    pub baseline_ratio: f64,
    /// Current `parallel.min_ms / serial.min_ms`.
    pub current_ratio: f64,
    /// Worsening in percent over the baseline ratio (always > 0).
    pub regress_pct: f64,
}

/// Compares the **parallel-vs-serial ratio** of each case against the
/// baseline's, flagging cases whose ratio worsened by more than
/// `max_regress_pct` percent.
///
/// Both the numerator and denominator of a ratio come from the *same* run
/// on the *same* machine, so the gate is machine-normalized: a baseline
/// recorded on slow or core-starved hardware still gates a fast CI runner
/// meaningfully, which absolute `min_ms` comparison cannot do. The trade:
/// a uniform slowdown that hits serial and parallel alike passes — pair the
/// ratio gate with occasional absolute-baseline refreshes when chasing
/// single-thread regressions. Thread counts must still match between the
/// runs for ratios to be comparable (the `perfbench` binary warns).
///
/// Cases present in only one report, or with non-positive serial times, are
/// skipped — renaming a case resets its baseline rather than failing the
/// gate.
pub fn find_ratio_regressions(
    current: &BenchReport,
    baseline: &BenchReport,
    max_regress_pct: f64,
) -> Vec<RatioRegression> {
    let mut regressions = Vec::new();
    for cur in &current.cases {
        let Some(base) = baseline.case(&cur.name) else { continue };
        if cur.serial.min_ms <= 0.0 || base.serial.min_ms <= 0.0 {
            continue;
        }
        let current_ratio = cur.parallel.min_ms / cur.serial.min_ms;
        let baseline_ratio = base.parallel.min_ms / base.serial.min_ms;
        if baseline_ratio <= 0.0 {
            continue;
        }
        let regress_pct = (current_ratio / baseline_ratio - 1.0) * 100.0;
        if regress_pct > max_regress_pct {
            regressions.push(RatioRegression {
                case: cur.name.clone(),
                baseline_ratio,
                current_ratio,
                regress_pct,
            });
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> PerfOptions {
        PerfOptions { threads: 2, warmup: 0, trials: 2, quick: true }
    }

    #[test]
    fn timing_stats_are_ordered() {
        let stats = time_trials(1, 7, || {
            std::hint::black_box((0..2000).sum::<u64>());
        });
        assert!(stats.min_ms <= stats.median_ms);
        assert!(stats.median_ms <= stats.p95_ms);
        assert!(stats.mean_ms > 0.0);
    }

    #[test]
    fn suite_emits_versioned_round_trippable_json() {
        let report = run_suite("test", &quick_opts());
        assert_eq!(report.schema_version, SCHEMA_VERSION);
        assert_eq!(report.cases.len(), 11);
        assert!(report.cases.iter().all(|c| c.speedup > 0.0));
        assert_eq!(report.file_name(), "BENCH_test.json");
        let json = report.to_json().unwrap();
        assert!(json.contains("\"schema_version\""));
        let parsed = BenchReport::from_json(&json).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn json_tree_matches_documented_schema() {
        // The README documents the BENCH_*.json layout; hold the emitted
        // tree to it via the Value accessors rather than string matching.
        let report = run_suite("schema", &quick_opts());
        let tree = serde_json::to_value(&report).unwrap();
        assert_eq!(tree.get("schema_version").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(tree.get("bench_id").and_then(|v| v.as_str()), Some("schema"));
        assert_eq!(tree.get("threads").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(tree.get("quick").and_then(|v| v.as_bool()), Some(true));
        let cases = tree.get("cases").and_then(|v| v.as_seq()).unwrap();
        assert_eq!(cases.len(), 11);
        for case in cases {
            assert!(case.get("name").and_then(|v| v.as_str()).is_some());
            for variant in ["serial", "parallel"] {
                let stats = case.get(variant).unwrap();
                for field in ["median_ms", "p95_ms", "min_ms", "mean_ms"] {
                    let ms = stats.get(field).and_then(|v| v.as_f64()).unwrap();
                    assert!(ms >= 0.0, "{variant}.{field} = {ms}");
                }
            }
            assert!(case.get("speedup").and_then(|v| v.as_f64()).unwrap() > 0.0);
        }
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut report = run_suite("test", &quick_opts());
        report.schema_version = SCHEMA_VERSION + 1;
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(BenchReport::from_json(&json).is_err());
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let report = run_suite("gate", &quick_opts());
        assert!(find_regressions(&report, &report, 25.0).is_empty());
    }

    #[test]
    fn injected_regression_fails_the_gate() {
        let baseline = run_suite("gate", &quick_opts());
        let mut current = baseline.clone();
        // Inject a 2× slowdown on one serial path: well past 25%.
        current.cases[0].serial.min_ms = baseline.cases[0].serial.min_ms * 2.0;
        let regressions = find_regressions(&current, &baseline, 25.0);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].variant, "serial");
        assert!(regressions[0].regress_pct > 90.0);
        // The same slowdown passes a 150% threshold.
        assert!(find_regressions(&current, &baseline, 150.0).is_empty());
    }

    #[test]
    fn renamed_cases_reset_rather_than_fail() {
        let baseline = run_suite("gate", &quick_opts());
        let mut current = baseline.clone();
        current.cases[0].name = "renamed".into();
        current.cases[0].serial.min_ms *= 100.0;
        assert!(find_regressions(&current, &baseline, 25.0).is_empty());
    }

    #[test]
    fn identical_reports_pass_the_ratio_gate() {
        let report = run_suite("ratio", &quick_opts());
        assert!(find_ratio_regressions(&report, &report, 25.0).is_empty());
    }

    #[test]
    fn ratio_gate_is_machine_normalized() {
        let baseline = run_suite("ratio", &quick_opts());
        // A uniformly 3×-slower machine keeps every ratio unchanged: the
        // absolute gate would flag everything, the ratio gate nothing.
        let mut slower = baseline.clone();
        for case in &mut slower.cases {
            case.serial.min_ms *= 3.0;
            case.parallel.min_ms *= 3.0;
        }
        assert!(!find_regressions(&slower, &baseline, 25.0).is_empty());
        assert!(find_ratio_regressions(&slower, &baseline, 25.0).is_empty());
    }

    #[test]
    fn parallel_only_regression_fails_the_ratio_gate() {
        let baseline = run_suite("ratio", &quick_opts());
        let mut current = baseline.clone();
        // The parallel path alone slows 2×: ratio worsens 100%.
        current.cases[1].parallel.min_ms = baseline.cases[1].parallel.min_ms * 2.0;
        let regressions = find_ratio_regressions(&current, &baseline, 25.0);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].case, current.cases[1].name);
        assert!(regressions[0].regress_pct > 90.0);
        assert!(find_ratio_regressions(&current, &baseline, 150.0).is_empty());
    }

    #[test]
    fn ratio_gate_skips_renamed_and_degenerate_cases() {
        let baseline = run_suite("ratio", &quick_opts());
        let mut current = baseline.clone();
        current.cases[0].name = "renamed".into();
        current.cases[0].parallel.min_ms *= 100.0;
        current.cases[1].serial.min_ms = 0.0;
        current.cases[1].parallel.min_ms *= 100.0;
        assert!(find_ratio_regressions(&current, &baseline, 25.0).is_empty());
    }
}
