//! The Token-Parallel Head-Sequential (TPHS) dataflow (§4, Fig. 3).
//!
//! Per attention head, TPHS pipelines `Q → QKᵀ → MAX → EXP → DIV → SM·V`
//! across waves of tokens, keeping every intermediate in pipeline registers:
//! the only DRAM traffic is the input tokens (once), the per-head `W_Q`,
//! `K_h`, `V_h` fetches, and the final `SM·V` outputs. Heads execute
//! sequentially ("all H1 before H2"), which lets the DMA prefetch head
//! `h+1`'s operands while head `h` computes — modeled here with the
//! discrete-event engine.

use crate::breakdown::OpLatency;
use crate::error::DataflowError;
use crate::gemm::{weight_fetch_cycles, WeightFetch};
use crate::pipeline::flow_shop_makespan;
use meadow_packing::WiluModule;
use meadow_sim::event::{EventSim, TaskKind};
use meadow_sim::{ChipConfig, Cycles, DramModel, TrafficClass};
use serde::{Deserialize, Serialize};

/// Dimensions and operand description of one TPHS attention block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TphsParams {
    /// Model dimension `D`.
    pub d_model: usize,
    /// Attention heads `H`.
    pub heads: usize,
    /// Head dimension `HD`.
    pub head_dim: usize,
    /// Tokens being processed (prefill: the prompt length; decode: 1).
    pub tokens_new: usize,
    /// Context length (keys/values visible to each query).
    pub context: usize,
    /// The full `W_Q` weight fetch (packed or raw); heads fetch `1/H` each.
    pub wq: WeightFetch,
}

/// Resource allocation chosen for the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TphsAllocation {
    /// Parallel PEs computing the Q stage per in-flight token.
    pub q_pes_per_token: usize,
    /// Tokens in flight per wave.
    pub token_parallelism: usize,
    /// Waves per head.
    pub waves: usize,
}

/// Per-stage service times of one wave (cycles).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TphsStageTimes {
    /// [Q, QKᵀ, MAX, EXP, DIV, SM·V] wave service times.
    pub stages: Vec<Cycles>,
}

/// Chooses the PE allocation for the TPHS pipeline on `chip`.
///
/// The Q stage is given enough parallel PEs per token to keep its service
/// time at or below the `context`-bound stages (QKᵀ/softmax/SM·V all take
/// ≈`context` cycles per token), then token parallelism is maximized within
/// the PE, broadcasting-PE and SM-module budgets — each in-flight token
/// needs `q_pes_per_token + 1` parallel PEs, one broadcasting PE and one SM
/// module.
pub fn plan_allocation(chip: &ChipConfig, params: &TphsParams) -> TphsAllocation {
    let mults = chip.pe_geometry.multipliers.max(1);
    let hd_factor = params.head_dim.div_ceil(mults).max(1);
    let bottleneck = (params.context * hd_factor).max(1);
    let q_work = (params.d_model * params.head_dim).div_ceil(mults).max(1);
    let q_pes = q_work.div_ceil(bottleneck).clamp(1, chip.parallel_pes.saturating_sub(1).max(1));
    let per_token_parallel = q_pes + 1;
    let p = (chip.parallel_pes / per_token_parallel)
        .min(chip.broadcasting_pes)
        .min(chip.sm_modules)
        .max(1)
        .min(params.tokens_new.max(1));
    TphsAllocation {
        q_pes_per_token: q_pes,
        token_parallelism: p,
        waves: params.tokens_new.div_ceil(p).max(1),
    }
}

/// Stage service times for one wave under an allocation.
pub fn stage_times(
    chip: &ChipConfig,
    params: &TphsParams,
    alloc: &TphsAllocation,
) -> TphsStageTimes {
    let mults = chip.pe_geometry.multipliers.max(1);
    let hd_factor = params.head_dim.div_ceil(mults).max(1) as u64;
    let c = params.context as u64;
    let q_cycles = ((params.d_model * params.head_dim).div_ceil(mults) as u64)
        .div_ceil(alloc.q_pes_per_token as u64)
        .max(1);
    TphsStageTimes {
        stages: vec![
            Cycles(q_cycles),      // Q projection for the wave's tokens
            Cycles(c * hd_factor), // QKᵀ against all context keys
            Cycles(c),             // softmax MAX
            Cycles(c),             // softmax EXP
            Cycles(c),             // softmax DIV
            Cycles(c * hd_factor), // SM·V broadcast-accumulate
        ],
    }
}

/// Executes the fused TPHS attention block against the latency model.
///
/// # Errors
///
/// Returns [`DataflowError::Schedule`] for degenerate dimensions and
/// propagates event-engine errors.
pub fn tphs_attention_latency(
    chip: &ChipConfig,
    dram: &mut DramModel,
    wilu: &WiluModule,
    params: &TphsParams,
) -> Result<OpLatency, DataflowError> {
    if params.heads == 0 || params.head_dim == 0 || params.tokens_new == 0 || params.context == 0 {
        return Err(DataflowError::Schedule {
            reason: format!("degenerate TPHS dimensions: {params:?}"),
        });
    }
    let alloc = plan_allocation(chip, params);
    let times = stage_times(chip, params, &alloc);
    let per_head_compute = flow_shop_makespan(&times.stages, alloc.waves);

    let x_bytes = (params.tokens_new * params.d_model) as u64;
    let x_fits = x_bytes <= chip.input_bram_bytes as u64;
    let kv_head_bytes = 2 * (params.context * params.head_dim) as u64;
    let smv_head_bytes = (params.tokens_new * params.head_dim) as u64;

    // Per-head W_Q slice: the packed stream is sliced evenly across heads.
    let wq_head = WeightFetch {
        raw_bytes: params.wq.raw_bytes.div_ceil(params.heads as u64),
        packed: params.wq.packed.map(|p| crate::gemm::PackedWeightTransfer {
            transfer_bytes: p.transfer_bytes.div_ceil(params.heads as u64),
            packet_bits: p.packet_bits,
            total_ids: p.total_ids.div_ceil(params.heads as u64),
        }),
    };

    // Separate AXI read/write channels: stores never block prefetches.
    let mut sim = EventSim::new();
    let dma_rd = sim.add_resource("dma-read");
    let dma_wr = sim.add_resource("dma-write");
    let pipe = sim.add_resource("tphs-pipeline");

    let mut fetch_total = Cycles::ZERO;
    let mut store_total = Cycles::ZERO;
    let mut compute_total = Cycles::ZERO;

    // Input tokens: fetched once if they fit the input BRAM, else per head.
    let x_once = if x_fits {
        let dur = dram.transfer(TrafficClass::InputFetch, x_bytes);
        fetch_total += dur;
        Some(sim.submit(dma_rd, TaskKind::Fetch, dur, &[])?)
    } else {
        None
    };

    // Double-buffered operand BRAMs: the fetch for head h+1 may begin once
    // head h is computing (head h-1's compute has finished and released the
    // back buffer), i.e. fetch_h depends on compute_{h-2}.
    let mut computes: Vec<meadow_sim::event::TaskId> = Vec::with_capacity(params.heads);
    for head in 0..params.heads {
        let mut dur = weight_fetch_cycles(dram, &wq_head, wilu);
        dur += dram.transfer(TrafficClass::KvFetch, kv_head_bytes);
        if !x_fits {
            dur += dram.transfer(TrafficClass::InputFetch, x_bytes);
        }
        fetch_total += dur;
        let fetch_deps: Vec<_> = if head >= 2 { vec![computes[head - 2]] } else { Vec::new() };
        let fetch = sim.submit(dma_rd, TaskKind::Fetch, dur, &fetch_deps)?;
        let mut deps = vec![fetch];
        if let Some(x) = x_once {
            deps.push(x);
        }
        if let Some(&prev) = computes.last() {
            deps.push(prev);
        }
        let compute = sim.submit(pipe, TaskKind::Compute, per_head_compute, &deps)?;
        compute_total += per_head_compute;
        let store_dur = dram.transfer(TrafficClass::OutputStore, smv_head_bytes);
        store_total += store_dur;
        sim.submit(dma_wr, TaskKind::Store, store_dur, &[compute])?;
        computes.push(compute);
    }

    Ok(OpLatency {
        name: "TPHS".to_string(),
        fetch: fetch_total,
        compute: compute_total,
        store: store_total,
        makespan: sim.makespan(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use meadow_sim::ClockDomain;

    fn dram(gbps: f64) -> DramModel {
        DramModel::with_bandwidth(gbps, ClockDomain::zcu102()).unwrap()
    }

    fn opt125m_params(tokens: usize) -> TphsParams {
        TphsParams {
            d_model: 768,
            heads: 12,
            head_dim: 64,
            tokens_new: tokens,
            context: tokens,
            wq: WeightFetch::raw(768 * 768),
        }
    }

    #[test]
    fn allocation_balances_q_stage() {
        let chip = ChipConfig::zcu102();
        let p = opt125m_params(512);
        let alloc = plan_allocation(&chip, &p);
        // Q work per token = 768*64/64 = 768 cycles; bottleneck 512 → 2 PEs.
        assert_eq!(alloc.q_pes_per_token, 2);
        // 84/3 = 28 parallel-PE-bound, 12 broadcasting-bound → P = 12.
        assert_eq!(alloc.token_parallelism, 12);
        assert_eq!(alloc.waves, 43);
    }

    #[test]
    fn stage_times_are_context_bound() {
        let chip = ChipConfig::zcu102();
        let p = opt125m_params(512);
        let alloc = plan_allocation(&chip, &p);
        let t = stage_times(&chip, &p, &alloc);
        assert_eq!(t.stages.len(), 6);
        // Q: 768/2 = 384 ≤ 512; all others 512.
        assert_eq!(t.stages[0], Cycles(384));
        for s in &t.stages[1..] {
            assert_eq!(*s, Cycles(512));
        }
    }

    #[test]
    fn tphs_eliminates_intermediate_traffic() {
        let chip = ChipConfig::zcu102();
        let mut d = dram(12.0);
        let lat =
            tphs_attention_latency(&chip, &mut d, &WiluModule::zcu102(), &opt125m_params(512))
                .unwrap();
        let ledger = d.ledger();
        // No intermediate stores or fetches at all.
        assert_eq!(ledger.bytes(TrafficClass::IntermediateFetch), 0);
        assert_eq!(ledger.bytes(TrafficClass::IntermediateStore), 0);
        // Only X, W_Q, K, V in; SMV out.
        assert_eq!(ledger.bytes(TrafficClass::InputFetch), 512 * 768);
        assert_eq!(ledger.bytes(TrafficClass::OutputStore), 512 * 768);
        assert!(lat.makespan > Cycles::ZERO);
    }

    #[test]
    fn dma_overlaps_compute() {
        let chip = ChipConfig::zcu102();
        let mut d = dram(12.0);
        let lat =
            tphs_attention_latency(&chip, &mut d, &WiluModule::zcu102(), &opt125m_params(512))
                .unwrap();
        // The makespan must be well below the sequential sum thanks to
        // prefetch overlap.
        assert!(lat.makespan < lat.component_sum());
        // And at least as large as the compute-only lower bound.
        assert!(lat.makespan >= lat.compute);
    }

    #[test]
    fn decode_single_token_works() {
        let chip = ChipConfig::zcu102();
        let mut d = dram(12.0);
        let p = TphsParams { tokens_new: 1, context: 575, ..opt125m_params(512) };
        let lat = tphs_attention_latency(&chip, &mut d, &WiluModule::zcu102(), &p).unwrap();
        assert!(lat.makespan > Cycles::ZERO);
        let alloc = plan_allocation(&chip, &p);
        assert_eq!(alloc.token_parallelism, 1);
        assert_eq!(alloc.waves, 1);
    }

    #[test]
    fn degenerate_dimensions_rejected() {
        let chip = ChipConfig::zcu102();
        let mut d = dram(12.0);
        let p = TphsParams { heads: 0, ..opt125m_params(8) };
        assert!(tphs_attention_latency(&chip, &mut d, &WiluModule::zcu102(), &p).is_err());
        let p = TphsParams { context: 0, ..opt125m_params(8) };
        assert!(tphs_attention_latency(&chip, &mut d, &WiluModule::zcu102(), &p).is_err());
    }

    #[test]
    fn fewer_pes_lengthen_the_pipeline() {
        let small = ChipConfig::zcu102_with_total_pes(14);
        let big = ChipConfig::zcu102();
        let p = opt125m_params(256);
        let mut d1 = dram(12.0);
        let mut d2 = dram(12.0);
        let slow = tphs_attention_latency(&small, &mut d1, &WiluModule::zcu102(), &p).unwrap();
        let fast = tphs_attention_latency(&big, &mut d2, &WiluModule::zcu102(), &p).unwrap();
        assert!(slow.makespan > fast.makespan);
    }

    #[test]
    fn oversized_inputs_refetch_per_head() {
        // Shrink the input BRAM so X cannot stay resident.
        let mut chip = ChipConfig::zcu102();
        chip.input_bram_bytes = 1024;
        let mut d = dram(12.0);
        let p = opt125m_params(64);
        tphs_attention_latency(&chip, &mut d, &WiluModule::zcu102(), &p).unwrap();
        assert_eq!(d.ledger().bytes(TrafficClass::InputFetch), 12 * 64 * 768);
    }
}
