//! Latency breakdowns: the fetch / compute / store decomposition the paper's
//! distribution figures report.

use meadow_sim::Cycles;
use serde::{Deserialize, Serialize};

/// Latency of one operation (one decoder-layer op or one fused TPHS block).
///
/// `fetch`, `compute` and `store` are *component totals* (the stacked bars of
/// Figs. 1, 8, 9); `makespan` is the wall-clock cost after whatever overlap
/// the executor achieved. For the sequential GEMM baseline
/// `makespan == fetch + compute + store`; the TPHS pipeline overlaps, so its
/// makespan is smaller than the component sum.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpLatency {
    /// Operation name as shown in figures ("Q", "QKT", "SM", "SMxV", ...).
    pub name: String,
    /// DRAM → chip transfer cycles.
    pub fetch: Cycles,
    /// On-chip compute cycles.
    pub compute: Cycles,
    /// Chip → DRAM transfer cycles.
    pub store: Cycles,
    /// Wall-clock cycles for the op.
    pub makespan: Cycles,
}

impl OpLatency {
    /// A fully sequential op: makespan is the sum of its components.
    pub fn sequential(
        name: impl Into<String>,
        fetch: Cycles,
        compute: Cycles,
        store: Cycles,
    ) -> Self {
        Self { name: name.into(), fetch, compute, store, makespan: fetch + compute + store }
    }

    /// Component sum (the stacked-bar height).
    pub fn component_sum(&self) -> Cycles {
        self.fetch + self.compute + self.store
    }
}

/// Latency of one full layer: an ordered list of op latencies.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LayerLatency {
    /// Ops in execution order.
    pub ops: Vec<OpLatency>,
}

impl LayerLatency {
    /// An empty layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an op.
    pub fn push(&mut self, op: OpLatency) {
        self.ops.push(op);
    }

    /// Total fetch cycles across ops.
    pub fn fetch(&self) -> Cycles {
        self.ops.iter().map(|o| o.fetch).sum()
    }

    /// Total compute cycles across ops.
    pub fn compute(&self) -> Cycles {
        self.ops.iter().map(|o| o.compute).sum()
    }

    /// Total store cycles across ops.
    pub fn store(&self) -> Cycles {
        self.ops.iter().map(|o| o.store).sum()
    }

    /// Total wall-clock cycles (ops run back to back).
    pub fn makespan(&self) -> Cycles {
        self.ops.iter().map(|o| o.makespan).sum()
    }

    /// Finds an op by name.
    pub fn op(&self, name: &str) -> Option<&OpLatency> {
        self.ops.iter().find(|o| o.name == name)
    }

    /// Merges the ops of another layer (used when a schedule is built from
    /// fragments).
    pub fn extend(&mut self, other: LayerLatency) {
        self.ops.extend(other.ops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_op_sums() {
        let op = OpLatency::sequential("Q", Cycles(10), Cycles(5), Cycles(3));
        assert_eq!(op.makespan, Cycles(18));
        assert_eq!(op.component_sum(), Cycles(18));
    }

    #[test]
    fn layer_aggregation() {
        let mut layer = LayerLatency::new();
        layer.push(OpLatency::sequential("Q", Cycles(10), Cycles(5), Cycles(3)));
        layer.push(OpLatency {
            name: "TPHS".into(),
            fetch: Cycles(20),
            compute: Cycles(30),
            store: Cycles(4),
            makespan: Cycles(35), // overlapped
        });
        assert_eq!(layer.fetch(), Cycles(30));
        assert_eq!(layer.compute(), Cycles(35));
        assert_eq!(layer.store(), Cycles(7));
        assert_eq!(layer.makespan(), Cycles(53));
        assert!(layer.op("TPHS").is_some());
        assert!(layer.op("nope").is_none());
    }

    #[test]
    fn empty_layer_is_zero() {
        let layer = LayerLatency::new();
        assert_eq!(layer.makespan(), Cycles::ZERO);
        assert_eq!(layer.fetch(), Cycles::ZERO);
    }
}
