//! Error type for the dataflow executors.

use meadow_models::ModelError;
use meadow_packing::PackingError;
use meadow_sim::SimError;
use meadow_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error returned by dataflow execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DataflowError {
    /// Propagated hardware-model error.
    Sim(SimError),
    /// Propagated tensor error.
    Tensor(TensorError),
    /// Propagated packing error.
    Packing(PackingError),
    /// Propagated model error.
    Model(ModelError),
    /// A schedule could not be constructed.
    Schedule {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataflowError::Sim(e) => write!(f, "hardware model error: {e}"),
            DataflowError::Tensor(e) => write!(f, "tensor error: {e}"),
            DataflowError::Packing(e) => write!(f, "packing error: {e}"),
            DataflowError::Model(e) => write!(f, "model error: {e}"),
            DataflowError::Schedule { reason } => write!(f, "scheduling error: {reason}"),
        }
    }
}

impl Error for DataflowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DataflowError::Sim(e) => Some(e),
            DataflowError::Tensor(e) => Some(e),
            DataflowError::Packing(e) => Some(e),
            DataflowError::Model(e) => Some(e),
            DataflowError::Schedule { .. } => None,
        }
    }
}

impl From<SimError> for DataflowError {
    fn from(e: SimError) -> Self {
        DataflowError::Sim(e)
    }
}

impl From<TensorError> for DataflowError {
    fn from(e: TensorError) -> Self {
        DataflowError::Tensor(e)
    }
}

impl From<PackingError> for DataflowError {
    fn from(e: PackingError) -> Self {
        DataflowError::Packing(e)
    }
}

impl From<ModelError> for DataflowError {
    fn from(e: ModelError) -> Self {
        DataflowError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: DataflowError = SimError::UnknownId { kind: "task", id: 1 }.into();
        assert!(e.source().is_some());
        let e: DataflowError = TensorError::ZeroParameter { name: "t" }.into();
        assert!(!e.to_string().is_empty());
        let e: DataflowError = PackingError::ZeroChunkSize.into();
        assert!(e.source().is_some());
        let e = DataflowError::Schedule { reason: "x".into() };
        assert!(e.source().is_none());
    }
}
