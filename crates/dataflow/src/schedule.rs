//! Whole-layer schedules: assembling decoder layers from GEMM-mode ops and
//! the TPHS fused block under an [`ExecutionPlan`].
//!
//! The op sequence mirrors the paper's decoder (Fig. 1a): LN → Q/K/V →
//! QKᵀ → SM → SM·V → Proj → LN → MLP1 → NL → MLP2. Under the MEADOW plan
//! the `Q + SM(QKᵀ)·V` chain is replaced by the fused TPHS block while
//! K, V, Proj and the MLP stay in GEMM mode (§6.1, "MEADOW operation
//! modes"), and all weights may be packed.

use crate::breakdown::LayerLatency;
use crate::error::DataflowError;
use crate::gemm::{gemm_op_latency, ComputeSpec, GemmOpSpec, PackedWeightTransfer, WeightFetch};
use crate::tphs::{tphs_attention_latency, TphsParams};
use meadow_models::weights::{MatrixPackingStats, ModelPackingStats};
use meadow_models::{MatrixKind, TransformerConfig};
use meadow_packing::{bits_for_ids, PackingConfig, PackingLevel, WiluModule};
use meadow_sim::{ChipConfig, DramModel, TrafficClass};
use serde::{Deserialize, Serialize};

/// Dataflow used for the `Q + SM(QKᵀ)·V` layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttentionDataflow {
    /// Everything in GEMM mode (the baseline and all prior works, Table 2).
    Gemm,
    /// The TPHS pipelined dataflow (MEADOW).
    Tphs,
}

/// How a model executes on the chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExecutionPlan {
    /// Dataflow for the attention chain.
    pub attention: AttentionDataflow,
    /// Weight packing level (`None` = raw weights).
    pub packing: Option<PackingLevel>,
}

impl ExecutionPlan {
    /// The paper's GEMM baseline: all layers GEMM, no packing.
    pub fn gemm_baseline() -> Self {
        Self { attention: AttentionDataflow::Gemm, packing: None }
    }

    /// Full MEADOW: TPHS attention + frequency-aware weight packing.
    pub fn meadow() -> Self {
        Self { attention: AttentionDataflow::Tphs, packing: Some(PackingLevel::FrequencyAware) }
    }
}

/// Behavioral knobs used to model the prior-work baselines of Table 2 on
/// the same schedule machinery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleKnobs {
    /// CTA-style token compression: the attention chain processes only this
    /// fraction of tokens/context (1.0 = no compression).
    pub attention_token_scale: f64,
    /// FlightLLM-style N:M sparsity: compute of weight-bearing matmuls is
    /// scaled by this factor (1.0 = dense).
    pub weight_compute_scale: f64,
    /// FlightLLM decode optimization: attention intermediates stay on chip
    /// during single-token decode (no DRAM round trips for Q/scores/SM).
    pub onchip_decode_intermediates: bool,
}

impl Default for ScheduleKnobs {
    fn default() -> Self {
        Self {
            attention_token_scale: 1.0,
            weight_compute_scale: 1.0,
            onchip_decode_intermediates: false,
        }
    }
}

/// Everything needed to schedule one layer.
#[derive(Debug, Clone, Copy)]
pub struct LayerParams<'a> {
    /// Model architecture.
    pub config: &'a TransformerConfig,
    /// Layer index (selects per-layer packing statistics).
    pub layer: usize,
    /// Tokens processed this step (prefill: prompt length; decode: 1).
    pub tokens_new: usize,
    /// Context length (keys/values visible).
    pub context: usize,
    /// Model packing statistics, when the plan packs weights.
    pub packing_stats: Option<&'a ModelPackingStats>,
    /// Packing configuration (payload width) used to derive MAU throughput.
    pub packing_config: PackingConfig,
    /// Baseline-modeling knobs (identity for GEMM and MEADOW).
    pub knobs: ScheduleKnobs,
}

/// Converts a matrix's sampled packing statistics into a [`WeightFetch`].
pub fn weight_fetch_from_stats(
    stats: &MatrixPackingStats,
    level: PackingLevel,
    packing_config: &PackingConfig,
) -> WeightFetch {
    let mode_bits =
        if level == PackingLevel::Naive { 0 } else { bits_for_ids(stats.max_id_bits as usize) };
    WeightFetch {
        raw_bytes: stats.raw_bytes,
        packed: Some(PackedWeightTransfer {
            transfer_bytes: stats.transfer_bytes,
            packet_bits: mode_bits + packing_config.payload_bits,
            total_ids: stats.raw_bytes / packing_config.chunk.chunk_elems.max(1) as u64,
        }),
    }
}

fn weight_fetch(plan: &ExecutionPlan, params: &LayerParams<'_>, kind: MatrixKind) -> WeightFetch {
    let raw = params.config.matrix_bytes(kind);
    match (plan.packing, params.packing_stats) {
        (Some(level), Some(stats)) => match stats.matrix(params.layer, kind) {
            Some(m) => weight_fetch_from_stats(m, level, &params.packing_config),
            None => WeightFetch::raw(raw),
        },
        _ => WeightFetch::raw(raw),
    }
}

/// Scales compute by the N:M sparsity factor.
fn sparse_macs(macs: u64, scale: f64) -> ComputeSpec {
    ComputeSpec::Macs(((macs as f64) * scale.clamp(0.0, 1.0)).round() as u64)
}

/// Builds the GEMM-mode op list for the attention chain
/// (`Q, QKᵀ, SM, SM·V`), honoring the baseline knobs.
fn gemm_attention_ops(plan: &ExecutionPlan, params: &LayerParams<'_>) -> Vec<GemmOpSpec> {
    let c = params.config;
    let knobs = params.knobs;
    let token_scale = knobs.attention_token_scale.clamp(0.0, 1.0);
    let t = ((params.tokens_new as f64 * token_scale).round() as u64).max(1);
    let ctx = ((params.context as f64 * token_scale).round() as u64).max(1);
    let d = c.d_model as u64;
    let h = c.heads as u64;
    let scores = h * t * ctx;
    // FlightLLM keeps single-token decode intermediates on chip.
    let onchip = knobs.onchip_decode_intermediates && params.tokens_new == 1;
    let inter = |bytes: u64| if onchip { 0 } else { bytes };
    vec![
        GemmOpSpec {
            name: "Q".into(),
            weight: Some(weight_fetch(plan, params, MatrixKind::Query)),
            inputs: vec![(TrafficClass::IntermediateFetch, t * d)],
            stores: vec![(TrafficClass::IntermediateStore, inter(t * d))],
            compute: sparse_macs(t * d * d, knobs.weight_compute_scale),
        },
        GemmOpSpec {
            name: "QKT".into(),
            weight: None,
            inputs: vec![
                (TrafficClass::IntermediateFetch, inter(t * d)),
                (TrafficClass::KvFetch, ctx * d),
            ],
            stores: vec![(TrafficClass::IntermediateStore, inter(scores))],
            compute: ComputeSpec::Macs(t * ctx * d),
        },
        GemmOpSpec {
            name: "SM".into(),
            weight: None,
            inputs: vec![(TrafficClass::IntermediateFetch, inter(scores))],
            stores: vec![(TrafficClass::IntermediateStore, inter(scores))],
            compute: ComputeSpec::Softmax { rows: (h * t) as usize, features: ctx as usize },
        },
        GemmOpSpec {
            name: "SMxV".into(),
            weight: None,
            inputs: vec![
                (TrafficClass::IntermediateFetch, inter(scores)),
                (TrafficClass::KvFetch, ctx * d),
            ],
            stores: vec![(TrafficClass::IntermediateStore, t * d)],
            compute: ComputeSpec::Macs(t * ctx * d),
        },
    ]
}

/// Ops shared by both plans before the attention chain (LN1, K, V).
fn pre_attention_ops(plan: &ExecutionPlan, params: &LayerParams<'_>) -> Vec<GemmOpSpec> {
    let c = params.config;
    let t = params.tokens_new as u64;
    let d = c.d_model as u64;
    vec![
        GemmOpSpec {
            name: "LN1".into(),
            weight: None,
            inputs: vec![(TrafficClass::IntermediateFetch, t * d)],
            stores: vec![(TrafficClass::IntermediateStore, t * d)],
            compute: ComputeSpec::LayerNorm { tokens: params.tokens_new, features: c.d_model },
        },
        GemmOpSpec {
            name: "K".into(),
            weight: Some(weight_fetch(plan, params, MatrixKind::Key)),
            inputs: vec![(TrafficClass::IntermediateFetch, t * d)],
            stores: vec![(TrafficClass::KvStore, t * d)],
            compute: sparse_macs(t * d * d, params.knobs.weight_compute_scale),
        },
        GemmOpSpec {
            name: "V".into(),
            weight: Some(weight_fetch(plan, params, MatrixKind::Value)),
            inputs: vec![(TrafficClass::IntermediateFetch, t * d)],
            stores: vec![(TrafficClass::KvStore, t * d)],
            compute: sparse_macs(t * d * d, params.knobs.weight_compute_scale),
        },
    ]
}

/// Ops shared by both plans after the attention chain (Proj, LN2, MLP).
fn post_attention_ops(plan: &ExecutionPlan, params: &LayerParams<'_>) -> Vec<GemmOpSpec> {
    let c = params.config;
    let t = params.tokens_new as u64;
    let d = c.d_model as u64;
    let f = c.ffn_dim as u64;
    vec![
        GemmOpSpec {
            name: "Proj".into(),
            weight: Some(weight_fetch(plan, params, MatrixKind::Proj)),
            inputs: vec![(TrafficClass::IntermediateFetch, t * d)],
            stores: vec![(TrafficClass::IntermediateStore, t * d)],
            compute: sparse_macs(t * d * d, params.knobs.weight_compute_scale),
        },
        GemmOpSpec {
            name: "LN2".into(),
            weight: None,
            inputs: vec![(TrafficClass::IntermediateFetch, t * d)],
            stores: vec![(TrafficClass::IntermediateStore, t * d)],
            compute: ComputeSpec::LayerNorm { tokens: params.tokens_new, features: c.d_model },
        },
        GemmOpSpec {
            name: "MLP1".into(),
            weight: Some(weight_fetch(plan, params, MatrixKind::MlpUp)),
            inputs: vec![(TrafficClass::IntermediateFetch, t * d)],
            stores: vec![(TrafficClass::IntermediateStore, t * f)],
            compute: sparse_macs(t * d * f, params.knobs.weight_compute_scale),
        },
        GemmOpSpec {
            name: "NL".into(),
            weight: None,
            inputs: vec![(TrafficClass::IntermediateFetch, t * f)],
            stores: vec![(TrafficClass::IntermediateStore, t * f)],
            compute: ComputeSpec::Nonlinear { tokens: params.tokens_new, features: c.ffn_dim },
        },
        GemmOpSpec {
            name: "MLP2".into(),
            weight: Some(weight_fetch(plan, params, MatrixKind::MlpDown)),
            inputs: vec![(TrafficClass::IntermediateFetch, t * f)],
            stores: vec![(TrafficClass::IntermediateStore, t * d)],
            compute: sparse_macs(t * f * d, params.knobs.weight_compute_scale),
        },
    ]
}

/// Schedules only the attention chain (`Q + SM(QKᵀ)·V`) under the plan's
/// dataflow — the unit the Fig. 12 dataflow planner compares.
///
/// # Errors
///
/// Propagates executor errors.
pub fn attention_block_latency(
    chip: &ChipConfig,
    dram: &mut DramModel,
    plan: &ExecutionPlan,
    params: &LayerParams<'_>,
) -> Result<LayerLatency, DataflowError> {
    let wilu = WiluModule::zcu102();
    let mut layer = LayerLatency::new();
    match plan.attention {
        AttentionDataflow::Gemm => {
            for spec in gemm_attention_ops(plan, params) {
                layer.push(gemm_op_latency(chip, dram, &wilu, &spec)?);
            }
        }
        AttentionDataflow::Tphs => {
            let tphs = TphsParams {
                d_model: params.config.d_model,
                heads: params.config.heads,
                head_dim: params.config.head_dim(),
                tokens_new: params.tokens_new,
                context: params.context,
                wq: weight_fetch(plan, params, MatrixKind::Query),
            };
            layer.push(tphs_attention_latency(chip, dram, &wilu, &tphs)?);
        }
    }
    Ok(layer)
}

/// Schedules one full decoder/encoder layer.
///
/// # Errors
///
/// Propagates executor errors.
pub fn layer_latency(
    chip: &ChipConfig,
    dram: &mut DramModel,
    plan: &ExecutionPlan,
    params: &LayerParams<'_>,
) -> Result<LayerLatency, DataflowError> {
    let wilu = WiluModule::zcu102();
    let mut layer = LayerLatency::new();
    for spec in pre_attention_ops(plan, params) {
        layer.push(gemm_op_latency(chip, dram, &wilu, &spec)?);
    }
    layer.extend(attention_block_latency(chip, dram, plan, params)?);
    for spec in post_attention_ops(plan, params) {
        layer.push(gemm_op_latency(chip, dram, &wilu, &spec)?);
    }
    Ok(layer)
}

/// Schedules every layer of a model, returning per-layer latencies.
///
/// # Errors
///
/// Propagates executor errors.
#[allow(clippy::too_many_arguments)]
pub fn model_latency(
    chip: &ChipConfig,
    dram: &mut DramModel,
    plan: &ExecutionPlan,
    config: &TransformerConfig,
    tokens_new: usize,
    context: usize,
    packing_stats: Option<&ModelPackingStats>,
    packing_config: PackingConfig,
) -> Result<Vec<LayerLatency>, DataflowError> {
    (0..config.layers)
        .map(|layer| {
            let params = LayerParams {
                config,
                layer,
                tokens_new,
                context,
                packing_stats,
                packing_config,
                knobs: ScheduleKnobs::default(),
            };
            layer_latency(chip, dram, plan, &params)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use meadow_models::presets;
    use meadow_sim::{ClockDomain, Cycles};

    fn dram(gbps: f64) -> DramModel {
        DramModel::with_bandwidth(gbps, ClockDomain::zcu102()).unwrap()
    }

    fn params(config: &TransformerConfig, t: usize, c: usize) -> LayerParams<'_> {
        LayerParams {
            config,
            layer: 0,
            tokens_new: t,
            context: c,
            packing_stats: None,
            packing_config: PackingConfig::default(),
            knobs: ScheduleKnobs::default(),
        }
    }

    #[test]
    fn gemm_layer_has_twelve_ops() {
        let cfg = presets::opt_125m();
        let chip = ChipConfig::zcu102();
        let mut d = dram(12.0);
        let layer =
            layer_latency(&chip, &mut d, &ExecutionPlan::gemm_baseline(), &params(&cfg, 512, 512))
                .unwrap();
        let names: Vec<&str> = layer.ops.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(
            names,
            ["LN1", "K", "V", "Q", "QKT", "SM", "SMxV", "Proj", "LN2", "MLP1", "NL", "MLP2"]
        );
    }

    #[test]
    fn meadow_layer_fuses_attention() {
        let cfg = presets::opt_125m();
        let chip = ChipConfig::zcu102();
        let mut d = dram(12.0);
        let plan = ExecutionPlan { attention: AttentionDataflow::Tphs, packing: None };
        let layer = layer_latency(&chip, &mut d, &plan, &params(&cfg, 512, 512)).unwrap();
        let names: Vec<&str> = layer.ops.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, ["LN1", "K", "V", "TPHS", "Proj", "LN2", "MLP1", "NL", "MLP2"]);
    }

    #[test]
    fn tphs_beats_gemm_at_low_bandwidth_prefill() {
        let cfg = presets::opt_125m();
        let chip = ChipConfig::zcu102();
        let mut d1 = dram(1.0);
        let mut d2 = dram(1.0);
        let gemm =
            layer_latency(&chip, &mut d1, &ExecutionPlan::gemm_baseline(), &params(&cfg, 512, 512))
                .unwrap();
        let plan = ExecutionPlan { attention: AttentionDataflow::Tphs, packing: None };
        let tphs = layer_latency(&chip, &mut d2, &plan, &params(&cfg, 512, 512)).unwrap();
        assert!(
            tphs.makespan() < gemm.makespan(),
            "TPHS {} !< GEMM {}",
            tphs.makespan(),
            gemm.makespan()
        );
    }

    #[test]
    fn intermediate_traffic_dominates_gemm_prefill_scores() {
        let cfg = presets::opt_125m();
        let chip = ChipConfig::zcu102();
        let mut d = dram(12.0);
        layer_latency(&chip, &mut d, &ExecutionPlan::gemm_baseline(), &params(&cfg, 512, 512))
            .unwrap();
        let scores = 12u64 * 512 * 512;
        // QKT store + SM fetch + SM store + SMxV fetch = 4 score volumes,
        // plus smaller activations.
        assert!(d.ledger().bytes(TrafficClass::IntermediateStore) >= 2 * scores);
        assert!(d.ledger().bytes(TrafficClass::IntermediateFetch) >= 2 * scores);
    }

    #[test]
    fn decode_is_weight_fetch_dominated() {
        let cfg = presets::opt_125m();
        let chip = ChipConfig::zcu102();
        let mut d = dram(12.0);
        let layer =
            layer_latency(&chip, &mut d, &ExecutionPlan::gemm_baseline(), &params(&cfg, 1, 575))
                .unwrap();
        let weight_cycles = d.ledger().cycles(TrafficClass::WeightFetch);
        assert!(
            weight_cycles.get() as f64 > 0.7 * layer.makespan().get() as f64,
            "weights {} of {}",
            weight_cycles,
            layer.makespan()
        );
        assert!(layer.compute() < layer.fetch());
    }

    #[test]
    fn model_latency_scales_with_layers() {
        let cfg = presets::tiny_decoder();
        let chip = ChipConfig::zcu102();
        let mut d = dram(12.0);
        let layers = model_latency(
            &chip,
            &mut d,
            &ExecutionPlan::gemm_baseline(),
            &cfg,
            16,
            16,
            None,
            PackingConfig::default(),
        )
        .unwrap();
        assert_eq!(layers.len(), 2);
        assert!(layers.iter().all(|l| l.makespan() > Cycles::ZERO));
    }

    #[test]
    fn attention_block_is_a_subset_of_the_layer() {
        let cfg = presets::opt_125m();
        let chip = ChipConfig::zcu102();
        let mut d1 = dram(6.0);
        let mut d2 = dram(6.0);
        let plan = ExecutionPlan::gemm_baseline();
        let block =
            attention_block_latency(&chip, &mut d1, &plan, &params(&cfg, 256, 256)).unwrap();
        let layer = layer_latency(&chip, &mut d2, &plan, &params(&cfg, 256, 256)).unwrap();
        assert!(block.makespan() < layer.makespan());
        assert_eq!(block.ops.len(), 4);
    }
}
