//! GEMM-mode op execution: the paper's baseline semantics where every layer
//! fetches its operands from DRAM, computes on the PE array, and stores the
//! result back (§1, Fig. 1).
//!
//! Ops are described by a [`GemmOpSpec`] (operand traffic + compute shape);
//! [`gemm_op_latency`] charges BRAM-tiling-aware DRAM transfers, PE-array
//! compute, softmax/LN/NL unit time, and WILU unpacking for packed weights,
//! producing an [`OpLatency`] whose makespan is the sequential
//! fetch→compute→store sum — which is what makes the paper's stacked
//! latency-distribution figures meaningful.

use crate::breakdown::OpLatency;
use crate::error::DataflowError;
use crate::tiling::plan_gemm_tiling;
use meadow_packing::WiluModule;
use meadow_sim::modules::{LayerNormUnit, NonlinearUnit};
use meadow_sim::softmax_unit::SoftmaxUnit;
use meadow_sim::{ChipConfig, Cycles, DramModel, TrafficClass};
use serde::{Deserialize, Serialize};

/// How a weight matrix crosses the DRAM channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightFetch {
    /// Raw (unpacked) weight bytes.
    pub raw_bytes: u64,
    /// Packed transfer, if weight packing is enabled.
    pub packed: Option<PackedWeightTransfer>,
}

impl WeightFetch {
    /// An unpacked weight fetch.
    pub fn raw(raw_bytes: u64) -> Self {
        Self { raw_bytes, packed: None }
    }

    /// Bytes that actually cross the channel.
    pub fn transfer_bytes(&self) -> u64 {
        self.packed.map_or(self.raw_bytes, |p| p.transfer_bytes)
    }
}

/// Transfer description of one packed weight matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PackedWeightTransfer {
    /// Packed bytes (ID stream + unique matrix).
    pub transfer_bytes: u64,
    /// Bits per packet (mode field + payload), for MAU throughput.
    pub packet_bits: u32,
    /// Total chunk IDs, for lookup throughput.
    pub total_ids: u64,
}

/// Compute shape of one op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ComputeSpec {
    /// A matrix multiply of this many MACs on the PE array.
    Macs(u64),
    /// Softmax over `rows` rows of `features` scores on the SM modules.
    Softmax {
        /// Number of independent rows.
        rows: usize,
        /// Features per row.
        features: usize,
    },
    /// LayerNorm over `tokens` tokens of `features` on the LN modules.
    LayerNorm {
        /// Tokens to normalize.
        tokens: usize,
        /// Features per token.
        features: usize,
    },
    /// Elementwise nonlinearity on the NL modules.
    Nonlinear {
        /// Tokens to activate.
        tokens: usize,
        /// Features per token.
        features: usize,
    },
    /// No compute (pure data movement).
    None,
}

/// Full description of one GEMM-mode op.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GemmOpSpec {
    /// Display name ("Q", "QKT", "SM", ...).
    pub name: String,
    /// Weight fetch, if the op has weights.
    pub weight: Option<WeightFetch>,
    /// Non-weight operand fetches (class, bytes).
    pub inputs: Vec<(TrafficClass, u64)>,
    /// Result stores (class, bytes).
    pub stores: Vec<(TrafficClass, u64)>,
    /// Compute shape.
    pub compute: ComputeSpec,
}

/// Effective cycles to bring a weight matrix on chip: DRAM transfer,
/// overlapped with WILU unpacking when packed (the slower side wins).
pub fn weight_fetch_cycles(
    dram: &mut DramModel,
    weight: &WeightFetch,
    wilu: &WiluModule,
) -> Cycles {
    let bytes = weight.transfer_bytes();
    let dram_cycles = dram.transfer(TrafficClass::WeightFetch, bytes);
    match weight.packed {
        None => dram_cycles,
        Some(p) => {
            let packets = (bytes * 8).div_ceil(u64::from(p.packet_bits.max(1)));
            let mau = packets.div_ceil(wilu.packets_per_cycle.max(1));
            let lookup = p.total_ids.div_ceil(wilu.lookups_per_cycle.max(1));
            dram_cycles.max(Cycles(mau.max(lookup)))
        }
    }
}

/// Compute cycles of a [`ComputeSpec`] on the given chip.
pub fn compute_cycles(chip: &ChipConfig, compute: ComputeSpec) -> Cycles {
    match compute {
        ComputeSpec::Macs(macs) => Cycles::for_throughput(macs, chip.peak_macs_per_cycle().max(1)),
        ComputeSpec::Softmax { rows, features } => {
            let per_unit = rows.div_ceil(chip.sm_modules.max(1));
            SoftmaxUnit::default().pipelined_cycles(per_unit, features)
        }
        ComputeSpec::LayerNorm { tokens, features } => {
            LayerNormUnit.batch_cycles(tokens, features, chip.ln_modules)
        }
        ComputeSpec::Nonlinear { tokens, features } => {
            NonlinearUnit.batch_cycles(tokens, features, chip.nl_modules)
        }
        ComputeSpec::None => Cycles::ZERO,
    }
}

/// Executes one GEMM-mode op against the latency model.
///
/// # Errors
///
/// Currently infallible in practice but typed for forward compatibility with
/// stricter capacity validation.
pub fn gemm_op_latency(
    chip: &ChipConfig,
    dram: &mut DramModel,
    wilu: &WiluModule,
    spec: &GemmOpSpec,
) -> Result<OpLatency, DataflowError> {
    let mut fetch = Cycles::ZERO;
    // BRAM tiling: if operands exceed BRAMs, one side is re-fetched.
    let input_total: u64 = spec.inputs.iter().map(|&(_, b)| b).sum();
    let weight_bytes = spec.weight.as_ref().map_or(0, WeightFetch::transfer_bytes);
    let outcome = plan_gemm_tiling(
        input_total,
        weight_bytes,
        chip.input_bram_bytes as u64,
        chip.weight_bram_bytes as u64,
    );
    let weight_mult = outcome.weight_fetch_bytes.checked_div(weight_bytes).unwrap_or(1);
    let input_mult = outcome.input_fetch_bytes.checked_div(input_total).unwrap_or(1);
    if let Some(w) = &spec.weight {
        for _ in 0..weight_mult.max(1) {
            fetch += weight_fetch_cycles(dram, w, wilu);
        }
    }
    for &(class, bytes) in &spec.inputs {
        fetch += dram.transfer(class, bytes * input_mult.max(1));
    }
    let compute = compute_cycles(chip, spec.compute);
    let mut store = Cycles::ZERO;
    for &(class, bytes) in &spec.stores {
        store += dram.transfer(class, bytes);
    }
    Ok(OpLatency::sequential(spec.name.clone(), fetch, compute, store))
}

#[cfg(test)]
mod tests {
    use super::*;
    use meadow_sim::ClockDomain;

    fn dram(gbps: f64) -> DramModel {
        DramModel::with_bandwidth(gbps, ClockDomain::zcu102()).unwrap()
    }

    fn chip() -> ChipConfig {
        ChipConfig::zcu102()
    }

    #[test]
    fn plain_matmul_op() {
        let spec = GemmOpSpec {
            name: "Q".into(),
            weight: Some(WeightFetch::raw(768 * 768)),
            inputs: vec![(TrafficClass::IntermediateFetch, 512 * 768)],
            stores: vec![(TrafficClass::IntermediateStore, 512 * 768)],
            compute: ComputeSpec::Macs(512 * 768 * 768),
        };
        let mut d = dram(12.0);
        let lat = gemm_op_latency(&chip(), &mut d, &WiluModule::zcu102(), &spec).unwrap();
        assert!(lat.fetch > Cycles::ZERO);
        assert!(lat.compute > Cycles::ZERO);
        assert!(lat.store > Cycles::ZERO);
        assert_eq!(lat.makespan, lat.component_sum());
        // Fetch ≈ (589824 + 393216) / 15 ≈ 65536 cycles.
        let expect = ((768 * 768 + 512 * 768) as f64 / 15.0) as u64;
        assert!((lat.fetch.get() as i64 - expect as i64).unsigned_abs() < 200);
    }

    #[test]
    fn packed_weights_reduce_fetch() {
        let raw = WeightFetch::raw(2_359_296);
        let packed = WeightFetch {
            raw_bytes: 2_359_296,
            packed: Some(PackedWeightTransfer {
                transfer_bytes: 900_000,
                packet_bits: 132,
                total_ids: 1_179_648,
            }),
        };
        let mut d1 = dram(1.0);
        let mut d2 = dram(1.0);
        let wilu = WiluModule::zcu102();
        let c_raw = weight_fetch_cycles(&mut d1, &raw, &wilu);
        let c_packed = weight_fetch_cycles(&mut d2, &packed, &wilu);
        assert!(c_packed < c_raw);
        let ratio = c_raw.get() as f64 / c_packed.get() as f64;
        assert!((ratio - 2_359_296.0 / 900_000.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn wilu_bottlenecks_at_extreme_bandwidth() {
        let packed = WeightFetch {
            raw_bytes: 2_359_296,
            packed: Some(PackedWeightTransfer {
                transfer_bytes: 900_000,
                packet_bits: 132,
                total_ids: 1_179_648,
            }),
        };
        let wilu = WiluModule::zcu102();
        // At 51 Gbps the channel would take 900000/63.75 ≈ 14118 cycles but
        // the MAU needs packets/2 ≈ 27273 cycles: WILU becomes the limit.
        let mut d = dram(51.0);
        let cycles = weight_fetch_cycles(&mut d, &packed, &wilu);
        let packets = (900_000u64 * 8).div_ceil(132);
        assert_eq!(cycles, Cycles(packets.div_ceil(2).max(1_179_648 / 16)));
    }

    #[test]
    fn softmax_op_uses_sm_modules() {
        let spec = GemmOpSpec {
            name: "SM".into(),
            weight: None,
            inputs: vec![(TrafficClass::IntermediateFetch, 12 * 512 * 512)],
            stores: vec![(TrafficClass::IntermediateStore, 12 * 512 * 512)],
            compute: ComputeSpec::Softmax { rows: 12 * 512, features: 512 },
        };
        let mut d = dram(12.0);
        let lat = gemm_op_latency(&chip(), &mut d, &WiluModule::zcu102(), &spec).unwrap();
        // 6144 rows over 84 units = 74 rows/unit → (74+2)*512 cycles.
        assert_eq!(lat.compute, Cycles(76 * 512));
    }

    #[test]
    fn ln_and_nl_ops() {
        assert_eq!(
            compute_cycles(&chip(), ComputeSpec::LayerNorm { tokens: 512, features: 768 }),
            Cycles(64 * 2 * 768)
        );
        assert_eq!(
            compute_cycles(&chip(), ComputeSpec::Nonlinear { tokens: 512, features: 3072 }),
            Cycles(64 * 3072)
        );
        assert_eq!(compute_cycles(&chip(), ComputeSpec::None), Cycles::ZERO);
    }

    #[test]
    fn oversized_operands_trigger_refetch() {
        // Both operands far above 1 MB: weight re-fetched per input pass.
        let spec = GemmOpSpec {
            name: "huge".into(),
            weight: Some(WeightFetch::raw(4 << 20)),
            inputs: vec![(TrafficClass::InputFetch, 3 << 20)],
            stores: vec![],
            compute: ComputeSpec::None,
        };
        let mut with_refetch = dram(12.0);
        gemm_op_latency(&chip(), &mut with_refetch, &WiluModule::zcu102(), &spec).unwrap();
        let fetched = with_refetch.ledger().fetch_bytes();
        assert!(fetched > (7 << 20), "re-fetch must inflate traffic, got {fetched}");
    }

    #[test]
    fn traffic_classes_are_attributed() {
        let spec = GemmOpSpec {
            name: "K".into(),
            weight: Some(WeightFetch::raw(1000)),
            inputs: vec![(TrafficClass::InputFetch, 500)],
            stores: vec![(TrafficClass::KvStore, 200)],
            compute: ComputeSpec::Macs(1000),
        };
        let mut d = dram(6.0);
        gemm_op_latency(&chip(), &mut d, &WiluModule::zcu102(), &spec).unwrap();
        assert_eq!(d.ledger().bytes(TrafficClass::WeightFetch), 1000);
        assert_eq!(d.ledger().bytes(TrafficClass::InputFetch), 500);
        assert_eq!(d.ledger().bytes(TrafficClass::KvStore), 200);
    }
}
