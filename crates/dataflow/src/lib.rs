//! Execution engines for the MEADOW reproduction: the GEMM-mode baseline and
//! the Token-Parallel Head-Sequential (TPHS) dataflow (§4 of the paper).
//!
//! Two concerns are deliberately separated:
//!
//! * **Latency path** — works from dimensions alone, at any model scale.
//!   [`gemm`] charges each op the paper's GEMM semantics (fetch operands
//!   from DRAM → compute → store back); [`tphs`] schedules the fused
//!   `Q → QKᵀ → Softmax → SM·V` pipeline onto the chip's PEs and softmax
//!   modules with DMA prefetch overlap through the event engine.
//!   [`schedule`] assembles whole decoder layers under an [`ExecutionPlan`]
//!   and produces the fetch/compute/store breakdowns behind Figs. 1, 8, 9
//!   and 11.
//! * **Functional path** ([`functional`]) — runs real INT8 numbers through
//!   both dataflows on small configurations and proves they compute the same
//!   attention outputs, which is the reproduction's stand-in for the paper's
//!   "approximation-less" claim on the dataflow side.
//!
//! [`pipeline`] holds the blocking-aware flow-shop scheduler that underpins
//! the TPHS stage timing; [`tiling`] the BRAM-capacity-aware GEMM tiling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breakdown;
pub mod error;
pub mod forward;
pub mod functional;
pub mod gemm;
pub mod pipeline;
pub mod schedule;
pub mod tiling;
pub mod tphs;

pub use breakdown::{LayerLatency, OpLatency};
pub use error::DataflowError;
pub use meadow_tensor::parallel::ExecConfig;
pub use schedule::{AttentionDataflow, ExecutionPlan, LayerParams};
