//! Flow-shop scheduling for the TPHS stage pipeline.
//!
//! TPHS pushes waves of tokens through a linear chain of stages
//! (Q → QKᵀ → MAX → EXP → DIV → SM·V) connected by double-buffered pipeline
//! registers (capacity-1 buffers, Fig. 2b). [`flow_shop_makespan`] gives the
//! closed form for uniform per-wave service times; [`flow_shop_schedule`]
//! simulates arbitrary per-item times with blocking, used both to validate
//! the closed form and to model ragged pipelines.

use meadow_sim::Cycles;
use meadow_tensor::parallel::{par_map, ExecConfig};

/// Makespan of `items` identical jobs through stages with the given service
/// times, with unlimited intermediate buffering (equivalently capacity-1
/// buffers — with deterministic uniform times no blocking ever occurs):
/// `Σ stage_times + (items − 1) · max(stage_times)`.
pub fn flow_shop_makespan(stage_times: &[Cycles], items: usize) -> Cycles {
    if items == 0 || stage_times.is_empty() {
        return Cycles::ZERO;
    }
    let sum: Cycles = stage_times.iter().copied().sum();
    let bottleneck = stage_times.iter().copied().fold(Cycles::ZERO, Cycles::max);
    sum + Cycles(bottleneck.get() * (items as u64 - 1))
}

/// Event-accurate *blocking* flow shop with possibly per-item service times.
///
/// `times[i][s]` is the service time of item `i` at stage `s`. An item may
/// only leave stage `s` when stage `s+1` is free (blocking); stages process
/// items in order. This is the zero-buffer semantics — a conservative bound
/// for the double-buffered PREGs, and exact for the uniform-time waves TPHS
/// actually schedules (where no blocking occurs and the closed form holds,
/// as the property tests verify).
///
/// Returns the completion time of the last item, or zero for empty input.
///
/// # Panics
///
/// Panics if rows have inconsistent stage counts (caller constructs the
/// matrix).
pub fn flow_shop_schedule(times: &[Vec<Cycles>]) -> Cycles {
    flow_shop_completion_times(times).last().copied().unwrap_or(Cycles::ZERO)
}

/// Per-item completion times of the blocking flow shop of
/// [`flow_shop_schedule`]: entry `i` is when item `i` leaves the last stage.
///
/// Items traverse the stages in order, so completion times are
/// non-decreasing and the last entry is the makespan. The serving simulator
/// uses this to give each request in a continuous-batching macro-step its
/// own first-token / finish timestamp (stages = decoder layers, items =
/// per-session steps) instead of charging the whole batch makespan to every
/// request.
///
/// # Panics
///
/// Panics if rows have inconsistent stage counts (caller constructs the
/// matrix).
pub fn flow_shop_completion_times(times: &[Vec<Cycles>]) -> Vec<Cycles> {
    let items = times.len();
    if items == 0 {
        return Vec::new();
    }
    let stages = times[0].len();
    if stages == 0 {
        return vec![Cycles::ZERO; items];
    }
    // depart[s] = time the most recent item left stage s (stage free again).
    let mut depart = vec![Cycles::ZERO; stages + 1];
    let mut finishes = Vec::with_capacity(items);
    for item in times {
        assert_eq!(item.len(), stages, "ragged stage-time matrix");
        // enter[s]: when this item starts service at stage s.
        let mut ready = Cycles::ZERO; // item available at stage 0 immediately
        for (s, &dur) in item.iter().enumerate() {
            // Start when the item is ready and the stage is free.
            let start = ready.max(depart[s]);
            let service_done = start + dur;
            // With a capacity-1 output buffer, the item occupies the stage
            // until the next stage has accepted the previous item, i.e. the
            // stage frees at max(service_done, depart[s + 1]).
            let leave = service_done.max(depart[s + 1]);
            depart[s] = leave;
            ready = service_done.max(depart[s + 1]);
            if s == stages - 1 {
                depart[s] = service_done;
                ready = service_done;
                finishes.push(service_done);
            }
        }
    }
    finishes
}

/// Evaluates many independent flow-shop instances on the worker threads of
/// `exec`, returning makespans in input order.
///
/// One flow-shop simulation is inherently sequential (every item's start
/// time depends on its predecessor), but design-space sweeps evaluate
/// thousands of independent instances — that outer loop is the profitable
/// axis, and each instance still runs the exact [`flow_shop_schedule`].
///
/// # Panics
///
/// Panics if any instance has rows with inconsistent stage counts.
pub fn flow_shop_schedule_many(instances: &[Vec<Vec<Cycles>>], exec: &ExecConfig) -> Vec<Cycles> {
    par_map(instances, exec, |times| flow_shop_schedule(times))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_many_matches_individual_schedules() {
        let instances: Vec<Vec<Vec<Cycles>>> = (0..9)
            .map(|i| {
                (0..3 + i % 4)
                    .map(|item| {
                        (0..2 + i % 3).map(|s| Cycles(1 + (i * 7 + item * 3 + s) as u64)).collect()
                    })
                    .collect()
            })
            .collect();
        let expected: Vec<Cycles> = instances.iter().map(|m| flow_shop_schedule(m)).collect();
        for threads in [1usize, 2, 4, 8] {
            let exec = ExecConfig::with_threads(threads);
            assert_eq!(flow_shop_schedule_many(&instances, &exec), expected, "threads {threads}");
        }
    }

    #[test]
    fn closed_form_matches_simulation_for_uniform_times() {
        for stages in 1..5usize {
            for items in 1..8usize {
                let stage_times: Vec<Cycles> =
                    (0..stages).map(|s| Cycles(10 + 3 * s as u64)).collect();
                let matrix: Vec<Vec<Cycles>> = (0..items).map(|_| stage_times.clone()).collect();
                assert_eq!(
                    flow_shop_schedule(&matrix),
                    flow_shop_makespan(&stage_times, items),
                    "stages {stages} items {items}"
                );
            }
        }
    }

    #[test]
    fn single_item_is_sum_of_stages() {
        let times = [Cycles(5), Cycles(7), Cycles(2)];
        assert_eq!(flow_shop_makespan(&times, 1), Cycles(14));
    }

    #[test]
    fn bottleneck_dominates_throughput() {
        let times = [Cycles(1), Cycles(100), Cycles(1)];
        // 102 + 9*100
        assert_eq!(flow_shop_makespan(&times, 10), Cycles(1002));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(flow_shop_makespan(&[], 5), Cycles::ZERO);
        assert_eq!(flow_shop_makespan(&[Cycles(5)], 0), Cycles::ZERO);
        assert_eq!(flow_shop_schedule(&[]), Cycles::ZERO);
        assert_eq!(flow_shop_schedule(&[vec![]]), Cycles::ZERO);
        assert!(flow_shop_completion_times(&[]).is_empty());
        assert_eq!(flow_shop_completion_times(&[vec![], vec![]]), vec![Cycles::ZERO; 2]);
    }

    #[test]
    fn completion_times_are_monotone_and_end_at_the_makespan() {
        let matrix: Vec<Vec<Cycles>> =
            (0..7).map(|i| vec![Cycles(3 + i % 4), Cycles(9 - i), Cycles(2 + i)]).collect();
        let finishes = flow_shop_completion_times(&matrix);
        assert_eq!(finishes.len(), 7);
        assert!(finishes.windows(2).all(|w| w[0] <= w[1]), "{finishes:?}");
        assert_eq!(*finishes.last().unwrap(), flow_shop_schedule(&matrix));
        // Single item: completion is the sum of its stage times.
        let single = flow_shop_completion_times(&[vec![Cycles(5), Cycles(7), Cycles(2)]]);
        assert_eq!(single, vec![Cycles(14)]);
    }

    #[test]
    fn blocking_delays_upstream() {
        // Item 0 is slow at stage 1; item 1 must wait at stage 0's buffer.
        let matrix = vec![vec![Cycles(1), Cycles(50)], vec![Cycles(1), Cycles(1)]];
        let makespan = flow_shop_schedule(&matrix);
        // Item 0 finishes at 1+50 = 51; item 1 can only start stage 1 at 51,
        // finishing at 52.
        assert_eq!(makespan, Cycles(52));
    }

    #[test]
    fn ragged_times_are_handled() {
        // Decreasing service times: later items catch up but never overtake.
        let matrix = vec![
            vec![Cycles(10), Cycles(10)],
            vec![Cycles(5), Cycles(5)],
            vec![Cycles(1), Cycles(1)],
        ];
        let makespan = flow_shop_schedule(&matrix);
        // item0: s0 0-10, s1 10-20. item1: s0 starts 10, done 15, blocked in
        // s0 until s1 frees at 20, s1 20-25. item2: s0 starts 20 (when item1
        // vacates), done 21, blocked until 25, s1 25-26.
        assert_eq!(makespan, Cycles(26));
    }

    #[test]
    fn lower_bound_holds() {
        // Makespan is at least items × bottleneck for any schedule.
        let matrix: Vec<Vec<Cycles>> =
            (0..6).map(|i| vec![Cycles(3 + i), Cycles(9), Cycles(2)]).collect();
        let makespan = flow_shop_schedule(&matrix);
        assert!(makespan >= Cycles(6 * 9));
    }
}
