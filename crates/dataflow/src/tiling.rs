//! BRAM-capacity-aware GEMM tiling.
//!
//! When a GEMM's operands exceed the on-chip BRAMs, some operand must be
//! re-fetched once per tile pass of the other. The planner picks the cheaper
//! orientation (input-resident or weight-resident), which is what a
//! competent GEMM mapping on the ZCU102 would do; the extra traffic it
//! reports is charged by the GEMM executor.

use serde::{Deserialize, Serialize};

/// Result of planning one GEMM's tiling against the BRAM capacities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TilingOutcome {
    /// Total input bytes fetched (≥ the raw input size on re-fetch).
    pub input_fetch_bytes: u64,
    /// Total weight bytes fetched (≥ the raw/packed weight size).
    pub weight_fetch_bytes: u64,
    /// Number of resident-operand passes (1 = no re-fetch).
    pub passes: u64,
    /// Which operand stays resident across the passes.
    pub resident: ResidentOperand,
}

/// Which operand the tiling keeps on-chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResidentOperand {
    /// Input activations stay in the input BRAM; weights stream.
    Input,
    /// Weights stay in the weight BRAM; inputs stream.
    Weight,
}

/// Plans the tiling of a GEMM with `input_bytes` of activations and
/// `weight_bytes` of (possibly packed) weights against the two BRAMs.
///
/// Streaming through a BRAM needs no residency (double-buffered burst
/// buffers); only the *resident* operand is capacity-limited. If both
/// operands fit, each is fetched exactly once. Otherwise the operand kept
/// resident is split into `ceil(size / capacity)` tiles and the other
/// operand is re-fetched once per tile; the planner returns the cheaper
/// orientation (total fetched bytes, ties to input-resident).
pub fn plan_gemm_tiling(
    input_bytes: u64,
    weight_bytes: u64,
    input_bram_bytes: u64,
    weight_bram_bytes: u64,
) -> TilingOutcome {
    let input_fits = input_bytes <= input_bram_bytes;
    let weight_fits = weight_bytes <= weight_bram_bytes;
    if input_fits || weight_fits {
        // At least one operand can be resident in full: a single pass with
        // the other operand streamed once.
        let resident = if input_fits { ResidentOperand::Input } else { ResidentOperand::Weight };
        return TilingOutcome {
            input_fetch_bytes: input_bytes,
            weight_fetch_bytes: weight_bytes,
            passes: 1,
            resident,
        };
    }
    // Neither fits: compare input-resident vs weight-resident plans.
    let input_passes = input_bytes.div_ceil(input_bram_bytes.max(1));
    let weight_passes = weight_bytes.div_ceil(weight_bram_bytes.max(1));
    let input_resident_total = input_bytes + weight_bytes * input_passes;
    let weight_resident_total = weight_bytes + input_bytes * weight_passes;
    if input_resident_total <= weight_resident_total {
        TilingOutcome {
            input_fetch_bytes: input_bytes,
            weight_fetch_bytes: weight_bytes * input_passes,
            passes: input_passes,
            resident: ResidentOperand::Input,
        }
    } else {
        TilingOutcome {
            input_fetch_bytes: input_bytes * weight_passes,
            weight_fetch_bytes: weight_bytes,
            passes: weight_passes,
            resident: ResidentOperand::Weight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn everything_fits_single_pass() {
        let t = plan_gemm_tiling(100, 200, MB, MB);
        assert_eq!(t.passes, 1);
        assert_eq!(t.input_fetch_bytes, 100);
        assert_eq!(t.weight_fetch_bytes, 200);
    }

    #[test]
    fn oversized_weights_stream_once_when_input_fits() {
        // OPT-125M MLP1 at 512 tokens: input 384 KB fits, weights 2.25 MB
        // stream through without re-fetch.
        let t = plan_gemm_tiling(512 * 768, 768 * 3072, MB, MB);
        assert_eq!(t.passes, 1);
        assert_eq!(t.weight_fetch_bytes, 768 * 3072);
        assert_eq!(t.resident, ResidentOperand::Input);
    }

    #[test]
    fn neither_fits_picks_cheaper_orientation() {
        // input 1.5 MB (2 passes), weight 2.3 MB (3 passes).
        let input = 3 * MB / 2;
        let weight = 2 * MB + 300_000;
        let t = plan_gemm_tiling(input, weight, MB, MB);
        // input-resident: in 1.5 + w 2×2.3 = 6.1 MB; weight-resident:
        // w 2.3 + in 3×1.5 = 6.8 MB → input resident wins.
        assert_eq!(t.resident, ResidentOperand::Input);
        assert_eq!(t.passes, 2);
        assert_eq!(t.weight_fetch_bytes, 2 * weight);
        assert_eq!(t.input_fetch_bytes, input);
    }

    #[test]
    fn weight_resident_wins_when_inputs_dominate() {
        let input = 10 * MB;
        let weight = 3 * MB / 2;
        let t = plan_gemm_tiling(input, weight, MB, MB);
        // weight-resident: 1.5 + 2×10 = 21.5; input-resident: 10 + 10×1.5 = 25.
        assert_eq!(t.resident, ResidentOperand::Weight);
        assert_eq!(t.passes, 2);
        assert_eq!(t.input_fetch_bytes, 2 * input);
    }

    #[test]
    fn total_fetched_never_less_than_raw() {
        for (i, w) in [(10u64, 10u64), (MB * 3, MB * 5), (0, 100), (100, 0)] {
            let t = plan_gemm_tiling(i, w, MB, MB);
            assert!(t.input_fetch_bytes >= i);
            assert!(t.weight_fetch_bytes >= w);
            assert!(t.passes >= 1);
        }
    }
}
