//! Full functional forward pass of decoder layers under either execution
//! mode.
//!
//! [`crate::functional`] proves GEMM-vs-TPHS equivalence for the attention
//! chain in isolation; this module assembles whole decoder layers —
//! LayerNorm → attention → projection → residual → LayerNorm → MLP →
//! residual — and whole models, so a downstream user can actually *run*
//! tokens through synthesized weights under both modes and observe identical
//! outputs. Everything stays in the W8A8 domain: activations are INT8 with
//! per-tensor scales, accumulation is INT32, and normalization happens in
//! `f32` on dequantized values exactly as the LN modules do.

use crate::error::DataflowError;
use crate::functional::{
    attention_reference, attention_tphs_functional, AttentionProblem, AttentionScales,
};
use meadow_models::weights::{LayerWeights, ModelWeights};
use meadow_models::{MatrixKind, TransformerConfig};
use meadow_tensor::fixed::ExpLut;
use meadow_tensor::gemm::{matmul_i8_bt_with, requantize_i32};
use meadow_tensor::layernorm::{layernorm_rows, LayerNormParams};
use meadow_tensor::parallel::{par_map, ExecConfig};
use meadow_tensor::softmax::SoftmaxKind;
use meadow_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Which execution mode computes the attention chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ForwardMode {
    /// Matrix-level GEMM reference.
    Gemm,
    /// TPHS head-sequential pipeline through the PE models.
    Tphs {
        /// Tokens processed in parallel per wave.
        token_parallelism: usize,
    },
}

/// Uniform activation scale used across the functional forward pass. One
/// shared scale keeps both modes on the identical quantization grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForwardScales {
    /// Activation scale (inputs, residuals, layer outputs).
    pub activation: f32,
    /// Weight scale for every matrix.
    pub weight: f32,
}

impl Default for ForwardScales {
    fn default() -> Self {
        Self { activation: 0.04, weight: 0.02 }
    }
}

impl ForwardScales {
    fn requant_multiplier(&self) -> f32 {
        // acc · (act · w) / act = acc · w — outputs share the input grid.
        self.weight * self.activation / self.activation * self.weight / self.weight
    }

    fn attention_scales(&self) -> AttentionScales {
        AttentionScales {
            x: self.activation,
            wq: self.weight,
            q: self.activation,
            k: self.activation,
            v: self.activation,
            out: self.activation,
        }
    }
}

fn linear(
    x: &Matrix<i8>,
    w: &Matrix<i8>,
    scales: &ForwardScales,
    exec: &ExecConfig,
) -> Result<Matrix<i8>, DataflowError> {
    let acc = matmul_i8_bt_with(x, w, exec)?;
    Ok(requantize_i32(&acc, scales.requant_multiplier())?)
}

fn residual_add(a: &Matrix<i8>, b: &Matrix<i8>) -> Result<Matrix<i8>, DataflowError> {
    if a.shape() != b.shape() {
        return Err(DataflowError::Schedule {
            reason: format!("residual shapes {:?} vs {:?}", a.shape(), b.shape()),
        });
    }
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (i16::from(x) + i16::from(y)).clamp(-128, 127) as i8)
        .collect();
    Ok(Matrix::from_vec(a.rows(), a.cols(), data)?)
}

fn layernorm_i8(x: &Matrix<i8>, scales: &ForwardScales) -> Result<Matrix<i8>, DataflowError> {
    let real = x.dequantize(scales.activation);
    let normed = layernorm_rows(&real, &LayerNormParams::identity(x.cols()))?;
    let data = normed
        .as_slice()
        .iter()
        .map(|&v| (v / scales.activation).round().clamp(-128.0, 127.0) as i8)
        .collect();
    Ok(Matrix::from_vec(x.rows(), x.cols(), data)?)
}

/// Runs one decoder layer forward.
///
/// # Errors
///
/// Propagates shape and arithmetic errors from the underlying kernels.
pub fn decoder_layer_forward(
    x: &Matrix<i8>,
    weights: &LayerWeights,
    config: &TransformerConfig,
    mode: ForwardMode,
    scales: &ForwardScales,
    lut: &ExpLut,
) -> Result<Matrix<i8>, DataflowError> {
    decoder_layer_forward_with(x, weights, config, mode, scales, lut, &ExecConfig::serial())
}

/// [`decoder_layer_forward`] with caller-chosen parallelism: every linear
/// projection runs its GEMM row-partitioned across the worker threads of
/// `exec`. Outputs are bit-identical to the serial path for every thread
/// count (each output row is accumulated by exactly one worker in serial
/// order).
///
/// # Errors
///
/// Propagates shape and arithmetic errors from the underlying kernels.
#[allow(clippy::too_many_arguments)]
pub fn decoder_layer_forward_with(
    x: &Matrix<i8>,
    weights: &LayerWeights,
    config: &TransformerConfig,
    mode: ForwardMode,
    scales: &ForwardScales,
    lut: &ExpLut,
    exec: &ExecConfig,
) -> Result<Matrix<i8>, DataflowError> {
    // LN1.
    let normed = layernorm_i8(x, scales)?;
    // K/V projections are GEMM-mode in both plans (§6.1).
    let k_cache = linear(&normed, weights.matrix(MatrixKind::Key), scales, exec)?;
    let v_cache = linear(&normed, weights.matrix(MatrixKind::Value), scales, exec)?;
    // Attention chain: the part the two modes compute differently.
    let problem = AttentionProblem {
        x: normed.clone(),
        wq: weights.matrix(MatrixKind::Query).clone(),
        k_cache,
        v_cache,
        heads: config.heads,
        scales: scales.attention_scales(),
        softmax: SoftmaxKind::Exact,
    };
    let attn = match mode {
        ForwardMode::Gemm => attention_reference(&problem, lut)?,
        ForwardMode::Tphs { token_parallelism } => {
            attention_tphs_functional(&problem, token_parallelism, lut)?.0
        }
    };
    // Projection + residual.
    let proj = linear(&attn, weights.matrix(MatrixKind::Proj), scales, exec)?;
    let x = residual_add(x, &proj)?;
    // LN2 + MLP + residual.
    let normed = layernorm_i8(&x, scales)?;
    let mut mid = linear(&normed, weights.matrix(MatrixKind::MlpUp), scales, exec)?;
    for v in mid.as_mut_slice() {
        *v = config.activation.apply_i8(*v, scales.activation);
    }
    let down = linear(&mid, weights.matrix(MatrixKind::MlpDown), scales, exec)?;
    residual_add(&x, &down)
}

/// Runs every layer of a materialized model forward.
///
/// # Errors
///
/// Propagates layer errors.
pub fn model_forward(
    x: &Matrix<i8>,
    weights: &ModelWeights,
    mode: ForwardMode,
    scales: &ForwardScales,
    lut: &ExpLut,
) -> Result<Matrix<i8>, DataflowError> {
    model_forward_with(x, weights, mode, scales, lut, &ExecConfig::serial())
}

/// [`model_forward`] with caller-chosen parallelism (layers stay
/// sequential — each consumes the previous layer's output — but every
/// layer's projections run on `exec`'s workers).
///
/// # Errors
///
/// Propagates layer errors.
pub fn model_forward_with(
    x: &Matrix<i8>,
    weights: &ModelWeights,
    mode: ForwardMode,
    scales: &ForwardScales,
    lut: &ExpLut,
    exec: &ExecConfig,
) -> Result<Matrix<i8>, DataflowError> {
    let mut state = x.clone();
    for layer in 0..weights.num_layers() {
        state = decoder_layer_forward_with(
            &state,
            weights.layer(layer),
            &weights.config,
            mode,
            scales,
            lut,
            exec,
        )?;
    }
    Ok(state)
}

/// Runs independent sequences through the model concurrently: one scoped
/// worker per sequence (dynamically dispatched, results in input order).
/// Each sequence itself runs the serial forward path, so outputs are
/// bit-identical to mapping [`model_forward`] over `inputs`.
///
/// This is the request-level fan-out a batching server would use; the
/// per-layer `exec` parallelism of [`model_forward_with`] is the
/// complementary intra-request axis.
///
/// # Errors
///
/// Returns the first sequence error in input order.
pub fn batch_model_forward(
    inputs: &[Matrix<i8>],
    weights: &ModelWeights,
    mode: ForwardMode,
    scales: &ForwardScales,
    lut: &ExpLut,
    exec: &ExecConfig,
) -> Result<Vec<Matrix<i8>>, DataflowError> {
    par_map(inputs, exec, |x| model_forward(x, weights, mode, scales, lut)).into_iter().collect()
}

/// Sanity helper: fraction of elements that differ between two activations.
pub fn mismatch_fraction(a: &Matrix<i8>, b: &Matrix<i8>) -> f64 {
    if a.shape() != b.shape() || a.is_empty() {
        return 1.0;
    }
    let diff = a.as_slice().iter().zip(b.as_slice()).filter(|(x, y)| x != y).count();
    diff as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use meadow_models::presets;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tokens(t: usize, d: usize, seed: u64) -> Matrix<i8> {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<i8> = (0..t * d).map(|_| rng.gen_range(-50..=50)).collect();
        Matrix::from_vec(t, d, data).unwrap()
    }

    #[test]
    fn layer_forward_is_mode_invariant() {
        let config = presets::tiny_decoder();
        let weights = ModelWeights::synthesize(&config).unwrap();
        let lut = ExpLut::hardware_default();
        let x = random_tokens(6, config.d_model, 17);
        let scales = ForwardScales::default();
        let gemm =
            decoder_layer_forward(&x, weights.layer(0), &config, ForwardMode::Gemm, &scales, &lut)
                .unwrap();
        for parallelism in [1usize, 3, 8] {
            let tphs = decoder_layer_forward(
                &x,
                weights.layer(0),
                &config,
                ForwardMode::Tphs { token_parallelism: parallelism },
                &scales,
                &lut,
            )
            .unwrap();
            assert_eq!(tphs, gemm, "P={parallelism}");
        }
    }

    #[test]
    fn whole_model_forward_is_mode_invariant() {
        let config = presets::tiny_decoder();
        let weights = ModelWeights::synthesize(&config).unwrap();
        let lut = ExpLut::hardware_default();
        let x = random_tokens(4, config.d_model, 29);
        let scales = ForwardScales::default();
        let gemm = model_forward(&x, &weights, ForwardMode::Gemm, &scales, &lut).unwrap();
        let tphs =
            model_forward(&x, &weights, ForwardMode::Tphs { token_parallelism: 4 }, &scales, &lut)
                .unwrap();
        assert_eq!(mismatch_fraction(&gemm, &tphs), 0.0);
        assert!(gemm.as_slice().iter().any(|&v| v != 0));
    }

    #[test]
    fn parallel_forward_is_bit_identical() {
        let config = presets::tiny_decoder();
        let weights = ModelWeights::synthesize(&config).unwrap();
        let lut = ExpLut::hardware_default();
        let x = random_tokens(6, config.d_model, 41);
        let scales = ForwardScales::default();
        let serial = model_forward(&x, &weights, ForwardMode::Gemm, &scales, &lut).unwrap();
        for threads in [2usize, 4, 8] {
            let exec = ExecConfig::with_threads(threads);
            let par =
                model_forward_with(&x, &weights, ForwardMode::Gemm, &scales, &lut, &exec).unwrap();
            assert_eq!(par, serial, "threads {threads}");
        }
    }

    #[test]
    fn batch_forward_matches_per_sequence_forward() {
        let config = presets::tiny_decoder();
        let weights = ModelWeights::synthesize(&config).unwrap();
        let lut = ExpLut::hardware_default();
        let scales = ForwardScales::default();
        let inputs: Vec<Matrix<i8>> =
            (0..5).map(|i| random_tokens(3 + i, config.d_model, 50 + i as u64)).collect();
        let expected: Vec<Matrix<i8>> = inputs
            .iter()
            .map(|x| model_forward(x, &weights, ForwardMode::Gemm, &scales, &lut).unwrap())
            .collect();
        for threads in [1usize, 4] {
            let exec = ExecConfig::with_threads(threads);
            let batch =
                batch_model_forward(&inputs, &weights, ForwardMode::Gemm, &scales, &lut, &exec)
                    .unwrap();
            assert_eq!(batch, expected, "threads {threads}");
        }
    }

    #[test]
    fn forward_changes_the_activations() {
        let config = presets::tiny_decoder();
        let weights = ModelWeights::synthesize(&config).unwrap();
        let lut = ExpLut::hardware_default();
        let x = random_tokens(4, config.d_model, 31);
        let y = model_forward(&x, &weights, ForwardMode::Gemm, &ForwardScales::default(), &lut)
            .unwrap();
        assert_ne!(x, y);
        assert_eq!(x.shape(), y.shape());
    }

    #[test]
    fn residual_add_saturates() {
        let a = Matrix::from_rows(&[&[120i8, -120]]).unwrap();
        let b = Matrix::from_rows(&[&[120i8, -120]]).unwrap();
        let c = residual_add(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[127, -128]);
        let bad = Matrix::<i8>::zeros(2, 2);
        assert!(residual_add(&a, &bad).is_err());
    }

    #[test]
    fn mismatch_fraction_metrics() {
        let a = Matrix::from_rows(&[&[1i8, 2, 3, 4]]).unwrap();
        let mut b = a.clone();
        assert_eq!(mismatch_fraction(&a, &b), 0.0);
        b.as_mut_slice()[0] = 9;
        assert_eq!(mismatch_fraction(&a, &b), 0.25);
        assert_eq!(mismatch_fraction(&a, &Matrix::<i8>::zeros(2, 2)), 1.0);
    }
}
