//! Functional execution of the attention block under both dataflows.
//!
//! The latency models in [`crate::gemm`] and [`crate::tphs`] work from
//! dimensions; this module runs *actual INT8 numbers* through the two
//! dataflows and proves they agree bit-for-bit. The GEMM reference computes
//! matrix-level `Q = X·W_Qᵀ`, per-head `S = Q_h·K_hᵀ`, softmax and `S·V_h`;
//! the TPHS path walks head-by-head, wave-by-wave through the PE models
//! ([`meadow_sim::pe`]) and the softmax datapath exactly as the pipeline
//! streams them. Both share one scalar requantization function and one
//! softmax implementation, so equality is exact rather than approximate.

use crate::error::DataflowError;
use meadow_sim::pe::{BroadcastingMacPe, ParallelMacPe};
use meadow_sim::Cycles;
use meadow_tensor::fixed::ExpLut;
use meadow_tensor::gemm::{matmul_i8, matmul_i8_bt, requantize_value};
use meadow_tensor::softmax::{softmax_scores_i32, SoftmaxKind};
use meadow_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Quantization scales threaded through the attention block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttentionScales {
    /// Input activation scale.
    pub x: f32,
    /// `W_Q` weight scale.
    pub wq: f32,
    /// Q output scale.
    pub q: f32,
    /// K cache scale.
    pub k: f32,
    /// V cache scale.
    pub v: f32,
    /// Attention-output scale.
    pub out: f32,
}

impl Default for AttentionScales {
    fn default() -> Self {
        Self { x: 0.04, wq: 0.02, q: 0.03, k: 0.04, v: 0.04, out: 0.02 }
    }
}

/// One attention block's operands.
#[derive(Debug, Clone, PartialEq)]
pub struct AttentionProblem {
    /// Input tokens `X` (T × D), already normalized.
    pub x: Matrix<i8>,
    /// Query weights `W_Q` (D × D), stored `(out, in)`.
    pub wq: Matrix<i8>,
    /// Key cache (C × D).
    pub k_cache: Matrix<i8>,
    /// Value cache (C × D).
    pub v_cache: Matrix<i8>,
    /// Number of attention heads.
    pub heads: usize,
    /// Quantization scales.
    pub scales: AttentionScales,
    /// Softmax implementation (must match between the two dataflows).
    pub softmax: SoftmaxKind,
}

impl AttentionProblem {
    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.x.cols() / self.heads.max(1)
    }

    /// Validates operand shapes.
    ///
    /// # Errors
    ///
    /// Returns [`DataflowError::Schedule`] for inconsistent shapes.
    pub fn validate(&self) -> Result<(), DataflowError> {
        let d = self.x.cols();
        if self.heads == 0 || !d.is_multiple_of(self.heads) {
            return Err(DataflowError::Schedule {
                reason: format!("heads {} must divide d_model {d}", self.heads),
            });
        }
        if self.wq.shape() != (d, d) {
            return Err(DataflowError::Schedule {
                reason: format!("wq shape {:?} != ({d}, {d})", self.wq.shape()),
            });
        }
        if self.k_cache.cols() != d || self.v_cache.cols() != d {
            return Err(DataflowError::Schedule {
                reason: "KV cache width must equal d_model".to_string(),
            });
        }
        if self.k_cache.rows() != self.v_cache.rows() {
            return Err(DataflowError::Schedule {
                reason: "K and V cache lengths differ".to_string(),
            });
        }
        Ok(())
    }

    fn q_multiplier(&self) -> f32 {
        self.scales.x * self.scales.wq / self.scales.q
    }

    fn score_scale(&self) -> f32 {
        self.scales.q * self.scales.k / (self.head_dim() as f32).sqrt()
    }

    fn out_multiplier(&self, prob_scale: f32) -> f32 {
        prob_scale * self.scales.v / self.scales.out
    }
}

/// Matrix-level GEMM reference for the attention block.
///
/// # Errors
///
/// Propagates shape and scale errors.
pub fn attention_reference(
    p: &AttentionProblem,
    lut: &ExpLut,
) -> Result<Matrix<i8>, DataflowError> {
    p.validate()?;
    let t = p.x.rows();
    let c = p.k_cache.rows();
    let d = p.x.cols();
    let hd = p.head_dim();
    let q_acc = matmul_i8_bt(&p.x, &p.wq)?;
    let q = meadow_tensor::gemm::requantize_i32(&q_acc, p.q_multiplier())?;
    let mut out = Matrix::<i8>::zeros(t, d);
    for h in 0..p.heads {
        let q_h = q.col_block(h * hd, hd)?;
        let k_h = p.k_cache.col_block(h * hd, hd)?;
        let v_h = p.v_cache.col_block(h * hd, hd)?;
        let scores = matmul_i8_bt(&q_h, &k_h)?; // T × C
        let (probs, prob_scale) = softmax_scores_i32(&scores, p.score_scale(), p.softmax, lut)?;
        let ctx_acc = matmul_i8(&probs, &v_h)?; // T × HD
        let ctx = meadow_tensor::gemm::requantize_i32(&ctx_acc, p.out_multiplier(prob_scale))?;
        for tok in 0..t {
            let row = out.row_mut(tok);
            row[h * hd..(h + 1) * hd].copy_from_slice(ctx.row(tok));
        }
        debug_assert_eq!(scores.cols(), c);
    }
    Ok(out)
}

/// TPHS execution through the PE datapaths: head-sequential, token-parallel
/// waves, pipeline-register forwarding. Returns the attention output and the
/// PE-charged compute cycles (a functional-path cross-check of the latency
/// model's compute term, not a replacement for it).
///
/// # Errors
///
/// Propagates shape and scale errors.
pub fn attention_tphs_functional(
    p: &AttentionProblem,
    token_parallelism: usize,
    lut: &ExpLut,
) -> Result<(Matrix<i8>, Cycles), DataflowError> {
    p.validate()?;
    let t = p.x.rows();
    let c = p.k_cache.rows();
    let d = p.x.cols();
    let hd = p.head_dim();
    let par = ParallelMacPe::default();
    let bc = BroadcastingMacPe::default();
    let wave = token_parallelism.max(1);
    let mut out = Matrix::<i8>::zeros(t, d);
    let mut cycles = Cycles::ZERO;
    for h in 0..p.heads {
        // Head-sequential: all tokens of head h before head h+1.
        for wave_start in (0..t).step_by(wave) {
            let wave_end = (wave_start + wave).min(t);
            let mut wave_cycles = Cycles::ZERO;
            for tok in wave_start..wave_end {
                // Q stage: HD dot products of length D on parallel PEs.
                let mut q_tok = vec![0i8; hd];
                let mut tok_cycles = Cycles::ZERO;
                for (j, qv) in q_tok.iter_mut().enumerate() {
                    let (acc, cyc) = par.execute_dot(p.x.row(tok), p.wq.row(h * hd + j));
                    *qv = requantize_value(acc, p.q_multiplier());
                    tok_cycles += cyc;
                }
                // QKᵀ stage: C dot products of length HD, streamed from the
                // pipeline register.
                let mut score_row = Vec::with_capacity(c);
                for key in 0..c {
                    let (acc, cyc) =
                        par.execute_dot(&q_tok, &p.k_cache.row(key)[h * hd..(h + 1) * hd]);
                    score_row.push(acc);
                    tok_cycles += cyc;
                }
                // SM stages (MAX/EXP/DIV) through the shared datapath.
                let scores = Matrix::from_vec(1, c, score_row)?;
                let (probs, prob_scale) =
                    softmax_scores_i32(&scores, p.score_scale(), p.softmax, lut)?;
                // SM·V stage: broadcasting PE accumulates over the context.
                let v_rows: Vec<&[i8]> =
                    (0..c).map(|r| &p.v_cache.row(r)[h * hd..(h + 1) * hd]).collect();
                let mut ctx_acc = vec![0i32; hd];
                tok_cycles += bc.execute_broadcast(probs.row(0), &v_rows, &mut ctx_acc);
                let out_row = out.row_mut(tok);
                for (j, &acc) in ctx_acc.iter().enumerate() {
                    out_row[h * hd + j] = requantize_value(acc, p.out_multiplier(prob_scale));
                }
                // Tokens in a wave run on distinct PEs: the wave costs the
                // slowest token, not the sum.
                wave_cycles = wave_cycles.max(tok_cycles);
            }
            cycles += wave_cycles;
        }
    }
    Ok((out, cycles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_problem(t: usize, c: usize, d: usize, heads: usize, seed: u64) -> AttentionProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mat = |rows: usize, cols: usize| {
            let data: Vec<i8> = (0..rows * cols).map(|_| rng.gen_range(-40..=40)).collect();
            Matrix::from_vec(rows, cols, data).unwrap()
        };
        AttentionProblem {
            x: mat(t, d),
            wq: mat(d, d),
            k_cache: mat(c, d),
            v_cache: mat(c, d),
            heads,
            scales: AttentionScales::default(),
            softmax: SoftmaxKind::Exact,
        }
    }

    #[test]
    fn tphs_matches_reference_exactly() {
        let lut = ExpLut::hardware_default();
        for (t, c, d, heads, seed) in
            [(4, 4, 16, 4, 1), (7, 9, 24, 3, 2), (1, 12, 32, 8, 3), (16, 16, 32, 4, 4)]
        {
            let p = random_problem(t, c, d, heads, seed);
            let reference = attention_reference(&p, &lut).unwrap();
            for parallelism in [1, 2, 5] {
                let (tphs, _) = attention_tphs_functional(&p, parallelism, &lut).unwrap();
                assert_eq!(tphs, reference, "t={t} c={c} d={d} h={heads} P={parallelism}");
            }
        }
    }

    #[test]
    fn lut_softmax_also_matches() {
        let lut = ExpLut::hardware_default();
        let mut p = random_problem(6, 8, 16, 2, 9);
        p.softmax = SoftmaxKind::Lut;
        let reference = attention_reference(&p, &lut).unwrap();
        let (tphs, _) = attention_tphs_functional(&p, 3, &lut).unwrap();
        assert_eq!(tphs, reference);
    }

    #[test]
    fn decode_shape_single_token() {
        let lut = ExpLut::hardware_default();
        let p = random_problem(1, 20, 16, 4, 11);
        let reference = attention_reference(&p, &lut).unwrap();
        let (tphs, cycles) = attention_tphs_functional(&p, 4, &lut).unwrap();
        assert_eq!(tphs, reference);
        assert!(cycles > Cycles::ZERO);
    }

    #[test]
    fn invalid_shapes_rejected() {
        let lut = ExpLut::hardware_default();
        let mut p = random_problem(4, 4, 16, 4, 1);
        p.heads = 3; // does not divide 16
        assert!(attention_reference(&p, &lut).is_err());
        let mut p = random_problem(4, 4, 16, 4, 1);
        p.wq = Matrix::<i8>::zeros(8, 16);
        assert!(attention_tphs_functional(&p, 2, &lut).is_err());
        let mut p = random_problem(4, 4, 16, 4, 1);
        p.v_cache = Matrix::<i8>::zeros(5, 16);
        assert!(p.validate().is_err());
    }

    #[test]
    fn wave_parallelism_reduces_charged_cycles() {
        let lut = ExpLut::hardware_default();
        let p = random_problem(8, 8, 16, 2, 21);
        let (_, serial) = attention_tphs_functional(&p, 1, &lut).unwrap();
        let (_, parallel) = attention_tphs_functional(&p, 8, &lut).unwrap();
        assert!(parallel < serial);
    }

    #[test]
    fn outputs_are_nontrivial() {
        let lut = ExpLut::hardware_default();
        let p = random_problem(4, 6, 16, 4, 33);
        let out = attention_reference(&p, &lut).unwrap();
        assert!(out.as_slice().iter().any(|&v| v != 0), "degenerate all-zero output");
    }
}
