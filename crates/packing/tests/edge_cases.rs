//! Edge cases of the packing pipeline: empty inputs, single chunks,
//! all-identical chunks, and raw bitstream round-trips at awkward widths.

use meadow_packing::bitstream::BitWriter;
use meadow_packing::chunk::{decompose, ChunkConfig};
use meadow_packing::{PackedWeights, PackingConfig, PackingLevel};
use meadow_tensor::Matrix;

#[test]
fn bitstream_round_trips_empty_input() {
    let stream = BitWriter::new().into_stream();
    assert_eq!(stream.bit_len(), 0);
    assert_eq!(stream.byte_len(), 0);
    let mut reader = stream.reader();
    assert_eq!(reader.remaining(), 0);
    assert!(reader.read(1).is_err(), "reading past the end must fail");
}

#[test]
fn bitstream_round_trips_single_value_at_every_width() {
    for bits in 1..=64u32 {
        let value = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        let mut writer = BitWriter::new();
        writer.write(value, bits).unwrap();
        let stream = writer.into_stream();
        assert_eq!(stream.bit_len(), u64::from(bits));
        let mut reader = stream.reader();
        assert_eq!(reader.read(bits).unwrap(), value, "width {bits}");
        assert_eq!(reader.remaining(), 0);
    }
}

#[test]
fn bitstream_round_trips_identical_values_across_word_boundaries() {
    // 13-bit fields repeatedly straddle the 64-bit word boundary.
    let mut writer = BitWriter::new();
    for _ in 0..100 {
        writer.write(0x1ABC, 13).unwrap();
    }
    let stream = writer.into_stream();
    assert_eq!(stream.bit_len(), 1300);
    let mut reader = stream.reader();
    for i in 0..100 {
        assert_eq!(reader.read(13).unwrap(), 0x1ABC, "field {i}");
    }
    assert_eq!(reader.remaining(), 0);
}

#[test]
fn bitstream_rejects_oversized_writes() {
    let mut writer = BitWriter::new();
    assert!(writer.write(0, 65).is_err(), "width beyond u64");
    assert!(writer.write(0b100, 2).is_err(), "value wider than the field");
    writer.write(0, 0).unwrap();
    assert_eq!(writer.bit_len(), 0, "zero-width writes are no-ops");
}

#[test]
fn zero_bit_reads_are_no_ops() {
    let mut writer = BitWriter::new();
    writer.write(7, 3).unwrap();
    let stream = writer.into_stream();
    let mut reader = stream.reader();
    assert_eq!(reader.read(0).unwrap(), 0);
    assert_eq!(reader.remaining(), 3);
    assert_eq!(reader.read(3).unwrap(), 7);
}

#[test]
fn packing_handles_empty_matrix_at_every_level() {
    let w = Matrix::<i8>::zeros(0, 0);
    for level in PackingLevel::all() {
        let packed = PackedWeights::pack(&w, &PackingConfig::default(), level).unwrap();
        assert_eq!(packed.unpack().unwrap(), w, "{level:?}");
        assert_eq!(packed.decode_ids().unwrap(), Vec::<u32>::new(), "{level:?}");
    }
}

#[test]
fn packing_handles_single_chunk_matrix() {
    // One row exactly one chunk wide: the smallest non-empty decomposition.
    let chunk_elems = PackingConfig::default().chunk.chunk_elems;
    let data: Vec<i8> = (0..chunk_elems).map(|i| i as i8 - 3).collect();
    let w = Matrix::from_vec(1, chunk_elems, data).unwrap();
    for level in PackingLevel::all() {
        let packed = PackedWeights::pack(&w, &PackingConfig::default(), level).unwrap();
        assert_eq!(packed.unpack().unwrap(), w, "{level:?}");
        assert_eq!(packed.decode_ids().unwrap(), vec![0], "single chunk gets ID 0 ({level:?})");
        assert_eq!(packed.unique().len(), 1, "{level:?}");
    }
}

#[test]
fn packing_collapses_all_identical_chunks_to_one_unique() {
    // 32 rows × 8 chunks, every chunk byte-identical: the unique matrix must
    // contain exactly one entry and all IDs must be zero.
    let chunk_elems = ChunkConfig::default().chunk_elems;
    let cols = chunk_elems * 8;
    let w = Matrix::from_vec(32, cols, vec![42i8; 32 * cols]).unwrap();

    let (unique, encoded) = decompose(&w, ChunkConfig::default()).unwrap();
    assert_eq!(unique.len(), 1);
    assert!(encoded.ids().iter().all(|&id| id == 0));

    for level in PackingLevel::all() {
        let packed = PackedWeights::pack(&w, &PackingConfig::default(), level).unwrap();
        assert_eq!(packed.unpack().unwrap(), w, "{level:?}");
        assert_eq!(packed.unique().len(), 1, "{level:?}");
        assert!(
            packed.packed_bits() < packed.raw_bits(),
            "fully redundant matrix must compress at {level:?}: {} >= {}",
            packed.packed_bits(),
            packed.raw_bits()
        );
    }
}

#[test]
fn packing_survives_alternating_two_chunk_palette() {
    // Exactly two distinct chunks alternating: IDs need exactly 1 bit of
    // uniform precision, the tightest non-trivial encode.
    let chunk_elems = ChunkConfig::default().chunk_elems;
    let cols = chunk_elems * 16;
    let data: Vec<i8> =
        (0..4 * cols).map(|i| if (i / chunk_elems) % 2 == 0 { 1 } else { -1 }).collect();
    let w = Matrix::from_vec(4, cols, data).unwrap();
    for level in PackingLevel::all() {
        let packed = PackedWeights::pack(&w, &PackingConfig::default(), level).unwrap();
        assert_eq!(packed.unpack().unwrap(), w, "{level:?}");
        assert_eq!(packed.unique().len(), 2, "{level:?}");
    }
}

#[test]
fn single_row_single_element_chunks() {
    // chunk_elems = 1 degenerates chunking to per-element dedup.
    let cfg = PackingConfig { chunk: ChunkConfig { chunk_elems: 1 }, ..PackingConfig::default() };
    let w = Matrix::from_vec(1, 6, vec![5i8, -5, 5, 0, 0, 5]).unwrap();
    for level in PackingLevel::all() {
        let packed = PackedWeights::pack(&w, &cfg, level).unwrap();
        assert_eq!(packed.unpack().unwrap(), w, "{level:?}");
        assert_eq!(packed.unique().len(), 3, "{level:?}");
    }
}
