//! Frequency-aware re-indexing (§5.3, Fig. 4c of the paper).
//!
//! Chunk IDs are re-assigned so that the most frequent chunks get the
//! smallest IDs. After re-indexing, the encoded matrix is dominated by
//! low-valued IDs, which lets the packet-specific encoder choose low
//! precisions far more often.

use crate::chunk::{EncodedMatrix, UniqueMatrix};
use crate::error::PackingError;
use serde::{Deserialize, Serialize};

/// Output of a frequency-aware re-index pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReindexResult {
    /// The unique matrix permuted so `chunk(new_id)` is the re-indexed table.
    pub unique: UniqueMatrix,
    /// The encoded matrix rewritten in new IDs.
    pub encoded: EncodedMatrix,
    /// Mapping from old ID to new ID.
    pub old_to_new: Vec<u32>,
}

/// Re-assigns chunk IDs by descending frequency (ties broken by old ID for
/// determinism) and rewrites both matrices.
///
/// # Errors
///
/// Returns [`PackingError::InvalidStream`] if the encoded matrix references
/// IDs outside the unique matrix.
pub fn frequency_reindex(
    unique: &UniqueMatrix,
    encoded: &EncodedMatrix,
) -> Result<ReindexResult, PackingError> {
    let n = unique.len();
    let mut freq = vec![0u64; n];
    for &id in encoded.ids() {
        let slot = freq.get_mut(id as usize).ok_or_else(|| PackingError::InvalidStream {
            reason: format!("id {id} outside unique matrix of {n}"),
        })?;
        *slot += 1;
    }
    // Old IDs sorted by (frequency desc, old id asc).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| freq[b].cmp(&freq[a]).then(a.cmp(&b)));
    let mut old_to_new = vec![0u32; n];
    for (rank, &old) in order.iter().enumerate() {
        old_to_new[old] = rank as u32;
    }
    let perm: Vec<usize> = old_to_new.iter().map(|&v| v as usize).collect();
    Ok(ReindexResult {
        unique: unique.permuted(&perm)?,
        encoded: encoded.remapped(&old_to_new)?,
        old_to_new,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{decompose, reconstruct, ChunkConfig};
    use meadow_tensor::Matrix;

    fn skewed() -> Matrix<i8> {
        // Chunk [9,9] appears 6 times, [1,1] twice, [2,2] once, [3,3] once.
        Matrix::from_rows(&[
            &[9, 9, 9, 9, 9, 9, 1, 1],
            &[9, 9, 9, 9, 9, 9, 1, 1],
            &[2, 2, 3, 3, 9, 9, 9, 9],
        ])
        .unwrap()
    }

    #[test]
    fn frequent_chunks_get_small_ids() {
        // Wait: [9,9] appears 6+2 = let me just rely on counting below.
        let (unique, encoded) = decompose(&skewed(), ChunkConfig::default()).unwrap();
        let res = frequency_reindex(&unique, &encoded).unwrap();
        // The most frequent chunk must be new ID 0.
        let mut freq = std::collections::HashMap::new();
        for &id in res.encoded.ids() {
            *freq.entry(id).or_insert(0u64) += 1;
        }
        let mut pairs: Vec<(u32, u64)> = freq.into_iter().collect();
        pairs.sort();
        // Frequencies must be non-increasing in new-ID order.
        for w in pairs.windows(2) {
            assert!(w[0].1 >= w[1].1, "ids not frequency-ordered: {pairs:?}");
        }
        assert_eq!(res.unique.chunk(0), Some(&[9i8, 9][..]));
    }

    #[test]
    fn reindexing_is_lossless() {
        let w = skewed();
        let (unique, encoded) = decompose(&w, ChunkConfig::default()).unwrap();
        let res = frequency_reindex(&unique, &encoded).unwrap();
        assert_eq!(reconstruct(&res.unique, &res.encoded).unwrap(), w);
    }

    #[test]
    fn mapping_is_a_permutation() {
        let (unique, encoded) = decompose(&skewed(), ChunkConfig::default()).unwrap();
        let res = frequency_reindex(&unique, &encoded).unwrap();
        let mut seen = vec![false; res.old_to_new.len()];
        for &v in &res.old_to_new {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn deterministic_tie_breaking() {
        // All chunks distinct → all frequencies 1 → order preserved.
        let w = Matrix::from_rows(&[&[1i8, 2, 3, 4, 5, 6]]).unwrap();
        let (unique, encoded) = decompose(&w, ChunkConfig::default()).unwrap();
        let res = frequency_reindex(&unique, &encoded).unwrap();
        assert_eq!(res.old_to_new, vec![0, 1, 2]);
    }

    #[test]
    fn empty_input() {
        let w = Matrix::<i8>::zeros(0, 0);
        let (unique, encoded) = decompose(&w, ChunkConfig::default()).unwrap();
        let res = frequency_reindex(&unique, &encoded).unwrap();
        assert!(res.old_to_new.is_empty());
        assert!(res.encoded.is_empty());
    }
}
