//! Packet formats: naive packing and packet-specific encoding precision
//! (§5.2, Fig. 4b of the paper), plus the [`PackedWeights`] container that
//! ties the whole pipeline together.
//!
//! Both formats move fixed-size packets (a mode field plus a
//! `payload_bits`-wide payload — one DRAM word group):
//!
//! * **Naive packing** gives every packet the same uniform precision
//!   `max_id_bits = ⌈log₂(#unique)⌉` and needs no mode field. Low-valued IDs
//!   waste bits — the inefficiency Fig. 4b calls out.
//! * **Packet-specific packing** prefixes each packet with a mode field that
//!   selects an exact per-packet precision (as in the paper's example, where
//!   packets carry 2-bit or 3-bit IDs). A packet at precision `p` carries
//!   `⌊payload / p⌋` IDs; the encoder greedily picks the precision that packs
//!   the most upcoming IDs into the next packet.
//!
//! Frequency-aware re-indexing reuses the packet-specific encoder on a
//! re-indexed ID stream (see [`crate::reindex`]).

use crate::bits_for_ids;
use crate::bitstream::{BitStream, BitWriter};
use crate::chunk::{decompose_with, reconstruct, ChunkConfig, EncodedMatrix, UniqueMatrix};
use crate::error::PackingError;
use crate::reindex::frequency_reindex;
use meadow_tensor::parallel::ExecConfig;
use meadow_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// The three optimization levels of §5 (each subsumes the previous).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PackingLevel {
    /// Indexing + uniform-precision packet packing.
    Naive,
    /// Indexing + packet-specific encoding precision.
    PacketSpecific,
    /// Frequency-aware re-indexing + packet-specific encoding precision.
    FrequencyAware,
}

impl PackingLevel {
    /// All levels, in increasing optimization order.
    pub fn all() -> [PackingLevel; 3] {
        [PackingLevel::Naive, PackingLevel::PacketSpecific, PackingLevel::FrequencyAware]
    }
}

/// Configuration shared by all packing levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PackingConfig {
    /// Chunk decomposition parameters.
    pub chunk: ChunkConfig,
    /// Packet payload width in bits (two DRAM words, 128, by default).
    pub payload_bits: u32,
}

impl Default for PackingConfig {
    fn default() -> Self {
        Self { chunk: ChunkConfig::default(), payload_bits: 128 }
    }
}

/// The precision ladder available to the MAU unpacker: every integer width
/// from 1 to `max_bits`, exactly as the paper's packets carry 2-bit and
/// 3-bit IDs side by side (Fig. 4b).
pub fn precision_ladder(max_bits: u32) -> Vec<u32> {
    (1..=max_bits).collect()
}

/// Bits needed to represent the single value `v` (minimum 1).
pub fn bits_needed(v: u32) -> u32 {
    (32 - v.leading_zeros()).max(1)
}

/// Stream-level metadata needed to decode a packed weight stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedMeta {
    /// Weight-matrix rows.
    pub rows: usize,
    /// Chunks per row.
    pub chunk_cols: usize,
    /// Elements per chunk.
    pub chunk_elems: usize,
    /// Number of unique chunks.
    pub unique_count: usize,
    /// Uniform ID precision (`⌈log₂(unique_count)⌉`, min 1).
    pub max_id_bits: u32,
    /// Packet payload width in bits.
    pub payload_bits: u32,
    /// Mode-field width in bits (0 for naive packing).
    pub mode_bits: u32,
    /// Total number of IDs in the stream.
    pub total_ids: usize,
    /// Number of packets emitted.
    pub packets: u64,
}

impl PackedMeta {
    /// Total bits per packet (mode field + payload).
    pub fn packet_bits(&self) -> u32 {
        self.mode_bits + self.payload_bits
    }
}

/// A fully packed weight matrix: unique matrix + packed ID stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackedWeights {
    level: PackingLevel,
    unique: UniqueMatrix,
    stream: BitStream,
    meta: PackedMeta,
}

impl PackedWeights {
    /// Packs a weight matrix at the requested optimization level.
    ///
    /// # Errors
    ///
    /// Returns chunking errors for indivisible dimensions and
    /// [`PackingError::PayloadTooNarrow`] if a single maximum-precision ID
    /// does not fit in the configured payload.
    pub fn pack(
        w: &Matrix<i8>,
        config: &PackingConfig,
        level: PackingLevel,
    ) -> Result<Self, PackingError> {
        Self::pack_with(w, config, level, &ExecConfig::serial())
    }

    /// [`PackedWeights::pack`] with caller-chosen parallelism for the chunk
    /// decomposition (the dominant cost of packing). The packed result is
    /// bit-identical for every thread count because
    /// [`decompose_with`] preserves the serial first-occurrence ID order.
    ///
    /// # Errors
    ///
    /// Same as [`PackedWeights::pack`].
    pub fn pack_with(
        w: &Matrix<i8>,
        config: &PackingConfig,
        level: PackingLevel,
        exec: &ExecConfig,
    ) -> Result<Self, PackingError> {
        let (unique, encoded) = decompose_with(w, config.chunk, exec)?;
        Self::from_decomposition(unique, encoded, config, level)
    }

    /// Packs an existing decomposition (used by synthetic generators and by
    /// ablations that control the indexing separately). The
    /// frequency-aware level performs its re-indexing here.
    ///
    /// # Errors
    ///
    /// Returns [`PackingError::PayloadTooNarrow`] if `payload_bits` cannot
    /// hold one maximum-precision ID.
    pub fn from_decomposition(
        unique: UniqueMatrix,
        encoded: EncodedMatrix,
        config: &PackingConfig,
        level: PackingLevel,
    ) -> Result<Self, PackingError> {
        let (unique, encoded) = if level == PackingLevel::FrequencyAware {
            let r = frequency_reindex(&unique, &encoded)?;
            (r.unique, r.encoded)
        } else {
            (unique, encoded)
        };
        let max_id_bits = bits_for_ids(unique.len());
        if config.payload_bits < max_id_bits {
            return Err(PackingError::PayloadTooNarrow {
                payload_bits: config.payload_bits,
                required_bits: max_id_bits,
            });
        }
        let (stream, mode_bits, packets) = match level {
            PackingLevel::Naive => {
                let (s, packets) = encode_naive(encoded.ids(), max_id_bits, config.payload_bits)?;
                (s, 0, packets)
            }
            PackingLevel::PacketSpecific | PackingLevel::FrequencyAware => {
                encode_packets(encoded.ids(), max_id_bits, config.payload_bits)?
            }
        };
        let meta = PackedMeta {
            rows: encoded.rows(),
            chunk_cols: encoded.chunk_cols(),
            chunk_elems: encoded.chunk_elems(),
            unique_count: unique.len(),
            max_id_bits,
            payload_bits: config.payload_bits,
            mode_bits,
            total_ids: encoded.len(),
            packets,
        };
        Ok(Self { level, unique, stream, meta })
    }

    /// The packing level used.
    pub fn level(&self) -> PackingLevel {
        self.level
    }

    /// Stream metadata.
    pub fn meta(&self) -> &PackedMeta {
        &self.meta
    }

    /// The (possibly re-indexed) unique matrix.
    pub fn unique(&self) -> &UniqueMatrix {
        &self.unique
    }

    /// The packed ID stream.
    pub fn stream(&self) -> &BitStream {
        &self.stream
    }

    /// Decodes the packed stream back to chunk IDs (the MAU datapath).
    ///
    /// # Errors
    ///
    /// Returns [`PackingError::InvalidStream`] or bitstream errors for
    /// corrupted streams.
    pub fn decode_ids(&self) -> Result<Vec<u32>, PackingError> {
        match self.level {
            PackingLevel::Naive => decode_naive(&self.stream, &self.meta),
            PackingLevel::PacketSpecific | PackingLevel::FrequencyAware => {
                decode_packets(&self.stream, &self.meta)
            }
        }
    }

    /// Reconstructs the exact original weight matrix (MAU decode + unique
    /// matrix lookup — the full WILU path).
    ///
    /// # Errors
    ///
    /// Propagates decode errors; returns [`PackingError::InvalidStream`] if
    /// an ID is out of table range.
    pub fn unpack(&self) -> Result<Matrix<i8>, PackingError> {
        let ids = self.decode_ids()?;
        let encoded = EncodedMatrix::from_parts(
            ids,
            self.meta.rows,
            self.meta.chunk_cols,
            self.meta.chunk_elems,
        );
        reconstruct(&self.unique, &encoded)
    }

    /// Raw (unpacked) weight size in bits.
    pub fn raw_bits(&self) -> u64 {
        (self.meta.rows * self.meta.chunk_cols * self.meta.chunk_elems) as u64 * 8
    }

    /// Total packed size in bits: ID stream plus the unique matrix, both of
    /// which must cross the DRAM channel.
    pub fn packed_bits(&self) -> u64 {
        self.stream.bit_len() + self.unique.size_bytes() * 8
    }

    /// Total bytes transferred from DRAM for this matrix.
    pub fn transfer_bytes(&self) -> u64 {
        self.stream.byte_len() + self.unique.size_bytes()
    }

    /// Compression ratio `raw / packed` (> 1 is a win).
    pub fn compression_ratio(&self) -> f64 {
        let packed = self.packed_bits();
        if packed == 0 {
            return 1.0;
        }
        self.raw_bits() as f64 / packed as f64
    }
}

fn write_padded(
    w: &mut BitWriter,
    ids: &[u32],
    precision: u32,
    payload_bits: u32,
) -> Result<(), PackingError> {
    let mut used = 0;
    for &id in ids {
        w.write(u64::from(id), precision)?;
        used += precision;
    }
    let mut pad = payload_bits - used;
    while pad > 0 {
        let step = pad.min(64);
        w.write(0, step)?;
        pad -= step;
    }
    Ok(())
}

fn skip_padding(
    r: &mut crate::bitstream::BitReader<'_>,
    used: u32,
    payload_bits: u32,
) -> Result<(), PackingError> {
    let mut pad = payload_bits - used;
    while pad > 0 {
        let step = pad.min(64);
        r.read(step)?;
        pad -= step;
    }
    Ok(())
}

fn encode_naive(
    ids: &[u32],
    max_bits: u32,
    payload_bits: u32,
) -> Result<(BitStream, u64), PackingError> {
    let cap = (payload_bits / max_bits) as usize;
    let mut w = BitWriter::new();
    let mut packets = 0u64;
    for group in ids.chunks(cap.max(1)) {
        write_padded(&mut w, group, max_bits, payload_bits)?;
        packets += 1;
    }
    Ok((w.into_stream(), packets))
}

fn decode_naive(stream: &BitStream, meta: &PackedMeta) -> Result<Vec<u32>, PackingError> {
    let cap = (meta.payload_bits / meta.max_id_bits) as usize;
    let mut r = stream.reader();
    let mut ids = Vec::with_capacity(meta.total_ids);
    while ids.len() < meta.total_ids {
        let take = cap.max(1).min(meta.total_ids - ids.len());
        let mut used = 0;
        for _ in 0..take {
            ids.push(r.read(meta.max_id_bits)? as u32);
            used += meta.max_id_bits;
        }
        skip_padding(&mut r, used, meta.payload_bits)?;
    }
    Ok(ids)
}

fn encode_packets(
    ids: &[u32],
    max_bits: u32,
    payload_bits: u32,
) -> Result<(BitStream, u32, u64), PackingError> {
    let mode_bits = bits_for_ids(max_bits as usize);
    let mut w = BitWriter::new();
    let mut pos = 0;
    let mut packets = 0u64;
    while pos < ids.len() {
        let remaining = ids.len() - pos;
        // Pick the precision that packs the most of the upcoming IDs into
        // one packet; ties go to the smaller precision. Scanning from
        // max_bits downward lets us stop early once smaller precisions can
        // no longer beat the incumbent.
        let mut best_p = max_bits;
        let mut best_take = ((payload_bits / max_bits) as usize).min(remaining);
        for p in (1..max_bits).rev() {
            let cap = (payload_bits / p) as usize;
            let take = cap.min(remaining);
            if take < best_take {
                continue;
            }
            if ids[pos..pos + take].iter().all(|&id| bits_needed(id) <= p) {
                best_p = p;
                best_take = take;
            }
        }
        w.write(u64::from(best_p - 1), mode_bits)?;
        write_padded(&mut w, &ids[pos..pos + best_take], best_p, payload_bits)?;
        pos += best_take;
        packets += 1;
    }
    Ok((w.into_stream(), mode_bits, packets))
}

fn decode_packets(stream: &BitStream, meta: &PackedMeta) -> Result<Vec<u32>, PackingError> {
    let mut r = stream.reader();
    let mut ids = Vec::with_capacity(meta.total_ids);
    while ids.len() < meta.total_ids {
        let p = r.read(meta.mode_bits)? as u32 + 1;
        if p > meta.max_id_bits {
            return Err(PackingError::InvalidStream {
                reason: format!("packet precision {p} exceeds max {}", meta.max_id_bits),
            });
        }
        let cap = (meta.payload_bits / p) as usize;
        let take = cap.min(meta.total_ids - ids.len());
        let mut used = 0;
        for _ in 0..take {
            ids.push(r.read(p)? as u32);
            used += p;
        }
        skip_padding(&mut r, used, meta.payload_bits)?;
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_with_skew() -> Matrix<i8> {
        // 64 chunks of [0,0] and a few rare chunks: heavy skew.
        let mut rows = Vec::new();
        for r in 0..8 {
            let mut row = vec![0i8; 16];
            if r == 7 {
                row[14] = 100;
                row[15] = 101;
            }
            if r == 6 {
                row[12] = 50;
                row[13] = 51;
            }
            rows.push(row);
        }
        let refs: Vec<&[i8]> = rows.iter().map(Vec::as_slice).collect();
        Matrix::from_rows(&refs).unwrap()
    }

    #[test]
    fn ladder_shapes() {
        assert_eq!(precision_ladder(1), vec![1]);
        assert_eq!(precision_ladder(3), vec![1, 2, 3]);
        assert_eq!(precision_ladder(11).len(), 11);
    }

    #[test]
    fn bits_needed_values() {
        assert_eq!(bits_needed(0), 1);
        assert_eq!(bits_needed(1), 1);
        assert_eq!(bits_needed(2), 2);
        assert_eq!(bits_needed(3), 2);
        assert_eq!(bits_needed(4), 3);
        assert_eq!(bits_needed(1271), 11);
    }

    #[test]
    fn all_levels_round_trip() {
        let w = matrix_with_skew();
        for level in PackingLevel::all() {
            let packed = PackedWeights::pack(&w, &PackingConfig::default(), level).unwrap();
            assert_eq!(packed.unpack().unwrap(), w, "level {level:?}");
        }
    }

    #[test]
    fn levels_improve_monotonically_on_skewed_data() {
        let w = matrix_with_skew();
        let cfg = PackingConfig::default();
        let naive = PackedWeights::pack(&w, &cfg, PackingLevel::Naive).unwrap();
        let pkt = PackedWeights::pack(&w, &cfg, PackingLevel::PacketSpecific).unwrap();
        let freq = PackedWeights::pack(&w, &cfg, PackingLevel::FrequencyAware).unwrap();
        assert!(pkt.compression_ratio() >= naive.compression_ratio() * 0.95);
        assert!(freq.compression_ratio() >= pkt.compression_ratio() * 0.95);
        assert!(naive.compression_ratio() > 1.0);
    }

    #[test]
    fn payload_too_narrow_is_detected() {
        // 4096+ distinct chunk pairs → 13-bit IDs > 8-bit payload.
        let vals: Vec<i8> = (0..=127).collect();
        let mut rows = Vec::new();
        for a in 0..64 {
            let mut row = Vec::new();
            for b in 0..64 {
                row.push(vals[a]);
                row.push(vals[b]);
            }
            rows.push(row);
        }
        let refs: Vec<&[i8]> = rows.iter().map(Vec::as_slice).collect();
        let w = Matrix::from_rows(&refs).unwrap();
        let cfg = PackingConfig { payload_bits: 8, ..PackingConfig::default() };
        assert!(matches!(
            PackedWeights::pack(&w, &cfg, PackingLevel::PacketSpecific),
            Err(PackingError::PayloadTooNarrow { .. })
        ));
    }

    #[test]
    fn uniform_matrix_packs_tiny() {
        let w = Matrix::<i8>::filled(32, 32, 5);
        let packed =
            PackedWeights::pack(&w, &PackingConfig::default(), PackingLevel::FrequencyAware)
                .unwrap();
        assert!(packed.compression_ratio() > 8.0, "ratio {}", packed.compression_ratio());
        assert_eq!(packed.unpack().unwrap(), w);
    }

    #[test]
    fn meta_is_consistent() {
        let w = matrix_with_skew();
        let packed =
            PackedWeights::pack(&w, &PackingConfig::default(), PackingLevel::PacketSpecific)
                .unwrap();
        let m = packed.meta();
        assert_eq!(m.rows, 8);
        assert_eq!(m.chunk_cols, 8);
        assert_eq!(m.total_ids, 64);
        assert_eq!(m.max_id_bits, bits_for_ids(m.unique_count));
        assert!(m.packets > 0);
        assert_eq!(packed.raw_bits(), 8 * 16 * 8);
        assert_eq!(m.packet_bits(), m.mode_bits + m.payload_bits);
        // Stream length is exactly packets × packet size.
        assert_eq!(packed.stream().bit_len(), m.packets * u64::from(m.packet_bits()));
    }

    #[test]
    fn naive_streams_are_fixed_precision_packets() {
        let w = matrix_with_skew();
        let packed =
            PackedWeights::pack(&w, &PackingConfig::default(), PackingLevel::Naive).unwrap();
        let m = packed.meta();
        assert_eq!(m.mode_bits, 0);
        let cap = (m.payload_bits / m.max_id_bits) as u64;
        assert_eq!(m.packets, (m.total_ids as u64).div_ceil(cap));
        assert_eq!(packed.stream().bit_len(), m.packets * u64::from(m.payload_bits));
    }

    #[test]
    fn decode_rejects_truncated_stream() {
        let w = matrix_with_skew();
        let packed =
            PackedWeights::pack(&w, &PackingConfig::default(), PackingLevel::Naive).unwrap();
        let mut meta = *packed.meta();
        meta.total_ids += 100; // pretend there should be more ids
        let broken = PackedWeights { meta, ..packed };
        assert!(broken.decode_ids().is_err());
    }

    #[test]
    fn runs_of_small_ids_pack_densely() {
        // A matrix whose chunks repeat in long runs: the packet-specific
        // encoder should beat naive clearly once IDs are frequency-ranked.
        let mut rows = Vec::new();
        for r in 0..64i32 {
            let mut row = Vec::new();
            for c in 0..64i32 {
                // Long runs of chunk (1,1), occasional rare chunks.
                let v = if (r * 64 + c) % 29 == 0 { (c % 23) as i8 + 2 } else { 1 };
                row.push(v);
                row.push(v);
            }
            rows.push(row);
        }
        let refs: Vec<&[i8]> = rows.iter().map(Vec::as_slice).collect();
        let w = Matrix::from_rows(&refs).unwrap();
        let cfg = PackingConfig::default();
        let naive = PackedWeights::pack(&w, &cfg, PackingLevel::Naive).unwrap();
        let freq = PackedWeights::pack(&w, &cfg, PackingLevel::FrequencyAware).unwrap();
        assert!(
            freq.compression_ratio() > naive.compression_ratio() * 1.2,
            "freq {} vs naive {}",
            freq.compression_ratio(),
            naive.compression_ratio()
        );
        assert_eq!(freq.unpack().unwrap(), w);
    }
}
