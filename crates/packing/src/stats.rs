//! Histograms and packing statistics behind Figs. 4a and 10b/c.

use crate::chunk::{EncodedMatrix, UniqueMatrix};
use crate::encode::{bits_needed, PackedWeights};
use meadow_tensor::parallel::{par_map_ranges, ExecConfig};
use serde::{Deserialize, Serialize};

/// A binned histogram of chunk-ID occurrences (Figs. 10b/10c).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdHistogram {
    /// Inclusive lower edge of each bin.
    pub bin_edges: Vec<u32>,
    /// Occurrence count per bin.
    pub counts: Vec<u64>,
    /// Bin width in IDs.
    pub bin_width: u32,
}

impl IdHistogram {
    /// Builds a histogram of the encoded matrix's IDs with `bins` equal-width
    /// bins over `[0, unique_count)`.
    pub fn new(encoded: &EncodedMatrix, unique_count: usize, bins: usize) -> Self {
        Self::new_with(encoded, unique_count, bins, &ExecConfig::serial())
    }

    /// [`IdHistogram::new`] with caller-chosen parallelism: workers count
    /// disjoint ID ranges and the partial histograms are summed. Integer
    /// addition commutes, so the result is identical for every thread count.
    pub fn new_with(
        encoded: &EncodedMatrix,
        unique_count: usize,
        bins: usize,
        exec: &ExecConfig,
    ) -> Self {
        let bins = bins.max(1);
        let width = unique_count.max(1).div_ceil(bins).max(1) as u32;
        let ids = encoded.ids();
        let partials = par_map_ranges(ids.len(), exec, |range| {
            let mut counts = vec![0u64; bins];
            for &id in &ids[range] {
                let b = ((id / width) as usize).min(bins - 1);
                counts[b] += 1;
            }
            counts
        });
        let mut counts = vec![0u64; bins];
        for partial in partials {
            for (total, c) in counts.iter_mut().zip(partial) {
                *total += c;
            }
        }
        let bin_edges = (0..bins as u32).map(|b| b * width).collect();
        Self { bin_edges, counts, bin_width: width }
    }

    /// Fraction of occurrences falling in the first `k` bins.
    pub fn head_mass(&self, k: usize) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let head: u64 = self.counts.iter().take(k).sum();
        head as f64 / total as f64
    }
}

/// Distribution of per-ID precision requirements: `counts[b]` is the number
/// of stream IDs needing exactly `b+1` bits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrecisionDistribution {
    /// `counts[b]` = IDs needing exactly `b+1` bits.
    pub counts: Vec<u64>,
}

impl PrecisionDistribution {
    /// Computes the distribution over an encoded matrix.
    pub fn new(encoded: &EncodedMatrix) -> Self {
        Self::new_with(encoded, &ExecConfig::serial())
    }

    /// [`PrecisionDistribution::new`] with caller-chosen parallelism (same
    /// partial-count summation as [`IdHistogram::new_with`]).
    pub fn new_with(encoded: &EncodedMatrix, exec: &ExecConfig) -> Self {
        let ids = encoded.ids();
        let partials = par_map_ranges(ids.len(), exec, |range| {
            let mut counts = vec![0u64; 32];
            for &id in &ids[range] {
                counts[(bits_needed(id) - 1) as usize] += 1;
            }
            counts
        });
        let mut counts = vec![0u64; 32];
        for partial in partials {
            for (total, c) in counts.iter_mut().zip(partial) {
                *total += c;
            }
        }
        while counts.len() > 1 && *counts.last().unwrap() == 0 {
            counts.pop();
        }
        Self { counts }
    }

    /// Mean bits needed per ID.
    pub fn mean_bits(&self) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self.counts.iter().enumerate().map(|(b, &c)| (b as u64 + 1) * c).sum();
        weighted as f64 / total as f64
    }
}

/// Summary of one packed matrix for reports and figure generators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PackingSummary {
    /// Unique chunks in the table.
    pub unique_chunks: usize,
    /// Reduction ratio (total ÷ unique chunks).
    pub reduction_ratio: f64,
    /// Uniform ID precision in bits.
    pub max_id_bits: u32,
    /// Raw weight bytes.
    pub raw_bytes: u64,
    /// Packed transfer bytes (stream + unique matrix).
    pub packed_bytes: u64,
    /// Compression ratio (raw ÷ packed).
    pub compression_ratio: f64,
    /// Average stream bits per ID including packet overheads.
    pub stream_bits_per_id: f64,
}

impl PackingSummary {
    /// Summarizes a packed matrix.
    pub fn of(packed: &PackedWeights) -> Self {
        let meta = packed.meta();
        let total = meta.total_ids.max(1) as f64;
        Self {
            unique_chunks: meta.unique_count,
            reduction_ratio: meta.total_ids as f64 / meta.unique_count.max(1) as f64,
            max_id_bits: meta.max_id_bits,
            raw_bytes: packed.raw_bits() / 8,
            packed_bytes: packed.transfer_bytes(),
            compression_ratio: packed.compression_ratio(),
            stream_bits_per_id: packed.stream().bit_len() as f64 / total,
        }
    }
}

/// Convenience: reduction ratio straight from a decomposition.
pub fn reduction_ratio_of(unique: &UniqueMatrix, encoded: &EncodedMatrix) -> f64 {
    crate::chunk::reduction_ratio(unique, encoded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{decompose, ChunkConfig};
    use crate::encode::{PackingConfig, PackingLevel};
    use crate::reindex::frequency_reindex;
    use meadow_tensor::Matrix;

    fn skewed() -> Matrix<i8> {
        let mut rows = Vec::new();
        for r in 0..16i32 {
            let mut row = vec![1i8, 1, 1, 1, 1, 1, 1, 1];
            // a rare pair per late row
            if r > 12 {
                row[6] = r as i8;
                row[7] = (r + 1) as i8;
            }
            rows.push(row);
        }
        let refs: Vec<&[i8]> = rows.iter().map(Vec::as_slice).collect();
        Matrix::from_rows(&refs).unwrap()
    }

    #[test]
    fn histogram_counts_everything() {
        let (unique, encoded) = decompose(&skewed(), ChunkConfig::default()).unwrap();
        let h = IdHistogram::new(&encoded, unique.len(), 4);
        let total: u64 = h.counts.iter().sum();
        assert_eq!(total, encoded.len() as u64);
    }

    #[test]
    fn reindexing_concentrates_head_mass() {
        let (unique, encoded) = decompose(&skewed(), ChunkConfig::default()).unwrap();
        let before = IdHistogram::new(&encoded, unique.len(), 4);
        let r = frequency_reindex(&unique, &encoded).unwrap();
        let after = IdHistogram::new(&r.encoded, r.unique.len(), 4);
        assert!(after.head_mass(1) >= before.head_mass(1));
        assert!(after.head_mass(1) > 0.9, "head mass {}", after.head_mass(1));
    }

    #[test]
    fn precision_distribution_mean_drops_after_reindex() {
        let (unique, encoded) = decompose(&skewed(), ChunkConfig::default()).unwrap();
        let before = PrecisionDistribution::new(&encoded).mean_bits();
        let r = frequency_reindex(&unique, &encoded).unwrap();
        let after = PrecisionDistribution::new(&r.encoded).mean_bits();
        assert!(after <= before, "mean bits {after} vs {before}");
    }

    #[test]
    fn summary_fields_are_consistent() {
        let w = skewed();
        let packed = crate::encode::PackedWeights::pack(
            &w,
            &PackingConfig::default(),
            PackingLevel::FrequencyAware,
        )
        .unwrap();
        let s = PackingSummary::of(&packed);
        assert_eq!(s.raw_bytes, (w.rows() * w.cols()) as u64);
        assert!(s.compression_ratio > 1.0);
        assert!(s.stream_bits_per_id > 0.0);
        assert!(s.reduction_ratio > 1.0);
    }

    #[test]
    fn parallel_stats_match_serial() {
        let (unique, encoded) = decompose(&skewed(), ChunkConfig::default()).unwrap();
        let serial_h = IdHistogram::new(&encoded, unique.len(), 4);
        let serial_d = PrecisionDistribution::new(&encoded);
        for threads in [2usize, 4, 8] {
            let exec = ExecConfig::with_threads(threads);
            assert_eq!(IdHistogram::new_with(&encoded, unique.len(), 4, &exec), serial_h);
            assert_eq!(PrecisionDistribution::new_with(&encoded, &exec), serial_d);
        }
    }

    #[test]
    fn empty_histogram_and_distribution() {
        let w = Matrix::<i8>::zeros(0, 0);
        let (unique, encoded) = decompose(&w, ChunkConfig::default()).unwrap();
        let h = IdHistogram::new(&encoded, unique.len(), 4);
        assert_eq!(h.head_mass(2), 0.0);
        let d = PrecisionDistribution::new(&encoded);
        assert_eq!(d.mean_bits(), 0.0);
    }
}
