//! Bit-granular writer/reader backing the packed weight streams.
//!
//! DRAM moves whole bytes; the packing formats place mode fields and
//! variable-precision IDs at arbitrary bit offsets. `BitWriter` and
//! `BitReader` provide LSB-first bit packing over a `Vec<u64>` word store.

use crate::error::PackingError;
use serde::{Deserialize, Serialize};

/// Append-only bit-level writer (LSB-first within each 64-bit word).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitWriter {
    words: Vec<u64>,
    bit_len: u64,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.bit_len
    }

    /// Appends the low `bits` bits of `value`.
    ///
    /// # Errors
    ///
    /// Returns [`PackingError::BitWidthTooLarge`] if `bits > 64`, or
    /// [`PackingError::InvalidStream`] if `value` does not fit in `bits`
    /// bits (a corrupted-encoder guard, not a data-dependent case).
    pub fn write(&mut self, value: u64, bits: u32) -> Result<(), PackingError> {
        if bits > 64 {
            return Err(PackingError::BitWidthTooLarge { bits });
        }
        if bits == 0 {
            return Ok(());
        }
        if bits < 64 && value >> bits != 0 {
            return Err(PackingError::InvalidStream {
                reason: format!("value {value} does not fit in {bits} bits"),
            });
        }
        let word_idx = (self.bit_len / 64) as usize;
        let bit_idx = (self.bit_len % 64) as u32;
        if word_idx == self.words.len() {
            self.words.push(0);
        }
        self.words[word_idx] |= value << bit_idx;
        let spill = bit_idx + bits;
        if spill > 64 {
            // The value straddles a word boundary.
            self.words.push(value >> (64 - bit_idx));
        } else if spill == 64 && word_idx + 1 == self.words.len() {
            // Exactly filled; next write allocates.
        }
        self.bit_len += u64::from(bits);
        Ok(())
    }

    /// Finalizes into an immutable stream.
    pub fn into_stream(self) -> BitStream {
        BitStream { words: self.words, bit_len: self.bit_len }
    }
}

/// Immutable bit stream produced by a [`BitWriter`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitStream {
    words: Vec<u64>,
    bit_len: u64,
}

impl BitStream {
    /// Number of bits in the stream.
    pub fn bit_len(&self) -> u64 {
        self.bit_len
    }

    /// Size in whole bytes (rounded up), as it would occupy DRAM.
    pub fn byte_len(&self) -> u64 {
        self.bit_len.div_ceil(8)
    }

    /// Creates a cursor at the start of the stream.
    pub fn reader(&self) -> BitReader<'_> {
        BitReader { stream: self, pos: 0 }
    }
}

/// Cursor over a [`BitStream`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    stream: &'a BitStream,
    pos: u64,
}

impl BitReader<'_> {
    /// Bits remaining.
    pub fn remaining(&self) -> u64 {
        self.stream.bit_len - self.pos
    }

    /// Reads `bits` bits LSB-first.
    ///
    /// # Errors
    ///
    /// Returns [`PackingError::BitWidthTooLarge`] if `bits > 64` and
    /// [`PackingError::BitstreamOverrun`] past the end of the stream.
    pub fn read(&mut self, bits: u32) -> Result<u64, PackingError> {
        if bits > 64 {
            return Err(PackingError::BitWidthTooLarge { bits });
        }
        if bits == 0 {
            return Ok(0);
        }
        if u64::from(bits) > self.remaining() {
            return Err(PackingError::BitstreamOverrun {
                requested: bits,
                remaining: self.remaining(),
            });
        }
        let word_idx = (self.pos / 64) as usize;
        let bit_idx = (self.pos % 64) as u32;
        let lo = self.stream.words[word_idx] >> bit_idx;
        let value = if bit_idx + bits <= 64 {
            if bits == 64 {
                lo
            } else {
                lo & ((1u64 << bits) - 1)
            }
        } else {
            let hi = self.stream.words[word_idx + 1] << (64 - bit_idx);
            (lo | hi) & if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 }
        };
        self.pos += u64::from(bits);
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_simple() {
        let mut w = BitWriter::new();
        w.write(0b101, 3).unwrap();
        w.write(0xFF, 8).unwrap();
        w.write(0, 1).unwrap();
        let s = w.into_stream();
        assert_eq!(s.bit_len(), 12);
        assert_eq!(s.byte_len(), 2);
        let mut r = s.reader();
        assert_eq!(r.read(3).unwrap(), 0b101);
        assert_eq!(r.read(8).unwrap(), 0xFF);
        assert_eq!(r.read(1).unwrap(), 0);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn word_boundary_straddle() {
        let mut w = BitWriter::new();
        w.write(u64::MAX >> 4, 60).unwrap();
        w.write(0b1011, 4).unwrap();
        w.write(0x1234_5678_9ABC_DEF0, 64).unwrap();
        let s = w.into_stream();
        let mut r = s.reader();
        assert_eq!(r.read(60).unwrap(), u64::MAX >> 4);
        assert_eq!(r.read(4).unwrap(), 0b1011);
        assert_eq!(r.read(64).unwrap(), 0x1234_5678_9ABC_DEF0);
    }

    #[test]
    fn straddling_reads_across_words() {
        let mut w = BitWriter::new();
        w.write(0x7, 3).unwrap();
        w.write(0xABCD_EF01_2345_0000 >> 3, 61).unwrap();
        w.write(0x3FF, 10).unwrap();
        let s = w.into_stream();
        let mut r = s.reader();
        r.read(50).unwrap();
        // This read straddles the first/second word boundary.
        let v = r.read(20).unwrap();
        let _ = v;
        assert_eq!(r.remaining(), 4);
    }

    #[test]
    fn overrun_is_detected() {
        let mut w = BitWriter::new();
        w.write(0b11, 2).unwrap();
        let s = w.into_stream();
        let mut r = s.reader();
        r.read(1).unwrap();
        let err = r.read(2).unwrap_err();
        assert_eq!(err, PackingError::BitstreamOverrun { requested: 2, remaining: 1 });
    }

    #[test]
    fn oversized_operations_rejected() {
        let mut w = BitWriter::new();
        assert!(matches!(w.write(0, 65), Err(PackingError::BitWidthTooLarge { .. })));
        assert!(matches!(w.write(0b100, 2), Err(PackingError::InvalidStream { .. })));
        let s = BitWriter::new().into_stream();
        assert!(matches!(s.reader().read(65), Err(PackingError::BitWidthTooLarge { .. })));
    }

    #[test]
    fn zero_bit_operations_are_noops() {
        let mut w = BitWriter::new();
        w.write(123, 0).unwrap();
        let s = w.into_stream();
        assert_eq!(s.bit_len(), 0);
        assert_eq!(s.reader().read(0).unwrap(), 0);
    }

    #[test]
    fn many_mixed_widths_round_trip() {
        let values: Vec<(u64, u32)> =
            (1..=64).map(|b| (0xDEAD_BEEF_CAFE_F00D_u64 >> (64 - b), b)).collect();
        let mut w = BitWriter::new();
        for &(v, b) in &values {
            w.write(v, b).unwrap();
        }
        let s = w.into_stream();
        let mut r = s.reader();
        for &(v, b) in &values {
            assert_eq!(r.read(b).unwrap(), v, "width {b}");
        }
    }
}
