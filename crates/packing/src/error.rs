//! Error type for the packing pipeline.

use std::error::Error;
use std::fmt;

/// Error returned by packing / unpacking operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PackingError {
    /// The matrix's inner dimension is not divisible by the chunk size.
    NotChunkable {
        /// Inner (column) dimension of the weight matrix.
        cols: usize,
        /// Configured chunk size in elements.
        chunk_elems: usize,
    },
    /// A chunk size of zero was configured.
    ZeroChunkSize,
    /// A packet payload narrower than the maximum ID precision was
    /// configured (at least one ID per packet must fit).
    PayloadTooNarrow {
        /// Configured payload width in bits.
        payload_bits: u32,
        /// Bits required by the widest ID.
        required_bits: u32,
    },
    /// The bit reader ran past the end of the stream.
    BitstreamOverrun {
        /// Bits requested by the failed read.
        requested: u32,
        /// Bits remaining in the stream.
        remaining: u64,
    },
    /// More than 64 bits were requested in a single bitstream operation.
    BitWidthTooLarge {
        /// Requested width.
        bits: u32,
    },
    /// A decoded stream was internally inconsistent (bad mode, ID out of
    /// range, wrong element count).
    InvalidStream {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for PackingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackingError::NotChunkable { cols, chunk_elems } => {
                write!(f, "inner dimension {cols} is not divisible by chunk size {chunk_elems}")
            }
            PackingError::ZeroChunkSize => write!(f, "chunk size must be non-zero"),
            PackingError::PayloadTooNarrow { payload_bits, required_bits } => write!(
                f,
                "packet payload of {payload_bits} bits cannot hold a {required_bits}-bit ID"
            ),
            PackingError::BitstreamOverrun { requested, remaining } => write!(
                f,
                "bitstream overrun: requested {requested} bits with {remaining} remaining"
            ),
            PackingError::BitWidthTooLarge { bits } => {
                write!(f, "bit width {bits} exceeds the 64-bit operation limit")
            }
            PackingError::InvalidStream { reason } => write!(f, "invalid packed stream: {reason}"),
        }
    }
}

impl Error for PackingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let variants = [
            PackingError::NotChunkable { cols: 7, chunk_elems: 2 },
            PackingError::ZeroChunkSize,
            PackingError::PayloadTooNarrow { payload_bits: 8, required_bits: 11 },
            PackingError::BitstreamOverrun { requested: 8, remaining: 3 },
            PackingError::BitWidthTooLarge { bits: 65 },
            PackingError::InvalidStream { reason: "test".into() },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<PackingError>();
    }
}
