//! The Weight-unpacking and Index Look-Up (WILU) module (§5.4, Fig. 5).
//!
//! On chip, packed weight packets stream out of the weight BRAM into the
//! mode-aware unpacking (MAU) stage, which demultiplexes each payload into
//! IDs according to the packet's mode bits; the IDs then index the re-indexed
//! unique matrix to recover exact weight values, which the NoC forwards to PE
//! weight register files.
//!
//! [`WiluModule`] provides both the *functional* path (delegating to the
//! stream decoder — identical arithmetic, so the round-trip tests cover the
//! hardware behavior) and the *throughput* model: the MAU processes a fixed
//! number of packets per cycle and the lookup stage a fixed number of IDs per
//! cycle, pipelined against each other. At high DRAM bandwidths unpacking can
//! become the bottleneck, so the dataflow executors charge packed weight
//! fetches as `max(channel cycles, WILU cycles)` via
//! [`WiluModule::effective_fetch_cycles`].

use crate::encode::PackedWeights;
use crate::error::PackingError;
use meadow_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Throughput model of the WILU module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WiluModule {
    /// Packets the MAU demultiplexes per cycle.
    pub packets_per_cycle: u64,
    /// Unique-matrix lookups per cycle (chunks resolved to weight values).
    pub lookups_per_cycle: u64,
}

impl WiluModule {
    /// The ZCU102 build: a 2-packet-wide MAU (2 × 64-bit payloads ≈ 16 B per
    /// cycle, comfortably above the 15 B/cycle the 12 Gbps channel can
    /// deliver) and 16 parallel lookup lanes.
    pub fn zcu102() -> Self {
        Self { packets_per_cycle: 2, lookups_per_cycle: 16 }
    }

    /// Cycles the MAU needs to demultiplex the whole stream.
    pub fn mau_cycles(&self, packed: &PackedWeights) -> u64 {
        if self.packets_per_cycle == 0 {
            return 0;
        }
        packed.meta().packets.div_ceil(self.packets_per_cycle)
    }

    /// Cycles the lookup stage needs to resolve every chunk ID.
    pub fn lookup_cycles(&self, packed: &PackedWeights) -> u64 {
        if self.lookups_per_cycle == 0 {
            return 0;
        }
        (packed.meta().total_ids as u64).div_ceil(self.lookups_per_cycle)
    }

    /// Total WILU cycles: MAU and lookup are pipelined, so the slower stage
    /// dominates.
    pub fn unpack_cycles(&self, packed: &PackedWeights) -> u64 {
        self.mau_cycles(packed).max(self.lookup_cycles(packed))
    }

    /// Effective cycles to bring this packed matrix on chip when the DRAM
    /// channel alone would take `dram_cycles`: the WILU pipeline overlaps the
    /// transfer, so the slower of the two wins.
    pub fn effective_fetch_cycles(&self, packed: &PackedWeights, dram_cycles: u64) -> u64 {
        dram_cycles.max(self.unpack_cycles(packed))
    }

    /// Functional unpack through the MAU + lookup path.
    ///
    /// # Errors
    ///
    /// Propagates stream-decoding errors.
    pub fn execute(&self, packed: &PackedWeights) -> Result<Matrix<i8>, PackingError> {
        packed.unpack()
    }
}

impl Default for WiluModule {
    fn default() -> Self {
        Self::zcu102()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{PackingConfig, PackingLevel};

    fn packed(level: PackingLevel) -> PackedWeights {
        let mut rows = Vec::new();
        for r in 0..32i32 {
            let row: Vec<i8> = (0..32).map(|c| ((r * c) % 7) as i8).collect();
            rows.push(row);
        }
        let refs: Vec<&[i8]> = rows.iter().map(Vec::as_slice).collect();
        let w = Matrix::from_rows(&refs).unwrap();
        PackedWeights::pack(&w, &PackingConfig::default(), level).unwrap()
    }

    #[test]
    fn functional_path_is_lossless() {
        let wilu = WiluModule::zcu102();
        for level in PackingLevel::all() {
            let p = packed(level);
            let w = wilu.execute(&p).unwrap();
            assert_eq!(w, p.unpack().unwrap());
        }
    }

    #[test]
    fn throughput_scales_with_width() {
        let p = packed(PackingLevel::FrequencyAware);
        let narrow = WiluModule { packets_per_cycle: 1, lookups_per_cycle: 16 };
        let wide = WiluModule { packets_per_cycle: 4, lookups_per_cycle: 16 };
        assert!(narrow.mau_cycles(&p) >= wide.mau_cycles(&p));
    }

    #[test]
    fn effective_fetch_is_max_of_channel_and_unpack() {
        let wilu = WiluModule::zcu102();
        let p = packed(PackingLevel::PacketSpecific);
        let unpack = wilu.unpack_cycles(&p);
        assert_eq!(wilu.effective_fetch_cycles(&p, 0), unpack);
        assert_eq!(wilu.effective_fetch_cycles(&p, unpack + 100), unpack + 100);
    }

    #[test]
    fn naive_streams_count_their_packets() {
        let wilu = WiluModule::zcu102();
        let p = packed(PackingLevel::Naive);
        assert_eq!(wilu.mau_cycles(&p), p.meta().packets.div_ceil(2));
    }

    #[test]
    fn zcu102_mau_keeps_up_with_12gbps() {
        // 12 Gbps moves 15 bytes/cycle; the MAU demuxes 2 packets/cycle of
        // (mode + 128 payload) bits ≈ 32+ B/cycle of stream.
        let p = packed(PackingLevel::FrequencyAware);
        let wilu = WiluModule::zcu102();
        let stream_bytes = p.stream().byte_len();
        let dram_cycles = (stream_bytes as f64 / 15.0).ceil() as u64;
        assert!(
            wilu.mau_cycles(&p) <= dram_cycles + 1,
            "MAU ({}) must keep up with the channel ({})",
            wilu.mau_cycles(&p),
            dram_cycles
        );
    }
}
