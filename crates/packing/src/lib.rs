//! MEADOW weight packing: lossless decomposition and bit-packing of
//! quantized LLM weight matrices (§5 of the paper).
//!
//! The pipeline has three optimization levels, each subsuming the previous:
//!
//! 1. **Indexing + naive data packing** ([`PackingLevel::Naive`]) — split
//!    the weight matrix into fixed-size chunks, deduplicate them into a
//!    [`UniqueMatrix`], and replace the matrix by chunk IDs, each stored at
//!    the uniform precision `⌈log₂(#unique)⌉`.
//! 2. **Packet-specific encoding precision**
//!    ([`PackingLevel::PacketSpecific`]) — group IDs into fixed-width DRAM
//!    packets whose per-packet precision is chosen from a mode ladder, so
//!    runs of small IDs pack more values per packet (Fig. 4b).
//! 3. **Frequency-aware re-indexing** ([`PackingLevel::FrequencyAware`]) —
//!    re-assign IDs so frequent chunks get small IDs, maximizing the
//!    proportion of low-precision packets (Fig. 4c).
//!
//! Unpacking happens in the WILU module ([`wilu`]): the mode-aware unpacking
//! (MAU) stage decodes packets back to IDs, and a unique-matrix lookup
//! reconstructs the exact original weights. The whole pipeline is lossless;
//! property tests assert bit-exact round trips at every level.
//!
//! # Example
//!
//! ```
//! use meadow_packing::{ChunkConfig, PackingConfig, PackingLevel, PackedWeights};
//! use meadow_tensor::Matrix;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let w = Matrix::<i8>::from_rows(&[&[1, 2, 1, 2], &[1, 2, 3, 4]])?;
//! let packed = PackedWeights::pack(&w, &PackingConfig::default(), PackingLevel::FrequencyAware)?;
//! assert_eq!(packed.unpack()?, w);
//! assert!(packed.packed_bits() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitstream;
pub mod chunk;
pub mod encode;
pub mod error;
pub mod reindex;
pub mod stats;
pub mod wilu;

pub use chunk::{ChunkConfig, EncodedMatrix, UniqueMatrix};
pub use encode::{PackedWeights, PackingConfig, PackingLevel};
pub use error::PackingError;
pub use meadow_tensor::parallel::ExecConfig;
pub use wilu::WiluModule;

/// Number of bits needed to represent IDs in `[0, count)`, minimum 1.
pub fn bits_for_ids(count: usize) -> u32 {
    if count <= 1 {
        1
    } else {
        (usize::BITS - (count - 1).leading_zeros()).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_ids_matches_log2() {
        assert_eq!(bits_for_ids(0), 1);
        assert_eq!(bits_for_ids(1), 1);
        assert_eq!(bits_for_ids(2), 1);
        assert_eq!(bits_for_ids(3), 2);
        assert_eq!(bits_for_ids(4), 2);
        assert_eq!(bits_for_ids(5), 3);
        // The paper's example: 1272 unique chunks → 11-bit IDs.
        assert_eq!(bits_for_ids(1272), 11);
        assert_eq!(bits_for_ids(2048), 11);
        assert_eq!(bits_for_ids(2049), 12);
    }
}
