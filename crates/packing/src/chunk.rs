//! Chunk decomposition: weight matrix → unique matrix + encoded matrix
//! (§5.1, Fig. 4a of the paper).
//!
//! The inner (column) dimension of an `N×M` INT8 weight matrix is split into
//! chunks of `C` elements. Each distinct chunk value is stored once in the
//! [`UniqueMatrix`] and assigned an ID; the weight matrix becomes the
//! [`EncodedMatrix`] of IDs. The *reduction ratio* — total chunks over
//! unique chunks — measures the redundancy the paper reports at 10²–10³ for
//! OPT decoder weights.

use crate::error::PackingError;
use meadow_tensor::parallel::{par_map_ranges, ExecConfig};
use meadow_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Chunk-decomposition parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChunkConfig {
    /// Elements (INT8 values) per chunk. The paper's working point is 2
    /// elements (16 bits) per chunk: its reference MLP1 matrix decomposes
    /// into 1272 unique chunks with 11-bit IDs and a ≈1.4× naive packing
    /// gain, which pins `C·Q = 16` bits.
    pub chunk_elems: usize,
}

impl ChunkConfig {
    /// Chunk payload size in bits at 8-bit quantization.
    pub fn chunk_bits(self) -> u32 {
        (self.chunk_elems * 8) as u32
    }
}

impl Default for ChunkConfig {
    fn default() -> Self {
        Self { chunk_elems: 2 }
    }
}

/// The deduplicated chunk table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UniqueMatrix {
    chunks: Vec<Vec<i8>>,
    chunk_elems: usize,
}

impl UniqueMatrix {
    /// Builds a unique matrix from an explicit chunk table (used by synthetic
    /// weight generators that control the decomposition directly).
    ///
    /// # Errors
    ///
    /// Returns [`PackingError::ZeroChunkSize`] for an empty chunk shape and
    /// [`PackingError::InvalidStream`] if chunks have inconsistent lengths or
    /// duplicates.
    pub fn from_chunks(chunks: Vec<Vec<i8>>, chunk_elems: usize) -> Result<Self, PackingError> {
        if chunk_elems == 0 {
            return Err(PackingError::ZeroChunkSize);
        }
        let mut seen = std::collections::HashSet::with_capacity(chunks.len());
        for c in &chunks {
            if c.len() != chunk_elems {
                return Err(PackingError::InvalidStream {
                    reason: format!("chunk of length {} in a table of {chunk_elems}", c.len()),
                });
            }
            if !seen.insert(c.as_slice()) {
                return Err(PackingError::InvalidStream {
                    reason: format!("duplicate chunk {c:?} in unique matrix"),
                });
            }
        }
        Ok(Self { chunks, chunk_elems })
    }
    /// Number of unique chunks.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the table is empty (only for an empty source matrix).
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Elements per chunk.
    pub fn chunk_elems(&self) -> usize {
        self.chunk_elems
    }

    /// The chunk with the given ID, if present.
    pub fn chunk(&self, id: usize) -> Option<&[i8]> {
        self.chunks.get(id).map(Vec::as_slice)
    }

    /// Size of the table in bytes as transferred from DRAM.
    pub fn size_bytes(&self) -> u64 {
        (self.chunks.len() * self.chunk_elems) as u64
    }

    /// Applies a permutation: `new_table[perm[id]] = old_table[id]`.
    /// Used by frequency-aware re-indexing.
    ///
    /// # Errors
    ///
    /// Returns [`PackingError::InvalidStream`] if `perm` is not a
    /// permutation of `0..len`.
    pub fn permuted(&self, perm: &[usize]) -> Result<UniqueMatrix, PackingError> {
        if perm.len() != self.chunks.len() {
            return Err(PackingError::InvalidStream {
                reason: format!(
                    "permutation length {} does not match {} unique chunks",
                    perm.len(),
                    self.chunks.len()
                ),
            });
        }
        let mut new_chunks = vec![Vec::new(); self.chunks.len()];
        let mut seen = vec![false; self.chunks.len()];
        for (old_id, &new_id) in perm.iter().enumerate() {
            if new_id >= self.chunks.len() || seen[new_id] {
                return Err(PackingError::InvalidStream {
                    reason: format!("invalid permutation target {new_id}"),
                });
            }
            seen[new_id] = true;
            new_chunks[new_id] = self.chunks[old_id].clone();
        }
        Ok(UniqueMatrix { chunks: new_chunks, chunk_elems: self.chunk_elems })
    }
}

/// The weight matrix re-expressed as chunk IDs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedMatrix {
    ids: Vec<u32>,
    rows: usize,
    chunk_cols: usize,
    chunk_elems: usize,
}

impl EncodedMatrix {
    /// Builds an encoded matrix from explicit IDs (used by the MAU decoder
    /// and by synthetic weight generators).
    ///
    /// # Errors
    ///
    /// Returns [`PackingError::InvalidStream`] if `ids.len() != rows *
    /// chunk_cols`.
    pub fn from_ids(
        ids: Vec<u32>,
        rows: usize,
        chunk_cols: usize,
        chunk_elems: usize,
    ) -> Result<Self, PackingError> {
        if ids.len() != rows * chunk_cols {
            return Err(PackingError::InvalidStream {
                reason: format!("{} ids do not fill a {rows}x{chunk_cols} chunk grid", ids.len()),
            });
        }
        Ok(Self { ids, rows, chunk_cols, chunk_elems })
    }

    /// Crate-internal constructor used when IDs are recovered by the MAU
    /// decoder rather than by [`decompose`].
    pub(crate) fn from_parts(
        ids: Vec<u32>,
        rows: usize,
        chunk_cols: usize,
        chunk_elems: usize,
    ) -> Self {
        Self { ids, rows, chunk_cols, chunk_elems }
    }

    /// All IDs in row-major order.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Number of weight-matrix rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Chunks per row (`M / C`).
    pub fn chunk_cols(&self) -> usize {
        self.chunk_cols
    }

    /// Elements per chunk.
    pub fn chunk_elems(&self) -> usize {
        self.chunk_elems
    }

    /// Total number of chunks.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the encoding holds no chunks.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Rewrites every ID through `map` (old ID → new ID). Used by
    /// frequency-aware re-indexing.
    ///
    /// # Errors
    ///
    /// Returns [`PackingError::InvalidStream`] if an ID is outside `map`.
    pub fn remapped(&self, map: &[u32]) -> Result<EncodedMatrix, PackingError> {
        let mut ids = Vec::with_capacity(self.ids.len());
        for &id in &self.ids {
            let new = *map.get(id as usize).ok_or_else(|| PackingError::InvalidStream {
                reason: format!("id {id} outside remap table of {}", map.len()),
            })?;
            ids.push(new);
        }
        Ok(EncodedMatrix { ids, ..*self })
    }
}

/// Decomposes a weight matrix into its unique matrix and encoded form.
///
/// # Errors
///
/// Returns [`PackingError::ZeroChunkSize`] or [`PackingError::NotChunkable`]
/// for invalid chunk configurations.
pub fn decompose(
    w: &Matrix<i8>,
    config: ChunkConfig,
) -> Result<(UniqueMatrix, EncodedMatrix), PackingError> {
    decompose_with(w, config, &ExecConfig::serial())
}

/// [`decompose`] with caller-chosen parallelism.
///
/// Row ranges are decomposed independently on the worker threads of `exec`
/// (each building a local first-occurrence chunk table), then merged in row
/// order. Because a worker's table lists chunks in first-occurrence order
/// of its own rows, and workers are merged in row order skipping
/// already-seen chunks, the merged table reproduces the *global*
/// first-occurrence order exactly — IDs and table are bit-identical to the
/// serial [`decompose`] for every thread count.
///
/// # Errors
///
/// Returns [`PackingError::ZeroChunkSize`] or [`PackingError::NotChunkable`]
/// for invalid chunk configurations.
pub fn decompose_with(
    w: &Matrix<i8>,
    config: ChunkConfig,
    exec: &ExecConfig,
) -> Result<(UniqueMatrix, EncodedMatrix), PackingError> {
    if config.chunk_elems == 0 {
        return Err(PackingError::ZeroChunkSize);
    }
    if !w.cols().is_multiple_of(config.chunk_elems) {
        return Err(PackingError::NotChunkable { cols: w.cols(), chunk_elems: config.chunk_elems });
    }
    let chunk_cols = w.cols() / config.chunk_elems;
    // Per worker: local unique table (first-occurrence order) + local IDs.
    let locals = par_map_ranges(w.rows(), exec, |rows| {
        let mut table: HashMap<&[i8], u32> = HashMap::new();
        let mut chunks: Vec<&[i8]> = Vec::new();
        let mut ids = Vec::with_capacity(rows.len() * chunk_cols);
        for r in rows {
            for chunk in w.row(r).chunks(config.chunk_elems) {
                let id = match table.get(chunk) {
                    Some(&id) => id,
                    None => {
                        let id = chunks.len() as u32;
                        chunks.push(chunk);
                        // Map keys borrow from `w`, which outlives the map.
                        table.insert(chunk, id);
                        id
                    }
                };
                ids.push(id);
            }
        }
        (chunks, ids)
    });
    // Merge in row order: assign global IDs at global first occurrence.
    let mut table: HashMap<&[i8], u32> = HashMap::new();
    let mut chunks: Vec<Vec<i8>> = Vec::new();
    let mut ids = Vec::with_capacity(w.rows() * chunk_cols);
    for (local_chunks, local_ids) in locals {
        let remap: Vec<u32> = local_chunks
            .into_iter()
            .map(|chunk| match table.get(chunk) {
                Some(&id) => id,
                None => {
                    let id = chunks.len() as u32;
                    chunks.push(chunk.to_vec());
                    table.insert(chunk, id);
                    id
                }
            })
            .collect();
        ids.extend(local_ids.into_iter().map(|local| remap[local as usize]));
    }
    Ok((
        UniqueMatrix { chunks, chunk_elems: config.chunk_elems },
        EncodedMatrix { ids, rows: w.rows(), chunk_cols, chunk_elems: config.chunk_elems },
    ))
}

/// Reconstructs the original weight matrix from its decomposition.
///
/// # Errors
///
/// Returns [`PackingError::InvalidStream`] if an ID is missing from the
/// unique matrix or shapes disagree.
pub fn reconstruct(
    unique: &UniqueMatrix,
    encoded: &EncodedMatrix,
) -> Result<Matrix<i8>, PackingError> {
    if unique.chunk_elems() != encoded.chunk_elems() {
        return Err(PackingError::InvalidStream {
            reason: "chunk size mismatch between unique and encoded matrices".into(),
        });
    }
    let cols = encoded.chunk_cols() * encoded.chunk_elems();
    let mut data = Vec::with_capacity(encoded.rows() * cols);
    for &id in encoded.ids() {
        let chunk = unique.chunk(id as usize).ok_or_else(|| PackingError::InvalidStream {
            reason: format!("id {id} missing from unique matrix of {}", unique.len()),
        })?;
        data.extend_from_slice(chunk);
    }
    Matrix::from_vec(encoded.rows(), cols, data)
        .map_err(|e| PackingError::InvalidStream { reason: e.to_string() })
}

/// Reduction ratio: total chunks ÷ unique chunks (higher = more redundancy).
pub fn reduction_ratio(unique: &UniqueMatrix, encoded: &EncodedMatrix) -> f64 {
    if unique.is_empty() {
        return 0.0;
    }
    encoded.len() as f64 / unique.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix<i8> {
        // Rows built from repeating 2-element chunks: [1,2] x3, [3,4],
        // then a second row reusing [1,2] and [3,4].
        Matrix::from_rows(&[&[1, 2, 1, 2, 1, 2, 3, 4], &[3, 4, 3, 4, 1, 2, 5, 6]]).unwrap()
    }

    #[test]
    fn decomposition_finds_unique_chunks() {
        let (unique, encoded) = decompose(&sample(), ChunkConfig::default()).unwrap();
        // Chunks: [1,2], [3,4], [5,6].
        assert_eq!(unique.len(), 3);
        assert_eq!(encoded.len(), 8);
        assert_eq!(encoded.ids(), &[0, 0, 0, 1, 1, 1, 0, 2]);
        assert_eq!(unique.chunk(0), Some(&[1i8, 2][..]));
        assert_eq!(unique.chunk(2), Some(&[5i8, 6][..]));
        assert!((reduction_ratio(&unique, &encoded) - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_is_exact() {
        let w = sample();
        let (unique, encoded) = decompose(&w, ChunkConfig::default()).unwrap();
        assert_eq!(reconstruct(&unique, &encoded).unwrap(), w);
    }

    #[test]
    fn chunk_size_must_divide_cols() {
        let w = Matrix::<i8>::zeros(2, 7);
        assert!(matches!(
            decompose(&w, ChunkConfig { chunk_elems: 2 }),
            Err(PackingError::NotChunkable { cols: 7, chunk_elems: 2 })
        ));
        assert!(matches!(
            decompose(&w, ChunkConfig { chunk_elems: 0 }),
            Err(PackingError::ZeroChunkSize)
        ));
    }

    #[test]
    fn single_valued_matrix_has_one_chunk() {
        let w = Matrix::<i8>::filled(16, 16, 7);
        let (unique, encoded) = decompose(&w, ChunkConfig::default()).unwrap();
        assert_eq!(unique.len(), 1);
        assert_eq!(reduction_ratio(&unique, &encoded), 128.0);
        assert_eq!(reconstruct(&unique, &encoded).unwrap(), w);
    }

    #[test]
    fn empty_matrix() {
        let w = Matrix::<i8>::zeros(0, 0);
        let (unique, encoded) = decompose(&w, ChunkConfig::default()).unwrap();
        assert!(unique.is_empty());
        assert!(encoded.is_empty());
        assert_eq!(reduction_ratio(&unique, &encoded), 0.0);
    }

    #[test]
    fn unique_matrix_size_accounting() {
        let (unique, _) = decompose(&sample(), ChunkConfig::default()).unwrap();
        assert_eq!(unique.size_bytes(), 6);
    }

    #[test]
    fn parallel_decompose_is_bit_identical() {
        // Chunks that first appear in different row regions, so the merge
        // order actually matters.
        let mut rows = Vec::new();
        for r in 0..32i32 {
            let mut row = Vec::new();
            for c in 0..16i32 {
                let v = ((r * 7 + c * 3) % 11) as i8;
                row.push(v);
                row.push(v.wrapping_sub((r % 5) as i8));
            }
            rows.push(row);
        }
        let refs: Vec<&[i8]> = rows.iter().map(Vec::as_slice).collect();
        let w = Matrix::from_rows(&refs).unwrap();
        let (unique, encoded) = decompose(&w, ChunkConfig::default()).unwrap();
        for threads in [1usize, 2, 3, 4, 8] {
            let exec = ExecConfig::with_threads(threads);
            let (pu, pe) = decompose_with(&w, ChunkConfig::default(), &exec).unwrap();
            assert_eq!(pu, unique, "unique table diverged at {threads} threads");
            assert_eq!(pe, encoded, "encoded ids diverged at {threads} threads");
        }
    }

    #[test]
    fn permutation_round_trip() {
        let w = sample();
        let (unique, encoded) = decompose(&w, ChunkConfig::default()).unwrap();
        // Swap IDs 0 and 2.
        let perm = [2usize, 1, 0];
        let permuted = unique.permuted(&perm).unwrap();
        let remapped = encoded.remapped(&[2, 1, 0]).unwrap();
        assert_eq!(reconstruct(&permuted, &remapped).unwrap(), w);
    }

    #[test]
    fn invalid_permutations_rejected() {
        let (unique, encoded) = decompose(&sample(), ChunkConfig::default()).unwrap();
        assert!(unique.permuted(&[0, 1]).is_err());
        assert!(unique.permuted(&[0, 0, 1]).is_err());
        assert!(unique.permuted(&[0, 1, 5]).is_err());
        assert!(encoded.remapped(&[0, 1]).is_err());
    }

    #[test]
    fn reconstruct_catches_dangling_ids() {
        let (unique, encoded) = decompose(&sample(), ChunkConfig::default()).unwrap();
        let bad = encoded.remapped(&[9, 9, 9]);
        // remapped itself succeeds (map covers ids), but reconstruction
        // against the original table fails.
        let bad = bad.unwrap();
        assert!(reconstruct(&unique, &bad).is_err());
    }
}
