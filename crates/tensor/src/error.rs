//! Error type shared by all fallible tensor operations.

use std::error::Error;
use std::fmt;

/// Error returned by fallible operations in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TensorError {
    /// A matrix was constructed with a data length that does not match
    /// `rows * cols`.
    ShapeDataMismatch {
        /// Requested number of rows.
        rows: usize,
        /// Requested number of columns.
        cols: usize,
        /// Length of the provided backing data.
        len: usize,
    },
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A row/column index was out of bounds.
    IndexOutOfBounds {
        /// Offending index as `(row, col)`.
        index: (usize, usize),
        /// Matrix shape as `(rows, cols)`.
        shape: (usize, usize),
    },
    /// A parameter that must be non-zero (tile size, group size, ...) was zero.
    ZeroParameter {
        /// Name of the offending parameter.
        name: &'static str,
    },
    /// Ragged input: rows of differing lengths were supplied.
    RaggedRows {
        /// Length of the first row.
        expected: usize,
        /// Length of the first offending row.
        found: usize,
    },
    /// A quantization scale was zero, negative, NaN or infinite.
    InvalidScale {
        /// The offending scale value.
        scale: f32,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { rows, cols, len } => write!(
                f,
                "data length {len} does not match shape {rows}x{cols} ({} elements)",
                rows * cols
            ),
            TensorError::ShapeMismatch { lhs, rhs, op } => write!(
                f,
                "incompatible shapes for {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            TensorError::ZeroParameter { name } => {
                write!(f, "parameter `{name}` must be non-zero")
            }
            TensorError::RaggedRows { expected, found } => {
                write!(f, "ragged rows: expected length {expected}, found length {found}")
            }
            TensorError::InvalidScale { scale } => {
                write!(f, "invalid quantization scale {scale}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants = [
            TensorError::ShapeDataMismatch { rows: 2, cols: 3, len: 5 },
            TensorError::ShapeMismatch { lhs: (1, 2), rhs: (3, 4), op: "matmul" },
            TensorError::IndexOutOfBounds { index: (9, 9), shape: (2, 2) },
            TensorError::ZeroParameter { name: "tile" },
            TensorError::RaggedRows { expected: 3, found: 2 },
            TensorError::InvalidScale { scale: 0.0 },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
