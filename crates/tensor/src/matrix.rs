//! Dense row-major matrix used throughout the MEADOW workspace.

use crate::error::TensorError;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
///
/// `Matrix` is deliberately small: the MEADOW reproduction only needs 2-D
/// dense tensors over `i8` (quantized weights/activations), `i32`
/// (accumulators) and `f32` (reference math). Indexing is checked; the
/// `*_unchecked`-style fast path is simply slice access through [`Matrix::row`].
///
/// # Example
///
/// ```
/// use meadow_tensor::Matrix;
///
/// let m = Matrix::<i8>::from_rows(&[&[1, 2, 3], &[4, 5, 6]]).unwrap();
/// assert_eq!(m.shape(), (2, 3));
/// assert_eq!(m.row(1), &[4, 5, 6]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T> Matrix<T> {
    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::ShapeDataMismatch { rows, cols, len: data.len() });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the flat row-major backing slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrows the flat row-major backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix and returns the flat row-major backing vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[T] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a reference to element `(r, c)`, or `None` if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> Option<&T> {
        if r < self.rows && c < self.cols {
            self.data.get(r * self.cols + c)
        } else {
            None
        }
    }

    /// Returns a mutable reference to element `(r, c)`, or `None` if out of
    /// bounds.
    pub fn get_mut(&mut self, r: usize, c: usize) -> Option<&mut T> {
        if r < self.rows && c < self.cols {
            self.data.get_mut(r * self.cols + c)
        } else {
            None
        }
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[T]> {
        self.data.chunks(self.cols.max(1))
    }
}

impl<T: Clone> Matrix<T> {
    /// Creates a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RaggedRows`] if the rows have differing lengths.
    pub fn from_rows(rows: &[&[T]]) -> Result<Self, TensorError> {
        let cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(TensorError::RaggedRows { expected: cols, found: r.len() });
            }
            data.extend_from_slice(r);
        }
        Ok(Self { rows: rows.len(), cols, data })
    }

    /// Creates a matrix filled with copies of `value`.
    pub fn filled(rows: usize, cols: usize, value: T) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Returns the transpose as a new matrix.
    pub fn transposed(&self) -> Self {
        let mut data = Vec::with_capacity(self.data.len());
        for c in 0..self.cols {
            for r in 0..self.rows {
                data.push(self.data[r * self.cols + c].clone());
            }
        }
        Self { rows: self.cols, cols: self.rows, data }
    }

    /// Copies rows `[start, start + count)` into a new matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the range exceeds the
    /// number of rows.
    pub fn row_block(&self, start: usize, count: usize) -> Result<Self, TensorError> {
        let end = start.checked_add(count).ok_or(TensorError::IndexOutOfBounds {
            index: (start, 0),
            shape: (self.rows, self.cols),
        })?;
        if end > self.rows {
            return Err(TensorError::IndexOutOfBounds {
                index: (end, 0),
                shape: (self.rows, self.cols),
            });
        }
        Ok(Self {
            rows: count,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        })
    }

    /// Copies columns `[start, start + count)` into a new matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the range exceeds the
    /// number of columns.
    pub fn col_block(&self, start: usize, count: usize) -> Result<Self, TensorError> {
        let end = start.checked_add(count).ok_or(TensorError::IndexOutOfBounds {
            index: (0, start),
            shape: (self.rows, self.cols),
        })?;
        if end > self.cols {
            return Err(TensorError::IndexOutOfBounds {
                index: (0, end),
                shape: (self.rows, self.cols),
            });
        }
        let mut data = Vec::with_capacity(self.rows * count);
        for r in 0..self.rows {
            data.extend_from_slice(&self.data[r * self.cols + start..r * self.cols + end]);
        }
        Ok(Self { rows: self.rows, cols: count, data })
    }
}

impl<T: Clone + Default> Matrix<T> {
    /// Creates a matrix of default-valued elements (zeros for numeric types).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![T::default(); rows * cols] }
    }
}

impl Matrix<i8> {
    /// Converts an INT8 matrix to `f32` by multiplying each element by
    /// `scale` (symmetric dequantization).
    pub fn dequantize(&self, scale: f32) -> Matrix<f32> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f32::from(v) * scale).collect(),
        }
    }

    /// Total size of the matrix payload in bytes (1 byte per INT8 element).
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }
}

impl Matrix<f32> {
    /// Maximum absolute element, or 0.0 for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, &v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_shape() {
        assert!(Matrix::from_vec(2, 2, vec![1_i8, 2, 3, 4]).is_ok());
        let err = Matrix::from_vec(2, 2, vec![1_i8, 2, 3]).unwrap_err();
        assert_eq!(err, TensorError::ShapeDataMismatch { rows: 2, cols: 2, len: 3 });
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[&[1_i8, 2][..], &[3_i8][..]]).unwrap_err();
        assert_eq!(err, TensorError::RaggedRows { expected: 2, found: 1 });
    }

    #[test]
    fn indexing_and_rows() {
        let m = Matrix::from_rows(&[&[1_i32, 2, 3], &[4, 5, 6]]).unwrap();
        assert_eq!(m.get(1, 2), Some(&6));
        assert_eq!(m.get(2, 0), None);
        assert_eq!(m.get(0, 3), None);
        assert_eq!(m.row(0), &[1, 2, 3]);
        assert_eq!(m.iter_rows().count(), 2);
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::from_rows(&[&[1_i8, 2, 3], &[4, 5, 6]]).unwrap();
        let t = m.transposed();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), Some(&6));
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn row_and_col_blocks() {
        let m = Matrix::from_rows(&[&[1_i8, 2, 3], &[4, 5, 6], &[7, 8, 9]]).unwrap();
        let rb = m.row_block(1, 2).unwrap();
        assert_eq!(rb.row(0), &[4, 5, 6]);
        assert_eq!(rb.row(1), &[7, 8, 9]);
        let cb = m.col_block(1, 2).unwrap();
        assert_eq!(cb.row(0), &[2, 3]);
        assert!(m.row_block(2, 2).is_err());
        assert!(m.col_block(3, 1).is_err());
    }

    #[test]
    fn zeros_and_filled() {
        let z = Matrix::<i32>::zeros(2, 3);
        assert!(z.as_slice().iter().all(|&v| v == 0));
        let f = Matrix::filled(2, 2, 7_i8);
        assert!(f.as_slice().iter().all(|&v| v == 7));
    }

    #[test]
    fn dequantize_scales_elements() {
        let m = Matrix::from_rows(&[&[2_i8, -4]]).unwrap();
        let d = m.dequantize(0.5);
        assert_eq!(d.as_slice(), &[1.0, -2.0]);
    }

    #[test]
    fn empty_matrix_is_well_behaved() {
        let m = Matrix::<i8>::zeros(0, 0);
        assert!(m.is_empty());
        assert_eq!(m.shape(), (0, 0));
        assert_eq!(m.iter_rows().count(), 0);
    }
}
