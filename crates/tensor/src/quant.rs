//! Symmetric INT8 quantization with SmoothQuant-style scale migration.
//!
//! The paper evaluates OPT models quantized with SmoothQuant to W8A8
//! (§6.1). SmoothQuant's key trick is migrating quantization difficulty from
//! activations to weights by a per-channel factor `s_j = max|X_j|^α /
//! max|W_j|^(1-α)`; activations are divided by `s_j`, weights multiplied, so
//! the product is unchanged. [`smooth_scales`] and [`apply_smoothing`]
//! implement that migration and [`quantize_symmetric`] performs the final
//! symmetric INT8 rounding.

use crate::error::TensorError;
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A symmetric quantization parameter: `real = scale * int8`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantScale(f32);

impl QuantScale {
    /// Creates a scale.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidScale`] unless `scale` is finite and
    /// strictly positive.
    pub fn new(scale: f32) -> Result<Self, TensorError> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err(TensorError::InvalidScale { scale });
        }
        Ok(Self(scale))
    }

    /// The raw scale value.
    pub fn value(self) -> f32 {
        self.0
    }

    /// Scale that maps the given maximum absolute value onto 127.
    ///
    /// A zero `max_abs` (all-zero tensor) falls back to scale 1.0 so that
    /// quantization stays well-defined.
    pub fn from_max_abs(max_abs: f32) -> Self {
        if max_abs > 0.0 && max_abs.is_finite() {
            Self(max_abs / 127.0)
        } else {
            Self(1.0)
        }
    }
}

impl Default for QuantScale {
    fn default() -> Self {
        Self(1.0)
    }
}

/// Quantizes an `f32` matrix symmetrically to INT8 with the given scale.
pub fn quantize_symmetric(m: &Matrix<f32>, scale: QuantScale) -> Matrix<i8> {
    let s = scale.value();
    let data = m.as_slice().iter().map(|&v| ((v / s).round()).clamp(-127.0, 127.0) as i8).collect();
    Matrix::from_vec(m.rows(), m.cols(), data).expect("same shape as input")
}

/// Quantizes with a scale derived from the matrix's own max-abs value.
///
/// Returns the quantized matrix and the scale used.
pub fn quantize_auto(m: &Matrix<f32>) -> (Matrix<i8>, QuantScale) {
    let scale = QuantScale::from_max_abs(m.max_abs());
    (quantize_symmetric(m, scale), scale)
}

/// Computes SmoothQuant per-channel migration factors.
///
/// `act_max[j]` is the calibration-time max-abs of activation channel `j`;
/// `weight_max[j]` the max-abs of weight row `j` (the row multiplying that
/// activation channel). `alpha` is the migration strength (0.5 in the paper's
/// SmoothQuant setting).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the two slices have different
/// lengths and [`TensorError::InvalidScale`] if `alpha` is outside `[0, 1]`.
pub fn smooth_scales(
    act_max: &[f32],
    weight_max: &[f32],
    alpha: f32,
) -> Result<Vec<f32>, TensorError> {
    if act_max.len() != weight_max.len() {
        return Err(TensorError::ShapeMismatch {
            lhs: (1, act_max.len()),
            rhs: (1, weight_max.len()),
            op: "smooth_scales",
        });
    }
    if !(0.0..=1.0).contains(&alpha) || alpha.is_nan() {
        return Err(TensorError::InvalidScale { scale: alpha });
    }
    Ok(act_max
        .iter()
        .zip(weight_max)
        .map(|(&a, &w)| {
            let a = a.abs().max(1e-5);
            let w = w.abs().max(1e-5);
            let s = a.powf(alpha) / w.powf(1.0 - alpha);
            if s.is_finite() && s > 0.0 {
                s
            } else {
                1.0
            }
        })
        .collect())
}

/// Applies migration factors: activations columns divided by `s`, weight rows
/// multiplied by `s`, leaving the matrix product mathematically unchanged.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `scales.len()` does not equal
/// `activations.cols()` (which must equal `weights.rows()`).
pub fn apply_smoothing(
    activations: &mut Matrix<f32>,
    weights: &mut Matrix<f32>,
    scales: &[f32],
) -> Result<(), TensorError> {
    if scales.len() != activations.cols() || scales.len() != weights.rows() {
        return Err(TensorError::ShapeMismatch {
            lhs: activations.shape(),
            rhs: weights.shape(),
            op: "apply_smoothing",
        });
    }
    for r in 0..activations.rows() {
        let row = activations.row_mut(r);
        for (v, &s) in row.iter_mut().zip(scales) {
            *v /= s;
        }
    }
    for (r, &s) in scales.iter().enumerate() {
        for v in weights.row_mut(r) {
            *v *= s;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm;

    #[test]
    fn scale_validation() {
        assert!(QuantScale::new(0.1).is_ok());
        assert!(QuantScale::new(0.0).is_err());
        assert!(QuantScale::new(-1.0).is_err());
        assert!(QuantScale::new(f32::INFINITY).is_err());
        assert_eq!(QuantScale::default().value(), 1.0);
    }

    #[test]
    fn from_max_abs_maps_to_full_range() {
        let s = QuantScale::from_max_abs(12.7);
        assert!((s.value() - 0.1).abs() < 1e-6);
        // Degenerate inputs fall back to 1.0.
        assert_eq!(QuantScale::from_max_abs(0.0).value(), 1.0);
        assert_eq!(QuantScale::from_max_abs(f32::NAN).value(), 1.0);
    }

    #[test]
    fn quantize_round_trip_error_is_bounded() {
        let m = Matrix::from_rows(&[&[0.9_f32, -0.45, 0.05, 1.0, -1.0]]).unwrap();
        let (q, s) = quantize_auto(&m);
        let d = q.dequantize(s.value());
        for (orig, deq) in m.as_slice().iter().zip(d.as_slice()) {
            assert!((orig - deq).abs() <= s.value() / 2.0 + 1e-6);
        }
    }

    #[test]
    fn quantize_saturates_at_127() {
        let m = Matrix::from_rows(&[&[10.0_f32, -10.0]]).unwrap();
        let q = quantize_symmetric(&m, QuantScale::new(0.01).unwrap());
        assert_eq!(q.as_slice(), &[127, -127]);
    }

    #[test]
    fn smoothing_preserves_product() {
        let mut x = Matrix::from_rows(&[&[4.0_f32, 0.5], &[-2.0, 1.0]]).unwrap();
        let mut w = Matrix::from_rows(&[&[0.25_f32, 1.0], &[2.0, -0.5]]).unwrap();
        let before = {
            let (xq, xs) = quantize_auto(&x);
            let (wq, ws) = quantize_auto(&w);
            let acc = gemm::matmul_i8(&xq, &wq).unwrap();
            acc.dequantize_like(xs.value() * ws.value())
        };
        let scales = smooth_scales(&[4.0, 1.0], &[1.0, 2.0], 0.5).unwrap();
        apply_smoothing(&mut x, &mut w, &scales).unwrap();
        let after = {
            let (xq, xs) = quantize_auto(&x);
            let (wq, ws) = quantize_auto(&w);
            let acc = gemm::matmul_i8(&xq, &wq).unwrap();
            acc.dequantize_like(xs.value() * ws.value())
        };
        for (b, a) in before.as_slice().iter().zip(after.as_slice()) {
            assert!((b - a).abs() < 0.2, "product drifted: {b} vs {a}");
        }
    }

    #[test]
    fn smooth_scales_validates_inputs() {
        assert!(smooth_scales(&[1.0], &[1.0, 2.0], 0.5).is_err());
        assert!(smooth_scales(&[1.0], &[1.0], 1.5).is_err());
        assert!(smooth_scales(&[1.0], &[1.0], f32::NAN).is_err());
    }

    #[test]
    fn smooth_scales_handles_zero_maxima() {
        let s = smooth_scales(&[0.0, 1.0], &[0.0, 1.0], 0.5).unwrap();
        assert!(s.iter().all(|v| v.is_finite() && *v > 0.0));
    }

    impl Matrix<i32> {
        /// Test-local helper: dequantize an i32 accumulator with a product
        /// scale.
        fn dequantize_like(&self, scale: f32) -> Matrix<f32> {
            let data = self.as_slice().iter().map(|&v| v as f32 * scale).collect();
            Matrix::from_vec(self.rows(), self.cols(), data).unwrap()
        }
    }
}
