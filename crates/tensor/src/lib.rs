//! Minimal quantized-tensor substrate for the MEADOW reproduction.
//!
//! MEADOW (MLSys 2025) executes W8A8-quantized transformer layers on a tiled
//! FPGA accelerator. This crate provides the *numerics* that the rest of the
//! workspace builds on:
//!
//! * [`Matrix`] — a dense row-major matrix over `i8` / `i32` / `f32`.
//! * [`gemm`] — reference and tiled INT8×INT8→INT32 matrix multiplication,
//!   bit-identical regardless of tiling (the property the dataflow executors
//!   rely on for GEMM-vs-TPHS equivalence testing).
//! * [`quant`] — symmetric INT8 quantization with SmoothQuant-style scale
//!   migration between activations and weights.
//! * [`softmax`] — numerically stable softmax, in an exact `f32` form and in
//!   the fixed-point EXP-LUT form computed by MEADOW's pipelined softmax
//!   module (Fig. 2d of the paper).
//! * [`layernorm`] / [`activations`] — LayerNorm, ReLU and GELU references.
//! * [`fixed`] — small fixed-point helpers used by the LUT datapaths.
//! * [`parallel`] — [`ExecConfig`] and the scoped-thread partitioning
//!   helpers behind the `*_with` parallel kernels (bit-identical to their
//!   serial counterparts; thread count via `MEADOW_THREADS`).
//!
//! # Example
//!
//! ```
//! use meadow_tensor::{Matrix, gemm};
//!
//! let a = Matrix::<i8>::from_rows(&[&[1, 2], &[3, 4]]).unwrap();
//! let b = Matrix::<i8>::from_rows(&[&[5, 6], &[7, 8]]).unwrap();
//! let c = gemm::matmul_i8(&a, &b).unwrap();
//! assert_eq!(c.get(0, 0), Some(&19));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activations;
pub mod error;
pub mod fixed;
pub mod gemm;
pub mod layernorm;
pub mod matrix;
pub mod parallel;
pub mod quant;
pub mod softmax;

pub use error::TensorError;
pub use matrix::Matrix;
pub use parallel::ExecConfig;
