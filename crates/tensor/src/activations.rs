//! Nonlinear activation functions served by the tile's NL modules.
//!
//! The paper's NL modules implement ReLU/GELU (Fig. 2a). OPT uses ReLU in its
//! MLP; ViTs (DeiT) use GELU. Both are provided in exact `f32` form plus an
//! INT8 in/out form matching the on-chip datapath.

use serde::{Deserialize, Serialize};

/// Which nonlinearity an MLP block applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit (OPT decoder MLP).
    #[default]
    Relu,
    /// Gaussian error linear unit, tanh approximation (DeiT MLP).
    Gelu,
}

impl Activation {
    /// Applies the activation to a single `f32`.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Gelu => {
                // tanh approximation used by common inference stacks.
                const SQRT_2_OVER_PI: f32 = 0.797_884_6;
                0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
            }
        }
    }

    /// Applies the activation to an INT8 value under symmetric scale `scale`,
    /// requantizing with the same scale (the on-chip NL module keeps the
    /// quantization grid).
    pub fn apply_i8(self, x: i8, scale: f32) -> i8 {
        let real = f32::from(x) * scale;
        let y = self.apply(real);
        (y / scale).round().clamp(-128.0, 127.0) as i8
    }

    /// Applies the activation elementwise to a slice in place.
    pub fn apply_slice(self, xs: &mut [f32]) {
        for x in xs {
            *x = self.apply(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.5), 2.5);
        assert_eq!(Activation::Relu.apply(0.0), 0.0);
    }

    #[test]
    fn gelu_matches_known_values() {
        // GELU(0) = 0, GELU is ≈ identity for large x, ≈ 0 for very negative x.
        let g = Activation::Gelu;
        assert!(g.apply(0.0).abs() < 1e-6);
        assert!((g.apply(6.0) - 6.0).abs() < 1e-2);
        assert!(g.apply(-6.0).abs() < 1e-2);
        // Known midpoint: GELU(1) ≈ 0.8412.
        assert!((g.apply(1.0) - 0.8412).abs() < 5e-3);
    }

    #[test]
    fn int8_path_preserves_relu_semantics() {
        assert_eq!(Activation::Relu.apply_i8(-50, 0.1), 0);
        assert_eq!(Activation::Relu.apply_i8(50, 0.1), 50);
    }

    #[test]
    fn int8_path_never_overflows() {
        for x in i8::MIN..=i8::MAX {
            let _ = Activation::Gelu.apply_i8(x, 0.05);
            let _ = Activation::Relu.apply_i8(x, 10.0);
        }
    }

    #[test]
    fn slice_application() {
        let mut xs = [-1.0_f32, 2.0, -3.0];
        Activation::Relu.apply_slice(&mut xs);
        assert_eq!(xs, [0.0, 2.0, 0.0]);
    }

    #[test]
    fn gelu_is_monotone_for_nonnegative_inputs() {
        // GELU has a shallow dip near x ≈ -0.75, so it is only monotone on
        // x ≥ 0; the dip itself is bounded by ≈ -0.17.
        let g = Activation::Gelu;
        let mut prev = f32::NEG_INFINITY;
        for i in 0..=40 {
            let v = g.apply(i as f32 * 0.1);
            assert!(v >= prev - 1e-4);
            prev = v;
        }
        for i in -40..0 {
            assert!(g.apply(i as f32 * 0.1) >= -0.2);
        }
    }
}
