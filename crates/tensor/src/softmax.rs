//! Numerically stable softmax: exact reference and the LUT-based form
//! computed by MEADOW's pipelined softmax module.
//!
//! The paper's SM module (Fig. 2d, Eq. 1) computes, per token,
//! `SM_i = exp(x_i - max) / Σ_j exp(x_j - max)` in three pipelined stages
//! (MAX → EXP → DIV), with the exponent taken from an on-chip LUT.
//! [`softmax_row_exact`] is the float reference; [`softmax_row_lut`]
//! reproduces the LUT datapath bit-for-bit against the simulator's softmax
//! unit.

use crate::error::TensorError;
use crate::fixed::ExpLut;
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Which softmax implementation a dataflow executor should use.
///
/// Both the GEMM baseline and the TPHS pipeline accept this so functional
/// equivalence can be asserted under identical arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SoftmaxKind {
    /// Exact `f32` softmax.
    #[default]
    Exact,
    /// Fixed-point EXP-LUT softmax as computed by the hardware SM module.
    Lut,
}

/// Exact numerically-stable softmax over one slice.
///
/// Returns all-zeros for an empty slice.
pub fn softmax_row_exact(row: &[f32]) -> Vec<f32> {
    if row.is_empty() {
        return Vec::new();
    }
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    if sum > 0.0 {
        exps.into_iter().map(|e| e / sum).collect()
    } else {
        vec![1.0 / row.len() as f32; row.len()]
    }
}

/// LUT-based numerically-stable softmax over one slice, mirroring the
/// MAX → EXP → DIV stages of the hardware module.
pub fn softmax_row_lut(row: &[f32], lut: &ExpLut) -> Vec<f32> {
    if row.is_empty() {
        return Vec::new();
    }
    // MAX stage: running maximum over F features.
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    // EXP stage: LUT lookup of exp(x - max) plus running sum.
    let exps: Vec<f32> = row.iter().map(|&v| lut.eval(v - max)).collect();
    let sum: f32 = exps.iter().sum();
    // DIV stage.
    if sum > 0.0 {
        exps.into_iter().map(|e| e / sum).collect()
    } else {
        vec![1.0 / row.len() as f32; row.len()]
    }
}

/// Applies softmax independently to each row of a matrix.
pub fn softmax_rows(m: &Matrix<f32>, kind: SoftmaxKind, lut: &ExpLut) -> Matrix<f32> {
    let mut out = Vec::with_capacity(m.len());
    for r in 0..m.rows() {
        let sm = match kind {
            SoftmaxKind::Exact => softmax_row_exact(m.row(r)),
            SoftmaxKind::Lut => softmax_row_lut(m.row(r), lut),
        };
        out.extend(sm);
    }
    Matrix::from_vec(m.rows(), m.cols(), out).expect("same shape as input")
}

/// Softmax over INT32 attention scores with a dequantization scale, returning
/// probabilities quantized to UINT8-style INT8 in `[0, 127]`.
///
/// This matches the on-chip datapath: scores arrive as INT32 accumulator
/// values, are dequantized by `score_scale`, pushed through the SM module and
/// requantized so the broadcasting PEs can consume INT8 probabilities.
///
/// # Errors
///
/// Returns [`TensorError::InvalidScale`] if `score_scale` is not finite and
/// positive.
pub fn softmax_scores_i32(
    scores: &Matrix<i32>,
    score_scale: f32,
    kind: SoftmaxKind,
    lut: &ExpLut,
) -> Result<(Matrix<i8>, f32), TensorError> {
    if !score_scale.is_finite() || score_scale <= 0.0 {
        return Err(TensorError::InvalidScale { scale: score_scale });
    }
    let dequant = Matrix::from_vec(
        scores.rows(),
        scores.cols(),
        scores.as_slice().iter().map(|&v| v as f32 * score_scale).collect(),
    )
    .expect("same shape");
    let probs = softmax_rows(&dequant, kind, lut);
    // Probabilities live in [0, 1]; quantize with scale 1/127.
    let prob_scale = 1.0 / 127.0;
    let q = Matrix::from_vec(
        probs.rows(),
        probs.cols(),
        probs.as_slice().iter().map(|&p| (p * 127.0).round().clamp(0.0, 127.0) as i8).collect(),
    )
    .expect("same shape");
    Ok((q, prob_scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn exact_softmax_sums_to_one() {
        let sm = softmax_row_exact(&[1.0, 2.0, 3.0, 4.0]);
        let sum: f32 = sm.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(sm.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn exact_softmax_is_shift_invariant() {
        let a = softmax_row_exact(&[1.0, 2.0, 3.0]);
        let b = softmax_row_exact(&[1001.0, 1002.0, 1003.0]);
        assert_close(&a, &b, 1e-6);
    }

    #[test]
    fn exact_softmax_survives_extremes() {
        let sm = softmax_row_exact(&[f32::NEG_INFINITY, 0.0]);
        assert_close(&sm, &[0.0, 1.0], 1e-6);
        let huge = softmax_row_exact(&[1e30, 1e30]);
        assert_close(&huge, &[0.5, 0.5], 1e-6);
    }

    #[test]
    fn lut_softmax_tracks_exact() {
        let lut = ExpLut::hardware_default();
        let row = [0.3_f32, -1.2, 2.5, 0.0, -4.0, 1.1];
        let exact = softmax_row_exact(&row);
        let approx = softmax_row_lut(&row, &lut);
        assert_close(&exact, &approx, 0.02);
        let sum: f32 = approx.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_rows_are_fine() {
        assert!(softmax_row_exact(&[]).is_empty());
        assert!(softmax_row_lut(&[], &ExpLut::hardware_default()).is_empty());
    }

    #[test]
    fn matrix_softmax_is_per_row() {
        let m = Matrix::from_rows(&[&[0.0_f32, 0.0], &[10.0, 0.0]]).unwrap();
        let sm = softmax_rows(&m, SoftmaxKind::Exact, &ExpLut::hardware_default());
        assert_close(sm.row(0), &[0.5, 0.5], 1e-6);
        assert!(sm.row(1)[0] > 0.99);
    }

    #[test]
    fn score_softmax_quantizes_probabilities() {
        let scores = Matrix::from_rows(&[&[100_i32, 0, -100]]).unwrap();
        let (q, scale) =
            softmax_scores_i32(&scores, 0.02, SoftmaxKind::Exact, &ExpLut::hardware_default())
                .unwrap();
        assert!(q.as_slice().iter().all(|&v| v >= 0));
        let total: f32 = q.as_slice().iter().map(|&v| f32::from(v) * scale).sum();
        assert!((total - 1.0).abs() < 0.05, "quantized probs sum {total}");
        assert!(softmax_scores_i32(&scores, -1.0, SoftmaxKind::Exact, &ExpLut::default()).is_err());
    }

    #[test]
    fn uniform_fallback_when_sum_underflows() {
        // All entries equal → all max-shifted args are 0 → fine; force the
        // degenerate path with an empty-ish LUT range instead.
        let sm = softmax_row_exact(&[f32::NEG_INFINITY, f32::NEG_INFINITY]);
        assert_close(&sm, &[0.5, 0.5], 1e-6);
    }
}
