//! Small fixed-point helpers backing the LUT datapaths of the simulator.
//!
//! MEADOW's softmax module computes `exp(x - max)` through an `EXP LUT`
//! (Fig. 2d) rather than a floating-point unit. The simulator models that LUT
//! as a table of Q-format fixed-point values indexed by a quantized argument.

use serde::{Deserialize, Serialize};

/// A Qm.n unsigned fixed-point format: values are stored as
/// `round(real * 2^frac_bits)` in a `u32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QFormat {
    /// Number of fractional bits.
    pub frac_bits: u32,
}

impl QFormat {
    /// Creates a format with the given number of fractional bits (≤ 30).
    ///
    /// # Panics
    ///
    /// Panics if `frac_bits > 30` (would overflow the `u32` representation of
    /// values ≥ 1.0).
    pub fn new(frac_bits: u32) -> Self {
        assert!(frac_bits <= 30, "frac_bits {frac_bits} too large for u32 storage");
        Self { frac_bits }
    }

    /// Encodes a non-negative real value, saturating at the representable max.
    pub fn encode(self, real: f32) -> u32 {
        if !real.is_finite() || real <= 0.0 {
            return 0;
        }
        let scaled = (f64::from(real) * (1u64 << self.frac_bits) as f64).round();
        if scaled >= f64::from(u32::MAX) {
            u32::MAX
        } else {
            scaled as u32
        }
    }

    /// Decodes a stored value back to `f32`.
    pub fn decode(self, stored: u32) -> f32 {
        (stored as f64 / (1u64 << self.frac_bits) as f64) as f32
    }

    /// Quantization step (the value of one LSB).
    pub fn lsb(self) -> f32 {
        1.0 / (1u64 << self.frac_bits) as f32
    }
}

impl Default for QFormat {
    /// Q*.16 — the format used by the simulator's EXP LUT.
    fn default() -> Self {
        Self::new(16)
    }
}

/// A lookup table for `exp(-x)` over `x ∈ [0, range]`, as synthesized into
/// the softmax module's `EXP LUT`.
///
/// The numerically-stable softmax only ever evaluates `exp(x - max)` with
/// `x - max ≤ 0`, so a table over negative arguments suffices. Entries are
/// stored in the [`QFormat`] fixed-point encoding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpLut {
    entries: Vec<u32>,
    range: f32,
    format: QFormat,
}

impl ExpLut {
    /// Builds a LUT with `entries` samples of `exp(-x)` for
    /// `x ∈ [0, range]`.
    ///
    /// # Panics
    ///
    /// Panics if `entries < 2` or `range <= 0` (both indicate a
    /// misconfigured hardware description, not a data-dependent condition).
    pub fn new(entries: usize, range: f32, format: QFormat) -> Self {
        assert!(entries >= 2, "ExpLut needs at least 2 entries");
        assert!(range > 0.0, "ExpLut range must be positive");
        let table = (0..entries)
            .map(|i| {
                let x = range * i as f32 / (entries - 1) as f32;
                format.encode((-x).exp())
            })
            .collect();
        Self { entries: table, range, format }
    }

    /// Hardware-default LUT: 1024 entries over `[0, 16]` in Q*.16.
    pub fn hardware_default() -> Self {
        Self::new(1024, 16.0, QFormat::default())
    }

    /// Number of table entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty (never true for a constructed LUT).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Size of the LUT in bytes as stored on-chip (4 bytes per entry).
    pub fn size_bytes(&self) -> usize {
        self.entries.len() * 4
    }

    /// Evaluates `exp(neg_arg)` for `neg_arg ≤ 0` by nearest-entry lookup.
    ///
    /// Arguments below `-range` return 0 (the hardware clamps to the last
    /// entry, which encodes ≈ `exp(-range)` ≈ 0); positive arguments clamp to
    /// index 0 (`exp(0) = 1`), mirroring the module's saturating behavior.
    pub fn eval(&self, neg_arg: f32) -> f32 {
        let x = (-neg_arg).max(0.0);
        let pos = x / self.range * (self.entries.len() - 1) as f32;
        let idx = (pos.round() as usize).min(self.entries.len() - 1);
        self.format.decode(self.entries[idx])
    }

    /// Worst-case absolute error of the table against `f32::exp` over its
    /// domain, estimated on a dense grid.
    pub fn max_abs_error(&self) -> f32 {
        let mut worst = 0.0_f32;
        let probes = self.entries.len() * 4;
        for i in 0..=probes {
            let x = -(self.range * i as f32 / probes as f32);
            worst = worst.max((self.eval(x) - x.exp()).abs());
        }
        worst
    }
}

impl Default for ExpLut {
    fn default() -> Self {
        Self::hardware_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qformat_round_trip() {
        let q = QFormat::new(16);
        for v in [0.0_f32, 0.5, 1.0, 0.123, 3.75] {
            let back = q.decode(q.encode(v));
            assert!((back - v).abs() <= q.lsb(), "{v} -> {back}");
        }
    }

    #[test]
    fn qformat_rejects_garbage() {
        let q = QFormat::new(8);
        assert_eq!(q.encode(-1.0), 0);
        assert_eq!(q.encode(f32::NAN), 0);
        // Non-finite inputs are rejected to 0 rather than saturated: the LUT
        // generator never produces them, so any occurrence is a logic bug
        // upstream and a zero entry is the safest sentinel.
        assert_eq!(q.encode(f32::INFINITY), 0);
    }

    #[test]
    fn lut_is_accurate_enough_for_softmax() {
        let lut = ExpLut::hardware_default();
        assert!(lut.max_abs_error() < 0.01, "error {}", lut.max_abs_error());
    }

    #[test]
    fn lut_endpoints() {
        let lut = ExpLut::hardware_default();
        assert!((lut.eval(0.0) - 1.0).abs() < 1e-3);
        assert!(lut.eval(-16.0) < 1e-3);
        // Clamps outside the domain.
        assert!((lut.eval(1.0) - 1.0).abs() < 1e-3);
        assert!(lut.eval(-100.0) < 1e-3);
    }

    #[test]
    fn lut_is_monotonically_nonincreasing() {
        let lut = ExpLut::new(256, 8.0, QFormat::new(16));
        let mut prev = f32::INFINITY;
        for i in 0..=512 {
            let x = -(8.0 * i as f32 / 512.0);
            let v = lut.eval(x);
            assert!(v <= prev + 1e-6);
            prev = v;
        }
    }

    #[test]
    fn size_accounting() {
        let lut = ExpLut::new(1024, 16.0, QFormat::default());
        assert_eq!(lut.len(), 1024);
        assert_eq!(lut.size_bytes(), 4096);
        assert!(!lut.is_empty());
    }
}
