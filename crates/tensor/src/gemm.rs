//! INT8×INT8→INT32 matrix multiplication: the arithmetic core of every
//! GEMM-mode layer in MEADOW.
//!
//! Two entry points are provided:
//!
//! * [`matmul_i8`] — the straightforward reference.
//! * [`matmul_i8_tiled`] — a blocked version that visits the index space in
//!   the same tile order the hardware executor does. Because INT32 addition
//!   over exact INT8 products is associative, the result is bit-identical to
//!   the reference for every tiling — a property the dataflow crate's
//!   equivalence tests rely on.

use crate::error::TensorError;
use crate::matrix::Matrix;
use crate::parallel::{par_map_ranges, ExecConfig};

/// Multiplies `a (M×K) × b (K×N)` with INT32 accumulation.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `a.cols() != b.rows()`.
///
/// # Example
///
/// ```
/// # use meadow_tensor::{Matrix, gemm};
/// let a = Matrix::<i8>::from_rows(&[&[1, -2]]).unwrap();
/// let b = Matrix::<i8>::from_rows(&[&[3], &[4]]).unwrap();
/// let c = gemm::matmul_i8(&a, &b).unwrap();
/// assert_eq!(c.as_slice(), &[-5]);
/// ```
pub fn matmul_i8(a: &Matrix<i8>, b: &Matrix<i8>) -> Result<Matrix<i32>, TensorError> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch { lhs: a.shape(), rhs: b.shape(), op: "matmul" });
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::<i32>::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for (p, &av) in arow.iter().enumerate().take(k) {
            let brow = b.row(p);
            let av = i32::from(av);
            for (j, &bv) in brow.iter().enumerate() {
                orow[j] += av * i32::from(bv);
            }
        }
    }
    Ok(out)
}

/// Multiplies `a (M×K) × bT` where `bT` is the **transpose** of the right
/// operand, i.e. `bT` has shape `N×K` and the result is `a × bTᵀ` of shape
/// `M×N`.
///
/// This is the natural layout for the attention-score computation
/// `Q (T×HD) × Kᵀ (HD×T)` when `K` is stored row-major per token.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `a.cols() != b_t.cols()`.
pub fn matmul_i8_bt(a: &Matrix<i8>, b_t: &Matrix<i8>) -> Result<Matrix<i32>, TensorError> {
    matmul_i8_bt_with(a, b_t, &ExecConfig::serial())
}

/// [`matmul_i8_bt`] with caller-chosen parallelism: output rows are
/// partitioned across the worker threads of `exec`.
///
/// Each output row is computed by exactly one worker in the same
/// per-element order as the serial path, so the result is bit-identical to
/// [`matmul_i8_bt`] for every thread count.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `a.cols() != b_t.cols()`.
pub fn matmul_i8_bt_with(
    a: &Matrix<i8>,
    b_t: &Matrix<i8>,
    exec: &ExecConfig,
) -> Result<Matrix<i32>, TensorError> {
    if a.cols() != b_t.cols() {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape(),
            rhs: b_t.shape(),
            op: "matmul_bt",
        });
    }
    let m = a.rows();
    let n = b_t.rows();
    let blocks = par_map_ranges(m, exec, |rows| {
        let mut block = Vec::with_capacity(rows.len() * n);
        for i in rows {
            let arow = a.row(i);
            for j in 0..n {
                block.push(dot_i8(arow, b_t.row(j)));
            }
        }
        block
    });
    Matrix::from_vec(m, n, concat_blocks(blocks, m * n))
}

/// Stitches per-range row blocks into one flat buffer; the single-block
/// (serial) case hands its buffer through without copying, keeping the
/// default path allocation-identical to a direct write.
fn concat_blocks(mut blocks: Vec<Vec<i32>>, total: usize) -> Vec<i32> {
    if blocks.len() == 1 {
        return blocks.pop().expect("len checked");
    }
    let mut data = Vec::with_capacity(total);
    for block in blocks {
        data.extend_from_slice(&block);
    }
    data
}

/// Exact INT32 dot product of two INT8 slices.
///
/// # Panics
///
/// Panics if the slices have different lengths (programmer error: the caller
/// owns both layouts).
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "dot product of mismatched lengths");
    a.iter().zip(b).map(|(&x, &y)| i32::from(x) * i32::from(y)).sum()
}

/// Blocked GEMM with caller-chosen tile sizes, bit-identical to [`matmul_i8`].
///
/// The loop nest visits `(row tile, col tile, k tile)` in the order MEADOW's
/// GEMM-mode executor streams tiles through the PE array, so functional tests
/// that compare against hardware-order execution exercise the same traversal.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the inner dimensions disagree and
/// [`TensorError::ZeroParameter`] if any tile size is zero.
pub fn matmul_i8_tiled(
    a: &Matrix<i8>,
    b: &Matrix<i8>,
    tile_m: usize,
    tile_n: usize,
    tile_k: usize,
) -> Result<Matrix<i32>, TensorError> {
    matmul_i8_tiled_with(a, b, tile_m, tile_n, tile_k, &ExecConfig::serial())
}

/// [`matmul_i8_tiled`] with caller-chosen parallelism: row-tile blocks are
/// partitioned across the worker threads of `exec`.
///
/// Partition boundaries always fall on `tile_m` multiples, so every worker
/// traverses its rows in exactly the serial tile order, and each output row
/// is accumulated by exactly one worker. INT32 addition over exact INT8
/// products is order-safe per row partition, so the result is bit-identical
/// to the serial reference for every thread count — the property the
/// workspace's equivalence suite checks exhaustively.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the inner dimensions disagree
/// and [`TensorError::ZeroParameter`] if any tile size is zero.
pub fn matmul_i8_tiled_with(
    a: &Matrix<i8>,
    b: &Matrix<i8>,
    tile_m: usize,
    tile_n: usize,
    tile_k: usize,
    exec: &ExecConfig,
) -> Result<Matrix<i32>, TensorError> {
    if tile_m == 0 {
        return Err(TensorError::ZeroParameter { name: "tile_m" });
    }
    if tile_n == 0 {
        return Err(TensorError::ZeroParameter { name: "tile_n" });
    }
    if tile_k == 0 {
        return Err(TensorError::ZeroParameter { name: "tile_k" });
    }
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape(),
            rhs: b.shape(),
            op: "matmul_tiled",
        });
    }
    let m = a.rows();
    let n = b.cols();
    let row_tiles = m.div_ceil(tile_m);
    let blocks = par_map_ranges(row_tiles, exec, |tiles| {
        let rows = tiles.start * tile_m..(tiles.end * tile_m).min(m);
        tiled_row_block(a, b, rows, tile_m, tile_n, tile_k)
    });
    Matrix::from_vec(m, n, concat_blocks(blocks, m * n))
}

/// Serial tiled GEMM over the output rows `rows` (which must start on a
/// `tile_m` boundary), returned as a flat row-major block.
fn tiled_row_block(
    a: &Matrix<i8>,
    b: &Matrix<i8>,
    rows: std::ops::Range<usize>,
    tile_m: usize,
    tile_n: usize,
    tile_k: usize,
) -> Vec<i32> {
    debug_assert!(rows.start.is_multiple_of(tile_m), "row block misaligned to tile_m");
    let k = a.cols();
    let n = b.cols();
    let base = rows.start;
    let mut block = vec![0i32; rows.len() * n];
    let mut i0 = rows.start;
    while i0 < rows.end {
        let i1 = (i0 + tile_m).min(rows.end);
        let mut j0 = 0;
        while j0 < n {
            let j1 = (j0 + tile_n).min(n);
            let mut p0 = 0;
            while p0 < k {
                let p1 = (p0 + tile_k).min(k);
                for i in i0..i1 {
                    let arow = a.row(i);
                    let orow = &mut block[(i - base) * n..(i - base + 1) * n];
                    for (p, &aval) in arow.iter().enumerate().take(p1).skip(p0) {
                        let av = i32::from(aval);
                        let brow = b.row(p);
                        for j in j0..j1 {
                            orow[j] += av * i32::from(brow[j]);
                        }
                    }
                }
                p0 = p1;
            }
            j0 = j1;
        }
        i0 = i1;
    }
    block
}

/// Requantizes a single INT32 accumulator value to INT8:
/// `clamp(round(acc * multiplier), -128, 127)`.
///
/// Both the matrix-level GEMM path and the per-element PE path use this
/// exact function, which is what makes GEMM-vs-TPHS functional equivalence
/// bit-exact.
pub fn requantize_value(acc: i32, multiplier: f32) -> i8 {
    let scaled = (acc as f64 * f64::from(multiplier)).round();
    scaled.clamp(-128.0, 127.0) as i8
}

/// Requantizes an INT32 accumulator matrix back to INT8.
///
/// `out = clamp(round(acc * multiplier), -128, 127)` where
/// `multiplier = scale_in * scale_w / scale_out` in a full W8A8 pipeline.
///
/// # Errors
///
/// Returns [`TensorError::InvalidScale`] if `multiplier` is not finite or is
/// not positive.
pub fn requantize_i32(acc: &Matrix<i32>, multiplier: f32) -> Result<Matrix<i8>, TensorError> {
    if !multiplier.is_finite() || multiplier <= 0.0 {
        return Err(TensorError::InvalidScale { scale: multiplier });
    }
    let data = acc.as_slice().iter().map(|&v| requantize_value(v, multiplier)).collect();
    Matrix::from_vec(acc.rows(), acc.cols(), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Matrix<i8>, Matrix<i8>) {
        let a = Matrix::from_rows(&[&[1_i8, 2, 3], &[-4, 5, -6]]).unwrap();
        let b = Matrix::from_rows(&[&[7_i8, -8], &[9, 10], &[-11, 12]]).unwrap();
        (a, b)
    }

    #[test]
    fn reference_matmul() {
        let (a, b) = small();
        let c = matmul_i8(&a, &b).unwrap();
        // Hand-computed.
        assert_eq!(c.row(0), &[7 + 18 - 33, -8 + 20 + 36]);
        assert_eq!(c.row(1), &[-28 + 45 + 66, 32 + 50 - 72]);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = Matrix::<i8>::zeros(2, 3);
        let b = Matrix::<i8>::zeros(2, 3);
        assert!(matches!(matmul_i8(&a, &b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn bt_matches_explicit_transpose() {
        let (a, b) = small();
        let via_bt = matmul_i8_bt(&a, &b.transposed()).unwrap();
        let direct = matmul_i8(&a, &b).unwrap();
        assert_eq!(via_bt, direct);
    }

    #[test]
    fn tiled_matches_reference_for_many_tilings() {
        let (a, b) = small();
        let reference = matmul_i8(&a, &b).unwrap();
        for tm in 1..=3 {
            for tn in 1..=3 {
                for tk in 1..=4 {
                    let tiled = matmul_i8_tiled(&a, &b, tm, tn, tk).unwrap();
                    assert_eq!(tiled, reference, "tiling ({tm},{tn},{tk}) diverged");
                }
            }
        }
    }

    #[test]
    fn parallel_tiled_is_bit_identical() {
        let (a, b) = small();
        let reference = matmul_i8(&a, &b).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let exec = ExecConfig::with_threads(threads);
            for tm in 1..=3 {
                let par = matmul_i8_tiled_with(&a, &b, tm, 2, 2, &exec).unwrap();
                assert_eq!(par, reference, "threads {threads} tile_m {tm}");
            }
            let bt = matmul_i8_bt_with(&a, &b.transposed(), &exec).unwrap();
            assert_eq!(bt, reference, "bt threads {threads}");
        }
    }

    #[test]
    fn parallel_empty_and_mismatch() {
        let exec = ExecConfig::with_threads(4);
        let empty = Matrix::<i8>::zeros(0, 3);
        let b = Matrix::<i8>::zeros(3, 2);
        let out = matmul_i8_tiled_with(&empty, &b, 2, 2, 2, &exec).unwrap();
        assert_eq!(out.shape(), (0, 2));
        let bad = Matrix::<i8>::zeros(2, 2);
        assert!(matmul_i8_tiled_with(&bad, &b, 2, 2, 2, &exec).is_err());
        assert!(matmul_i8_bt_with(&bad, &b.transposed(), &exec).is_err());
    }

    #[test]
    fn zero_tile_rejected() {
        let (a, b) = small();
        assert!(matches!(
            matmul_i8_tiled(&a, &b, 0, 1, 1),
            Err(TensorError::ZeroParameter { name: "tile_m" })
        ));
    }

    #[test]
    fn extreme_values_do_not_overflow_i32() {
        // 128 * 127 * K with K large enough to matter: i8 min * i8 max = -16256;
        // 4096 of them = -66,584,576 which fits i32 comfortably.
        let k = 4096;
        let a = Matrix::from_vec(1, k, vec![i8::MIN; k]).unwrap();
        let b = Matrix::from_vec(k, 1, vec![i8::MAX; k]).unwrap();
        let c = matmul_i8(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[i32::from(i8::MIN) * i32::from(i8::MAX) * k as i32]);
    }

    #[test]
    fn requantize_rounds_and_clamps() {
        let acc = Matrix::from_rows(&[&[100_i32, -100, 1_000_000, -1_000_000]]).unwrap();
        let q = requantize_i32(&acc, 0.05).unwrap();
        assert_eq!(q.as_slice(), &[5, -5, 127, -128]);
        assert!(requantize_i32(&acc, 0.0).is_err());
        assert!(requantize_i32(&acc, f32::NAN).is_err());
    }

    #[test]
    fn dot_product_basics() {
        assert_eq!(dot_i8(&[1, 2, 3], &[4, 5, 6]), 32);
        assert_eq!(dot_i8(&[], &[]), 0);
    }
}
