//! LayerNorm reference, matching the decoder's LN modules.
//!
//! MEADOW's tile contains dedicated LN modules (Fig. 2a); functionally they
//! compute the standard `γ ⊙ (x - μ)/σ + β` over each token's features. The
//! simulator charges cycles for them; this module provides the arithmetic.

use crate::error::TensorError;
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// LayerNorm parameters for one normalization site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerNormParams {
    /// Per-feature scale γ.
    pub gamma: Vec<f32>,
    /// Per-feature shift β.
    pub beta: Vec<f32>,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl LayerNormParams {
    /// Identity parameters (γ=1, β=0) over `features` features.
    pub fn identity(features: usize) -> Self {
        Self { gamma: vec![1.0; features], beta: vec![0.0; features], eps: 1e-5 }
    }

    /// Number of features this site normalizes over.
    pub fn features(&self) -> usize {
        self.gamma.len()
    }
}

/// Applies LayerNorm to each row of `x`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the parameter vectors do not
/// match `x.cols()` or γ and β disagree in length.
pub fn layernorm_rows(
    x: &Matrix<f32>,
    params: &LayerNormParams,
) -> Result<Matrix<f32>, TensorError> {
    if params.gamma.len() != x.cols() || params.beta.len() != x.cols() {
        return Err(TensorError::ShapeMismatch {
            lhs: x.shape(),
            rhs: (params.gamma.len(), params.beta.len()),
            op: "layernorm",
        });
    }
    let mut out = Vec::with_capacity(x.len());
    for r in 0..x.rows() {
        let row = x.row(r);
        let n = row.len() as f32;
        let mean: f32 = row.iter().sum::<f32>() / n;
        let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
        let inv_std = 1.0 / (var + params.eps).sqrt();
        for (j, &v) in row.iter().enumerate() {
            out.push((v - mean) * inv_std * params.gamma[j] + params.beta[j]);
        }
    }
    Matrix::from_vec(x.rows(), x.cols(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_params_normalize_to_zero_mean_unit_var() {
        let x = Matrix::from_rows(&[&[1.0_f32, 2.0, 3.0, 4.0]]).unwrap();
        let y = layernorm_rows(&x, &LayerNormParams::identity(4)).unwrap();
        let mean: f32 = y.row(0).iter().sum::<f32>() / 4.0;
        let var: f32 = y.row(0).iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn gamma_beta_affect_output() {
        let x = Matrix::from_rows(&[&[1.0_f32, -1.0]]).unwrap();
        let params = LayerNormParams { gamma: vec![2.0, 2.0], beta: vec![1.0, 1.0], eps: 1e-5 };
        let y = layernorm_rows(&x, &params).unwrap();
        let base = layernorm_rows(&x, &LayerNormParams::identity(2)).unwrap();
        for (a, b) in y.row(0).iter().zip(base.row(0)) {
            assert!((a - (2.0 * b + 1.0)).abs() < 1e-5);
        }
    }

    #[test]
    fn constant_rows_do_not_divide_by_zero() {
        let x = Matrix::from_rows(&[&[3.0_f32, 3.0, 3.0]]).unwrap();
        let y = layernorm_rows(&x, &LayerNormParams::identity(3)).unwrap();
        assert!(y.row(0).iter().all(|v| v.is_finite() && v.abs() < 1e-2));
    }

    #[test]
    fn mismatched_params_rejected() {
        let x = Matrix::from_rows(&[&[1.0_f32, 2.0]]).unwrap();
        assert!(layernorm_rows(&x, &LayerNormParams::identity(3)).is_err());
    }

    #[test]
    fn rows_are_normalized_independently() {
        let x = Matrix::from_rows(&[&[1.0_f32, 2.0], &[100.0, 200.0]]).unwrap();
        let y = layernorm_rows(&x, &LayerNormParams::identity(2)).unwrap();
        for (a, b) in y.row(0).iter().zip(y.row(1)) {
            assert!((a - b).abs() < 1e-3, "rows with proportional values normalize identically");
        }
    }
}
