//! Scoped-thread work partitioning for the hot paths.
//!
//! MEADOW's reproduction runs its heavy loops — tiled GEMM, chunk
//! decomposition, the repro artifact fan-out — on the host CPU. This module
//! provides the one shared execution-policy type, [`ExecConfig`], plus three
//! partitioning helpers built on `std::thread::scope`:
//!
//! * [`partition`] — split `0..len` into near-equal contiguous ranges.
//! * [`par_map_ranges`] — map a closure over those ranges on worker threads
//!   and return the per-range results **in range order**, so callers can
//!   concatenate them into the exact output a serial traversal would
//!   produce.
//! * [`par_map`] — map a closure over items of a slice with dynamic
//!   (work-stealing-style) dispatch, again returning results in input
//!   order. Used where per-item cost is ragged, e.g. the repro binary's
//!   per-artifact fan-out.
//!
//! Every parallel kernel in the workspace is required to be *bit-identical*
//! to its serial counterpart; these helpers make that easy by never
//! reordering results and by leaving the per-range computation order
//! untouched.

use serde::{Deserialize, Serialize};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable consulted by [`ExecConfig::from_env`].
pub const THREADS_ENV: &str = "MEADOW_THREADS";

/// Execution policy for the parallel kernels: how many worker threads a
/// hot path may use.
///
/// The library default ([`ExecConfig::default`]) is **serial** so that
/// library users get deterministic single-threaded behaviour unless they
/// opt in; binaries call [`ExecConfig::from_env`] to honour
/// `MEADOW_THREADS` (falling back to the host's available parallelism).
///
/// # Example
///
/// ```
/// use meadow_tensor::parallel::ExecConfig;
///
/// assert_eq!(ExecConfig::default().threads(), 1);
/// assert_eq!(ExecConfig::with_threads(4).threads(), 4);
/// assert_eq!(ExecConfig::with_threads(0).threads(), 1); // clamped
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExecConfig {
    threads: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self::serial()
    }
}

impl ExecConfig {
    /// Single-threaded execution (the library default).
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// Executes with exactly `threads` workers (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Self { threads: threads.max(1) }
    }

    /// Reads the thread count from `MEADOW_THREADS`, falling back to the
    /// host's available parallelism. Invalid or zero values fall back too.
    pub fn from_env() -> Self {
        let from_var = std::env::var(THREADS_ENV).ok().and_then(|v| v.trim().parse::<usize>().ok());
        match from_var {
            Some(n) if n > 0 => Self::with_threads(n),
            _ => Self::with_threads(
                std::thread::available_parallelism().map(usize::from).unwrap_or(1),
            ),
        }
    }

    /// Configured worker count (always ≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this policy is single-threaded.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Workers actually worth spawning for `items` units of work.
    pub fn effective_threads(&self, items: usize) -> usize {
        self.threads.min(items).max(1)
    }
}

/// Splits `0..len` into at most `parts` contiguous near-equal ranges.
///
/// Earlier ranges are one element longer when `len` does not divide evenly;
/// no range is empty, and the concatenation of all ranges is exactly
/// `0..len`.
///
/// # Example
///
/// ```
/// use meadow_tensor::parallel::partition;
///
/// let ranges = partition(10, 4);
/// assert_eq!(ranges, vec![0..3, 3..6, 6..8, 8..10]);
/// assert!(partition(0, 4).is_empty());
/// assert_eq!(partition(2, 8).len(), 2);
/// ```
pub fn partition(len: usize, parts: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Maps `f` over the [`partition`] of `0..len` on scoped worker threads and
/// returns the per-range results in range order.
///
/// With an effective thread count of 1 (or `len == 0`) no thread is
/// spawned and `f` runs inline, so the serial path stays allocation- and
/// scheduling-free.
pub fn par_map_ranges<T, F>(len: usize, exec: &ExecConfig, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = partition(len, exec.effective_threads(len));
    if ranges.len() <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges.into_iter().map(|r| scope.spawn(|| f(r))).collect::<Vec<_>>();
        handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect()
    })
}

/// Maps `f` over `items` with dynamic dispatch (an atomic cursor hands the
/// next index to whichever worker is free) and returns the results in input
/// order.
///
/// Use this instead of [`par_map_ranges`] when per-item cost is ragged —
/// e.g. the repro binary's artifacts, whose generation times differ by an
/// order of magnitude.
pub fn par_map<T, U, F>(items: &[T], exec: &ExecConfig, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = exec.effective_threads(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let out = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("result slot poisoned").expect("worker skipped an item")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_exactly() {
        for len in 0..40usize {
            for parts in 1..10usize {
                let ranges = partition(len, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "gap at {r:?} for len {len} parts {parts}");
                    assert!(!r.is_empty(), "empty range for len {len} parts {parts}");
                    next = r.end;
                }
                assert_eq!(next, len);
                assert!(ranges.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn exec_config_clamps_and_reports() {
        assert!(ExecConfig::default().is_serial());
        assert_eq!(ExecConfig::with_threads(0).threads(), 1);
        assert_eq!(ExecConfig::with_threads(6).effective_threads(3), 3);
        assert_eq!(ExecConfig::with_threads(2).effective_threads(0), 1);
        assert!(ExecConfig::from_env().threads() >= 1);
    }

    #[test]
    fn par_map_ranges_preserves_order() {
        for threads in [1usize, 2, 4, 8] {
            let exec = ExecConfig::with_threads(threads);
            let chunks = par_map_ranges(23, &exec, |r| r.collect::<Vec<_>>());
            let flat: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, (0..23).collect::<Vec<_>>(), "threads {threads}");
        }
    }

    #[test]
    fn par_map_preserves_order_under_ragged_cost() {
        let items: Vec<usize> = (0..37).collect();
        for threads in [1usize, 2, 4, 8] {
            let exec = ExecConfig::with_threads(threads);
            let out = par_map(&items, &exec, |&i| {
                if i % 7 == 0 {
                    std::thread::yield_now();
                }
                i * i
            });
            let expected: Vec<usize> = items.iter().map(|&i| i * i).collect();
            assert_eq!(out, expected, "threads {threads}");
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let exec = ExecConfig::with_threads(4);
        assert!(par_map_ranges(0, &exec, |r| r.len()).is_empty());
        let empty: [u8; 0] = [];
        assert!(par_map(&empty, &exec, |&b| b).is_empty());
    }
}
