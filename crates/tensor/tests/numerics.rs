//! Numeric invariants of the tensor substrate: GEMM against a naive
//! reference, softmax normalization, LayerNorm moments and quantization
//! round-trip error bounds.

use meadow_tensor::fixed::ExpLut;
use meadow_tensor::gemm::{dot_i8, matmul_i8, matmul_i8_bt, matmul_i8_tiled};
use meadow_tensor::layernorm::{layernorm_rows, LayerNormParams};
use meadow_tensor::quant::{quantize_auto, quantize_symmetric, QuantScale};
use meadow_tensor::softmax::{softmax_row_exact, softmax_row_lut};
use meadow_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_i8_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<i8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<i8> = (0..rows * cols).map(|_| rng.gen_range(-128i16..=127) as i8).collect();
    Matrix::from_vec(rows, cols, data).unwrap()
}

fn random_f32_matrix(rows: usize, cols: usize, span: f32, seed: u64) -> Matrix<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-span..span)).collect();
    Matrix::from_vec(rows, cols, data).unwrap()
}

/// The obviously-correct triple loop, written independently of the library's
/// traversal order.
fn naive_matmul(a: &Matrix<i8>, b: &Matrix<i8>) -> Matrix<i32> {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::<i32>::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i32;
            for p in 0..k {
                acc += i32::from(*a.get(i, p).unwrap()) * i32::from(*b.get(p, j).unwrap());
            }
            *out.get_mut(i, j).unwrap() = acc;
        }
    }
    out
}

#[test]
fn gemm_matches_naive_reference() {
    for (m, k, n, seed) in [(1, 1, 1, 1u64), (3, 5, 7, 2), (16, 16, 16, 3), (13, 31, 9, 4)] {
        let a = random_i8_matrix(m, k, seed);
        let b = random_i8_matrix(k, n, seed + 100);
        let expected = naive_matmul(&a, &b);
        assert_eq!(matmul_i8(&a, &b).unwrap(), expected, "matmul_i8 {m}x{k}x{n}");
    }
}

#[test]
fn tiled_gemm_is_bit_identical_for_every_tiling() {
    let a = random_i8_matrix(13, 21, 7);
    let b = random_i8_matrix(21, 17, 8);
    let expected = naive_matmul(&a, &b);
    // Tile sizes that divide the dims, that don't, and that exceed them.
    for (tm, tn, tk) in [(1, 1, 1), (4, 4, 4), (5, 3, 8), (13, 17, 21), (64, 64, 64)] {
        assert_eq!(
            matmul_i8_tiled(&a, &b, tm, tn, tk).unwrap(),
            expected,
            "tiling ({tm},{tn},{tk}) must not change the result"
        );
    }
}

#[test]
fn transposed_gemm_matches_reference() {
    let a = random_i8_matrix(6, 12, 11);
    let b = random_i8_matrix(12, 10, 12);
    let expected = naive_matmul(&a, &b);
    assert_eq!(matmul_i8_bt(&a, &b.transposed()).unwrap(), expected);
}

#[test]
fn gemm_rejects_shape_mismatch() {
    let a = random_i8_matrix(2, 3, 1);
    let b = random_i8_matrix(4, 2, 2);
    assert!(matmul_i8(&a, &b).is_err());
    assert!(matmul_i8_bt(&a, &random_i8_matrix(4, 5, 3)).is_err());
    assert!(matmul_i8_tiled(&a, &random_i8_matrix(3, 2, 4), 0, 1, 1).is_err(), "zero tile");
}

#[test]
fn dot_product_handles_extreme_values_exactly() {
    // 256 × (-128 × -128) stresses the widest accumulation the INT8 domain
    // can produce; it must stay exact in INT32.
    let a = vec![-128i8; 256];
    assert_eq!(dot_i8(&a, &a), 256 * 128 * 128);
    let b = vec![127i8; 256];
    assert_eq!(dot_i8(&a, &b), 256 * -128 * 127);
    assert_eq!(dot_i8(&[], &[]), 0);
}

#[test]
fn softmax_rows_sum_to_one() {
    let lut = ExpLut::hardware_default();
    let mut rng = StdRng::seed_from_u64(42);
    for len in [1usize, 2, 17, 128, 512] {
        let row: Vec<f32> = (0..len).map(|_| rng.gen_range(-10.0..10.0)).collect();
        for (name, sm) in [("exact", softmax_row_exact(&row)), ("lut", softmax_row_lut(&row, &lut))]
        {
            let sum: f32 = sm.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "{name} softmax of {len} sums to {sum}");
            assert!(sm.iter().all(|&p| (0.0..=1.0).contains(&p)), "{name} probabilities");
        }
    }
}

#[test]
fn softmax_is_stable_under_large_magnitudes() {
    // Without the running-max subtraction these inputs overflow exp().
    let row = vec![1000.0f32, 1001.0, 999.0];
    let sm = softmax_row_exact(&row);
    let sum: f32 = sm.iter().sum();
    assert!((sum - 1.0).abs() < 1e-5);
    assert!(sm.iter().all(|p| p.is_finite()));
    // The largest logit gets the largest probability.
    assert!(sm[1] > sm[0] && sm[0] > sm[2]);
}

#[test]
fn softmax_degenerate_rows() {
    assert!(softmax_row_exact(&[]).is_empty());
    let uniform = softmax_row_exact(&[3.5; 8]);
    for p in uniform {
        assert!((p - 0.125).abs() < 1e-6, "constant row must be uniform");
    }
}

#[test]
fn layernorm_normalizes_every_row_to_zero_mean_unit_variance() {
    let x = random_f32_matrix(6, 64, 50.0, 21);
    let y = layernorm_rows(&x, &LayerNormParams::identity(64)).unwrap();
    for r in 0..y.rows() {
        let row = y.row(r);
        let n = row.len() as f32;
        let mean: f32 = row.iter().sum::<f32>() / n;
        let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
        assert!(mean.abs() < 1e-4, "row {r} mean {mean}");
        assert!((var - 1.0).abs() < 1e-2, "row {r} var {var}");
    }
}

#[test]
fn layernorm_applies_gamma_and_beta_affinely() {
    let x = random_f32_matrix(3, 16, 5.0, 22);
    let identity = layernorm_rows(&x, &LayerNormParams::identity(16)).unwrap();
    let params = LayerNormParams {
        gamma: (0..16).map(|j| 0.5 + j as f32 * 0.1).collect(),
        beta: (0..16).map(|j| j as f32 - 8.0).collect(),
        eps: 1e-5,
    };
    let scaled = layernorm_rows(&x, &params).unwrap();
    for r in 0..x.rows() {
        for j in 0..16 {
            let expected = identity.row(r)[j] * params.gamma[j] + params.beta[j];
            let got = scaled.row(r)[j];
            assert!((got - expected).abs() < 1e-4, "({r},{j}): {got} vs {expected}");
        }
    }
}

#[test]
fn layernorm_rejects_mismatched_params() {
    let x = random_f32_matrix(2, 8, 1.0, 23);
    assert!(layernorm_rows(&x, &LayerNormParams::identity(9)).is_err());
}

#[test]
fn quant_dequant_error_is_bounded_by_half_a_step() {
    let m = random_f32_matrix(8, 32, 10.0, 31);
    let (q, scale) = quantize_auto(&m);
    let back = q.dequantize(scale.value());
    // Symmetric rounding: every in-range value lands within scale/2 of its
    // reconstruction (plus float slack).
    let bound = scale.value() * 0.5 + 1e-6;
    for (orig, rec) in m.as_slice().iter().zip(back.as_slice()) {
        assert!((orig - rec).abs() <= bound, "|{orig} - {rec}| = {} > {bound}", (orig - rec).abs());
    }
}

#[test]
fn quantize_auto_maps_max_abs_to_full_scale() {
    let mut m = random_f32_matrix(4, 4, 2.0, 32);
    *m.get_mut(2, 3).unwrap() = -9.5;
    let (q, scale) = quantize_auto(&m);
    assert!((scale.value() - 9.5 / 127.0).abs() < 1e-6);
    assert_eq!(*q.get(2, 3).unwrap(), -127);
}

#[test]
fn quantize_clamps_out_of_range_values() {
    let m = Matrix::from_rows(&[&[1000.0f32, -1000.0, 0.4, -0.6]]).unwrap();
    let q = quantize_symmetric(&m, QuantScale::new(1.0).unwrap());
    assert_eq!(q.as_slice(), &[127, -127, 0, -1]);
}

#[test]
fn quant_scale_rejects_degenerate_values() {
    assert!(QuantScale::new(0.0).is_err());
    assert!(QuantScale::new(-1.0).is_err());
    assert!(QuantScale::new(f32::NAN).is_err());
    assert!(QuantScale::new(f32::INFINITY).is_err());
    // All-zero tensors fall back to scale 1.0.
    assert_eq!(QuantScale::from_max_abs(0.0).value(), 1.0);
}
