//! Error type for model configuration and weight generation.

use meadow_packing::PackingError;
use meadow_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error returned by model-zoo operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A transformer configuration is internally inconsistent.
    InvalidConfig {
        /// Parameter name.
        param: &'static str,
        /// Explanation.
        reason: String,
    },
    /// Propagated weight-packing error.
    Packing(PackingError),
    /// Propagated tensor error.
    Tensor(TensorError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidConfig { param, reason } => {
                write!(f, "invalid model config `{param}`: {reason}")
            }
            ModelError::Packing(e) => write!(f, "packing error: {e}"),
            ModelError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Packing(e) => Some(e),
            ModelError::Tensor(e) => Some(e),
            ModelError::InvalidConfig { .. } => None,
        }
    }
}

impl From<PackingError> for ModelError {
    fn from(e: PackingError) -> Self {
        ModelError::Packing(e)
    }
}

impl From<TensorError> for ModelError {
    fn from(e: TensorError) -> Self {
        ModelError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ModelError::InvalidConfig { param: "heads", reason: "zero".into() };
        assert!(!e.to_string().is_empty());
        assert!(e.source().is_none());
        let e: ModelError = PackingError::ZeroChunkSize.into();
        assert!(e.source().is_some());
        let e: ModelError = TensorError::ZeroParameter { name: "x" }.into();
        assert!(e.source().is_some());
    }
}
