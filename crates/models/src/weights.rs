//! Materialized weights for small models and sampled packing statistics for
//! large ones.
//!
//! Functional tests need real INT8 matrices; the latency engine only needs
//! *packed transfer sizes*. Materializing and packing all of OPT-1.3B
//! (≈1.2 GB) per run would be wasteful, so [`ModelPackingStats`] measures
//! stream density on a row sample of each matrix (the ID distribution is
//! row-count invariant by construction) and extrapolates to the full shape.

use crate::config::{MatrixKind, TransformerConfig};
use crate::error::ModelError;
use crate::synthetic::{generate_decomposition, generate_matrix, matrix_seed, profile_for};
use meadow_packing::{PackedWeights, PackingConfig, PackingLevel};
use meadow_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// All six weight matrices of one layer, materialized.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerWeights {
    matrices: BTreeMap<MatrixKind, Matrix<i8>>,
}

impl LayerWeights {
    /// Synthesizes one layer of `config` with the calibrated redundancy
    /// profiles.
    ///
    /// # Errors
    ///
    /// Propagates generation errors.
    pub fn synthesize(config: &TransformerConfig, layer: usize) -> Result<Self, ModelError> {
        let mut matrices = BTreeMap::new();
        for kind in MatrixKind::all() {
            let (rows, cols) = config.matrix_dims(kind);
            let profile = profile_for(config, kind, layer);
            let seed = matrix_seed(config, kind, layer);
            matrices.insert(kind, generate_matrix(rows, cols, profile, 2, seed)?);
        }
        Ok(Self { matrices })
    }

    /// Borrows one matrix.
    pub fn matrix(&self, kind: MatrixKind) -> &Matrix<i8> {
        &self.matrices[&kind]
    }

    /// The per-head slice of the query weights: rows
    /// `[head · HD, (head+1) · HD)` of `W_Q`, as fetched by the TPHS
    /// dataflow for one head.
    ///
    /// # Errors
    ///
    /// Propagates slicing errors for out-of-range heads.
    pub fn query_head(
        &self,
        config: &TransformerConfig,
        head: usize,
    ) -> Result<Matrix<i8>, ModelError> {
        let hd = config.head_dim();
        Ok(self.matrix(MatrixKind::Query).row_block(head * hd, hd)?)
    }
}

/// A whole materialized model (use only for small test configs).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelWeights {
    /// The architecture these weights instantiate.
    pub config: TransformerConfig,
    layers: Vec<LayerWeights>,
}

impl ModelWeights {
    /// Synthesizes every layer.
    ///
    /// # Errors
    ///
    /// Propagates generation errors.
    pub fn synthesize(config: &TransformerConfig) -> Result<Self, ModelError> {
        config.validate()?;
        let layers = (0..config.layers)
            .map(|l| LayerWeights::synthesize(config, l))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { config: config.clone(), layers })
    }

    /// Borrows one layer's weights.
    pub fn layer(&self, layer: usize) -> &LayerWeights {
        &self.layers[layer]
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

/// Packed-size statistics of one weight matrix, measured on a row sample and
/// extrapolated to the full shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatrixPackingStats {
    /// Which matrix.
    pub kind: MatrixKind,
    /// Which layer.
    pub layer: usize,
    /// Unique chunks in the (full) matrix.
    pub unique_count: usize,
    /// Reduction ratio of the full matrix.
    pub reduction_ratio: f64,
    /// Uniform ID precision in bits.
    pub max_id_bits: u32,
    /// Raw full-matrix bytes.
    pub raw_bytes: u64,
    /// Measured stream bits per chunk ID (includes packet framing).
    pub stream_bits_per_id: f64,
    /// Extrapolated packed transfer bytes for the full matrix (stream +
    /// unique matrix).
    pub transfer_bytes: u64,
    /// Effective compression ratio of the full matrix.
    pub compression_ratio: f64,
}

/// Computes packing statistics for one matrix of a model.
///
/// # Errors
///
/// Propagates generation and packing errors.
pub fn matrix_packing_stats(
    config: &TransformerConfig,
    kind: MatrixKind,
    layer: usize,
    packing: &PackingConfig,
    level: PackingLevel,
    sample_rows: usize,
) -> Result<MatrixPackingStats, ModelError> {
    let (rows, cols) = config.matrix_dims(kind);
    let profile = profile_for(config, kind, layer);
    let seed = matrix_seed(config, kind, layer);
    let sample = rows.min(sample_rows.max(1));
    let (unique, encoded) =
        generate_decomposition(sample, cols, profile, packing.chunk.chunk_elems, seed)?;
    let packed = PackedWeights::from_decomposition(unique, encoded, packing, level)?;
    let meta = packed.meta();
    let bits_per_id = packed.stream().bit_len() as f64 / meta.total_ids.max(1) as f64;
    let total_ids_full = (rows * cols / packing.chunk.chunk_elems) as u64;
    let stream_bytes_full = ((bits_per_id * total_ids_full as f64) / 8.0).ceil() as u64;
    let unique_bytes = packed.unique().size_bytes();
    let raw_bytes = (rows * cols) as u64;
    let transfer_bytes = stream_bytes_full + unique_bytes;
    Ok(MatrixPackingStats {
        kind,
        layer,
        unique_count: meta.unique_count,
        reduction_ratio: total_ids_full as f64 / meta.unique_count.max(1) as f64,
        max_id_bits: meta.max_id_bits,
        raw_bytes,
        stream_bits_per_id: bits_per_id,
        transfer_bytes,
        compression_ratio: raw_bytes as f64 / transfer_bytes.max(1) as f64,
    })
}

/// Packing statistics for every matrix of a model at one packing level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelPackingStats {
    /// Packing level the statistics were computed for.
    pub level: PackingLevel,
    per_matrix: BTreeMap<(usize, MatrixKind), MatrixPackingStats>,
}

impl ModelPackingStats {
    /// Default number of sampled rows per matrix.
    pub const DEFAULT_SAMPLE_ROWS: usize = 128;

    /// Computes statistics for the whole model.
    ///
    /// # Errors
    ///
    /// Propagates generation and packing errors.
    pub fn compute(
        config: &TransformerConfig,
        packing: &PackingConfig,
        level: PackingLevel,
    ) -> Result<Self, ModelError> {
        let mut per_matrix = BTreeMap::new();
        for layer in 0..config.layers {
            for kind in MatrixKind::all() {
                let stats = matrix_packing_stats(
                    config,
                    kind,
                    layer,
                    packing,
                    level,
                    Self::DEFAULT_SAMPLE_ROWS,
                )?;
                per_matrix.insert((layer, kind), stats);
            }
        }
        Ok(Self { level, per_matrix })
    }

    /// Statistics for one matrix.
    pub fn matrix(&self, layer: usize, kind: MatrixKind) -> Option<&MatrixPackingStats> {
        self.per_matrix.get(&(layer, kind))
    }

    /// Packed transfer bytes of one matrix (falls back to raw size if the
    /// matrix is unknown, which cannot happen for in-range layers).
    pub fn transfer_bytes(&self, layer: usize, kind: MatrixKind) -> u64 {
        self.per_matrix.get(&(layer, kind)).map(|s| s.transfer_bytes).unwrap_or(0)
    }

    /// Total packed bytes of one layer.
    pub fn layer_transfer_bytes(&self, layer: usize) -> u64 {
        MatrixKind::all().iter().map(|&k| self.transfer_bytes(layer, k)).sum()
    }

    /// Whole-model effective compression ratio.
    pub fn effective_compression(&self) -> f64 {
        let raw: u64 = self.per_matrix.values().map(|s| s.raw_bytes).sum();
        let packed: u64 = self.per_matrix.values().map(|s| s.transfer_bytes).sum();
        if packed == 0 {
            return 1.0;
        }
        raw as f64 / packed as f64
    }

    /// Iterates over all matrix statistics in (layer, kind) order.
    pub fn iter(&self) -> impl Iterator<Item = &MatrixPackingStats> {
        self.per_matrix.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn tiny_model_materializes_and_slices() {
        let c = presets::tiny_decoder();
        let w = ModelWeights::synthesize(&c).unwrap();
        assert_eq!(w.num_layers(), 2);
        let q = w.layer(0).matrix(MatrixKind::Query);
        assert_eq!(q.shape(), (32, 32));
        let qh = w.layer(0).query_head(&c, 3).unwrap();
        assert_eq!(qh.shape(), (8, 32));
        assert!(w.layer(0).query_head(&c, 4).is_err());
    }

    #[test]
    fn layer_weights_are_deterministic() {
        let c = presets::tiny_decoder();
        let a = LayerWeights::synthesize(&c, 0).unwrap();
        let b = LayerWeights::synthesize(&c, 0).unwrap();
        assert_eq!(a, b);
        let c1 = LayerWeights::synthesize(&c, 1).unwrap();
        assert_ne!(a, c1);
    }

    #[test]
    fn opt125m_mlp1_stats_match_paper_anchor() {
        let c = presets::opt_125m();
        let s = matrix_packing_stats(
            &c,
            MatrixKind::MlpUp,
            0,
            &PackingConfig::default(),
            PackingLevel::FrequencyAware,
            128,
        )
        .unwrap();
        assert_eq!(s.unique_count, 1272);
        assert_eq!(s.max_id_bits, 11);
        // Fig. 10a band: full packing lowers MLP1 transfer ≈2.6×.
        assert!(
            (2.0..=3.2).contains(&s.compression_ratio),
            "MLP1 compression {}",
            s.compression_ratio
        );
    }

    #[test]
    fn naive_packing_lands_near_paper_band() {
        let c = presets::opt_125m();
        let s = matrix_packing_stats(
            &c,
            MatrixKind::MlpUp,
            0,
            &PackingConfig::default(),
            PackingLevel::Naive,
            128,
        )
        .unwrap();
        // Fig. 10a: naive ≈1.4×. 16 bits / 11 bits with framing waste.
        assert!((1.2..=1.5).contains(&s.compression_ratio), "naive {}", s.compression_ratio);
    }

    #[test]
    fn packing_levels_are_ordered_per_matrix() {
        let c = presets::opt_125m();
        let mut ratios = Vec::new();
        for level in PackingLevel::all() {
            let s = matrix_packing_stats(
                &c,
                MatrixKind::MlpUp,
                0,
                &PackingConfig::default(),
                level,
                64,
            )
            .unwrap();
            ratios.push(s.compression_ratio);
        }
        assert!(ratios[1] >= ratios[0] * 0.9, "{ratios:?}");
        assert!(ratios[2] >= ratios[1], "{ratios:?}");
    }

    #[test]
    fn model_stats_cover_every_matrix() {
        let c = presets::tiny_decoder();
        let stats =
            ModelPackingStats::compute(&c, &PackingConfig::default(), PackingLevel::FrequencyAware)
                .unwrap();
        assert_eq!(stats.iter().count(), c.layers * 6);
        assert!(stats.matrix(0, MatrixKind::Query).is_some());
        assert!(stats.layer_transfer_bytes(0) > 0);
        assert!(stats.effective_compression() > 0.5);
    }

    #[test]
    fn whole_model_compression_is_in_the_decode_band() {
        // The decode TBT improvement in the paper (1.4–1.5×) is driven by
        // the whole-model weight compression; with KV fetch on top the
        // model-level compression must sit roughly in [1.3, 2.2].
        let c = presets::opt_125m();
        let stats =
            ModelPackingStats::compute(&c, &PackingConfig::default(), PackingLevel::FrequencyAware)
                .unwrap();
        let eff = stats.effective_compression();
        assert!((1.3..=2.2).contains(&eff), "effective compression {eff}");
    }
}
