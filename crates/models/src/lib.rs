//! Model zoo for the MEADOW reproduction: transformer configurations,
//! synthetic redundancy-calibrated weights and workload descriptors.
//!
//! The paper evaluates OPT-125M and OPT-1.3B (decoder LMs, §6.1) and DeiT-S /
//! DeiT-B vision transformers (§6.6). Real SmoothQuant-quantized checkpoints
//! are not available offline, so weights are synthesized with the chunk
//! redundancy statistics the paper reports (Fig. 4a: reduction ratios of
//! 10²–10³ across decoder layers; Fig. 10a: the first MLP matrix of decoder 1
//! decomposes into 1272 unique chunks) — see `DESIGN.md` §4 for why this
//! substitution preserves the latency-relevant behavior. Weight packing is
//! lossless by construction, so model *accuracy* is unaffected by packing
//! regardless of the weight values.
//!
//! * [`config`] — [`TransformerConfig`], layer shapes, per-matrix dims.
//! * [`presets`] — OPT-125M, OPT-1.3B, DeiT-S, DeiT-B and small test configs.
//! * [`synthetic`] — Zipf/run-structured chunk generator with per-matrix
//!   redundancy profiles.
//! * [`weights`] — materialized layer weights plus sampled packing
//!   statistics for large models.
//! * [`workload`] — prefill/decode workload descriptors, KV-cache sizing,
//!   and open-loop serving-trace generators (Poisson arrivals,
//!   Zipf-distributed lengths).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod presets;
pub mod synthetic;
pub mod weights;
pub mod workload;

pub use config::{KvCompression, KvLayout, MatrixKind, ModelKind, TransformerConfig};
pub use error::ModelError;
pub use synthetic::RedundancyProfile;
pub use workload::{
    ArrivalTrace, DecodeWorkload, KvSizer, PrefillWorkload, ServeRequest, ZipfLengths,
};
