//! Model presets used in the paper's evaluation.

use crate::config::{ModelKind, TransformerConfig};
use meadow_tensor::activations::Activation;

/// OPT-125M: 12 layers, d=768, 12 heads, FFN 3072, ReLU (Zhang et al. 2022).
pub fn opt_125m() -> TransformerConfig {
    TransformerConfig {
        name: "OPT-125M".to_string(),
        layers: 12,
        d_model: 768,
        heads: 12,
        ffn_dim: 3072,
        vocab: 50272,
        max_seq: 2048,
        activation: Activation::Relu,
        kind: ModelKind::DecoderLm,
    }
}

/// OPT-350M: 24 layers, d=1024, 16 heads, FFN 4096, ReLU.
pub fn opt_350m() -> TransformerConfig {
    TransformerConfig {
        name: "OPT-350M".to_string(),
        layers: 24,
        d_model: 1024,
        heads: 16,
        ffn_dim: 4096,
        vocab: 50272,
        max_seq: 2048,
        activation: Activation::Relu,
        kind: ModelKind::DecoderLm,
    }
}

/// OPT-2.7B: 32 layers, d=2560, 32 heads, FFN 10240, ReLU.
pub fn opt_2_7b() -> TransformerConfig {
    TransformerConfig {
        name: "OPT-2.7B".to_string(),
        layers: 32,
        d_model: 2560,
        heads: 32,
        ffn_dim: 10240,
        vocab: 50272,
        max_seq: 2048,
        activation: Activation::Relu,
        kind: ModelKind::DecoderLm,
    }
}

/// OPT-1.3B: 24 layers, d=2048, 32 heads, FFN 8192, ReLU.
pub fn opt_1_3b() -> TransformerConfig {
    TransformerConfig {
        name: "OPT-1.3B".to_string(),
        layers: 24,
        d_model: 2048,
        heads: 32,
        ffn_dim: 8192,
        vocab: 50272,
        max_seq: 2048,
        activation: Activation::Relu,
        kind: ModelKind::DecoderLm,
    }
}

/// DeiT-S: 12 layers, d=384, 6 heads, FFN 1536, GELU, 197 tokens at 224².
pub fn deit_s() -> TransformerConfig {
    TransformerConfig {
        name: "DeiT-S".to_string(),
        layers: 12,
        d_model: 384,
        heads: 6,
        ffn_dim: 1536,
        vocab: 0,
        max_seq: 197,
        activation: Activation::Gelu,
        kind: ModelKind::VisionTransformer { tokens: 197 },
    }
}

/// DeiT-B: 12 layers, d=768, 12 heads, FFN 3072, GELU, 197 tokens.
pub fn deit_b() -> TransformerConfig {
    TransformerConfig {
        name: "DeiT-B".to_string(),
        layers: 12,
        d_model: 768,
        heads: 12,
        ffn_dim: 3072,
        vocab: 0,
        max_seq: 197,
        activation: Activation::Gelu,
        kind: ModelKind::VisionTransformer { tokens: 197 },
    }
}

/// A deliberately tiny decoder for functional equivalence tests
/// (2 layers, d=32, 4 heads, FFN 64).
pub fn tiny_decoder() -> TransformerConfig {
    TransformerConfig {
        name: "tiny-decoder".to_string(),
        layers: 2,
        d_model: 32,
        heads: 4,
        ffn_dim: 64,
        vocab: 256,
        max_seq: 64,
        activation: Activation::Relu,
        kind: ModelKind::DecoderLm,
    }
}

/// A tiny vision transformer for tests (2 layers, d=32, 4 heads, 10 tokens).
pub fn tiny_vit() -> TransformerConfig {
    TransformerConfig {
        name: "tiny-vit".to_string(),
        layers: 2,
        d_model: 32,
        heads: 4,
        ffn_dim: 64,
        vocab: 0,
        max_seq: 10,
        activation: Activation::Gelu,
        kind: ModelKind::VisionTransformer { tokens: 10 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for c in [
            opt_125m(),
            opt_350m(),
            opt_1_3b(),
            opt_2_7b(),
            deit_s(),
            deit_b(),
            tiny_decoder(),
            tiny_vit(),
        ] {
            c.validate().unwrap_or_else(|e| panic!("{}: {e}", c.name));
        }
    }

    #[test]
    fn opt_family_sizes_are_ordered() {
        let sizes: Vec<u64> = [opt_125m(), opt_350m(), opt_1_3b(), opt_2_7b()]
            .iter()
            .map(|c| c.total_weight_bytes())
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]), "{sizes:?}");
    }

    #[test]
    fn parameter_counts_are_plausible() {
        // OPT-125M decoder weights: 12 layers × 12·768² ≈ 85 MB of INT8.
        let c = opt_125m();
        let mb = c.total_weight_bytes() as f64 / (1 << 20) as f64;
        assert!((80.0..90.0).contains(&mb), "{mb} MB");
        // OPT-1.3B: 24 × 12·2048² ≈ 1.2 GB.
        let c = opt_1_3b();
        let gb = c.total_weight_bytes() as f64 / (1 << 30) as f64;
        assert!((1.0..1.4).contains(&gb), "{gb} GB");
    }

    #[test]
    fn deit_b_matches_opt125m_body() {
        // DeiT-B and OPT-125M share the 12×768×12 geometry.
        let a = deit_b();
        let b = opt_125m();
        assert_eq!(a.layer_weight_bytes(), b.layer_weight_bytes());
        assert_ne!(a.kind, b.kind);
    }
}
