//! Transformer architecture descriptions.

use crate::error::ModelError;
use meadow_tensor::activations::Activation;
use serde::{Deserialize, Serialize};

/// Whether the model is a decoder LM (prefill + decode, KV cache) or an
/// encoder-style vision transformer (single prefill-like pass).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Autoregressive decoder language model (OPT family).
    DecoderLm,
    /// Vision transformer with a fixed token count per image (DeiT family).
    VisionTransformer {
        /// Tokens per image (patches + class token); 197 for DeiT at 224².
        tokens: usize,
    },
}

/// The six weight matrices of one transformer layer, in execution order.
///
/// Matrices are stored `(out_features × in_features)` row-major with the
/// inner-product dimension along the columns — the layout §5.1 chunks along.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MatrixKind {
    /// Query projection `W_Q` (D × D).
    Query,
    /// Key projection `W_K` (D × D).
    Key,
    /// Value projection `W_V` (D × D).
    Value,
    /// Attention output projection (D × D).
    Proj,
    /// First MLP matrix (FFN × D) — "MLP1" in the paper.
    MlpUp,
    /// Second MLP matrix (D × FFN).
    MlpDown,
}

impl MatrixKind {
    /// All kinds in execution order.
    pub fn all() -> [MatrixKind; 6] {
        [
            MatrixKind::Query,
            MatrixKind::Key,
            MatrixKind::Value,
            MatrixKind::Proj,
            MatrixKind::MlpUp,
            MatrixKind::MlpDown,
        ]
    }

    /// Whether this matrix belongs to the attention block (vs the MLP).
    pub fn is_attention(self) -> bool {
        !matches!(self, MatrixKind::MlpUp | MatrixKind::MlpDown)
    }
}

/// Physical layout of the per-session KV cache.
///
/// The layout decides how many bytes one cached token costs and which token
/// positions are materialized at all. `Dense` is the degeneracy oracle: every
/// other layout (and [`KvCompression`] model) collapses to it at its identity
/// parameter point, and serving reports under `Dense` are bit-identical to
/// the pre-seam accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum KvLayout {
    /// Full-length dense cache: every token stores all `heads` K/V heads
    /// (`2·d_model` bytes per token per layer). Today's behavior.
    #[default]
    Dense,
    /// Grouped-query / multi-query attention: `kv_heads` shared K/V heads
    /// instead of `heads`, shrinking per-token bytes by `kv_heads / heads`.
    /// `kv_heads == heads` degenerates to [`KvLayout::Dense`];
    /// `kv_heads == 1` is MQA.
    GroupedHeads {
        /// Number of shared K/V heads; must divide the model's head count.
        kv_heads: usize,
    },
    /// Sliding-window attention with attention sinks: only the first
    /// `sinks` tokens plus the trailing `window` tokens stay resident.
    /// `window >= max_seq` degenerates to [`KvLayout::Dense`].
    SlidingWindow {
        /// Trailing tokens kept resident.
        window: usize,
        /// Leading "sink" tokens always kept resident.
        sinks: usize,
    },
}

/// Token-level KV eviction model applied on top of a [`KvLayout`].
///
/// Compression is a deterministic, RNG-free accounting model: it decides how
/// many token slots survive at each context length and what fraction of
/// attention mass those survivors retain, without simulating per-head scores.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum KvCompression {
    /// No token-level eviction; the layout's residency is kept as-is.
    #[default]
    None,
    /// VEDA-style vote eviction: each token position `j` in a context of
    /// length `L` gets a deterministic vote `w_j = 1/(j+1) + 1/(L-j)`
    /// (sink + recency U-shape), and only the `ceil(keep_ratio·L)`
    /// highest-vote tokens stay resident at each step boundary.
    /// `keep_ratio == 1.0` degenerates to [`KvCompression::None`].
    VedaVote {
        /// Fraction of tokens kept, in `(0, 1]`.
        keep_ratio: f64,
    },
}

/// Architecture of a transformer evaluated by MEADOW.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Human-readable model name ("OPT-125M", "DeiT-S", ...).
    pub name: String,
    /// Number of decoder/encoder layers.
    pub layers: usize,
    /// Model (embedding) dimension `D`.
    pub d_model: usize,
    /// Number of attention heads `H`.
    pub heads: usize,
    /// MLP hidden dimension.
    pub ffn_dim: usize,
    /// Vocabulary size (decoder LMs; 0 for ViTs).
    pub vocab: usize,
    /// Maximum sequence length the KV cache is provisioned for.
    pub max_seq: usize,
    /// MLP activation function.
    pub activation: Activation,
    /// Decoder LM or vision transformer.
    pub kind: ModelKind,
}

impl TransformerConfig {
    /// Per-head dimension `HD = D / H`.
    pub fn head_dim(&self) -> usize {
        self.d_model / self.heads
    }

    /// `(rows, cols)` = `(out_features, in_features)` of one weight matrix.
    pub fn matrix_dims(&self, kind: MatrixKind) -> (usize, usize) {
        match kind {
            MatrixKind::Query | MatrixKind::Key | MatrixKind::Value | MatrixKind::Proj => {
                (self.d_model, self.d_model)
            }
            MatrixKind::MlpUp => (self.ffn_dim, self.d_model),
            MatrixKind::MlpDown => (self.d_model, self.ffn_dim),
        }
    }

    /// Raw INT8 bytes of one weight matrix.
    pub fn matrix_bytes(&self, kind: MatrixKind) -> u64 {
        let (r, c) = self.matrix_dims(kind);
        (r * c) as u64
    }

    /// Raw INT8 bytes of all weight matrices in one layer
    /// (`4·D² + 2·D·FFN`).
    pub fn layer_weight_bytes(&self) -> u64 {
        MatrixKind::all().iter().map(|&k| self.matrix_bytes(k)).sum()
    }

    /// Raw INT8 bytes of all layers' weights.
    pub fn total_weight_bytes(&self) -> u64 {
        self.layer_weight_bytes() * self.layers as u64
    }

    /// Multiply-accumulate count for one full layer at `tokens` tokens of
    /// context `context` (projections + attention scores + context·V +
    /// MLP). For prefill, `tokens == context`; for one decode step,
    /// `tokens == 1` with `context` the KV length.
    pub fn layer_macs(&self, tokens: usize, context: usize) -> u64 {
        let t = tokens as u64;
        let ctx = context as u64;
        let d = self.d_model as u64;
        let f = self.ffn_dim as u64;
        let proj = 4 * t * d * d; // Q, K, V, Proj
        let attn = 2 * t * ctx * d; // QKᵀ and SM·V across all heads
        let mlp = 2 * t * d * f;
        proj + attn + mlp
    }

    /// Validates the architecture.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for zero dims, a head count that
    /// does not divide `d_model`, or a ViT with zero tokens.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.layers == 0 {
            return Err(ModelError::InvalidConfig { param: "layers", reason: "zero".into() });
        }
        if self.d_model == 0 {
            return Err(ModelError::InvalidConfig { param: "d_model", reason: "zero".into() });
        }
        if self.heads == 0 {
            return Err(ModelError::InvalidConfig { param: "heads", reason: "zero".into() });
        }
        if !self.d_model.is_multiple_of(self.heads) {
            return Err(ModelError::InvalidConfig {
                param: "heads",
                reason: format!("{} does not divide d_model {}", self.heads, self.d_model),
            });
        }
        if self.ffn_dim == 0 {
            return Err(ModelError::InvalidConfig { param: "ffn_dim", reason: "zero".into() });
        }
        if let ModelKind::VisionTransformer { tokens } = self.kind {
            if tokens == 0 {
                return Err(ModelError::InvalidConfig {
                    param: "tokens",
                    reason: "vision transformer needs at least one token".into(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn opt125m_shapes() {
        let c = presets::opt_125m();
        assert_eq!(c.head_dim(), 64);
        assert_eq!(c.matrix_dims(MatrixKind::Query), (768, 768));
        assert_eq!(c.matrix_dims(MatrixKind::MlpUp), (3072, 768));
        assert_eq!(c.matrix_dims(MatrixKind::MlpDown), (768, 3072));
        // 12 D² bytes per layer.
        assert_eq!(c.layer_weight_bytes(), 12 * 768 * 768);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn macs_formula() {
        let c = presets::opt_125m();
        // One token, context 1: 4D² + 2D + 2DF.
        let d = 768u64;
        let f = 3072u64;
        assert_eq!(c.layer_macs(1, 1), 4 * d * d + 2 * d + 2 * d * f);
        // Prefill scales linearly in tokens (quadratic term via context).
        assert_eq!(c.layer_macs(512, 512), 512 * (4 * d * d + 2 * d * f) + 2 * 512 * 512 * d);
    }

    #[test]
    fn validation_catches_bad_heads() {
        let mut c = presets::opt_125m();
        c.heads = 7;
        assert!(c.validate().is_err());
        c.heads = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn vit_token_validation() {
        let mut c = presets::deit_s();
        assert!(c.validate().is_ok());
        c.kind = ModelKind::VisionTransformer { tokens: 0 };
        assert!(c.validate().is_err());
    }

    #[test]
    fn matrix_kind_partition() {
        let attn: Vec<_> = MatrixKind::all().into_iter().filter(|k| k.is_attention()).collect();
        assert_eq!(attn.len(), 4);
    }
}
