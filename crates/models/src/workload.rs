//! Prefill / decode workload descriptors, KV-cache sizing, and the serving
//! workload model.
//!
//! Three layers build on each other:
//!
//! * [`PrefillWorkload`] / [`DecodeWorkload`] describe a single measured
//!   step (the TTFT and TBT probes of the paper's §6.1), with
//!   [`kv_cache_total_bytes`] sizing the cache a context occupies.
//! * [`ServeRequest`] wraps a whole generation request — arrival time,
//!   prompt, tokens to generate — and [`ArrivalTrace`] groups them into
//!   the input of the serving simulator
//!   (`meadow_core::serve`).
//! * The **open-loop generators** synthesize realistic traces: Poisson
//!   arrivals ([`ArrivalTrace::poisson`]) model independent users hitting
//!   the chip at a fixed offered rate regardless of completion (open loop,
//!   unlike a closed-loop benchmark that waits for responses), and
//!   [`ZipfLengths`] adds the heavy-tailed prompt/output-length mix of
//!   real chat traffic ([`ArrivalTrace::open_loop`]). Both are
//!   seed-deterministic: the same seed reproduces the same trace byte for
//!   byte.
//!
//! # Examples
//!
//! ```
//! use meadow_models::workload::ArrivalTrace;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), meadow_models::ModelError> {
//! // 8 requests at an offered load of 50 req/s, fixed 128/32 lengths.
//! let mut rng = StdRng::seed_from_u64(7);
//! let trace = ArrivalTrace::poisson(8, 50.0, 128, 32, &mut rng)?;
//! assert_eq!(trace.requests.len(), 8);
//! // Arrivals are non-decreasing and the same seed replays exactly.
//! assert!(trace.requests.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms));
//! let mut rng2 = StdRng::seed_from_u64(7);
//! assert_eq!(trace, ArrivalTrace::poisson(8, 50.0, 128, 32, &mut rng2)?);
//! # Ok(())
//! # }
//! ```

use crate::config::{KvCompression, KvLayout, ModelKind, TransformerConfig};
use crate::error::ModelError;
use crate::synthetic::ZipfSampler;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A prefill request: the whole prompt is processed in one batch, producing
/// the first token (the TTFT measurement of §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrefillWorkload {
    /// Number of prompt tokens.
    pub prompt_tokens: usize,
}

impl PrefillWorkload {
    /// Creates a prefill workload.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for zero tokens or a prompt
    /// longer than the model's provisioned maximum.
    pub fn new(config: &TransformerConfig, prompt_tokens: usize) -> Result<Self, ModelError> {
        if prompt_tokens == 0 {
            return Err(ModelError::InvalidConfig {
                param: "prompt_tokens",
                reason: "zero".into(),
            });
        }
        if prompt_tokens > config.max_seq {
            return Err(ModelError::InvalidConfig {
                param: "prompt_tokens",
                reason: format!("{prompt_tokens} exceeds max_seq {}", config.max_seq),
            });
        }
        Ok(Self { prompt_tokens })
    }
}

/// A decode step: predict the `token_index`-th generated token after a
/// prefill of `prefill_tokens` (the TBT measurement of §6.1: "the latency of
/// generating the Nth token after the LLM has produced N−1 tokens").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DecodeWorkload {
    /// Tokens processed at prefill.
    pub prefill_tokens: usize,
    /// Index (1-based) of the generated token being measured.
    pub token_index: usize,
}

impl DecodeWorkload {
    /// Creates a decode workload.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for zero indices, a ViT config
    /// (ViTs have no decode phase), or a context beyond `max_seq`.
    pub fn new(
        config: &TransformerConfig,
        prefill_tokens: usize,
        token_index: usize,
    ) -> Result<Self, ModelError> {
        if let ModelKind::VisionTransformer { .. } = config.kind {
            return Err(ModelError::InvalidConfig {
                param: "kind",
                reason: "vision transformers have no decode stage".into(),
            });
        }
        if prefill_tokens == 0 || token_index == 0 {
            return Err(ModelError::InvalidConfig {
                param: "decode",
                reason: "prefill_tokens and token_index must be at least 1".into(),
            });
        }
        let w = Self { prefill_tokens, token_index };
        if w.context_len() > config.max_seq {
            return Err(ModelError::InvalidConfig {
                param: "token_index",
                reason: format!("context {} exceeds max_seq {}", w.context_len(), config.max_seq),
            });
        }
        Ok(w)
    }

    /// KV-cache length visible to this step: the prompt plus all previously
    /// generated tokens.
    pub fn context_len(&self) -> usize {
        self.prefill_tokens + self.token_index - 1
    }
}

/// KV-cache bytes per layer at a given context length (K and V, INT8).
pub fn kv_cache_layer_bytes(config: &TransformerConfig, context_len: usize) -> u64 {
    2 * (context_len * config.d_model) as u64
}

/// KV-cache bytes for the whole model.
pub fn kv_cache_total_bytes(config: &TransformerConfig, context_len: usize) -> u64 {
    kv_cache_layer_bytes(config, context_len) * config.layers as u64
}

/// Deterministic vote of token position `j` in a context of length `len`:
/// `1/(j+1) + 1/(len-j)` — large for early (sink) and recent tokens, the
/// U-shape VEDA-style eviction exploits.
fn token_vote(j: usize, len: usize) -> f64 {
    1.0 / (j as f64 + 1.0) + 1.0 / ((len - j) as f64)
}

/// KV accounting for one `(model, layout, compression)` triple: how many
/// bytes a context of a given length occupies, how many token slots stay
/// resident, and what fraction of attention mass the survivors retain.
///
/// All serving-side KV byte math goes through this seam instead of calling
/// [`kv_cache_total_bytes`] directly. For `KvLayout::Dense` +
/// `KvCompression::None` the products are identical `u64` expressions, so
/// dense accounting is bit-exact with the pre-seam code.
///
/// [`KvSizer::bytes`] and [`KvSizer::tokens_kept`] are monotone
/// nondecreasing in the context length, which keeps page-pool growth
/// (`kv_pages::grow`, add-only) and spill/reload deltas non-negative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvSizer {
    layout: KvLayout,
    compression: KvCompression,
    /// Whole-model bytes one resident token costs (all layers, K and V).
    bytes_per_token: u64,
}

impl KvSizer {
    /// Builds a sizer, validating the layout/compression against the model.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] when `kv_heads` is zero, does
    /// not divide the model's head count, or exceeds it; when `window` is
    /// zero; or when `keep_ratio` is not in `(0, 1]`.
    pub fn new(
        config: &TransformerConfig,
        layout: KvLayout,
        compression: KvCompression,
    ) -> Result<Self, ModelError> {
        let bytes_per_token = match layout {
            KvLayout::Dense | KvLayout::SlidingWindow { .. } => {
                if let KvLayout::SlidingWindow { window, .. } = layout {
                    if window == 0 {
                        return Err(ModelError::InvalidConfig {
                            param: "window",
                            reason: "sliding window must keep at least one trailing token".into(),
                        });
                    }
                }
                2 * config.d_model as u64 * config.layers as u64
            }
            KvLayout::GroupedHeads { kv_heads } => {
                if kv_heads == 0 {
                    return Err(ModelError::InvalidConfig {
                        param: "kv_heads",
                        reason: "zero".into(),
                    });
                }
                if kv_heads > config.heads || !config.heads.is_multiple_of(kv_heads) {
                    return Err(ModelError::InvalidConfig {
                        param: "kv_heads",
                        reason: format!(
                            "{kv_heads} must divide the model's {} heads",
                            config.heads
                        ),
                    });
                }
                2 * (config.head_dim() * kv_heads) as u64 * config.layers as u64
            }
        };
        if let KvCompression::VedaVote { keep_ratio } = compression {
            if !keep_ratio.is_finite() || keep_ratio <= 0.0 || keep_ratio > 1.0 {
                return Err(ModelError::InvalidConfig {
                    param: "keep_ratio",
                    reason: format!("must be in (0, 1], got {keep_ratio}"),
                });
            }
        }
        Ok(Self { layout, compression, bytes_per_token })
    }

    /// The dense, uncompressed sizer — bit-exact with
    /// [`kv_cache_total_bytes`].
    pub fn dense(config: &TransformerConfig) -> Self {
        Self::new(config, KvLayout::Dense, KvCompression::None)
            .expect("dense layout is always valid")
    }

    /// The layout this sizer accounts for.
    pub fn layout(&self) -> KvLayout {
        self.layout
    }

    /// The compression model this sizer accounts for.
    pub fn compression(&self) -> KvCompression {
        self.compression
    }

    /// Whole-model bytes one resident token costs.
    pub fn bytes_per_token(&self) -> u64 {
        self.bytes_per_token
    }

    /// Whether this sizer is the dense identity (no layout sharing, no
    /// compression) and therefore bit-exact with the pre-seam accounting.
    pub fn is_dense(&self) -> bool {
        self.layout == KvLayout::Dense && self.compression == KvCompression::None
    }

    /// Token positions structurally resident under the layout alone (before
    /// compression) at context length `context_len`.
    fn structural_tokens(&self, context_len: usize) -> usize {
        match self.layout {
            KvLayout::Dense | KvLayout::GroupedHeads { .. } => context_len,
            KvLayout::SlidingWindow { window, sinks } => context_len.min(window + sinks),
        }
    }

    /// Token slots resident at context length `context_len` after layout
    /// and compression. Monotone nondecreasing in `context_len`.
    pub fn tokens_kept(&self, context_len: usize) -> usize {
        let structural = self.structural_tokens(context_len);
        match self.compression {
            KvCompression::None => structural,
            KvCompression::VedaVote { keep_ratio } => {
                if structural == 0 {
                    0
                } else {
                    // ceil(keep_ratio·t), at least one token, never more
                    // than the structurally resident set.
                    ((keep_ratio * structural as f64).ceil() as usize).clamp(1, structural)
                }
            }
        }
    }

    /// KV-cache bytes a context of `context_len` tokens occupies.
    pub fn bytes(&self, context_len: usize) -> u64 {
        self.tokens_kept(context_len) as u64 * self.bytes_per_token
    }

    /// Fraction of total attention-vote mass retained by the resident
    /// tokens at context length `context_len`, in `[0, 1]`; the accuracy
    /// proxy reported alongside latency. `1.0` for empty contexts and for
    /// the dense identity.
    pub fn retained_attention_mass(&self, context_len: usize) -> f64 {
        if context_len == 0 || self.tokens_kept(context_len) == context_len {
            return 1.0;
        }
        let total: f64 = (0..context_len).map(|j| token_vote(j, context_len)).sum();
        // Structurally resident positions under the layout.
        let mut resident: Vec<f64> = match self.layout {
            KvLayout::Dense | KvLayout::GroupedHeads { .. } => {
                (0..context_len).map(|j| token_vote(j, context_len)).collect()
            }
            KvLayout::SlidingWindow { window, sinks } => (0..context_len)
                .filter(|&j| j < sinks || j + window >= context_len)
                .map(|j| token_vote(j, context_len))
                .collect(),
        };
        let kept = self.tokens_kept(context_len);
        if kept < resident.len() {
            // VEDA vote eviction: keep the highest-vote survivors. Votes are
            // finite, so total_cmp gives a deterministic descending order.
            resident.sort_by(|a, b| b.total_cmp(a));
            resident.truncate(kept);
        }
        (resident.iter().sum::<f64>() / total).min(1.0)
    }
}

/// One generation request in a multi-session serving trace: it arrives at
/// `arrival_ms`, carries a prompt and asks for a fixed number of generated
/// tokens (a closed-loop benchmark request, not an open-ended chat).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeRequest {
    /// Caller-chosen request identifier (unique within a trace).
    pub id: u32,
    /// Arrival time on the serving clock, in ms.
    pub arrival_ms: f64,
    /// Prompt length in tokens.
    pub prompt_tokens: usize,
    /// Tokens to generate after prefill (at least 1).
    pub generate_tokens: usize,
    /// Chip-affinity hint for cluster placement: a sticky routing key (e.g.
    /// the user or conversation a multi-turn request belongs to). Policies
    /// that honor it (`SessionAffinity`) route equal hints to the same
    /// chip, `hint % chips`; `None` falls back to hashing the request id.
    /// Single-chip serving ignores it. Defaults to `None` when absent from
    /// serialized data, so pre-cluster request JSON still deserializes.
    #[serde(default)]
    pub affinity: Option<u32>,
    /// The model this request targets in a multi-model (tenancy) run.
    /// `None` means the default model 0. Only meaningful when the serving
    /// config declares a weight budget (which turns on weight-residency
    /// modeling); a single-model chip rejects any other model id. Defaults
    /// to `None` when absent from serialized data, so pre-tenancy request
    /// JSON still deserializes.
    #[serde(default)]
    pub model_id: Option<u32>,
}

impl ServeRequest {
    /// Creates a request with no chip-affinity hint and the default model.
    pub fn new(id: u32, arrival_ms: f64, prompt_tokens: usize, generate_tokens: usize) -> Self {
        Self { id, arrival_ms, prompt_tokens, generate_tokens, affinity: None, model_id: None }
    }

    /// The same request carrying a chip-affinity hint for
    /// affinity-respecting cluster placement.
    pub fn with_affinity(self, affinity: u32) -> Self {
        Self { affinity: Some(affinity), ..self }
    }

    /// The same request targeting `model_id` in a multi-model run.
    pub fn with_model(self, model_id: u32) -> Self {
        Self { model_id: Some(model_id), ..self }
    }

    /// The model this request targets: the explicit id, or 0 (the default
    /// resident model) when no id was set.
    pub fn model(&self) -> u32 {
        self.model_id.unwrap_or(0)
    }

    /// Context length after the last generated token (prompt + generated);
    /// the request's KV cache peaks at this length.
    pub fn final_context_len(&self) -> usize {
        self.prompt_tokens + self.generate_tokens
    }

    /// Peak KV-cache bytes this request will hold on `config`.
    pub fn peak_kv_bytes(&self, config: &TransformerConfig) -> u64 {
        kv_cache_total_bytes(config, self.final_context_len())
    }

    /// KV-cache bytes the prompt alone occupies on `config` — what prefill
    /// produces, and therefore the payload of a prefill→decode KV handoff
    /// when the two phases run on different chips (disaggregated serving).
    pub fn prompt_kv_bytes(&self, config: &TransformerConfig) -> u64 {
        kv_cache_total_bytes(config, self.prompt_tokens)
    }

    /// Validates the request against a model configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for a non-finite or negative
    /// arrival time, zero generated tokens, or a prompt/context that the
    /// prefill and decode workload constructors reject.
    pub fn validate(&self, config: &TransformerConfig) -> Result<(), ModelError> {
        if !self.arrival_ms.is_finite() || self.arrival_ms < 0.0 {
            return Err(ModelError::InvalidConfig {
                param: "arrival_ms",
                reason: format!("must be finite and non-negative, got {}", self.arrival_ms),
            });
        }
        if self.generate_tokens == 0 {
            return Err(ModelError::InvalidConfig {
                param: "generate_tokens",
                reason: "must generate at least one token".into(),
            });
        }
        PrefillWorkload::new(config, self.prompt_tokens)?;
        // Validates the deepest decode step (kind, context vs max_seq).
        DecodeWorkload::new(config, self.prompt_tokens, self.generate_tokens)?;
        Ok(())
    }
}

/// Zipf-distributed prompt/output lengths for open-loop trace synthesis.
///
/// Real chat traffic is heavy-tailed: most prompts and completions are
/// short, a few are very long. Lengths are drawn from `min..=max` with
/// rank-`k` probability proportional to `1 / (k+1)^exponent` (rank 0 =
/// `min`), so `min` is the mode and mass decays toward `max`; a larger
/// exponent concentrates more of the traffic at the short end.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZipfLengths {
    /// Shortest (and most frequent) prompt length.
    pub prompt_min: usize,
    /// Longest prompt length.
    pub prompt_max: usize,
    /// Shortest (and most frequent) generation length.
    pub generate_min: usize,
    /// Longest generation length.
    pub generate_max: usize,
    /// Zipf exponent shared by both distributions (must be finite and
    /// positive; around 1.0–1.5 matches observed chat mixes).
    pub exponent: f64,
}

impl ZipfLengths {
    /// Validates the ranges and exponent.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for zero minimums, inverted
    /// ranges, or a non-finite or non-positive exponent.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.prompt_min == 0 || self.generate_min == 0 {
            return Err(ModelError::InvalidConfig {
                param: "zipf_lengths",
                reason: "prompt_min and generate_min must be at least 1".into(),
            });
        }
        if self.prompt_max < self.prompt_min || self.generate_max < self.generate_min {
            return Err(ModelError::InvalidConfig {
                param: "zipf_lengths",
                reason: "max lengths must not be below their minimums".into(),
            });
        }
        // ZipfSampler re-validates, but failing here names the right knob.
        if !self.exponent.is_finite() || self.exponent <= 0.0 {
            return Err(ModelError::InvalidConfig {
                param: "zipf_lengths",
                reason: format!("exponent must be finite and positive, got {}", self.exponent),
            });
        }
        Ok(())
    }
}

/// Samples one exponential interarrival gap in ms for a Poisson process at
/// `rate_per_sec` (inverse-CDF over the rng's unit sample).
fn exp_gap_ms<R: Rng>(rng: &mut R, rate_per_sec: f64) -> f64 {
    let u: f64 = rng.gen();
    // u ∈ [0, 1) so 1-u ∈ (0, 1]: the log is finite and non-positive.
    -(1.0 - u).ln() / rate_per_sec * 1e3
}

/// An ordered set of [`ServeRequest`]s — the input to the serving simulator.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ArrivalTrace {
    /// The requests, in caller order (the simulator sorts by arrival time).
    pub requests: Vec<ServeRequest>,
}

impl ArrivalTrace {
    /// Wraps an explicit request list.
    pub fn new(requests: Vec<ServeRequest>) -> Self {
        Self { requests }
    }

    /// A deterministic open-loop trace: `n` requests with ids `0..n`,
    /// arriving every `spacing_ms`, all with the same prompt/generation
    /// lengths.
    pub fn uniform(
        n: usize,
        spacing_ms: f64,
        prompt_tokens: usize,
        generate_tokens: usize,
    ) -> Self {
        Self {
            requests: (0..n)
                .map(|i| {
                    ServeRequest::new(
                        i as u32,
                        i as f64 * spacing_ms,
                        prompt_tokens,
                        generate_tokens,
                    )
                })
                .collect(),
        }
    }

    /// An open-loop Poisson trace with fixed lengths: `n` requests with ids
    /// `0..n` whose interarrival gaps are exponentially distributed at an
    /// offered load of `rate_per_sec` requests per second, independent of
    /// completions (the harder, more realistic counterpart of a closed-loop
    /// benchmark that waits between requests).
    ///
    /// Deterministic for a given seeded rng state — see the
    /// [module docs](self) for a replay example.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] when `rate_per_sec` is not
    /// finite and positive.
    pub fn poisson<R: Rng>(
        n: usize,
        rate_per_sec: f64,
        prompt_tokens: usize,
        generate_tokens: usize,
        rng: &mut R,
    ) -> Result<Self, ModelError> {
        Self::poisson_with(n, rate_per_sec, rng, |_| (prompt_tokens, generate_tokens))
    }

    /// Shared arrival engine of the open-loop generators: Poisson gaps at
    /// `rate_per_sec`, with per-request lengths drawn by `lengths` (the
    /// rng is handed to the closure *after* the gap draw, so fixed- and
    /// sampled-length traces share one arrival stream definition).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] when `rate_per_sec` is not
    /// finite and positive.
    fn poisson_with<R: Rng>(
        n: usize,
        rate_per_sec: f64,
        rng: &mut R,
        lengths: impl FnMut(&mut R) -> (usize, usize),
    ) -> Result<Self, ModelError> {
        if !rate_per_sec.is_finite() || rate_per_sec <= 0.0 {
            return Err(ModelError::InvalidConfig {
                param: "rate_per_sec",
                reason: format!("must be finite and positive, got {rate_per_sec}"),
            });
        }
        Ok(Self::arrivals_with(n, |_| rate_per_sec, rng, lengths))
    }

    /// The inhomogeneous arrival engine underneath [`poisson_with`]
    /// (`Self::poisson_with`): each gap is drawn at the instantaneous rate
    /// `rate_at_ms(now)`. One rng draw per gap and one `lengths` call per
    /// request — the exact consumption order of the homogeneous engine, so
    /// a constant rate function reproduces [`ArrivalTrace::poisson`] byte
    /// for byte, and with a shared rng stream each diurnal gap is bounded
    /// elementwise by the constant-rate gaps at the envelope rates (a
    /// higher rate can only shrink a gap drawn from the same unit sample).
    fn arrivals_with<R: Rng>(
        n: usize,
        rate_at_ms: impl Fn(f64) -> f64,
        rng: &mut R,
        mut lengths: impl FnMut(&mut R) -> (usize, usize),
    ) -> Self {
        let mut now = 0.0;
        Self {
            requests: (0..n)
                .map(|i| {
                    now += exp_gap_ms(rng, rate_at_ms(now));
                    let (prompt, generate) = lengths(rng);
                    ServeRequest::new(i as u32, now, prompt, generate)
                })
                .collect(),
        }
    }

    /// A diurnal open-loop trace: Poisson arrivals whose offered rate
    /// follows a square wave — `day_rate_per_sec` for the first `phase_ms`,
    /// `night_rate_per_sec` for the next, alternating — modeling the
    /// time-of-day load swings that churn model residency in multi-model
    /// serving. Equal day and night rates reproduce
    /// [`ArrivalTrace::poisson`] exactly (same rng stream, same trace), and
    /// with the same seed every arrival lands between the constant-rate
    /// traces at the faster and slower of the two rates.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] when either rate or the phase
    /// length is not finite and positive.
    pub fn diurnal<R: Rng>(
        n: usize,
        day_rate_per_sec: f64,
        night_rate_per_sec: f64,
        phase_ms: f64,
        prompt_tokens: usize,
        generate_tokens: usize,
        rng: &mut R,
    ) -> Result<Self, ModelError> {
        for (param, rate) in
            [("day_rate_per_sec", day_rate_per_sec), ("night_rate_per_sec", night_rate_per_sec)]
        {
            if !rate.is_finite() || rate <= 0.0 {
                return Err(ModelError::InvalidConfig {
                    param,
                    reason: format!("must be finite and positive, got {rate}"),
                });
            }
        }
        if !phase_ms.is_finite() || phase_ms <= 0.0 {
            return Err(ModelError::InvalidConfig {
                param: "phase_ms",
                reason: format!("must be finite and positive, got {phase_ms}"),
            });
        }
        Ok(Self::arrivals_with(
            n,
            |now_ms| {
                if ((now_ms / phase_ms) as u64).is_multiple_of(2) {
                    day_rate_per_sec
                } else {
                    night_rate_per_sec
                }
            },
            rng,
            |_| (prompt_tokens, generate_tokens),
        ))
    }

    /// An open-loop trace combining Poisson arrivals with Zipf-distributed
    /// prompt/output lengths — the full synthetic serving workload
    /// (arrival process from [`ArrivalTrace::poisson`], length mix from
    /// [`ZipfLengths`]). Deterministic for a given seeded rng state.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for an invalid rate (see
    /// [`ArrivalTrace::poisson`]) or length configuration (see
    /// [`ZipfLengths::validate`]).
    pub fn open_loop<R: Rng>(
        n: usize,
        rate_per_sec: f64,
        lengths: &ZipfLengths,
        rng: &mut R,
    ) -> Result<Self, ModelError> {
        lengths.validate()?;
        let prompt =
            ZipfSampler::new(lengths.prompt_max - lengths.prompt_min + 1, lengths.exponent)?;
        let generate =
            ZipfSampler::new(lengths.generate_max - lengths.generate_min + 1, lengths.exponent)?;
        Self::poisson_with(n, rate_per_sec, rng, |rng| {
            (lengths.prompt_min + prompt.sample(rng), lengths.generate_min + generate.sample(rng))
        })
    }

    /// Validates every request and checks id uniqueness.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for duplicate ids and
    /// propagates per-request validation errors.
    pub fn validate(&self, config: &TransformerConfig) -> Result<(), ModelError> {
        let mut ids: Vec<u32> = self.requests.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        if ids.windows(2).any(|w| w[0] == w[1]) {
            return Err(ModelError::InvalidConfig {
                param: "requests",
                reason: "request ids must be unique within a trace".into(),
            });
        }
        for r in &self.requests {
            r.validate(config)?;
        }
        Ok(())
    }

    /// Sum of peak KV-cache bytes over all requests: the budget at which no
    /// eviction can ever be needed even if every session is resident at its
    /// deepest context simultaneously.
    pub fn total_peak_kv_bytes(&self, config: &TransformerConfig) -> u64 {
        self.requests.iter().map(|r| r.peak_kv_bytes(config)).sum()
    }

    /// Tags the trace's requests (in trace order) with model ids `0..mix.len()`
    /// in the given proportions — the multi-model tenancy workload. The
    /// assignment is deterministic and rng-free: per-model counts come from
    /// the largest-remainder method (so model `m` gets either
    /// `floor(n·pₘ)` or `ceil(n·pₘ)` requests, exactly proportional up to
    /// rounding), and the ids interleave so every window of the trace sees
    /// roughly the mix rather than long single-model runs.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] when the mix is empty, any
    /// weight is not finite and non-negative, or all weights are zero.
    pub fn with_model_mix(mut self, mix: &[f64]) -> Result<Self, ModelError> {
        if mix.is_empty() {
            return Err(ModelError::InvalidConfig {
                param: "mix",
                reason: "a model mix needs at least one weight".into(),
            });
        }
        if mix.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(ModelError::InvalidConfig {
                param: "mix",
                reason: "mix weights must be finite and non-negative".into(),
            });
        }
        let total: f64 = mix.iter().sum();
        if total <= 0.0 {
            return Err(ModelError::InvalidConfig {
                param: "mix",
                reason: "at least one mix weight must be positive".into(),
            });
        }
        let n = self.requests.len();
        // Largest-remainder quotas: floor every share, then hand the
        // leftover requests to the largest fractional parts (ties to the
        // lower model id — deterministic).
        let shares: Vec<f64> = mix.iter().map(|w| n as f64 * w / total).collect();
        let mut counts: Vec<u64> = shares.iter().map(|s| *s as u64).collect();
        let mut leftover = n as u64 - counts.iter().sum::<u64>();
        let mut order: Vec<usize> = (0..mix.len()).collect();
        order.sort_by(|&a, &b| {
            (shares[b] - counts[b] as f64)
                .total_cmp(&(shares[a] - counts[a] as f64))
                .then(a.cmp(&b))
        });
        for &m in &order {
            if leftover == 0 {
                break;
            }
            counts[m] += 1;
            leftover -= 1;
        }
        // Interleave: each request goes to the unfilled model whose next
        // assignment fraction `(assigned+1)/count` is smallest — exact
        // integer cross-multiplication, so the schedule is deterministic.
        let mut assigned = vec![0u64; mix.len()];
        for r in &mut self.requests {
            let m = (0..mix.len())
                .filter(|&m| assigned[m] < counts[m])
                .min_by(|&a, &b| {
                    ((assigned[a] + 1) * counts[b])
                        .cmp(&((assigned[b] + 1) * counts[a]))
                        .then(a.cmp(&b))
                })
                .expect("Σ counts == n, so an unfilled model always exists");
            assigned[m] += 1;
            *r = r.with_model(m as u32);
        }
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn prefill_validation() {
        let c = presets::opt_125m();
        assert!(PrefillWorkload::new(&c, 512).is_ok());
        assert!(PrefillWorkload::new(&c, 0).is_err());
        assert!(PrefillWorkload::new(&c, 4096).is_err());
    }

    #[test]
    fn decode_context_arithmetic() {
        let c = presets::opt_125m();
        let w = DecodeWorkload::new(&c, 512, 64).unwrap();
        // Paper: predicting the 64th token after 512 prefill → context 575.
        assert_eq!(w.context_len(), 575);
        let w = DecodeWorkload::new(&c, 512, 1).unwrap();
        assert_eq!(w.context_len(), 512);
    }

    #[test]
    fn decode_validation() {
        let c = presets::opt_125m();
        assert!(DecodeWorkload::new(&c, 0, 1).is_err());
        assert!(DecodeWorkload::new(&c, 512, 0).is_err());
        assert!(DecodeWorkload::new(&c, 2048, 64).is_err());
        assert!(DecodeWorkload::new(&presets::deit_s(), 10, 1).is_err());
    }

    #[test]
    fn kv_cache_sizes() {
        let c = presets::opt_125m();
        // 2 × 512 × 768 = 768 KiB per layer.
        assert_eq!(kv_cache_layer_bytes(&c, 512), 2 * 512 * 768);
        assert_eq!(kv_cache_total_bytes(&c, 512), 12 * 2 * 512 * 768);
    }

    #[test]
    fn serve_request_validation() {
        let c = presets::tiny_decoder();
        assert!(ServeRequest::new(0, 0.0, 16, 8).validate(&c).is_ok());
        assert!(ServeRequest::new(0, -1.0, 16, 8).validate(&c).is_err());
        assert!(ServeRequest::new(0, f64::NAN, 16, 8).validate(&c).is_err());
        assert!(ServeRequest::new(0, 0.0, 0, 8).validate(&c).is_err());
        assert!(ServeRequest::new(0, 0.0, 16, 0).validate(&c).is_err());
        // max_seq = 64: a 60-token prompt supports 5 generated tokens
        // (context 64 on the last step) but not 6.
        assert!(ServeRequest::new(0, 0.0, 60, 5).validate(&c).is_ok());
        assert!(ServeRequest::new(0, 0.0, 60, 6).validate(&c).is_err());
        // Vision transformers have no decode stage to serve.
        assert!(ServeRequest::new(0, 0.0, 5, 1).validate(&presets::tiny_vit()).is_err());
    }

    #[test]
    fn serve_request_kv_arithmetic() {
        let c = presets::tiny_decoder();
        let r = ServeRequest::new(3, 1.5, 16, 8);
        assert_eq!(r.final_context_len(), 24);
        assert_eq!(r.peak_kv_bytes(&c), kv_cache_total_bytes(&c, 24));
    }

    #[test]
    fn affinity_hint_defaults_off_and_survives_validation() {
        let c = presets::tiny_decoder();
        let r = ServeRequest::new(3, 0.0, 16, 8);
        assert_eq!(r.affinity, None);
        let sticky = r.with_affinity(7);
        assert_eq!(sticky.affinity, Some(7));
        assert_eq!((sticky.id, sticky.prompt_tokens), (3, 16));
        sticky.validate(&c).unwrap();
    }

    #[test]
    fn pre_affinity_request_json_still_deserializes() {
        // Serialized requests from before the affinity hint existed carry
        // no `affinity` key; `#[serde(default)]` must fill in `None`.
        let legacy = r#"{"id":1,"arrival_ms":0.5,"prompt_tokens":4,"generate_tokens":2}"#;
        let parsed: ServeRequest = serde_json::from_str(legacy).unwrap();
        assert_eq!(parsed, ServeRequest::new(1, 0.5, 4, 2));
        assert_eq!(parsed.affinity, None);
        // The round trip of a hinted request keeps the hint.
        let hinted = ServeRequest::new(2, 0.0, 8, 3).with_affinity(9);
        let json = serde_json::to_string(&hinted).unwrap();
        assert_eq!(serde_json::from_str::<ServeRequest>(&json).unwrap(), hinted);
    }

    #[test]
    fn model_id_defaults_off_and_survives_validation() {
        let c = presets::tiny_decoder();
        let r = ServeRequest::new(3, 0.0, 16, 8);
        assert_eq!(r.model_id, None);
        assert_eq!(r.model(), 0);
        let tenant = r.with_model(2);
        assert_eq!(tenant.model_id, Some(2));
        assert_eq!(tenant.model(), 2);
        assert_eq!((tenant.id, tenant.prompt_tokens), (3, 16));
        tenant.validate(&c).unwrap();
        // Pre-tenancy JSON without the key deserializes to None.
        let legacy = r#"{"id":1,"arrival_ms":0.5,"prompt_tokens":4,"generate_tokens":2}"#;
        let parsed: ServeRequest = serde_json::from_str(legacy).unwrap();
        assert_eq!(parsed.model_id, None);
        let json = serde_json::to_string(&tenant).unwrap();
        assert_eq!(serde_json::from_str::<ServeRequest>(&json).unwrap(), tenant);
    }

    #[test]
    fn diurnal_with_equal_rates_is_exactly_poisson() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let p = ArrivalTrace::poisson(32, 80.0, 16, 4, &mut StdRng::seed_from_u64(11)).unwrap();
        let d = ArrivalTrace::diurnal(32, 80.0, 80.0, 5.0, 16, 4, &mut StdRng::seed_from_u64(11))
            .unwrap();
        assert_eq!(p, d, "a flat square wave must replay the homogeneous engine");
    }

    #[test]
    fn diurnal_rejects_bad_parameters() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0);
        assert!(ArrivalTrace::diurnal(4, 0.0, 10.0, 5.0, 8, 2, &mut rng).is_err());
        assert!(ArrivalTrace::diurnal(4, 10.0, -1.0, 5.0, 8, 2, &mut rng).is_err());
        assert!(ArrivalTrace::diurnal(4, 10.0, 10.0, 0.0, 8, 2, &mut rng).is_err());
        assert!(ArrivalTrace::diurnal(4, 10.0, 10.0, f64::NAN, 8, 2, &mut rng).is_err());
    }

    #[test]
    fn model_mix_is_exactly_proportional_and_interleaved() {
        let mixed = ArrivalTrace::uniform(10, 1.0, 8, 2).with_model_mix(&[0.7, 0.3]).unwrap();
        let m0 = mixed.requests.iter().filter(|r| r.model() == 0).count();
        let m1 = mixed.requests.iter().filter(|r| r.model() == 1).count();
        assert_eq!((m0, m1), (7, 3));
        // Interleaved, not 7 model-0 requests then 3 model-1 requests.
        assert!(mixed.requests[..5].iter().any(|r| r.model() == 1));
        // Deterministic replay.
        let again = ArrivalTrace::uniform(10, 1.0, 8, 2).with_model_mix(&[0.7, 0.3]).unwrap();
        assert_eq!(mixed, again);
        // Invalid mixes are rejected.
        let t = ArrivalTrace::uniform(4, 1.0, 8, 2);
        assert!(t.clone().with_model_mix(&[]).is_err());
        assert!(t.clone().with_model_mix(&[1.0, -0.5]).is_err());
        assert!(t.clone().with_model_mix(&[f64::NAN]).is_err());
        assert!(t.clone().with_model_mix(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn poisson_trace_is_seed_deterministic_and_ordered() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let a = ArrivalTrace::poisson(16, 100.0, 24, 8, &mut StdRng::seed_from_u64(3)).unwrap();
        let b = ArrivalTrace::poisson(16, 100.0, 24, 8, &mut StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(a, b, "same seed must replay the same trace");
        let c = ArrivalTrace::poisson(16, 100.0, 24, 8, &mut StdRng::seed_from_u64(4)).unwrap();
        assert_ne!(a, c, "different seeds must differ");
        assert_eq!(a.requests.len(), 16);
        assert!(a.requests.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms));
        assert!(a.requests.iter().all(|r| r.arrival_ms >= 0.0 && r.arrival_ms.is_finite()));
        a.validate(&presets::tiny_decoder()).unwrap();
        // At 100 req/s the mean gap is 10 ms; 16 gaps land within a loose
        // order-of-magnitude envelope around 160 ms.
        let last = a.requests.last().unwrap().arrival_ms;
        assert!(last > 16.0 && last < 1600.0, "implausible makespan {last}");
    }

    #[test]
    fn poisson_rejects_bad_rates() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0);
        assert!(ArrivalTrace::poisson(4, 0.0, 8, 2, &mut rng).is_err());
        assert!(ArrivalTrace::poisson(4, -5.0, 8, 2, &mut rng).is_err());
        assert!(ArrivalTrace::poisson(4, f64::NAN, 8, 2, &mut rng).is_err());
        assert!(ArrivalTrace::poisson(0, 10.0, 8, 2, &mut rng).unwrap().requests.is_empty());
    }

    #[test]
    fn open_loop_trace_respects_length_bounds_and_skew() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let lengths = ZipfLengths {
            prompt_min: 4,
            prompt_max: 32,
            generate_min: 2,
            generate_max: 16,
            exponent: 1.2,
        };
        let t =
            ArrivalTrace::open_loop(200, 50.0, &lengths, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(t.requests.len(), 200);
        for r in &t.requests {
            assert!((4..=32).contains(&r.prompt_tokens));
            assert!((2..=16).contains(&r.generate_tokens));
        }
        // Zipf skew: the shortest prompt rank dominates any single long one.
        let short = t.requests.iter().filter(|r| r.prompt_tokens == 4).count();
        let long = t.requests.iter().filter(|r| r.prompt_tokens == 32).count();
        assert!(short > long, "rank-0 count {short} should beat tail count {long}");
        let replay =
            ArrivalTrace::open_loop(200, 50.0, &lengths, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(t, replay);
    }

    #[test]
    fn zipf_lengths_validation() {
        let ok = ZipfLengths {
            prompt_min: 1,
            prompt_max: 8,
            generate_min: 1,
            generate_max: 4,
            exponent: 1.0,
        };
        assert!(ok.validate().is_ok());
        assert!(ZipfLengths { prompt_min: 0, ..ok }.validate().is_err());
        assert!(ZipfLengths { generate_min: 0, ..ok }.validate().is_err());
        assert!(ZipfLengths { prompt_max: 0, ..ok }.validate().is_err());
        assert!(ZipfLengths { generate_max: 0, ..ok }.validate().is_err());
        assert!(ZipfLengths { exponent: 0.0, ..ok }.validate().is_err());
        assert!(ZipfLengths { exponent: f64::NAN, ..ok }.validate().is_err());
        // A degenerate single-rank range is legal (fixed lengths).
        assert!(ZipfLengths { prompt_max: 1, generate_max: 1, ..ok }.validate().is_ok());
    }

    #[test]
    fn arrival_trace_uniform_and_validation() {
        let c = presets::tiny_decoder();
        let trace = ArrivalTrace::uniform(4, 2.5, 16, 8);
        assert_eq!(trace.requests.len(), 4);
        assert_eq!(trace.requests[3].id, 3);
        assert_eq!(trace.requests[3].arrival_ms, 7.5);
        trace.validate(&c).unwrap();
        assert_eq!(trace.total_peak_kv_bytes(&c), 4 * kv_cache_total_bytes(&c, 24));
        let dup = ArrivalTrace::new(vec![
            ServeRequest::new(1, 0.0, 8, 2),
            ServeRequest::new(1, 1.0, 8, 2),
        ]);
        assert!(dup.validate(&c).is_err());
    }
}
