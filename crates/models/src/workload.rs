//! Prefill / decode workload descriptors and KV-cache sizing.

use crate::config::{ModelKind, TransformerConfig};
use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// A prefill request: the whole prompt is processed in one batch, producing
/// the first token (the TTFT measurement of §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrefillWorkload {
    /// Number of prompt tokens.
    pub prompt_tokens: usize,
}

impl PrefillWorkload {
    /// Creates a prefill workload.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for zero tokens or a prompt
    /// longer than the model's provisioned maximum.
    pub fn new(config: &TransformerConfig, prompt_tokens: usize) -> Result<Self, ModelError> {
        if prompt_tokens == 0 {
            return Err(ModelError::InvalidConfig {
                param: "prompt_tokens",
                reason: "zero".into(),
            });
        }
        if prompt_tokens > config.max_seq {
            return Err(ModelError::InvalidConfig {
                param: "prompt_tokens",
                reason: format!("{prompt_tokens} exceeds max_seq {}", config.max_seq),
            });
        }
        Ok(Self { prompt_tokens })
    }
}

/// A decode step: predict the `token_index`-th generated token after a
/// prefill of `prefill_tokens` (the TBT measurement of §6.1: "the latency of
/// generating the Nth token after the LLM has produced N−1 tokens").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DecodeWorkload {
    /// Tokens processed at prefill.
    pub prefill_tokens: usize,
    /// Index (1-based) of the generated token being measured.
    pub token_index: usize,
}

impl DecodeWorkload {
    /// Creates a decode workload.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for zero indices, a ViT config
    /// (ViTs have no decode phase), or a context beyond `max_seq`.
    pub fn new(
        config: &TransformerConfig,
        prefill_tokens: usize,
        token_index: usize,
    ) -> Result<Self, ModelError> {
        if let ModelKind::VisionTransformer { .. } = config.kind {
            return Err(ModelError::InvalidConfig {
                param: "kind",
                reason: "vision transformers have no decode stage".into(),
            });
        }
        if prefill_tokens == 0 || token_index == 0 {
            return Err(ModelError::InvalidConfig {
                param: "decode",
                reason: "prefill_tokens and token_index must be at least 1".into(),
            });
        }
        let w = Self { prefill_tokens, token_index };
        if w.context_len() > config.max_seq {
            return Err(ModelError::InvalidConfig {
                param: "token_index",
                reason: format!("context {} exceeds max_seq {}", w.context_len(), config.max_seq),
            });
        }
        Ok(w)
    }

    /// KV-cache length visible to this step: the prompt plus all previously
    /// generated tokens.
    pub fn context_len(&self) -> usize {
        self.prefill_tokens + self.token_index - 1
    }
}

/// KV-cache bytes per layer at a given context length (K and V, INT8).
pub fn kv_cache_layer_bytes(config: &TransformerConfig, context_len: usize) -> u64 {
    2 * (context_len * config.d_model) as u64
}

/// KV-cache bytes for the whole model.
pub fn kv_cache_total_bytes(config: &TransformerConfig, context_len: usize) -> u64 {
    kv_cache_layer_bytes(config, context_len) * config.layers as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn prefill_validation() {
        let c = presets::opt_125m();
        assert!(PrefillWorkload::new(&c, 512).is_ok());
        assert!(PrefillWorkload::new(&c, 0).is_err());
        assert!(PrefillWorkload::new(&c, 4096).is_err());
    }

    #[test]
    fn decode_context_arithmetic() {
        let c = presets::opt_125m();
        let w = DecodeWorkload::new(&c, 512, 64).unwrap();
        // Paper: predicting the 64th token after 512 prefill → context 575.
        assert_eq!(w.context_len(), 575);
        let w = DecodeWorkload::new(&c, 512, 1).unwrap();
        assert_eq!(w.context_len(), 512);
    }

    #[test]
    fn decode_validation() {
        let c = presets::opt_125m();
        assert!(DecodeWorkload::new(&c, 0, 1).is_err());
        assert!(DecodeWorkload::new(&c, 512, 0).is_err());
        assert!(DecodeWorkload::new(&c, 2048, 64).is_err());
        assert!(DecodeWorkload::new(&presets::deit_s(), 10, 1).is_err());
    }

    #[test]
    fn kv_cache_sizes() {
        let c = presets::opt_125m();
        // 2 × 512 × 768 = 768 KiB per layer.
        assert_eq!(kv_cache_layer_bytes(&c, 512), 2 * 512 * 768);
        assert_eq!(kv_cache_total_bytes(&c, 512), 12 * 2 * 512 * 768);
    }
}
