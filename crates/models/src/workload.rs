//! Prefill / decode workload descriptors and KV-cache sizing.

use crate::config::{ModelKind, TransformerConfig};
use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// A prefill request: the whole prompt is processed in one batch, producing
/// the first token (the TTFT measurement of §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrefillWorkload {
    /// Number of prompt tokens.
    pub prompt_tokens: usize,
}

impl PrefillWorkload {
    /// Creates a prefill workload.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for zero tokens or a prompt
    /// longer than the model's provisioned maximum.
    pub fn new(config: &TransformerConfig, prompt_tokens: usize) -> Result<Self, ModelError> {
        if prompt_tokens == 0 {
            return Err(ModelError::InvalidConfig {
                param: "prompt_tokens",
                reason: "zero".into(),
            });
        }
        if prompt_tokens > config.max_seq {
            return Err(ModelError::InvalidConfig {
                param: "prompt_tokens",
                reason: format!("{prompt_tokens} exceeds max_seq {}", config.max_seq),
            });
        }
        Ok(Self { prompt_tokens })
    }
}

/// A decode step: predict the `token_index`-th generated token after a
/// prefill of `prefill_tokens` (the TBT measurement of §6.1: "the latency of
/// generating the Nth token after the LLM has produced N−1 tokens").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DecodeWorkload {
    /// Tokens processed at prefill.
    pub prefill_tokens: usize,
    /// Index (1-based) of the generated token being measured.
    pub token_index: usize,
}

impl DecodeWorkload {
    /// Creates a decode workload.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for zero indices, a ViT config
    /// (ViTs have no decode phase), or a context beyond `max_seq`.
    pub fn new(
        config: &TransformerConfig,
        prefill_tokens: usize,
        token_index: usize,
    ) -> Result<Self, ModelError> {
        if let ModelKind::VisionTransformer { .. } = config.kind {
            return Err(ModelError::InvalidConfig {
                param: "kind",
                reason: "vision transformers have no decode stage".into(),
            });
        }
        if prefill_tokens == 0 || token_index == 0 {
            return Err(ModelError::InvalidConfig {
                param: "decode",
                reason: "prefill_tokens and token_index must be at least 1".into(),
            });
        }
        let w = Self { prefill_tokens, token_index };
        if w.context_len() > config.max_seq {
            return Err(ModelError::InvalidConfig {
                param: "token_index",
                reason: format!("context {} exceeds max_seq {}", w.context_len(), config.max_seq),
            });
        }
        Ok(w)
    }

    /// KV-cache length visible to this step: the prompt plus all previously
    /// generated tokens.
    pub fn context_len(&self) -> usize {
        self.prefill_tokens + self.token_index - 1
    }
}

/// KV-cache bytes per layer at a given context length (K and V, INT8).
pub fn kv_cache_layer_bytes(config: &TransformerConfig, context_len: usize) -> u64 {
    2 * (context_len * config.d_model) as u64
}

/// KV-cache bytes for the whole model.
pub fn kv_cache_total_bytes(config: &TransformerConfig, context_len: usize) -> u64 {
    kv_cache_layer_bytes(config, context_len) * config.layers as u64
}

/// One generation request in a multi-session serving trace: it arrives at
/// `arrival_ms`, carries a prompt and asks for a fixed number of generated
/// tokens (a closed-loop benchmark request, not an open-ended chat).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeRequest {
    /// Caller-chosen request identifier (unique within a trace).
    pub id: u32,
    /// Arrival time on the serving clock, in ms.
    pub arrival_ms: f64,
    /// Prompt length in tokens.
    pub prompt_tokens: usize,
    /// Tokens to generate after prefill (at least 1).
    pub generate_tokens: usize,
}

impl ServeRequest {
    /// Creates a request.
    pub fn new(id: u32, arrival_ms: f64, prompt_tokens: usize, generate_tokens: usize) -> Self {
        Self { id, arrival_ms, prompt_tokens, generate_tokens }
    }

    /// Context length after the last generated token (prompt + generated);
    /// the request's KV cache peaks at this length.
    pub fn final_context_len(&self) -> usize {
        self.prompt_tokens + self.generate_tokens
    }

    /// Peak KV-cache bytes this request will hold on `config`.
    pub fn peak_kv_bytes(&self, config: &TransformerConfig) -> u64 {
        kv_cache_total_bytes(config, self.final_context_len())
    }

    /// Validates the request against a model configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for a non-finite or negative
    /// arrival time, zero generated tokens, or a prompt/context that the
    /// prefill and decode workload constructors reject.
    pub fn validate(&self, config: &TransformerConfig) -> Result<(), ModelError> {
        if !self.arrival_ms.is_finite() || self.arrival_ms < 0.0 {
            return Err(ModelError::InvalidConfig {
                param: "arrival_ms",
                reason: format!("must be finite and non-negative, got {}", self.arrival_ms),
            });
        }
        if self.generate_tokens == 0 {
            return Err(ModelError::InvalidConfig {
                param: "generate_tokens",
                reason: "must generate at least one token".into(),
            });
        }
        PrefillWorkload::new(config, self.prompt_tokens)?;
        // Validates the deepest decode step (kind, context vs max_seq).
        DecodeWorkload::new(config, self.prompt_tokens, self.generate_tokens)?;
        Ok(())
    }
}

/// An ordered set of [`ServeRequest`]s — the input to the serving simulator.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ArrivalTrace {
    /// The requests, in caller order (the simulator sorts by arrival time).
    pub requests: Vec<ServeRequest>,
}

impl ArrivalTrace {
    /// Wraps an explicit request list.
    pub fn new(requests: Vec<ServeRequest>) -> Self {
        Self { requests }
    }

    /// A deterministic open-loop trace: `n` requests with ids `0..n`,
    /// arriving every `spacing_ms`, all with the same prompt/generation
    /// lengths.
    pub fn uniform(
        n: usize,
        spacing_ms: f64,
        prompt_tokens: usize,
        generate_tokens: usize,
    ) -> Self {
        Self {
            requests: (0..n)
                .map(|i| {
                    ServeRequest::new(
                        i as u32,
                        i as f64 * spacing_ms,
                        prompt_tokens,
                        generate_tokens,
                    )
                })
                .collect(),
        }
    }

    /// Validates every request and checks id uniqueness.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for duplicate ids and
    /// propagates per-request validation errors.
    pub fn validate(&self, config: &TransformerConfig) -> Result<(), ModelError> {
        let mut ids: Vec<u32> = self.requests.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        if ids.windows(2).any(|w| w[0] == w[1]) {
            return Err(ModelError::InvalidConfig {
                param: "requests",
                reason: "request ids must be unique within a trace".into(),
            });
        }
        for r in &self.requests {
            r.validate(config)?;
        }
        Ok(())
    }

    /// Sum of peak KV-cache bytes over all requests: the budget at which no
    /// eviction can ever be needed even if every session is resident at its
    /// deepest context simultaneously.
    pub fn total_peak_kv_bytes(&self, config: &TransformerConfig) -> u64 {
        self.requests.iter().map(|r| r.peak_kv_bytes(config)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn prefill_validation() {
        let c = presets::opt_125m();
        assert!(PrefillWorkload::new(&c, 512).is_ok());
        assert!(PrefillWorkload::new(&c, 0).is_err());
        assert!(PrefillWorkload::new(&c, 4096).is_err());
    }

    #[test]
    fn decode_context_arithmetic() {
        let c = presets::opt_125m();
        let w = DecodeWorkload::new(&c, 512, 64).unwrap();
        // Paper: predicting the 64th token after 512 prefill → context 575.
        assert_eq!(w.context_len(), 575);
        let w = DecodeWorkload::new(&c, 512, 1).unwrap();
        assert_eq!(w.context_len(), 512);
    }

    #[test]
    fn decode_validation() {
        let c = presets::opt_125m();
        assert!(DecodeWorkload::new(&c, 0, 1).is_err());
        assert!(DecodeWorkload::new(&c, 512, 0).is_err());
        assert!(DecodeWorkload::new(&c, 2048, 64).is_err());
        assert!(DecodeWorkload::new(&presets::deit_s(), 10, 1).is_err());
    }

    #[test]
    fn kv_cache_sizes() {
        let c = presets::opt_125m();
        // 2 × 512 × 768 = 768 KiB per layer.
        assert_eq!(kv_cache_layer_bytes(&c, 512), 2 * 512 * 768);
        assert_eq!(kv_cache_total_bytes(&c, 512), 12 * 2 * 512 * 768);
    }

    #[test]
    fn serve_request_validation() {
        let c = presets::tiny_decoder();
        assert!(ServeRequest::new(0, 0.0, 16, 8).validate(&c).is_ok());
        assert!(ServeRequest::new(0, -1.0, 16, 8).validate(&c).is_err());
        assert!(ServeRequest::new(0, f64::NAN, 16, 8).validate(&c).is_err());
        assert!(ServeRequest::new(0, 0.0, 0, 8).validate(&c).is_err());
        assert!(ServeRequest::new(0, 0.0, 16, 0).validate(&c).is_err());
        // max_seq = 64: a 60-token prompt supports 5 generated tokens
        // (context 64 on the last step) but not 6.
        assert!(ServeRequest::new(0, 0.0, 60, 5).validate(&c).is_ok());
        assert!(ServeRequest::new(0, 0.0, 60, 6).validate(&c).is_err());
        // Vision transformers have no decode stage to serve.
        assert!(ServeRequest::new(0, 0.0, 5, 1).validate(&presets::tiny_vit()).is_err());
    }

    #[test]
    fn serve_request_kv_arithmetic() {
        let c = presets::tiny_decoder();
        let r = ServeRequest::new(3, 1.5, 16, 8);
        assert_eq!(r.final_context_len(), 24);
        assert_eq!(r.peak_kv_bytes(&c), kv_cache_total_bytes(&c, 24));
    }

    #[test]
    fn arrival_trace_uniform_and_validation() {
        let c = presets::tiny_decoder();
        let trace = ArrivalTrace::uniform(4, 2.5, 16, 8);
        assert_eq!(trace.requests.len(), 4);
        assert_eq!(trace.requests[3].id, 3);
        assert_eq!(trace.requests[3].arrival_ms, 7.5);
        trace.validate(&c).unwrap();
        assert_eq!(trace.total_peak_kv_bytes(&c), 4 * kv_cache_total_bytes(&c, 24));
        let dup = ArrivalTrace::new(vec![
            ServeRequest::new(1, 0.0, 8, 2),
            ServeRequest::new(1, 1.0, 8, 2),
        ]);
        assert!(dup.validate(&c).is_err());
    }
}
